"""PromotionGate: the signing boundary, the fail-closed lineage walk,
checkpoint binding, and the serving-load guard.

Every test that flips a byte asserts a typed :class:`PromotionError` —
the gate has no advisory mode, so "detected" and "refused" are the same
event.
"""

import dataclasses

import pytest

from repro.errors import GovernanceLogError, PromotionError
from repro.governance import (GovernanceLog, PromotionGate, PromotionRecord,
                              compute_run_key)
from repro.resilience import CheckpointManager, capture_state
from repro.serving import EngineConfig, ServingEngine, ShardedAnnIndex
from repro.utils.serialization import canonical_digest

from tests.resilience.worlds import SupervisedWorld


def _flip_byte(path, offset=None):
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2 if offset is None else offset] ^= 0x01
    path.write_bytes(bytes(blob))


class TestSigningBoundary:
    def test_promote_signs_and_chains(self, gate, run_key, log):
        record = gate.promote(run_key)
        assert record.run_key == run_key
        assert record.signature
        gate.verify_record(record)  # round trip through the full walk
        promotion = log.events("promotion")[-1]
        assert promotion["details"]["ledger_digest"] == record.ledger_digest
        assert log.verify()

    def test_unsigned_record_refused(self, gate, run_key):
        record = gate.promote(run_key)
        with pytest.raises(PromotionError, match="unsigned"):
            gate.verify_record(dataclasses.replace(record, signature=""))

    def test_forged_field_refused(self, gate, run_key):
        record = gate.promote(run_key)
        forged = dataclasses.replace(record, ledger_digest="00" * 32)
        with pytest.raises(PromotionError, match="does not verify"):
            gate.verify_record(forged)

    def test_never_promoted_refused(self, gate):
        with pytest.raises(PromotionError, match="never promoted"):
            gate.verify_record(None)

    def test_foreign_enclave_cannot_authenticate(self, gate, run_key,
                                                 ledger, store, tmp_path):
        # A different platform never derives the signing key: records
        # signed here fail closed over there, and vice versa.
        foreign = SupervisedWorld(seed=77)
        other_log = GovernanceLog.create(tmp_path / "foreign-gov")
        other_gate = PromotionGate(foreign.enclave, other_log,
                                   ledger=ledger, store=store)
        record = gate.promote(run_key)
        with pytest.raises(PromotionError, match="does not verify"):
            other_gate.check_signature(record)
        with pytest.raises(PromotionError, match="does not verify"):
            gate.check_signature(other_gate.promote(run_key))

    def test_record_json_round_trip(self, gate, run_key):
        record = gate.promote(run_key)
        assert PromotionRecord.from_json(record.to_json()) == record
        with pytest.raises(PromotionError, match="malformed"):
            PromotionRecord.from_json(b"{not json")
        with pytest.raises(PromotionError, match="malformed"):
            PromotionRecord.from_json(b'{"run_key": "x", "surprise": 1}')


class TestFailClosedWalk:
    def test_missing_ledger_refused(self, enclave, log, store, run_key):
        gate = PromotionGate(enclave, log, store=store)
        with pytest.raises(PromotionError, match="no contribution ledger"):
            gate.verify(run_key)

    def test_missing_store_refused(self, enclave, log, ledger, run_key):
        gate = PromotionGate(enclave, log, ledger=ledger)
        with pytest.raises(PromotionError, match="no linkage store"):
            gate.verify(run_key)

    def test_ledger_byte_flip_refused(self, gate, run_key, tmp_path):
        record = gate.promote(run_key)
        _flip_byte(sorted((tmp_path / "ledger").glob("segment-*.bin"))[0])
        with pytest.raises(PromotionError, match="ledger lineage"):
            gate.verify(run_key)
        with pytest.raises(PromotionError, match="ledger lineage"):
            gate.verify_record(record)

    def test_quarantine_segment_flip_refused(self, gate, run_key, tmp_path):
        # The quarantine lane is evidence too — the record of *why* data
        # was excluded must be as tamper-evident as the committed lane.
        _flip_byte(sorted((tmp_path / "ledger").glob("quarantine-*.bin"))[0])
        with pytest.raises(PromotionError, match="ledger lineage"):
            gate.verify(run_key)

    def test_store_byte_flip_refused(self, gate, run_key, tmp_path):
        record = gate.promote(run_key)
        _flip_byte(sorted((tmp_path / "store").glob("segment-*.npy"))[0])
        with pytest.raises(PromotionError, match="linkage-store lineage"):
            gate.verify_record(record)

    def test_governance_log_tamper_refused(self, gate, run_key, tmp_path):
        # A live log verifies its memory against the durable head; an
        # attacker rewriting the sidecar (to later truncate the events
        # file consistently) is caught before any promotion work.
        gate.promote(run_key)
        (tmp_path / "governance" / "head.json").write_text(
            '{"seq": 0, "chain": "' + "00" * 32 + '"}'
        )
        with pytest.raises(PromotionError, match="governance log"):
            gate.verify(run_key)

    def test_tampered_log_refused_at_open(self, gate, run_key, log,
                                          tmp_path):
        # The on-disk event bytes are checked when the log is loaded: a
        # flipped byte means the next process never gets a log object to
        # promote with at all.
        gate.promote(run_key)
        log.close()
        _flip_byte(tmp_path / "governance" / "events.jsonl", offset=50)
        with pytest.raises(GovernanceLogError):
            GovernanceLog.open(tmp_path / "governance")


class TestCheckpointBinding:
    CONFIG = canonical_digest({"agreement": "checkpoint-binding"})

    @pytest.fixture(scope="class")
    def world(self):
        return SupervisedWorld(seed=31)

    @pytest.fixture
    def bound(self, world, ledger, store, tmp_path):
        run_key = compute_run_key(self.CONFIG, ledger.manifest_digest())
        manager = CheckpointManager(tmp_path / "ckpts",
                                    config_digest=self.CONFIG,
                                    run_key=run_key)
        state = capture_state(world.trainer, epoch=1, batch=0)
        manager.save(state, world.enclave)
        log = GovernanceLog.create(tmp_path / "bound-gov")
        gate = PromotionGate(world.enclave, log, ledger=ledger,
                             checkpoints=manager, store=store)
        return gate, manager, run_key

    def test_bound_checkpoint_promotes(self, bound, world):
        gate, manager, run_key = bound
        record = gate.promote(run_key, config_digest=self.CONFIG)
        assert record.checkpoint_digest == \
            manager.latest_manifest_digest().hex()
        gate.verify_record(record)

    def test_foreign_run_key_refused(self, bound):
        gate, _, _ = bound
        with pytest.raises(PromotionError, match="belongs to run"):
            gate.verify("deadbeef" * 8)

    def test_config_digest_mismatch_refused(self, bound):
        gate, _, run_key = bound
        with pytest.raises(PromotionError, match="config digest mismatch"):
            gate.verify(run_key,
                        config_digest=canonical_digest({"other": 1}))

    def test_foreign_enclave_checkpoint_refused(self, bound, enclave,
                                                ledger, store, tmp_path):
        # `enclave` (the conftest fixture) lives on a different platform
        # than the world that sealed the checkpoint.
        _, manager, run_key = bound
        log = GovernanceLog.create(tmp_path / "mrenclave-gov")
        gate = PromotionGate(enclave, log, ledger=ledger,
                             checkpoints=manager, store=store)
        with pytest.raises(PromotionError, match="MRENCLAVE"):
            gate.verify(run_key)

    def test_tampered_sole_checkpoint_refused(self, bound):
        gate, manager, run_key = bound
        _flip_byte(manager.latest().path / "state.npz")
        with pytest.raises(PromotionError, match="no valid checkpoint"):
            gate.verify(run_key)

    def test_fallback_to_older_checkpoint_caught(self, bound, world):
        # Tampering with the newest checkpoint makes `latest()` fall
        # back to an older *valid* one — the walk alone would pass. The
        # promoted record's digest-equality check is what catches the
        # substitution.
        gate, manager, run_key = bound
        manager.save(capture_state(world.trainer, epoch=2, batch=0),
                     world.enclave)
        record = gate.promote(run_key, config_digest=self.CONFIG)
        _flip_byte(manager.latest().path / "state.npz")
        gate.verify(run_key)  # the older checkpoint still satisfies this
        with pytest.raises(PromotionError,
                           match="checkpoint digest changed"):
            gate.verify_record(record)


class TestServingGuard:
    def _engine(self, store, record, verifier):
        index = ShardedAnnIndex(store, shard_threshold=1024, seed=7).build()
        return ServingEngine(index, EngineConfig(workers=2),
                             promotion=record,
                             promotion_verifier=verifier)

    def test_promoted_engine_serves(self, gate, store, run_key):
        record = gate.promote(run_key)
        engine = self._engine(store, record, gate.serving_verifier())
        engine.start()
        try:
            hit = engine.submit(store.record(0).fingerprint,
                                store.record(0).label, k=1).result()[0]
            assert hit.index == 0
        finally:
            engine.stop()

    def test_unpromoted_engine_refused(self, gate, store):
        engine = self._engine(store, None, gate.serving_verifier())
        with pytest.raises(PromotionError, match="never promoted"):
            engine.start()

    def test_post_promotion_tamper_refused(self, gate, store, run_key,
                                           tmp_path):
        record = gate.promote(run_key)
        _flip_byte(sorted((tmp_path / "ledger").glob("segment-*.bin"))[0])
        engine = self._engine(store, record, gate.serving_verifier())
        with pytest.raises(PromotionError, match="ledger lineage"):
            engine.start()
