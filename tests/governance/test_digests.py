"""Regression pins for the unified content-address layer.

Every content-addressed identity in the system — ledger manifests,
checkpoint bindings, linkage-store snapshots, run keys, both hash-chained
logs — is defined in terms of ``canonical_digest`` and ``HashChain``.
These tests pin exact output bytes for fixed inputs: if any pin moves,
artifacts written by earlier releases (sealed manifests, checkpoints,
promotion records) silently stop verifying, which is a compatibility
break, not a refactor.
"""

import numpy as np
import pytest

from repro.core.audit import AuditLog
from repro.core.chain import HashChain
from repro.utils.serialization import (canonical_digest, canonical_json,
                                       stable_hash)


class TestCanonicalDigest:
    def test_pinned_json_input(self):
        assert canonical_digest({"a": 1, "b": [1, 2.5, "x"]}).hex() == (
            "168d5a7d54248f8b8efff095fed70fe7"
            "bb8159a6608a1513cd30e4719d7a4c42"
        )

    def test_pinned_mixed_parts(self):
        # bytes pass through, JSON is canonicalised, arrays go through
        # the self-describing encoding — all length-prefixed.
        digest = canonical_digest(
            b"bytes-part", {"k": "v"},
            np.arange(6, dtype=np.float32).reshape(2, 3),
        )
        assert digest.hex() == (
            "210e372ca6d280b839300a2d8fbb493a"
            "dff7bce555ce6ba3d1317be3e72bfe98"
        )

    def test_length_prefixing_prevents_concatenation_collisions(self):
        assert canonical_digest(b"ab", b"c") != canonical_digest(b"a", b"bc")
        assert canonical_digest(b"abc") != canonical_digest(b"ab", b"c")

    def test_array_layout_is_canonicalised(self):
        base = np.arange(6, dtype=np.float64).reshape(2, 3)
        fortran = np.asfortranarray(base)
        strided = base[::-1][::-1]  # non-trivial strides, same values
        assert canonical_digest(base) == canonical_digest(fortran)
        assert canonical_digest(base) == canonical_digest(strided)
        assert canonical_digest(base) != canonical_digest(base.T)
        assert canonical_digest(base) != \
            canonical_digest(base.astype(np.float32))

    def test_stable_hash_is_byte_identical(self):
        # The compatibility alias: pre-governance call sites hash through
        # stable_hash; sealed artifacts must verify under either name.
        for parts in ([{"x": 1}], [b"raw"], [np.ones(3), "tag", 7]):
            assert stable_hash(*parts) == canonical_digest(*parts)


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [True, None]}) == \
            b'{"a":[true,null],"b":1}'

    def test_non_finite_floats_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                canonical_json({"v": bad})

    def test_float_shortest_repr(self):
        assert canonical_json(0.1) == b"0.1"
        assert canonical_json(2.5) == b"2.5"


class TestHashChain:
    def test_pinned_genesis_and_entry(self):
        chain = HashChain(b"pinned-domain")
        assert chain.genesis.hex() == (
            "f745454046cdaca42246edb52ba61850"
            "fedd5b943b5242c4d1923c9ebccae39c"
        )
        entry = chain.entry_hash(
            chain.genesis, {"seq": 0, "kind": "k", "details": {}}
        )
        assert entry.hex() == (
            "5a83af7c60dbe28e5192237502788f7d"
            "7d739245b2faf2f92e19fd5d6d43ea6b"
        )

    def test_domain_separation(self):
        payload = {"seq": 0}
        one, two = HashChain(b"domain-a"), HashChain(b"domain-b")
        assert one.genesis != two.genesis
        assert one.entry_hash(one.genesis, payload) != \
            two.entry_hash(two.genesis, payload)

    def test_verify_walks_and_rejects(self):
        chain = HashChain(b"verify")
        payloads = [{"i": i} for i in range(4)]
        entries, head = [], chain.genesis
        for payload in payloads:
            head = chain.entry_hash(head, payload)
            entries.append((payload, head))
        assert chain.verify(entries)
        assert chain.verify([])
        forged = list(entries)
        forged[1] = ({"i": 99}, entries[1][1])
        assert not chain.verify(forged)
        assert not chain.verify(list(reversed(entries)))

    def test_audit_log_chains_through_hashchain(self):
        # Satellite pin: AuditLog delegates to the same chain math the
        # governance log uses (audit genesis label unchanged on disk).
        pinned_genesis = (
            "e305c011901b9bceb4edaaa006ee6232"
            "aa83864fb5184f15ee2b59b39dccde91"
        )
        log = AuditLog()
        assert log.head.hex() == pinned_genesis

        chain = HashChain(b"caltrain-audit-genesis")
        event = log.append("stage", records=3)
        assert event.chain_hash == chain.entry_hash(
            chain.genesis,
            {"seq": 0, "kind": "stage", "details": {"records": 3}},
        )
        assert log.verify_chain()
        assert AuditLog.from_bytes(log.to_bytes()).head == log.head
