"""Attributor: evidence-chained reports, and every refusal path.

The conftest world is adversarial by construction: the linkage store
holds one fingerprint that resolves into the ledger's *quarantine* lane
(at :data:`QUARANTINE_OFFSET`, far from every committed cluster). An
attribution that only ever queries honest space never sees it; a query
aimed at it must refuse, not report.
"""

import numpy as np
import pytest

from repro.errors import AttributionError
from repro.governance import Attributor
from repro.serving import EngineConfig, ServingEngine, ShardedAnnIndex

from tests.governance.conftest import DIM, QUARANTINE_OFFSET


@pytest.fixture
def engine(store):
    engine = ServingEngine(
        ShardedAnnIndex(store, shard_threshold=1024, seed=5).build(),
        EngineConfig(workers=2),
    )
    engine.start()
    yield engine
    engine.stop()


@pytest.fixture
def attributor(engine, store, ledger, log):
    return Attributor(engine, store, ledger, log)


def _query_near(store, index, scale=0.05, seed=3):
    record = store.record(index)
    noise = np.random.default_rng(seed).standard_normal(DIM)
    return record.fingerprint + noise.astype(np.float32) * scale, record.label


class TestReports:
    def test_report_carries_the_full_chain(self, attributor, store, log):
        fingerprint, label = _query_near(store, 0)
        report = attributor.attribute(fingerprint, label, k=5)

        assert report.label == label
        assert len(report.hits) == 5
        for hit in report.hits:
            assert hit["ledger"]["lane"] == "committed"
            assert hit["ledger"]["contributor"] == hit["source"]
            assert len(hit["ledger"]["segment_digest"]) == 64
        shares = [c["share"] for c in report.contributors]
        assert abs(sum(shares) - 1.0) < 1e-9
        assert report.implicated  # someone owns >= 25% of 5 hits
        assert set(report.implicated) <= {"c0", "c1"}
        assert report.query_audit["chain"]  # anchored in the serving audit

        # The report itself is chained into the governance timeline.
        entry = log.events("attribution")[-1]
        assert entry["details"]["report_digest"] == report.report_digest
        assert entry["details"]["implicated"] == report.implicated
        assert entry == report.governance_entry
        assert log.verify()

    def test_nearest_contributor_dominates(self, attributor, store):
        fingerprint, label = _query_near(store, 0, scale=0.01)
        report = attributor.attribute(fingerprint, label, k=1)
        assert report.hits[0]["store_index"] == 0
        assert report.contributors[0]["contributor"] == \
            store.record(0).source
        assert report.contributors[0]["share"] == 1.0

    def test_refusals_do_not_pollute_the_log(self, attributor, store, log):
        before = len(log)
        with pytest.raises(AttributionError):
            attributor.attribute(
                np.full(DIM, QUARANTINE_OFFSET, dtype=np.float32),
                label=0, k=1,
            )
        assert len(log) == before  # refused reports are never chained


class TestRefusals:
    def test_quarantine_lane_hit_refused(self, attributor):
        # The poisoned fingerprint is the nearest neighbour of a query
        # aimed straight at it; the ledger walk exposes its lane.
        with pytest.raises(AttributionError, match="quarantine lane"):
            attributor.attribute(
                np.full(DIM, QUARANTINE_OFFSET, dtype=np.float32),
                label=0, k=1,
            )

    def test_broken_governance_log_refused(self, attributor, store,
                                           tmp_path):
        (tmp_path / "governance" / "head.json").write_text(
            '{"seq": 0, "chain": "' + "00" * 32 + '"}'
        )
        fingerprint, label = _query_near(store, 0)
        with pytest.raises(AttributionError, match="governance log"):
            attributor.attribute(fingerprint, label)

    def test_hit_without_ledger_backing_refused(self, store, ledger, log):
        # A store record whose (source, index) no ledger lane contains:
        # evidence that cannot be walked back is not evidence.
        store.append(
            np.full((1, DIM), -QUARANTINE_OFFSET, dtype=np.float32),
            [1], ["ghost"], [b"g" * 32], source_indices=[999],
        )
        engine = ServingEngine(
            ShardedAnnIndex(store, shard_threshold=1024, seed=5).build(),
            EngineConfig(workers=2),
        )
        engine.start()
        try:
            attributor = Attributor(engine, store, ledger, log)
            with pytest.raises(AttributionError, match="no ledger backing"):
                attributor.attribute(
                    np.full(DIM, -QUARANTINE_OFFSET, dtype=np.float32),
                    label=1, k=1,
                )
        finally:
            engine.stop()

    def test_stale_promotion_refused(self, engine, store, ledger, log,
                                     gate, run_key, tmp_path):
        record = gate.promote(run_key)
        victim = sorted((tmp_path / "ledger").glob("segment-*.bin"))[0]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        victim.write_bytes(bytes(blob))

        attributor = Attributor(engine, store, ledger, log,
                                gate=gate, promotion=record)
        fingerprint, label = _query_near(store, 0)
        with pytest.raises(AttributionError,
                           match="promoted lineage no longer verifies"):
            attributor.attribute(fingerprint, label)
