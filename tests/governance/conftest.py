"""Fixtures for the governance control-plane suite.

A small but complete accountability world: a two-contributor committed
ledger with a quarantine lane, a linkage store whose records resolve
into that ledger (plus one record that deliberately resolves into the
*quarantine* lane — the divergence the attribution walk must refuse),
a governance log, and a promotion gate anchored to a real enclave.
"""

import numpy as np
import pytest

from repro.data.encryption import EncryptedRecord
from repro.enclave.platform import SgxPlatform
from repro.governance import GovernanceLog, PromotionGate, compute_run_key
from repro.ingest import ContributionLedger
from repro.serving import LinkageStore
from repro.utils.rng import RngStream
from repro.utils.serialization import canonical_digest

DIM = 8
NUM_LABELS = 4
#: Quarantined fingerprints live far from every committed cluster, so
#: only a query aimed straight at them ever hits them.
QUARANTINE_OFFSET = 50.0


def make_records(generator, count, source, start=0):
    sealed = generator.integers(0, 256, size=(count, 64), dtype=np.uint8)
    nonces = generator.integers(0, 256, size=(count, 12), dtype=np.uint8)
    return [
        EncryptedRecord(source_id=source, index=start + i,
                        label=int((start + i) % NUM_LABELS),
                        nonce=nonces[i].tobytes(),
                        sealed=sealed[i].tobytes())
        for i in range(count)
    ]


@pytest.fixture
def rng():
    return RngStream(13, name="governance-tests")


@pytest.fixture
def enclave(rng):
    platform = SgxPlatform(rng=rng.child("platform"))
    enclave = platform.create_enclave("governance")
    enclave.init()
    return enclave


@pytest.fixture
def ledger(tmp_path, rng):
    ledger = ContributionLedger.create(tmp_path / "ledger")
    generator = rng.child("ledger").generator
    ledger.append(make_records(generator, 12, "c0"), contributor="c0")
    ledger.append(make_records(generator, 12, "c1"), contributor="c1")
    ledger.quarantine(make_records(generator, 2, "evil"),
                      contributor="evil", reason="tampered")
    return ledger


@pytest.fixture
def store(tmp_path, rng, ledger):
    store = LinkageStore.create(tmp_path / "store")
    generator = rng.child("store").generator
    committed = list(ledger.iter_records())
    fingerprints = generator.standard_normal(
        (len(committed), DIM)
    ).astype(np.float32)
    store.append(
        fingerprints,
        [r.label for r in committed],
        [r.source_id for r in committed],
        [b"h" * 32 for _ in committed],
        source_indices=[r.index for r in committed],
    )
    poisoned = next(ledger.iter_records(lane="quarantine"))
    store.append(
        np.full((1, DIM), QUARANTINE_OFFSET, dtype=np.float32),
        [poisoned.label], [poisoned.source_id], [b"q" * 32],
        source_indices=[poisoned.index],
    )
    return store


@pytest.fixture
def log(tmp_path):
    return GovernanceLog.create(tmp_path / "governance")


@pytest.fixture
def gate(enclave, log, ledger, store):
    return PromotionGate(enclave, log, ledger=ledger, store=store)


@pytest.fixture
def run_key(ledger):
    return compute_run_key(canonical_digest({"agreement": "tests"}),
                           ledger.manifest_digest())
