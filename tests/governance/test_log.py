"""GovernanceLog: the append protocol, tamper detection, crash windows.

The durable timeline must refuse everything except the two benign crash
states of its own append protocol: a torn unacknowledged final line, and
a fully-written final line the crash kept from being acknowledged.
"""

import json

import pytest

from repro.errors import GovernanceLogError
from repro.governance import GovernanceLog


def _fill(log, count=5):
    for i in range(count):
        log.append("train-start", run_key=f"r{i}")
    return log


def _events_path(root):
    return root / "gov" / "events.jsonl"


def _head_path(root):
    return root / "gov" / "head.json"


@pytest.fixture
def filled(tmp_path):
    log = _fill(GovernanceLog.create(tmp_path / "gov"))
    log.close()
    return tmp_path


class TestRoundTrip:
    def test_append_verify_reopen(self, filled):
        log = GovernanceLog.open(filled / "gov")
        assert len(log) == 5
        assert log.verify()
        assert [e["details"]["run_key"] for e in log.events()] == [
            f"r{i}" for i in range(5)
        ]

    def test_head_advances_per_append(self, tmp_path):
        log = GovernanceLog.create(tmp_path / "gov")
        heads = {log.head}
        for i in range(4):
            log.append("checkpoint", seq_no=i)
            heads.add(log.head)
        assert len(heads) == 5  # genesis + one per append

    def test_events_filter_and_find_run(self, tmp_path):
        log = GovernanceLog.create(tmp_path / "gov")
        log.append("train-start", run_key="a")
        log.append("train-complete", run_key="a")
        log.append("train-complete", run_key="b")
        assert len(log.events("train-complete")) == 2
        assert log.find_run("a")["details"]["run_key"] == "a"
        assert log.find_run("b")["seq"] == 2
        assert log.find_run("missing") is None
        assert log.find_run("a", kind="promotion") is None

    def test_create_refuses_existing(self, filled):
        with pytest.raises(GovernanceLogError, match="already exists"):
            GovernanceLog.create(filled / "gov")

    def test_open_refuses_missing(self, tmp_path):
        with pytest.raises(GovernanceLogError, match="no governance log"):
            GovernanceLog.open(tmp_path / "nope")


class TestTamperDetection:
    def test_truncation_detected_despite_valid_chain(self, filled):
        # Drop the last line: the remaining prefix is a perfectly valid
        # chain — only the head sidecar's length commitment catches it.
        lines = _events_path(filled).read_bytes().splitlines(keepends=True)
        _events_path(filled).write_bytes(b"".join(lines[:-1]))
        with pytest.raises(GovernanceLogError, match="truncated"):
            GovernanceLog.open(filled / "gov")

    def test_bit_flip_mid_file_detected(self, filled):
        blob = bytearray(_events_path(filled).read_bytes())
        blob[len(blob) // 2] ^= 0x01
        _events_path(filled).write_bytes(bytes(blob))
        with pytest.raises(GovernanceLogError):
            GovernanceLog.open(filled / "gov")

    def test_rewritten_entry_breaks_the_chain(self, filled):
        # Valid JSON, tampered content: seq 1's details are rewritten but
        # its chain hash (and every later one) no longer matches.
        lines = _events_path(filled).read_text().splitlines()
        entry = json.loads(lines[1])
        entry["details"]["run_key"] = "forged"
        lines[1] = json.dumps(entry, sort_keys=True,
                              separators=(",", ":"))
        _events_path(filled).write_text("".join(l + "\n" for l in lines))
        with pytest.raises(GovernanceLogError, match="chain verification"):
            GovernanceLog.open(filled / "gov")

    def test_spliced_entries_detected(self, filled):
        lines = _events_path(filled).read_bytes().splitlines(keepends=True)
        lines[1], lines[2] = lines[2], lines[1]
        _events_path(filled).write_bytes(b"".join(lines))
        with pytest.raises(GovernanceLogError, match="chain verification"):
            GovernanceLog.open(filled / "gov")

    def test_head_rollback_detected(self, filled):
        # An attacker truncates AND rolls the head back consistently; the
        # head still names a chain hash the shortened log agrees with,
        # but the seq mismatch against the entries is outside the
        # single-append crash window.
        head = json.loads(_head_path(filled).read_text())
        head["seq"] -= 2
        _head_path(filled).write_text(json.dumps(head))
        with pytest.raises(GovernanceLogError, match="crash window"):
            GovernanceLog.open(filled / "gov")

    def test_head_hash_mismatch_detected(self, filled):
        head = json.loads(_head_path(filled).read_text())
        head["chain"] = "00" * 32
        _head_path(filled).write_text(json.dumps(head))
        with pytest.raises(GovernanceLogError, match="disagrees"):
            GovernanceLog.open(filled / "gov")

    def test_missing_head_refused(self, filled):
        _head_path(filled).unlink()
        with pytest.raises(GovernanceLogError, match="head sidecar"):
            GovernanceLog.open(filled / "gov")

    def test_live_verify_sees_head_tamper(self, tmp_path):
        log = _fill(GovernanceLog.create(tmp_path / "gov"))
        _head_path(tmp_path).write_text(json.dumps({"seq": 0,
                                                    "chain": "00" * 32}))
        with pytest.raises(GovernanceLogError):
            log.verify()


class TestCrashWindows:
    def test_torn_unacknowledged_tail_dropped(self, filled):
        # Crash mid-append: a torn final line the head never acknowledged.
        with open(_events_path(filled), "ab") as handle:
            handle.write(b'{"seq": 5, "kind": "trai')
        log = GovernanceLog.open(filled / "gov")
        assert len(log) == 5
        assert log.verify()
        # The torn bytes are gone; the next open is clean.
        log.close()
        assert len(GovernanceLog.open(filled / "gov")) == 5

    def test_unacknowledged_full_entry_adopted(self, tmp_path):
        # Crash between the fsynced line and the head replace: the entry
        # verifies as chain member, so it is adopted and acknowledged.
        log = _fill(GovernanceLog.create(tmp_path / "gov"), count=4)
        stale_head = _head_path(tmp_path).read_text()
        log.append("train-complete", run_key="r-final")
        log.close()
        _head_path(tmp_path).write_text(stale_head)  # the crash

        reopened = GovernanceLog.open(tmp_path / "gov")
        assert len(reopened) == 5
        assert reopened.events("train-complete")[0]["details"][
            "run_key"] == "r-final"
        assert reopened.verify()  # head was re-acknowledged

    def test_gap_beyond_one_append_refused(self, tmp_path):
        log = _fill(GovernanceLog.create(tmp_path / "gov"), count=2)
        stale_head = _head_path(tmp_path).read_text()
        log.append("checkpoint", seq_no=1)
        log.append("checkpoint", seq_no=2)
        log.close()
        _head_path(tmp_path).write_text(stale_head)
        with pytest.raises(GovernanceLogError, match="crash window"):
            GovernanceLog.open(tmp_path / "gov")
