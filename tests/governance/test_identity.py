"""Semantic run identity: deterministic across processes, sensitive to
every input (config, data, code)."""

import numpy as np

import repro
from repro.data.encryption import EncryptedDataset
from repro.governance import (code_version, compute_run_key,
                              submissions_digest)
from repro.utils.serialization import canonical_digest

from tests.governance.conftest import make_records

CONFIG = canonical_digest({"architecture": "tiny", "epochs": 2})
DATA = canonical_digest({"ledger": "fixed"})


class TestRunKey:
    def test_deterministic(self):
        first = compute_run_key(CONFIG, DATA, version="1.0")
        second = compute_run_key(bytes(CONFIG), bytes(DATA), version="1.0")
        assert first == second

    def test_pinned(self):
        # Regression pin: the exact key for fixed inputs. If this moves,
        # every recorded run key, checkpoint binding, and promotion
        # record in existing deployments silently stops matching.
        assert compute_run_key(CONFIG, DATA, version="1.0") == (
            "0bd9ba92378f3ce67a8e2e1991aa48f9"
            "49c63b8a27e30e7b52ab5c2790ff7d48"
        )

    def test_sensitive_to_every_input(self):
        base = compute_run_key(CONFIG, DATA, version="1.0")
        varied = {
            compute_run_key(canonical_digest({"architecture": "tiny",
                                              "epochs": 3}),
                            DATA, version="1.0"),
            compute_run_key(CONFIG, canonical_digest({"ledger": "other"}),
                            version="1.0"),
            compute_run_key(CONFIG, DATA, version="1.1"),
        }
        assert base not in varied
        assert len(varied) == 3

    def test_default_version_is_the_library_release(self):
        assert compute_run_key(CONFIG, DATA) == compute_run_key(
            CONFIG, DATA, version=repro.__version__
        )
        assert code_version() == repro.__version__

    def test_travels_as_hex(self):
        key = compute_run_key(CONFIG, DATA)
        assert len(key) == 64
        int(key, 16)  # parses as hex


class TestSubmissionsDigest:
    def _datasets(self, seed=5):
        generator = np.random.default_rng(seed)
        return [
            EncryptedDataset(source_id="c0",
                             records=make_records(generator, 4, "c0")),
            EncryptedDataset(source_id="c1",
                             records=make_records(generator, 4, "c1")),
        ]

    def test_order_independent(self):
        datasets = self._datasets()
        assert submissions_digest(datasets) == \
            submissions_digest(list(reversed(datasets)))

    def test_sensitive_to_any_sealed_byte(self):
        import dataclasses

        datasets = self._datasets()
        baseline = submissions_digest(datasets)
        victim = datasets[0].records[0]
        datasets[0].records[0] = dataclasses.replace(
            victim,
            sealed=bytes([victim.sealed[0] ^ 0x01]) + victim.sealed[1:],
        )
        assert submissions_digest(datasets) != baseline
