"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.data.datasets import Dataset, synthetic_cifar, synthetic_faces
from repro.enclave.attestation import AttestationService
from repro.enclave.platform import SgxPlatform
from repro.nn.zoo import tiny_testnet
from repro.utils.rng import RngStream


@pytest.fixture
def rng() -> RngStream:
    return RngStream(seed=1234, name="tests")


@pytest.fixture
def generator(rng) -> np.random.Generator:
    return rng.child("generator").generator


@pytest.fixture
def platform(rng) -> SgxPlatform:
    return SgxPlatform(rng=rng.child("platform"))


@pytest.fixture
def attestation_service(platform) -> AttestationService:
    service = AttestationService()
    service.register_platform(platform.platform_id, platform.platform_key)
    return service


@pytest.fixture
def tiny_net(rng):
    return tiny_testnet(rng.child("tiny-net").generator)


@pytest.fixture
def tiny_cifar(rng):
    """A small 4-class, 8x8 dataset that trains in seconds."""
    return synthetic_cifar(
        rng.child("tiny-cifar"), num_train=160, num_test=80,
        num_classes=4, shape=(8, 8, 3),
    )


@pytest.fixture
def tiny_faces(rng) -> Dataset:
    return synthetic_faces(rng.child("tiny-faces"), num_identities=4, per_identity=24)
