"""Incremental index segments: content addressing, refresh, compaction."""

import numpy as np
import pytest

from repro.errors import (CompactionCrash, ConfigurationError,
                          IndexIntegrityError)
from repro.serving import (IndexGeneration, IndexSegment, LinkageStore,
                           SegmentBuildParams, ShardedAnnIndex,
                           generation_lineage_error, merge_segments,
                           plan_merge)

from tests.serving.conftest import clustered_corpus, fill_store


def _segmented_store(tmp_path, generator, size=600, segment_records=150):
    fingerprints, labels = clustered_corpus(generator, size)
    store = fill_store(LinkageStore.create(tmp_path / "seg-store"),
                       fingerprints, labels,
                       segment_records=segment_records)
    return store, fingerprints, labels


class TestContentAddressing:
    def test_segment_digest_is_deterministic(self, tmp_path, generator):
        store, _, _ = _segmented_store(tmp_path, generator)
        params = SegmentBuildParams()
        a = IndexSegment.build(store, 0, 2, params)
        b = IndexSegment.build(store, 0, 2, params)
        assert a.digest == b.digest
        # A different coverage or different params is a different address.
        assert IndexSegment.build(store, 0, 1, params).digest != a.digest
        assert IndexSegment.build(
            store, 0, 2, SegmentBuildParams(seed=7)).digest != a.digest

    def test_snapshot_digest_commits_to_parts(self, tmp_path, generator):
        store, _, _ = _segmented_store(tmp_path, generator)
        params = SegmentBuildParams()
        segs = [IndexSegment.build(store, 0, 2, params),
                IndexSegment.build(store, 2, 4, params)]
        one = IndexGeneration(segs, params, store_version=store.version)
        two = IndexGeneration(segs, params, store_version=store.version)
        assert one.snapshot == two.snapshot
        # Dropping a segment changes the snapshot identity.
        shorter = IndexGeneration(segs[:1], params,
                                  store_version=store.version)
        assert shorter.snapshot != one.snapshot

    def test_non_contiguous_generation_rejected(self, tmp_path, generator):
        store, _, _ = _segmented_store(tmp_path, generator)
        params = SegmentBuildParams()
        segs = [IndexSegment.build(store, 0, 1, params),
                IndexSegment.build(store, 2, 3, params)]  # gap at 1
        with pytest.raises(ConfigurationError):
            IndexGeneration(segs, params, store_version=store.version)

    def test_label_digest_tracks_store_segments_not_partitioning(
            self, tmp_path, generator):
        store, _, _ = _segmented_store(tmp_path, generator)
        params = SegmentBuildParams()
        split = IndexGeneration(
            [IndexSegment.build(store, 0, 2, params),
             IndexSegment.build(store, 2, 4, params)],
            params, store_version=store.version)
        merged = IndexGeneration(
            [IndexSegment.build(store, 0, 4, params)],
            params, store_version=store.version)
        # Same covered rows, different index partitioning: per-label cache
        # keys must agree so compaction never invalidates warm caches.
        assert split.label_digests == merged.label_digests
        assert split.snapshot != merged.snapshot


class TestRefresh:
    def test_refresh_reuses_existing_segments(self, tmp_path, generator):
        store, fingerprints, labels = _segmented_store(tmp_path, generator)
        index = ShardedAnnIndex(store, shard_threshold=100).build()
        before = index._generation.segments
        extra, extra_labels = clustered_corpus(generator, 120)
        store.append(extra, extra_labels.tolist(), ["p9"] * 120,
                     [b"x" * 32] * 120)
        assert index.refresh() is True
        after = index._generation.segments
        # The original coverage is the *same objects* — no rebuild work.
        assert after[:len(before)] == before
        assert len(after) == len(before) + 1
        assert index.full_builds == 1
        assert index.refreshes == 1

    def test_refreshed_results_match_full_rebuild_bitwise(
            self, tmp_path, generator):
        store, fingerprints, labels = _segmented_store(tmp_path, generator)
        incremental = ShardedAnnIndex(store, shard_threshold=100).build()
        extra, extra_labels = clustered_corpus(generator, 200)
        store.append(extra, extra_labels.tolist(), ["p9"] * 200,
                     [b"x" * 32] * 200)
        incremental.refresh()
        scratch = ShardedAnnIndex(store, shard_threshold=100).build()
        queries = fingerprints[:24] + 0.05
        for label in store.labels():
            got = incremental.search_batch(queries, label, k=9).hits
            want = scratch.search_batch(queries, label, k=9).hits
            # Membership AND tie-break order: the k-way merge reproduces
            # the monolithic build exactly.
            assert got == want

    def test_generation_lookup_by_snapshot(self, tmp_path, generator):
        store, _, _ = _segmented_store(tmp_path, generator)
        index = ShardedAnnIndex(store).build()
        first = index.snapshot_digest
        extra, extra_labels = clustered_corpus(generator, 60)
        store.append(extra, extra_labels.tolist(), ["p9"] * 60,
                     [b"x" * 32] * 60)
        index.refresh()
        # Both the pinned and the live generation stay addressable.
        assert index.generation(first) is not None
        assert index.generation(index.snapshot_digest) is not None
        assert index.generation("f" * 64) is None


class TestLineage:
    def test_clean_generation_walks(self, tmp_path, generator):
        store, _, _ = _segmented_store(tmp_path, generator)
        index = ShardedAnnIndex(store).build()
        assert generation_lineage_error(index._generation, store) is None

    def test_rewritten_history_is_named(self, tmp_path, generator):
        store, _, _ = _segmented_store(tmp_path, generator)
        index = ShardedAnnIndex(store).build()
        info = store._segments[1].info
        store._segments[1].info = type(info)(
            name=info.name, records=info.records, digest="0" * 64)
        problem = generation_lineage_error(index._generation, store)
        assert problem is not None and "rewrite" in problem

    def test_forged_snapshot_is_caught(self, tmp_path, generator):
        store, _, _ = _segmented_store(tmp_path, generator)
        index = ShardedAnnIndex(store).build()
        generation = index._generation
        generation.snapshot = "f" * 64  # forge the claimed identity
        problem = generation_lineage_error(generation, store)
        assert problem is not None and "recompute" in problem


class TestCompaction:
    def test_plan_merge_picks_smallest_adjacent_pair(self):
        class Seg:
            def __init__(self, rows):
                self.rows = rows
        segs = [Seg(400), Seg(10), Seg(20), Seg(300)]
        assert plan_merge(segs, max_segments=3) == 1  # 10 + 20 wins
        assert plan_merge(segs, max_segments=4) is None
        with pytest.raises(ConfigurationError):
            plan_merge(segs, max_segments=0)

    def test_merge_rejects_non_adjacent(self, tmp_path, generator):
        store, _, _ = _segmented_store(tmp_path, generator)
        params = SegmentBuildParams()
        a = IndexSegment.build(store, 0, 1, params)
        c = IndexSegment.build(store, 2, 3, params)
        with pytest.raises(ConfigurationError):
            merge_segments(store, a, c, params)

    def test_compaction_bounds_fanout_and_preserves_answers(
            self, tmp_path, generator):
        store, fingerprints, labels = _segmented_store(
            tmp_path, generator, size=800, segment_records=100)
        index = ShardedAnnIndex(store, shard_threshold=100,
                                max_segments=2).build()
        for _ in range(4):
            extra, extra_labels = clustered_corpus(generator, 100)
            store.append(extra, extra_labels.tolist(), ["p9"] * 100,
                         [b"x" * 32] * 100)
            index.refresh()
        assert index._generation.segment_count > 2
        before = {label: index.search_batch(fingerprints[:8], label, k=5).hits
                  for label in store.labels()}
        steps = index.compact_now()
        assert steps > 0
        assert index._generation.segment_count <= 2
        assert index.compactions == steps
        for label in store.labels():
            after = index.search_batch(fingerprints[:8], label, k=5).hits
            assert after == before[label]

    def test_compaction_crash_leaves_generation_intact(
            self, tmp_path, generator):
        store, _, _ = _segmented_store(tmp_path, generator, size=600,
                                       segment_records=100)
        index = ShardedAnnIndex(store, max_segments=2).build()
        extra, extra_labels = clustered_corpus(generator, 100)
        store.append(extra, extra_labels.tolist(), ["p9"] * 100,
                     [b"x" * 32] * 100)
        index.refresh()
        extra, extra_labels = clustered_corpus(generator, 100)
        store.append(extra, extra_labels.tolist(), ["p9"] * 100,
                     [b"x" * 32] * 100)
        index.refresh()
        snapshot = index.snapshot_digest
        fanout = index._generation.segment_count
        index.inject_compaction_crash()
        # Crash after build, before adoption: atomicity means the live
        # generation is bitwise what it was.
        with pytest.raises(CompactionCrash):
            index.compact_now()
        assert index.snapshot_digest == snapshot
        assert index._generation.segment_count == fanout
        assert index.compaction_crashes == 1
        # The next (uninjected) attempt completes the merge.
        assert index.compact_now() > 0
        assert index._generation.segment_count <= 2

    def test_background_compactor_survives_crash(self, tmp_path, generator):
        import time
        store, _, _ = _segmented_store(tmp_path, generator, size=600,
                                       segment_records=100)
        index = ShardedAnnIndex(store, max_segments=2,
                                compaction_interval_s=0.01).build()
        for _ in range(2):
            extra, extra_labels = clustered_corpus(generator, 100)
            store.append(extra, extra_labels.tolist(), ["p9"] * 100,
                         [b"x" * 32] * 100)
            index.refresh()
        index.inject_compaction_crash()
        index.start_compaction()
        try:
            deadline = time.time() + 5.0
            while time.time() < deadline:
                if (index.compaction_crashes >= 1
                        and index._generation.segment_count <= 2):
                    break
                time.sleep(0.01)
        finally:
            index.stop_compaction()
        assert index.compaction_crashes == 1
        assert index._generation.segment_count <= 2


class TestIntegrity:
    def test_checksum_drift_detected(self, tmp_path, generator):
        store, _, _ = _segmented_store(tmp_path, generator)
        index = ShardedAnnIndex(store).build()
        index.verify_checksums()
        shard = index._shard_for(store.labels()[0])
        shard.matrix[0, 0] += 1.0
        with pytest.raises(IndexIntegrityError):
            index.verify_checksums()

    def test_short_shard_answers_are_explicit(self, tmp_path, generator):
        store, fingerprints, labels = _segmented_store(tmp_path, generator)
        index = ShardedAnnIndex(store).build()
        label = int(labels[0])
        rows = store.count(label)
        result = index.search_batch(fingerprints[:1], label, k=rows + 50)
        # k_eff < k is carried explicitly, not left for callers to infer.
        assert result.requested_k == rows + 50
        assert result.shard_rows == rows
        assert len(result.hits[0]) == rows
        assert result.snapshot == index.snapshot_digest
