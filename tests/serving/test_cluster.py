"""Self-healing cluster tests: routing, failover, degradation, healing."""

import time

import numpy as np
import pytest

from repro.errors import (ConfigurationError, NoHealthyReplica, QueryError,
                          QueryRejected, ServingError)
from repro.observability import Tracer
from repro.serving import (CircuitBreaker, ClusterConfig, EngineConfig,
                           LinkageStore, ServingCluster, ShardedAnnIndex)

from tests.serving.conftest import clustered_corpus, fill_store


def _brute_truth(fingerprints, labels, query, label, k):
    rows = np.flatnonzero(labels == label)
    deltas = fingerprints[rows] - query[None, :]
    distances = np.sqrt((deltas * deltas).sum(axis=1))
    order = np.argsort(distances, kind="stable")[:k]
    return [int(rows[i]) for i in order]


def _cluster_for(store, replicas=3, monitor=False, **overrides):
    defaults = dict(
        deadline_s=5.0, hedge_min_s=0.05, breaker_reset_s=0.2,
        health_interval_s=0.05 if monitor else 60.0,
        stop_timeout_s=0.5,
    )
    defaults.update(overrides)
    return ServingCluster(
        store, replicas=replicas,
        config=ClusterConfig(**defaults),
        engine_config=EngineConfig(workers=2, poll_interval=0.005),
        index_factory=lambda s: ShardedAnnIndex(s, shard_threshold=100),
    )


def _wait_until(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def world(tmp_path, generator):
    fingerprints, labels = clustered_corpus(generator, 600)
    store = fill_store(LinkageStore.create(tmp_path / "cluster-store"),
                       fingerprints, labels, segment_records=250)
    return fingerprints, labels, store


class TestRouting:
    def test_fault_free_answers_match_brute_force(self, world, generator):
        fingerprints, labels, store = world
        sample = generator.integers(0, fingerprints.shape[0], size=25)
        with _cluster_for(store) as cluster:
            for i in sample:
                query = fingerprints[i] + 0.02
                label = int(labels[i])
                result = cluster.query(query, label, k=5)
                assert not result.degraded
                assert result.replica is not None
                expected = _brute_truth(fingerprints, labels, query, label, 5)
                assert [h.index for h in result.hits] == expected

    def test_query_many_matches_single_queries(self, world, generator):
        fingerprints, labels, store = world
        sample = generator.integers(0, fingerprints.shape[0], size=20)
        queries = fingerprints[sample] + 0.01
        with _cluster_for(store) as cluster:
            batch = cluster.query_many(queries, labels[sample], k=4)
            assert len(batch) == 20
            for i, result in enumerate(batch):
                expected = _brute_truth(fingerprints, labels, queries[i],
                                        int(labels[sample][i]), 4)
                assert [h.index for h in result.hits] == expected

    def test_unknown_label_is_a_caller_error(self, world):
        fingerprints, _, store = world
        with _cluster_for(store) as cluster:
            with pytest.raises(QueryError):
                cluster.query(fingerprints[0], label=99, k=3)
            assert cluster.telemetry.counter("caller_errors") == 1
            # The cluster keeps serving afterwards.
            assert not cluster.query(fingerprints[0], 0, k=3).degraded

    def test_requires_started_cluster(self, world):
        _, _, store = world
        cluster = _cluster_for(store)
        with pytest.raises(ServingError):
            cluster.query(np.zeros(8, dtype=np.float32), 0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(deadline_s=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(backoff_base_s=0.5, backoff_cap_s=0.1)
        with pytest.raises(ConfigurationError):
            ClusterConfig(breaker_threshold=0)


class TestFailover:
    def test_crash_fails_over_and_background_revives(self, world):
        fingerprints, labels, store = world
        with _cluster_for(store, monitor=True) as cluster:
            victim = cluster.crash_replica("replica-0")
            assert victim == "replica-0"
            result = cluster.query(fingerprints[0], int(labels[0]), k=3)
            assert not result.degraded
            assert result.replica != "replica-0"
            assert _wait_until(
                lambda: cluster.replicas[0].state == "healthy")
            assert cluster.telemetry.counter("evictions") >= 1
            assert cluster.telemetry.counter("revivals") >= 1
            kinds = [e.kind for e in cluster.audit.events()]
            assert "replica-evicted" in kinds
            assert "replica-revived" in kinds
            assert cluster.verify_audit_chain()

    def test_wedged_replica_hedged_around(self, world):
        fingerprints, labels, store = world
        with _cluster_for(store, hedge_min_s=0.03) as cluster:
            cluster.wedge_replica("replica-0")
            for i in range(6):
                result = cluster.query(fingerprints[i], int(labels[i]), k=3)
                assert not result.degraded
            assert cluster.telemetry.counter("hedges_launched") >= 1
            assert len(cluster.audit.events("hedged-query")) >= 1

    def test_corrupted_answer_caught_and_replica_evicted(self, world):
        # Plant an attractor row in one replica's index: the corrupted
        # row surfaces as the (false) nearest hit, per-answer store
        # verification catches the lie, the replica is evicted, and the
        # caller still receives the *correct* answer from elsewhere.
        fingerprints, labels, store = world
        label = int(labels[0])
        query = fingerprints[0] + 0.02
        with _cluster_for(store) as cluster:
            cluster.corrupt_index(label, 1,
                                  value=tuple(float(x) for x in query),
                                  name="replica-0")
            expected = _brute_truth(fingerprints, labels, query, label, 3)
            for _ in range(6):  # round-robin guarantees replica-0 gets one
                result = cluster.query(query, label, k=3)
                assert [h.index for h in result.hits] == expected
            assert cluster.telemetry.counter("verify_failures") >= 1
            assert cluster.replicas[0].state in ("evicted", "reviving",
                                                 "healthy")
            assert cluster.telemetry.counter("evictions") >= 1

    def test_health_sweep_checksum_catches_silent_corruption(self, world):
        # Corruption that never surfaces in an answer is still caught by
        # the background shard-checksum sweep.
        fingerprints, labels, store = world
        with _cluster_for(store) as cluster:
            cluster.replicas[1].index.corrupt_row(int(labels[0]), 0)
            cluster.health_check_now()
            assert cluster.replicas[1].state != "healthy"
            reasons = [e.details["reason"]
                       for e in cluster.audit.events("replica-evicted")]
            assert "index-integrity" in reasons

    def test_audit_chain_break_evicts_replica(self, world):
        fingerprints, labels, store = world
        with _cluster_for(store) as cluster:
            cluster.query(fingerprints[0], int(labels[0]), k=3)
            # Tamper with whichever replica served queries.
            victim = next(r for r in cluster.replicas
                          if len(r.engine.audit) > 0)
            event = victim.engine.audit.events()[0]
            object.__setattr__(event, "details",
                               {**event.details, "label": 999})
            cluster.health_check_now()
            assert victim.state != "healthy"
            reasons = [e.details["reason"]
                       for e in cluster.audit.events("replica-evicted")]
            assert "audit-chain-break" in reasons


class TestDegradedMode:
    def test_all_replicas_down_serves_degraded_and_audited(self, world):
        fingerprints, labels, store = world
        label = int(labels[0])
        query = fingerprints[0] + 0.02
        with _cluster_for(store, revive=False) as cluster:
            for replica in cluster.replicas:
                cluster.crash_replica(replica.name)
            result = cluster.query(query, label, k=5)
            assert result.degraded
            assert result.replica is None
            expected = _brute_truth(fingerprints, labels, query, label, 5)
            assert [h.index for h in result.hits] == expected
            assert cluster.telemetry.counter("degraded_answers") == 1
            assert len(cluster.audit.events("degraded-query")) == 1
            assert cluster.verify_audit_chain()

    def test_degraded_disabled_fails_typed(self, world):
        fingerprints, labels, store = world
        with _cluster_for(store, revive=False,
                          degraded_allowed=False) as cluster:
            for replica in cluster.replicas:
                cluster.crash_replica(replica.name)
            with pytest.raises(NoHealthyReplica):
                cluster.query(fingerprints[0], int(labels[0]), k=3)
            assert cluster.telemetry.counter("queries_failed") == 1

    def test_degraded_refuses_corrupted_store(self, world):
        # Store corruption poisons every replica AND the fallback: the
        # degraded path re-verifies the content-addressed segments and
        # refuses fail-closed rather than serve unverifiable bytes.
        fingerprints, labels, store = world
        with _cluster_for(store, revive=False) as cluster:
            cluster.corrupt_store_segment(0)
            for replica in cluster.replicas:
                cluster.crash_replica(replica.name)
            with pytest.raises(NoHealthyReplica):
                cluster.query(fingerprints[0], int(labels[0]), k=3)

    def test_torn_manifest_blocks_revival(self, world):
        fingerprints, labels, store = world
        with _cluster_for(store, monitor=True,
                          breaker_reset_s=0.05) as cluster:
            cluster.tear_manifest()
            cluster.crash_replica("replica-0")
            assert _wait_until(
                lambda: cluster.telemetry.counter("revive_failures") >= 1)
            assert cluster.replicas[0].state == "evicted"
            # The survivors keep serving; answers stay correct.
            result = cluster.query(fingerprints[0], int(labels[0]), k=3)
            assert not result.degraded


class TestStaleness:
    def test_store_growth_refreshes_replicas_without_eviction(self, world):
        # Mid-flight store growth is benign: every replica keeps serving
        # its pinned snapshot (answers stay correct for the prefix it
        # covers), the health sweep adopts the new segments via staggered
        # refresh, and nobody is evicted along the way.
        fingerprints, labels, store = world
        label = int(labels[0])
        query = fingerprints[0]
        with _cluster_for(store, monitor=True,
                          breaker_reset_s=0.05) as cluster:
            cluster.query(query, label, k=1)
            store.append(query.reshape(1, -1), [label], ["p9"], [b"z" * 32])
            # The cluster never stops answering while behind; pinned
            # snapshots simply don't include the new record yet.
            result = cluster.query(query, label, k=2)
            assert not result.degraded
            assert _wait_until(lambda: all(
                r.state == "healthy" and r.index.built_version == store.version
                for r in cluster.replicas))
            follow_up = cluster.query(query, label, k=2)
            assert not follow_up.degraded
            assert 600 in [h.index for h in follow_up.hits]
            # Refresh, not eviction: growth must never cost a replica.
            assert cluster.telemetry.counter("evictions") == 0
            assert cluster.telemetry.counter("replica_refreshes") >= len(
                cluster.replicas)
            assert cluster.audit.events("replica-refreshed")
            assert not cluster.audit.events("replica-evicted")
            # No replica ever rebuilt from scratch to catch up.
            assert all(r.index.inner.full_builds == 1
                       for r in cluster.replicas)

    def test_hot_cached_answers_survive_deep_generation_history(self, world):
        # The review cliff: per-label cache keys keep entries warm across
        # growth, but each entry cites the snapshot that filled it. After
        # more adoptions than the replica's generation history holds, a
        # cache hit for an untouched label must still verify — re-stamped
        # to the live generation — instead of evicting a healthy replica
        # (correlated across replicas for hot queries).
        from repro.serving.index import _GENERATION_HISTORY
        fingerprints, labels, store = world
        label = int(labels[0])
        other = next(int(l) for l in labels if int(l) != label)
        query = fingerprints[0]
        with _cluster_for(store) as cluster:
            for _ in range(len(cluster.replicas)):
                cluster.query(query, label, k=3)  # warm every replica
            for _ in range(_GENERATION_HISTORY + 2):
                store.append(fingerprints[:1], [other], ["p9"], [b"z" * 32])
                assert cluster.refresh(
                    max_replicas=len(cluster.replicas)
                ) == len(cluster.replicas)
            results = [cluster.query(query, label, k=3)
                       for _ in range(2 * len(cluster.replicas))]
            assert all(not r.degraded for r in results)
            assert cluster.telemetry.counter("evictions") == 0
            assert not cluster.audit.events("replica-evicted")
            assert all(r.healthy for r in cluster.replicas)

    def test_pruned_but_trusted_snapshot_is_not_an_integrity_failure(
            self, world):
        # An in-flight answer produced just before a burst of adoptions
        # can cite a snapshot the replica has since pruned. If the
        # cluster already lineage-verified that snapshot, the citation is
        # proven — only an unknown AND unverifiable one evicts.
        from repro.errors import IndexIntegrityError
        from repro.serving.engine import EngineAnswer
        from repro.serving.index import _GENERATION_HISTORY
        fingerprints, labels, store = world
        label = int(labels[0])
        other = next(int(l) for l in labels if int(l) != label)
        with _cluster_for(store) as cluster:
            replica = cluster.replicas[0]
            answer = replica.engine.query(fingerprints[0], label, k=3,
                                          timeout=5)
            old_snapshot = answer.snapshot
            cluster._verify_snapshot_lineage(
                replica.index.generation(old_snapshot))
            for _ in range(_GENERATION_HISTORY + 2):
                store.append(fingerprints[:1], [other], ["p9"], [b"z" * 32])
                assert replica.engine.refresh() is True
            assert replica.index.generation(old_snapshot) is None
            stale = EngineAnswer(tuple(answer), snapshot=old_snapshot,
                                 label_rows=answer.label_rows,
                                 requested_k=3)
            cluster._verify_answer_meta(replica, stale, label, 3)
            assert replica.healthy
            assert cluster.telemetry.counter("trusted_snapshot_answers") == 1
            # A snapshot nobody ever verified is still an integrity fault.
            forged = EngineAnswer(tuple(answer), snapshot="ab" * 32,
                                  label_rows=answer.label_rows,
                                  requested_k=3)
            with pytest.raises(IndexIntegrityError):
                cluster._verify_answer_meta(replica, forged, label, 3)

    def test_non_append_version_bump_does_not_strand_replicas(self, world):
        # Refresh compares covered-segment counts, not the manifest
        # version counter: a version bump that commits no new segment
        # must neither mark replicas behind nor disturb serving.
        fingerprints, labels, store = world
        with _cluster_for(store) as cluster:
            cluster.query(fingerprints[0], int(labels[0]), k=1)
            store._manifest["version"] += 1  # e.g. a metadata-only rewrite
            assert cluster.refresh(max_replicas=len(cluster.replicas)) == 0
            result = cluster.query(fingerprints[0], int(labels[0]), k=2)
            assert not result.degraded
            assert cluster.telemetry.counter("evictions") == 0

    def test_growth_storm_on_empty_store_is_a_config_error(self, tmp_path):
        store = LinkageStore.create(tmp_path / "empty-store")
        cluster = _cluster_for(store, replicas=1)
        with pytest.raises(ConfigurationError):
            cluster.grow_store(records=8)

    def test_history_rewrite_still_evicts(self, world):
        # Rewriting a committed segment digest is not growth — the
        # prefix the replicas were built against no longer exists, and
        # the stale handler must fail closed by evicting.
        fingerprints, labels, store = world
        label = int(labels[0])
        with _cluster_for(store) as cluster:
            cluster.query(fingerprints[0], label, k=1)
            victim = cluster.replicas[0]
            info = store._segments[0].info
            store._segments[0].info = type(info)(
                name=info.name, records=info.records, digest="0" * 64)
            cluster._handle_stale(victim)
            assert victim.state == "evicted"
            assert victim.evicted_reason == "stale-index"


class TestLoadShedding:
    def test_over_capacity_sheds_with_retry_hint(self, world):
        fingerprints, labels, store = world
        with _cluster_for(store, max_in_flight=4) as cluster:
            with pytest.raises(QueryRejected) as excinfo:
                cluster.query_many(fingerprints[:8], labels[:8], k=3)
            assert excinfo.value.retry_after_s is not None
            assert cluster.telemetry.counter("shed") == 8
            assert len(cluster.audit.events("query-shed")) == 1


class TestCircuitBreaker:
    def test_breaker_lifecycle(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=2, reset_s=1.0,
                                 clock=lambda: clock[0])
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.record_failure()  # opened now
        assert breaker.state == "open" and not breaker.allow()
        clock[0] = 1.5
        assert breaker.allow()  # half-open probe admitted
        assert breaker.state == "half-open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, reset_s=1.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 1.5
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_open_breaker_diverts_traffic(self, world):
        fingerprints, labels, store = world
        with _cluster_for(store) as cluster:
            for _ in range(ClusterConfig().breaker_threshold + 1):
                cluster.replicas[0].breaker.record_failure()
            for i in range(6):
                result = cluster.query(fingerprints[i], int(labels[i]), k=3)
                assert result.replica != "replica-0"


class TestObservability:
    def test_metrics_under_cluster_namespace(self, world):
        fingerprints, labels, store = world
        with _cluster_for(store) as cluster:
            cluster.query(fingerprints[0], int(labels[0]), k=3)
            registry_snap = cluster.telemetry.registry.snapshot()
            names = (list(registry_snap["counters"])
                     + list(registry_snap["histograms"]))
            assert any(m.startswith("repro_serving_cluster_") for m in names)
            # Replica engines share the registry: one combined surface.
            assert any(m.startswith("repro_serving_") and
                       not m.startswith("repro_serving_cluster_")
                       for m in names)
            rendered = cluster.telemetry.render()
            assert "success_rate" in rendered

    def test_boundary_spans_recorded(self, world):
        fingerprints, labels, store = world
        tracer = Tracer()
        _, _, store = world
        cluster = _cluster_for(store)
        cluster.tracer = tracer
        with cluster:
            cluster.query(fingerprints[0], int(labels[0]), k=3)
        kinds = {span.kind for root in tracer.roots
                 for span in _walk(root)}
        assert "untrusted" in kinds
        assert "boundary-crossing" in kinds  # the verify-hits span


def _walk(span):
    yield span
    for child in span.children:
        yield from _walk(child)
