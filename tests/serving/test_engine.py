"""Query engine tests: correctness, caching, backpressure, audit."""

import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError

import numpy as np
import pytest

from repro.core.linkage import LinkageDatabase, LinkageRecord
from repro.core.query import QueryService
from repro.errors import (ConfigurationError, QueryError, QueryRejected,
                          ServingError, StaleIndexError)
from repro.serving import (EngineConfig, LinkageStore, ServingEngine,
                           ShardedAnnIndex)

from tests.serving.conftest import clustered_corpus, fill_store


@pytest.fixture
def world(tmp_path, generator):
    fingerprints, labels = clustered_corpus(generator, 1200)
    store = fill_store(LinkageStore.create(tmp_path / "engine-store"),
                       fingerprints, labels)
    index = ShardedAnnIndex(store, shard_threshold=200).build()
    return fingerprints, labels, store, index


class _GatedIndex:
    """Wraps an index; search blocks until the gate opens (for backpressure)."""

    def __init__(self, inner):
        self.inner = inner
        self.gate = threading.Event()

    def search_batch(self, batch, label, k=9):
        self.gate.wait()
        return self.inner.search_batch(batch, label, k)


class TestCorrectness:
    def test_engine_matches_brute_force(self, world, generator):
        fingerprints, labels, store, index = world
        database = LinkageDatabase()
        for i in range(fingerprints.shape[0]):
            database.add(LinkageRecord(
                fingerprint=fingerprints[i], label=int(labels[i]),
                source="p0", digest=b"h" * 32, source_index=i,
            ))
        brute = QueryService(database, index="brute")
        sample = generator.integers(0, fingerprints.shape[0], size=30)
        queries = fingerprints[sample] + 0.05
        with ServingEngine(index, EngineConfig(workers=2)) as engine:
            results = engine.query_many(queries, labels[sample], k=5)
        for i in range(30):
            expected = [n.record_index for n in
                        brute.query(queries[i], int(labels[sample][i]), k=5)]
            assert [hit.index for hit in results[i]] == expected

    def test_unknown_label_propagates_typed_error(self, world):
        fingerprints, _, _, index = world
        with ServingEngine(index) as engine:
            future = engine.submit(fingerprints[0], label=99, k=3)
            with pytest.raises(QueryError):
                future.result(timeout=5)

    def test_submit_requires_started_engine(self, world):
        fingerprints, labels, _, index = world
        engine = ServingEngine(index)
        with pytest.raises(ServingError):
            engine.submit(fingerprints[0], int(labels[0]))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(workers=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(queue_depth=0)


class TestCache:
    def test_repeat_query_served_by_cache(self, world):
        fingerprints, labels, _, index = world
        query, label = fingerprints[3], int(labels[3])
        with ServingEngine(index) as engine:
            first = engine.query(query, label, k=5, timeout=5)
            assert engine.telemetry.counter("cache_hits") == 0
            second = engine.query(query, label, k=5, timeout=5)
            assert second == first
            assert engine.telemetry.counter("cache_hits") == 1
            # A different k is a different cache key.
            engine.query(query, label, k=3, timeout=5)
            assert engine.telemetry.counter("cache_hits") == 1
        cached_events = [e for e in engine.audit.events("serving-query")
                         if e.details["served_by"] == "cache"]
        assert len(cached_events) == 1

    def test_cache_disabled(self, world):
        fingerprints, labels, _, index = world
        config = EngineConfig(cache_size=0)
        with ServingEngine(index, config) as engine:
            engine.query(fingerprints[0], int(labels[0]), timeout=5)
            engine.query(fingerprints[0], int(labels[0]), timeout=5)
            assert engine.telemetry.counter("cache_hits") == 0


class TestBackpressure:
    def test_overload_rejects_not_drops(self, world):
        fingerprints, labels, _, index = world
        gated = _GatedIndex(index)
        config = EngineConfig(workers=1, max_batch=1, queue_depth=4,
                              cache_size=0, poll_interval=0.005)
        engine = ServingEngine(gated, config).start()
        try:
            futures = []
            rejected = 0
            # One query occupies the worker (gate closed); the queue then
            # fills; further submissions must be rejected, not dropped.
            for i in range(32):
                try:
                    futures.append(
                        engine.submit(fingerprints[i], int(labels[i]), k=3)
                    )
                except QueryRejected:
                    rejected += 1
            assert rejected > 0
            assert engine.telemetry.counter("rejected") == rejected
            gated.gate.set()
            # Every accepted query still gets an answer.
            for future in futures:
                assert len(future.result(timeout=10)) == 3
        finally:
            gated.gate.set()
            engine.stop()
        assert engine.telemetry.counter("queries") == 32
        assert len(engine.audit) == len(futures)


class TestRobustness:
    def test_dimension_mismatch_rejected_at_submit(self, world):
        fingerprints, labels, _, index = world
        with ServingEngine(index) as engine:
            with pytest.raises(QueryError):
                engine.submit(np.zeros(3, dtype=np.float32), int(labels[0]))
            # The engine keeps serving well-formed queries afterwards.
            hits = engine.query(fingerprints[0], int(labels[0]), k=3,
                                timeout=5)
            assert len(hits) == 3

    def test_worker_survives_malformed_coalesced_batch(self, world):
        # The wrapper hides `dimension`, bypassing submit-time validation,
        # so a same-(label, k) micro-batch can mix fingerprint dimensions.
        # The batch must fail per-future — not kill the worker thread or
        # wedge stop(drain=True) on queue.join().
        fingerprints, labels, _, index = world
        gated = _GatedIndex(index)
        config = EngineConfig(workers=1, max_batch=8, cache_size=0,
                              poll_interval=0.005)
        engine = ServingEngine(gated, config).start()
        label = int(labels[0])
        try:
            blocker = engine.submit(fingerprints[0], label, k=3)
            time.sleep(0.05)  # the worker picks it up and blocks on the gate
            bad = [engine.submit(np.zeros(d, dtype=np.float32), label, k=5)
                   for d in (3, 5)]
            survivor = engine.submit(fingerprints[1], label, k=3)
            gated.gate.set()
            assert len(blocker.result(timeout=5)) == 3
            for future in bad:
                with pytest.raises(Exception):
                    future.result(timeout=5)
            assert len(survivor.result(timeout=5)) == 3
        finally:
            gated.gate.set()
            engine.stop()  # drain=True must terminate, not deadlock

    def test_stop_without_drain_fails_pending_futures(self, world):
        fingerprints, labels, _, index = world
        gated = _GatedIndex(index)
        config = EngineConfig(workers=1, max_batch=1, cache_size=0,
                              poll_interval=0.005)
        engine = ServingEngine(gated, config).start()
        label = int(labels[0])
        in_flight = engine.submit(fingerprints[0], label, k=3)
        time.sleep(0.05)  # the worker picks it up and blocks on the gate
        queued = [engine.submit(fingerprints[i], label, k=3)
                  for i in range(1, 5)]
        opener = threading.Timer(0.1, gated.gate.set)
        opener.start()
        engine.stop(drain=False)
        opener.join()
        assert len(in_flight.result(timeout=5)) == 3
        # Abandoned queries fail with a typed error instead of hanging.
        for future in queued:
            with pytest.raises(ServingError):
                future.result(timeout=5)
        assert engine.telemetry.counter("abandoned") == len(queued)


class TestStaleness:
    def test_store_growth_serves_pinned_snapshot_then_refresh(self, world):
        fingerprints, labels, store, index = world
        label = int(labels[0])
        query = fingerprints[0]
        with ServingEngine(index) as engine:
            engine.query(query, label, k=1, timeout=5)
            store.append(query.reshape(1, -1), [label], ["p9"], [b"z" * 32])
            # Benign growth no longer fails closed: the engine keeps
            # answering from the pinned generation (no new row yet).
            hits = engine.query(query, label, k=2, timeout=5)
            assert 1200 not in [h.index for h in hits]
            assert engine.refresh() is True
            assert index.full_builds == 1  # incremental, not a rebuild
            # Same (fingerprint, label, k), but the label gained a row:
            # the per-label digest changed, so this is recomputed — the
            # pre-growth cache entry for this label can never match.
            hits = engine.query(query, label, k=2, timeout=5)
            assert 1200 in [h.index for h in hits]  # the appended record

    def test_growth_in_other_labels_keeps_cache_warm(self, world):
        # Satellite: cache keys are per-label content digests — an
        # append that only touches other labels must not cold-start
        # every label's cache.
        fingerprints, labels, store, index = world
        label = int(labels[0])
        other = next(int(l) for l in labels if int(l) != label)
        query = fingerprints[0]
        with ServingEngine(index) as engine:
            first = engine.query(query, label, k=3, timeout=5)
            assert engine.telemetry.counter("cache_hits") == 0
            store.append(fingerprints[:1], [other], ["p9"], [b"z" * 32])
            assert engine.refresh() is True
            again = engine.query(query, label, k=3, timeout=5)
            assert again == first
            assert engine.telemetry.counter("cache_hits") == 1
            # The grown label *is* recomputed (its digest moved).
            engine.query(fingerprints[1], other, k=3, timeout=5)
            assert engine.telemetry.counter("cache_hits") == 1

    def test_cache_hit_survives_generation_history_pruning(self, world):
        # A hot cache entry must never cite a snapshot that has aged out
        # of the index's bounded generation history: on hit it is
        # re-stamped with the live generation, which the per-label
        # content key proves serves the same rows — otherwise the
        # cluster's provenance check would evict a healthy replica for a
        # correct answer.
        from repro.serving.index import _GENERATION_HISTORY
        fingerprints, labels, store, index = world
        label = int(labels[0])
        other = next(int(l) for l in labels if int(l) != label)
        query = fingerprints[0]
        with ServingEngine(index) as engine:
            first = engine.query(query, label, k=3, timeout=5)
            for _ in range(_GENERATION_HISTORY + 2):
                store.append(fingerprints[:1], [other], ["p9"], [b"z" * 32])
                assert engine.refresh() is True
            # The filling generation is gone from the replica's history.
            assert index.generation(first.snapshot) is None
            again = engine.query(query, label, k=3, timeout=5)
            assert again == first
            assert engine.telemetry.counter("cache_hits") == 1
            # The served answer cites a snapshot the replica can still
            # produce — and it is the live one.
            assert again.snapshot == index.snapshot_digest
            assert index.generation(again.snapshot) is not None
            assert again.label_rows == first.label_rows


class TestDeadlines:
    def test_query_many_timeout_is_one_overall_deadline(self, world):
        # A wedged worker must bound query_many at ~timeout total, not
        # N x timeout (the old per-future sequential semantics).
        fingerprints, labels, _, index = world
        gated = _GatedIndex(index)
        config = EngineConfig(workers=1, max_batch=1, cache_size=0,
                              poll_interval=0.005)
        engine = ServingEngine(gated, config).start()
        label = int(labels[0])
        try:
            started = time.perf_counter()
            with pytest.raises(FuturesTimeoutError):
                engine.query_many(fingerprints[:6], [label] * 6, k=3,
                                  timeout=0.4)
            elapsed = time.perf_counter() - started
            assert elapsed < 6 * 0.4 * 0.6  # far below the old N x timeout
        finally:
            gated.gate.set()
            engine.stop()

    def test_query_many_no_timeout_still_waits(self, world):
        fingerprints, labels, _, index = world
        with ServingEngine(index) as engine:
            results = engine.query_many(fingerprints[:4], labels[:4], k=3)
        assert all(len(hits) == 3 for hits in results)


class TestBoundedDrain:
    def test_stop_drain_timeout_raises_and_resolves_futures(self, world):
        # A worker wedged inside the index must not hang stop(drain=True)
        # forever: the drain deadline fires, queued AND in-flight futures
        # resolve with a typed ServingError, and stop() raises.
        fingerprints, labels, _, index = world
        gated = _GatedIndex(index)
        config = EngineConfig(workers=1, max_batch=1, cache_size=0,
                              poll_interval=0.005)
        engine = ServingEngine(gated, config).start()
        label = int(labels[0])
        in_flight = engine.submit(fingerprints[0], label, k=3)
        time.sleep(0.05)  # the worker picks it up and wedges on the gate
        queued = [engine.submit(fingerprints[i], label, k=3)
                  for i in range(1, 4)]
        started = time.perf_counter()
        with pytest.raises(ServingError):
            engine.stop(drain=True, drain_timeout=0.2)
        assert time.perf_counter() - started < 2.0
        for future in [in_flight] + queued:
            with pytest.raises(ServingError):
                future.result(timeout=5)
        assert engine.telemetry.counter("abandoned") == 4
        # A late un-wedge must not blow up on already-resolved futures.
        gated.gate.set()
        time.sleep(0.1)

    def test_config_drain_timeout_used_when_argument_omitted(self, world):
        fingerprints, labels, _, index = world
        gated = _GatedIndex(index)
        config = EngineConfig(workers=1, max_batch=1, cache_size=0,
                              poll_interval=0.005, drain_timeout=0.2)
        engine = ServingEngine(gated, config).start()
        engine.submit(fingerprints[0], int(labels[0]), k=3)
        time.sleep(0.05)
        with pytest.raises(ServingError):
            engine.stop()  # drain=True picks up config.drain_timeout
        gated.gate.set()

    def test_drain_timeout_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(drain_timeout=0.0)


class TestRetryAfterHint:
    def test_rejection_carries_retry_after_seconds(self, world):
        fingerprints, labels, _, index = world
        gated = _GatedIndex(index)
        config = EngineConfig(workers=1, max_batch=1, queue_depth=4,
                              cache_size=0, poll_interval=0.01)
        engine = ServingEngine(gated, config).start()
        label = int(labels[0])
        try:
            with pytest.raises(QueryRejected) as excinfo:
                for i in range(32):
                    engine.submit(fingerprints[i], label, k=3)
            hint = excinfo.value.retry_after_s
            assert hint is not None
            # At least one worker poll tick, and sane (not hours).
            assert config.poll_interval <= hint <= 10.0
        finally:
            gated.gate.set()
            engine.stop()


class TestRestart:
    def test_engine_restarts_after_stop(self, world):
        fingerprints, labels, _, index = world
        label = int(labels[0])
        engine = ServingEngine(index, EngineConfig(workers=2))
        engine.start()
        first = engine.query(fingerprints[0], label, k=3, timeout=5)
        engine.stop()
        with pytest.raises(ServingError):
            engine.submit(fingerprints[0], label, k=3)
        engine.start()
        try:
            again = engine.query(fingerprints[0], label, k=3, timeout=5)
            assert again == first
        finally:
            engine.stop()

    def test_restart_against_grown_store_never_serves_stale(self, world):
        # Satellite: a stopped engine restarted against a store that grew
        # for this label must not serve the pre-growth cached answer —
        # the per-label digest moved, so the old entry can never match.
        fingerprints, labels, store, index = world
        label = int(labels[0])
        query = fingerprints[0]
        engine = ServingEngine(index)
        engine.start()
        engine.query(query, label, k=1, timeout=5)  # populates the cache
        engine.stop()
        store.append(query.reshape(1, -1), [label], ["p9"], [b"z" * 32])
        engine.start()
        try:
            # Until refresh, answers still come from the pinned snapshot
            # — but recomputed against it, never from the stale cache
            # entry (its per-label digest no longer exists after adopt).
            engine.refresh()
            hits = engine.query(query, label, k=2, timeout=5)
            assert 1200 in [h.index for h in hits]  # the appended record
            assert engine.telemetry.counter("cache_hits") == 0
        finally:
            engine.stop()


class TestAuditTrail:
    def test_every_query_appends_a_verifiable_event(self, world, generator):
        fingerprints, labels, _, index = world
        sample = generator.integers(0, fingerprints.shape[0], size=40)
        with ServingEngine(index, EngineConfig(workers=3)) as engine:
            engine.query_many(fingerprints[sample] + 0.01, labels[sample],
                              k=4)
        assert len(engine.audit) == 40
        assert engine.verify_audit_chain()
        for event in engine.audit.events("serving-query"):
            assert event.details["k"] == 4
            assert event.details["served_by"] in ("index", "cache")
            assert len(event.details["results"]) == 64  # hex sha256

    def test_tampered_audit_event_breaks_the_chain(self, world):
        fingerprints, labels, _, index = world
        with ServingEngine(index) as engine:
            engine.query(fingerprints[0], int(labels[0]), timeout=5)
        event = engine.audit.events()[0]
        object.__setattr__(event, "details",
                           {**event.details, "label": 12345})
        assert not engine.verify_audit_chain()


class TestTelemetry:
    def test_counters_and_stages_populate(self, world, generator):
        fingerprints, labels, _, index = world
        sample = generator.integers(0, fingerprints.shape[0], size=25)
        with ServingEngine(index, EngineConfig(workers=2)) as engine:
            engine.query_many(fingerprints[sample], labels[sample], k=3)
        snapshot = engine.telemetry.snapshot()
        assert snapshot["counters"]["queries"] == 25
        assert snapshot["counters"]["batches"] >= 1
        assert snapshot["counters"]["batched_queries"] == 25
        assert snapshot["stages"]["search"]["count"] >= 1
        assert snapshot["stages"]["total"]["count"] == 25
        assert 0 < snapshot["scan_fraction"] <= 1.0
        rendered = engine.telemetry.render()
        assert "queries" in rendered and "stage search" in rendered
