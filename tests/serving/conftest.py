"""Shared fixtures for the serving-subsystem tests."""

import numpy as np
import pytest

from repro.serving import LinkageStore

DIM = 8
LABELS = 4


def clustered_corpus(generator, size, dim=DIM, labels=LABELS, clusters=6,
                     spread=0.4):
    """Fingerprints drawn from per-label cluster mixtures (ANN-friendly)."""
    centers = generator.standard_normal((labels, clusters, dim)) * 4.0
    label_column = generator.integers(0, labels, size=size)
    cluster_column = generator.integers(0, clusters, size=size)
    fingerprints = (
        centers[label_column, cluster_column]
        + generator.standard_normal((size, dim)) * spread
    ).astype(np.float32)
    return fingerprints, label_column


def random_corpus(generator, size, dim=DIM, labels=LABELS):
    """Unclustered fingerprints — the ANN worst case."""
    fingerprints = generator.standard_normal((size, dim)).astype(np.float32)
    return fingerprints, generator.integers(0, labels, size=size)


def fill_store(store, fingerprints, labels, segment_records=None):
    n = fingerprints.shape[0]
    step = segment_records or n
    for start in range(0, n, step):
        stop = min(start + step, n)
        store.append(
            fingerprints[start:stop], labels[start:stop].tolist(),
            [f"p{i % 3}" for i in range(start, stop)],
            [bytes([i % 256]) * 32 for i in range(start, stop)],
            source_indices=list(range(start, stop)),
            kinds=["poisoned" if i % 7 == 0 else "normal"
                   for i in range(start, stop)],
        )
    return store


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "store"


@pytest.fixture
def small_store(store_path, generator):
    fingerprints, labels = clustered_corpus(generator, 600)
    store = fill_store(LinkageStore.create(store_path), fingerprints, labels,
                       segment_records=250)
    return store, fingerprints, labels
