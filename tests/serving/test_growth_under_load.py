"""Growth under load: an append storm must cost zero availability.

The bugfix contract this module pins down end-to-end:

* a concurrent ingest storm during ``query_many`` never surfaces a
  :class:`~repro.errors.StaleIndexError` to a client and never evicts a
  replica — staleness from benign growth is repaired by staggered
  refresh, in place;
* every answer is *correct for the snapshot that produced it*: the
  answer carries ``label_rows`` (how many rows of the label its pinned
  generation covered) and brute force over exactly that commit-order
  prefix reproduces the hits bitwise — membership, distances, and
  tie-break order;
* the audit chains stay continuous across refreshes (hash-chained logs
  verify end-to-end after the storm).
"""

import threading
import time

import numpy as np
import pytest

from repro.serving import (ClusterConfig, EngineConfig, LinkageStore,
                           ServingCluster, ShardedAnnIndex)

from tests.serving.conftest import clustered_corpus, fill_store


@pytest.fixture
def world(tmp_path, generator):
    fingerprints, labels = clustered_corpus(generator, 900)
    store = fill_store(LinkageStore.create(tmp_path / "growth-store"),
                       fingerprints, labels, segment_records=300)
    return fingerprints, labels, store


def _cluster_for(store, seed=0):
    return ServingCluster(
        store, replicas=3,
        config=ClusterConfig(deadline_s=5.0, health_interval_s=0.02,
                             breaker_reset_s=0.05,
                             auto_refresh=True, refresh_stagger=1),
        engine_config=EngineConfig(workers=2, poll_interval=0.002),
        index_factory=lambda s: ShardedAnnIndex(
            s, shard_threshold=256, seed=seed, max_segments=4,
            compaction_interval_s=0.02),
    )


def _brute_prefix(store, label, rows, query, k):
    """Stable brute-force top-k over the first ``rows`` commit-order
    records of ``label`` — the exact answer for any snapshot that covered
    that many rows of the label."""
    matrix, indices = store.by_label(int(label))
    matrix = np.asarray(matrix, dtype=np.float32)[:rows]
    indices = list(indices)[:rows]
    distances = np.sqrt(((matrix - query[None, :]) ** 2).sum(axis=1))
    order = np.argsort(distances, kind="stable")[: min(k, rows)]
    return [(int(indices[i]), float(distances[i])) for i in order]


class TestGrowthStorm:
    def test_append_storm_costs_nothing(self, world, generator):
        fingerprints, labels, store = world
        k = 5
        query_count = 120
        sample = generator.integers(0, 900, size=query_count)
        queries = (fingerprints[sample]
                   + generator.standard_normal(
                       (query_count, fingerprints.shape[1])
                   ).astype(np.float32) * 0.1)
        query_labels = [int(labels[int(i)]) for i in sample]

        stop = threading.Event()
        append_errors = []

        def storm():
            rng = np.random.default_rng(1234)
            while not stop.is_set():
                burst = rng.integers(40, 120)
                extra = rng.standard_normal(
                    (burst, store.dimension)).astype(np.float32)
                extra_labels = rng.integers(0, 4, size=burst).tolist()
                try:
                    store.append(extra, extra_labels, ["storm"] * burst,
                                 [b"s" * 32] * burst)
                except Exception as exc:  # noqa: BLE001 — surfaced below
                    append_errors.append(exc)
                    return
                time.sleep(0.01)

        answered = []
        with _cluster_for(store) as cluster:
            # Warm the plane, then unleash the storm mid-stream.
            cluster.query(queries[0], query_labels[0], k=k)
            storm_thread = threading.Thread(target=storm, daemon=True)
            storm_thread.start()
            try:
                for start in range(0, query_count, 24):
                    stop_at = min(start + 24, query_count)
                    results = cluster.query_many(
                        queries[start:stop_at],
                        query_labels[start:stop_at], k=k)
                    for offset, result in enumerate(results):
                        answered.append((start + offset, result))
            finally:
                stop.set()
                storm_thread.join(timeout=5.0)
            assert not append_errors
            # 100% availability: every query answered, none degraded.
            assert len(answered) == query_count
            assert all(not r.degraded for _, r in answered)
            # Growth was repaired by refresh, never punished by eviction.
            assert cluster.telemetry.counter("evictions") == 0
            assert all(r.state == "healthy" for r in cluster.replicas)
            assert not cluster.audit.events("replica-evicted")
            refreshes = cluster.telemetry.counter("replica_refreshes")
            assert refreshes > 0
            # No replica ever fell back to a from-scratch rebuild.
            assert all(r.index.inner.full_builds == 1
                       for r in cluster.replicas)
            # Zero wrong answers: brute force over each answer's pinned
            # commit-order prefix reproduces it bitwise.
            checked = 0
            for qi, result in answered:
                rows = getattr(result.hits, "label_rows", None)
                if rows is None:
                    continue
                expected = _brute_prefix(store, query_labels[qi], rows,
                                         queries[qi], k)
                got = [(h.index, h.distance) for h in result.hits]
                assert [g[0] for g in got] == [e[0] for e in expected]
                np.testing.assert_allclose(
                    [g[1] for g in got], [e[1] for e in expected],
                    rtol=1e-5)
                checked += 1
            assert checked > 0
            # Audit continuity: the cluster chain and every replica chain
            # verify end-to-end across all the refresh adoptions.
            assert cluster.verify_audit_chain()
            for replica in cluster.replicas:
                assert replica.engine.audit.verify_chain()
            assert any(e.kind == "replica-refreshed"
                       for e in cluster.audit.events())

    def test_refresh_is_staggered(self, world, generator):
        fingerprints, labels, store = world
        with _cluster_for(store) as cluster:
            label = int(labels[0])
            cluster.query(fingerprints[0], label, k=1)
            extra, extra_labels = clustered_corpus(generator, 80)
            store.append(extra, extra_labels.tolist(), ["p9"] * 80,
                         [b"x" * 32] * 80)
            # One manual sweep adopts on at most refresh_stagger replicas.
            adopted = cluster.refresh()
            assert adopted == 1
            behind = [r for r in cluster.replicas
                      if r.index.built_version != store.version]
            assert len(behind) == len(cluster.replicas) - 1
            # Subsequent sweeps drain the remainder without evictions.
            while cluster.refresh():
                pass
            assert all(r.index.built_version == store.version
                       for r in cluster.replicas)
            assert cluster.telemetry.counter("evictions") == 0

    def test_growth_storm_fault_spec_round_trip(self, world):
        fingerprints, labels, store = world
        from repro.resilience import ServingFaultPlan, ServingFaultSpec
        plan = ServingFaultPlan([
            ServingFaultSpec(kind="growth-storm", at_query=0, records=64),
        ])
        with _cluster_for(store) as cluster:
            before = store.version
            fired = plan.before_query(0, cluster)
            assert [s.kind for s in fired] == ["growth-storm"]
            assert store.version == before + 1
            assert cluster.telemetry.counter("growth_records") == 64
            # The storm is benign: queries keep working and the sweep
            # catches the replicas up.
            result = cluster.query(fingerprints[0], int(labels[0]), k=3)
            assert not result.degraded
            while cluster.refresh():
                pass
            assert cluster.telemetry.counter("evictions") == 0
