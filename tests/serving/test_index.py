"""Sharded ANN index tests: exactness, recall floor, batching parity."""

import numpy as np
import pytest

from repro.core.linkage import LinkageDatabase, LinkageRecord
from repro.core.query import QueryService
from repro.errors import ConfigurationError, QueryError
from repro.serving import LinkageStore, ShardedAnnIndex
from repro.serving.index import RECALL_FLOOR

from tests.serving.conftest import (clustered_corpus, fill_store,
                                    random_corpus)


def _brute_service(fingerprints, labels):
    database = LinkageDatabase()
    for i in range(fingerprints.shape[0]):
        database.add(LinkageRecord(
            fingerprint=fingerprints[i], label=int(labels[i]),
            source="p0", digest=b"h" * 32, source_index=i,
        ))
    return QueryService(database, index="brute")


def _built_index(tmp_path, fingerprints, labels, **kwargs):
    store = fill_store(LinkageStore.create(tmp_path / "idx-store"),
                       fingerprints, labels)
    return ShardedAnnIndex(store, **kwargs).build()


def _queries(generator, fingerprints, labels, count, noise=0.2):
    sample = generator.integers(0, fingerprints.shape[0], size=count)
    queries = fingerprints[sample] + generator.standard_normal(
        (count, fingerprints.shape[1])).astype(np.float32) * noise
    return queries, labels[sample]


class TestExactMode:
    @pytest.mark.parametrize("corpus", ["clustered", "random"])
    def test_topk_identical_to_brute_force(self, tmp_path, generator, corpus):
        make = clustered_corpus if corpus == "clustered" else random_corpus
        fingerprints, labels = make(generator, 3000)
        index = _built_index(tmp_path, fingerprints, labels,
                             shard_threshold=200)
        brute = _brute_service(fingerprints, labels)
        queries, query_labels = _queries(generator, fingerprints, labels, 40)
        for i in range(40):
            expected = brute.query(queries[i], int(query_labels[i]), k=7)
            got = index.search(queries[i], int(query_labels[i]), k=7)
            assert [h.index for h in got] == [n.record_index for n in expected]
            np.testing.assert_allclose(
                [h.distance for h in got],
                [n.distance for n in expected], rtol=1e-5,
            )

    def test_small_shards_fall_back_to_brute(self, tmp_path, generator):
        fingerprints, labels = clustered_corpus(generator, 300)
        index = _built_index(tmp_path, fingerprints, labels,
                             shard_threshold=2048)
        for label in index.labels():
            assert index.shard_kind(label) == "brute"

    def test_large_shards_cluster(self, tmp_path, generator):
        fingerprints, labels = clustered_corpus(generator, 3000)
        index = _built_index(tmp_path, fingerprints, labels,
                             shard_threshold=200)
        assert all(index.shard_kind(label) == "clustered"
                   for label in index.labels())

    def test_exact_mode_prunes_clustered_data(self, tmp_path, generator):
        fingerprints, labels = clustered_corpus(generator, 4000, spread=0.2)
        index = _built_index(tmp_path, fingerprints, labels,
                             shard_threshold=200)
        queries, query_labels = _queries(generator, fingerprints, labels, 20,
                                         noise=0.1)
        result = index.search_batch(queries[:1], int(query_labels[0]), k=5)
        assert result.candidates_scanned < result.shard_rows

    def test_k_larger_than_shard(self, tmp_path, generator):
        fingerprints, labels = clustered_corpus(generator, 400)
        index = _built_index(tmp_path, fingerprints, labels,
                             shard_threshold=50)
        label = int(labels[0])
        hits = index.search(fingerprints[0], label, k=10_000)
        assert len(hits) == index.store.count(label)


class TestApproximateMode:
    def test_recall_floor_on_clustered_and_random(self, tmp_path, generator):
        for make, noise in ((clustered_corpus, 0.1), (random_corpus, 0.05)):
            fingerprints, labels = make(generator, 3000)
            index = _built_index(tmp_path / make.__name__, fingerprints,
                                 labels, shard_threshold=200, probes=4)
            brute = _brute_service(fingerprints, labels)
            queries, query_labels = _queries(generator, fingerprints, labels,
                                             60, noise=noise)
            found = total = 0
            for i in range(60):
                expected = {n.record_index for n in
                            brute.query(queries[i], int(query_labels[i]), k=5)}
                got = {h.index for h in
                       index.search(queries[i], int(query_labels[i]), k=5)}
                found += len(expected & got)
                total += len(expected)
            assert found / total >= RECALL_FLOOR

    def test_probes_expand_to_cover_k(self, tmp_path, generator):
        fingerprints, labels = clustered_corpus(generator, 3000)
        index = _built_index(tmp_path, fingerprints, labels,
                             shard_threshold=200, probes=1)
        label = int(labels[0])
        hits = index.search(fingerprints[0], label, k=500)
        assert len(hits) == min(500, index.store.count(label))

    def test_invalid_probes_rejected(self, small_store):
        store, _, _ = small_store
        with pytest.raises(ConfigurationError):
            ShardedAnnIndex(store, probes=0)


class TestBatching:
    def test_batch_matches_single_queries(self, tmp_path, generator):
        fingerprints, labels = clustered_corpus(generator, 3000)
        index = _built_index(tmp_path, fingerprints, labels,
                             shard_threshold=200)
        label = int(labels[0])
        rows = np.flatnonzero(labels == label)[:16]
        batch = fingerprints[rows] + 0.05
        batched = index.search_batch(batch, label, k=5).hits
        singles = [index.search(batch[i], label, k=5) for i in range(16)]
        assert batched == singles

    def test_unknown_label_rejected(self, tmp_path, generator):
        fingerprints, labels = clustered_corpus(generator, 300)
        index = _built_index(tmp_path, fingerprints, labels)
        with pytest.raises(QueryError):
            index.search(fingerprints[0], label=99)

    def test_unbuilt_index_rejected(self, small_store):
        store, fingerprints, _ = small_store
        with pytest.raises(QueryError):
            ShardedAnnIndex(store).search(fingerprints[0], label=0)

    def test_dimension_mismatch_rejected(self, tmp_path, generator):
        fingerprints, labels = clustered_corpus(generator, 300)
        index = _built_index(tmp_path, fingerprints, labels)
        with pytest.raises(QueryError):
            index.search(np.zeros(3, dtype=np.float32), int(labels[0]))

    def test_build_records_store_version(self, small_store):
        store, _, _ = small_store
        index = ShardedAnnIndex(store).build()
        assert index.built_version == store.version


class TestStaleness:
    def test_store_growth_keeps_serving_then_refresh_adopts(self,
                                                            small_store):
        store, fingerprints, labels = small_store
        index = ShardedAnnIndex(store).build()
        label = int(labels[0])
        pinned = index.snapshot_digest
        assert index.search(fingerprints[0], label, k=1)
        store.append(fingerprints[:1], [label], ["p9"], [b"z" * 32])
        # Benign growth no longer fails closed: the pinned generation
        # keeps answering (without the new row) until refresh adopts it.
        hits = index.search(fingerprints[0], label, k=2)
        assert 600 not in [h.index for h in hits]
        assert index.snapshot_digest == pinned
        assert index.refresh() is True
        assert index.snapshot_digest != pinned
        assert index.full_builds == 1  # refresh never rebuilt from scratch
        hits = index.search(fingerprints[0], label, k=2)
        # The appended duplicate (global record 600) is now visible.
        assert 600 in [h.index for h in hits]

    def test_refresh_without_growth_is_a_noop(self, small_store):
        store, _, _ = small_store
        index = ShardedAnnIndex(store).build()
        pinned = index.snapshot_digest
        assert index.refresh() is False
        assert index.snapshot_digest == pinned

    def test_rewrite_check_tracks_segments_not_version_counter(
            self, small_store):
        # The rewrite check compares covered-segment counts, not the
        # manifest version counter: a non-append version bump (format
        # migration, reseal, metadata rewrite) must not read as a
        # history rewrite — and a counter rewrite must not mask one.
        from repro.errors import StaleIndexError
        store, fingerprints, labels = small_store
        index = ShardedAnnIndex(store).build()
        label = int(labels[0])
        store._manifest["version"] = 0  # counter rewritten, history intact
        assert index.search(fingerprints[0], label, k=1)
        # Genuine truncation is still caught even with the counter high.
        store._manifest["version"] = 99
        store._segments.pop()
        store._offsets.pop()
        with pytest.raises(StaleIndexError):
            index.search(fingerprints[0], label, k=1)

    def test_generation_lookup_is_locked_and_bounded(self, small_store):
        from repro.serving.index import _GENERATION_HISTORY
        store, fingerprints, labels = small_store
        index = ShardedAnnIndex(store).build()
        first = index.snapshot_digest
        for _ in range(_GENERATION_HISTORY + 2):
            store.append(fingerprints[:1], [int(labels[0])], ["p9"],
                         [b"z" * 32])
            assert index.refresh() is True
        assert index.generation(first) is None  # aged out of the history
        assert index.generation(index.snapshot_digest) is not None

    def test_history_rewrite_still_fails_closed(self, small_store):
        from repro.errors import StaleIndexError
        store, fingerprints, labels = small_store
        index = ShardedAnnIndex(store).build()
        # Rewrite a covered segment's manifest digest: not growth — the
        # prefix the index was built against no longer exists.
        store._segments[0].info = type(store._segments[0].info)(
            name=store._segments[0].info.name,
            records=store._segments[0].info.records,
            digest="0" * 64,
        )
        assert index.store_prefix_ok() is False
        with pytest.raises(StaleIndexError):
            index.refresh()


class TestBuildEdgeCases:
    def test_buckets_exceeding_kmeans_sample(self, tmp_path, generator):
        # buckets_per_shard > kmeans_sample: centroid seeding must clamp to
        # the subsample size instead of raising at build time.
        fingerprints, labels = clustered_corpus(generator, 3000)
        index = _built_index(tmp_path, fingerprints, labels,
                             shard_threshold=200, buckets_per_shard=120,
                             kmeans_sample=60)
        assert all(index.shard_kind(label) == "clustered"
                   for label in index.labels())
        brute = _brute_service(fingerprints, labels)
        queries, query_labels = _queries(generator, fingerprints, labels, 10)
        for i in range(10):
            expected = brute.query(queries[i], int(query_labels[i]), k=5)
            got = index.search(queries[i], int(query_labels[i]), k=5)
            assert [h.index for h in got] == [n.record_index for n in expected]
