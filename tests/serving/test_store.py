"""Persistent linkage store tests: round-trips, integrity, sealing."""

import numpy as np
import pytest

from repro.core.linkage import LinkageDatabase, LinkageRecord
from repro.errors import StoreError
from repro.serving import LinkageStore

from tests.serving.conftest import clustered_corpus, fill_store


class TestLifecycle:
    def test_create_then_open_empty(self, store_path):
        LinkageStore.create(store_path)
        store = LinkageStore.open(store_path)
        assert len(store) == 0
        assert store.version == 0
        assert store.dimension is None

    def test_create_twice_rejected(self, store_path):
        LinkageStore.create(store_path)
        with pytest.raises(StoreError):
            LinkageStore.create(store_path)

    def test_open_missing_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            LinkageStore.open(tmp_path / "nope")

    def test_append_bumps_version(self, small_store):
        store, fingerprints, labels = small_store
        assert store.version == 3  # 600 records / 250 per segment
        before = store.version
        store.append(fingerprints[:10], labels[:10].tolist(),
                     ["p0"] * 10, [b"h" * 32] * 10)
        assert store.version == before + 1


class TestRoundTrip:
    def test_reopened_mmap_store_is_lossless(self, store_path, small_store):
        store, fingerprints, labels = small_store
        reopened = LinkageStore.open(store_path)
        assert len(reopened) == len(store) == 600
        for index in (0, 249, 250, 599):  # segment interiors and boundaries
            record = reopened.record(index)
            np.testing.assert_array_equal(record.fingerprint,
                                          fingerprints[index])
            assert record.label == int(labels[index])
            assert record.source == f"p{index % 3}"
            assert record.digest == bytes([index % 256]) * 32
            assert record.source_index == index
            assert record.kind == ("poisoned" if index % 7 == 0 else "normal")

    def test_by_label_matches_database_semantics(self, store_path,
                                                 small_store):
        store, fingerprints, labels = small_store
        database = LinkageDatabase()
        for i in range(600):
            database.add(LinkageRecord(
                fingerprint=fingerprints[i], label=int(labels[i]),
                source=f"p{i % 3}", digest=b"h" * 32, source_index=i,
            ))
        reopened = LinkageStore.open(store_path)
        assert reopened.labels() == database.labels()
        for label in database.labels():
            store_matrix, store_indices = reopened.by_label(label)
            db_matrix, db_indices = database.by_label(label)
            np.testing.assert_array_equal(store_matrix, db_matrix)
            assert store_indices == db_indices
            assert reopened.count(label) == database.count(label)

    def test_from_database_and_back(self, tmp_path, generator):
        fingerprints, labels = clustered_corpus(generator, 120)
        database = LinkageDatabase()
        for i in range(120):
            database.add(LinkageRecord(
                fingerprint=fingerprints[i], label=int(labels[i]),
                source="p0", digest=b"d" * 32, source_index=i,
            ))
        store = LinkageStore.from_database(tmp_path / "s", database,
                                           segment_records=50)
        assert len(store.segments) == 3
        restored = store.to_database()
        assert len(restored) == 120
        for i in (0, 60, 119):
            np.testing.assert_array_equal(restored.record(i).fingerprint,
                                          database.record(i).fingerprint)

    def test_dimension_mismatch_rejected(self, small_store):
        store, _, _ = small_store
        with pytest.raises(StoreError):
            store.append(np.zeros((2, 3), dtype=np.float32), [0, 0],
                         ["p", "p"], [b"h" * 32] * 2)

    def test_mismatched_optional_columns_rejected(self, small_store):
        store, fingerprints, labels = small_store
        before = (len(store), store.version)
        with pytest.raises(StoreError):
            store.append(fingerprints[:4], labels[:4].tolist(), ["p0"] * 4,
                         [b"h" * 32] * 4, source_indices=[0, 1])
        with pytest.raises(StoreError):
            store.append(fingerprints[:4], labels[:4].tolist(), ["p0"] * 4,
                         [b"h" * 32] * 4, kinds=["normal"])
        # Nothing was written or sealed into the manifest.
        assert (len(store), store.version) == before
        assert store.verify()


class TestIntegrity:
    def test_verify_passes_untouched(self, store_path, small_store):
        assert LinkageStore.open(store_path).verify()

    def test_tampered_matrix_fails_closed(self, store_path, small_store):
        matrix_file = store_path / "segment-000001.npy"
        matrix = np.load(matrix_file)
        matrix[0, 0] += 1.0
        np.save(matrix_file, matrix)
        with pytest.raises(StoreError):
            LinkageStore.open(store_path)  # verify=True is the default

    def test_tampered_metadata_fails_closed(self, store_path, small_store):
        meta_file = store_path / "segment-000000.meta.json"
        meta_file.write_text(meta_file.read_text().replace("p0", "pX", 1))
        with pytest.raises(StoreError):
            LinkageStore.open(store_path)

    def test_manifest_digest_commits_to_content(self, store_path,
                                                small_store):
        store, fingerprints, labels = small_store
        digest = store.manifest_digest()
        assert LinkageStore.open(store_path).manifest_digest() == digest
        store.append(fingerprints[:5], labels[:5].tolist(), ["p0"] * 5,
                     [b"h" * 32] * 5)
        assert store.manifest_digest() != digest


class TestSealing:
    def _enclave(self, platform, name="fingerprinting"):
        enclave = platform.create_enclave(name)
        enclave.init()
        return enclave

    def test_sealed_manifest_roundtrip(self, platform, small_store):
        store, _, _ = small_store
        enclave = self._enclave(platform)
        blob = store.seal_manifest(enclave)
        assert store.verify_sealed_manifest(enclave, blob)

    def test_sealed_manifest_detects_growth(self, platform, small_store):
        store, fingerprints, labels = small_store
        enclave = self._enclave(platform)
        blob = store.seal_manifest(enclave)
        store.append(fingerprints[:5], labels[:5].tolist(), ["p0"] * 5,
                     [b"h" * 32] * 5)
        assert not store.verify_sealed_manifest(enclave, blob)

    def test_wrong_enclave_identity_cannot_verify(self, platform,
                                                  small_store):
        store, _, _ = small_store
        sealer = self._enclave(platform, "fingerprinting")
        other = platform.create_enclave("other")
        other.add_data("x", 1)  # different build => different MRENCLAVE
        other.init()
        blob = store.seal_manifest(sealer)
        assert not store.verify_sealed_manifest(other, blob)
