"""Tracer tests: nesting, kinds, deterministic clock, attribution."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.observability.tracing import (SPAN_KINDS, ManualClock, Span,
                                         Tracer)


class TestManualClock:
    def test_advances(self):
        clock = ManualClock()
        clock.advance(2.5)
        assert clock() == 2.5

    def test_cannot_rewind(self):
        with pytest.raises(ConfigurationError):
            ManualClock().advance(-1.0)


class TestSpans:
    def test_nesting_by_lexical_scope(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner", kind="enclave"):
                clock.advance(2.0)
            clock.advance(0.5)
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer" and outer.duration == 3.5
        (inner,) = outer.children
        assert inner.kind == "enclave" and inner.duration == 2.0
        assert outer.self_time == pytest.approx(1.5)

    def test_unknown_kind_rejected(self):
        tracer = Tracer()
        with pytest.raises(ConfigurationError):
            tracer.span("x", kind="gpu")
        assert SPAN_KINDS == ("internal", "enclave", "untrusted",
                              "boundary-crossing")

    def test_attributes_recorded(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("transfer", kind="boundary-crossing", bytes=1024):
            pass
        assert tracer.roots[0].attributes == {"bytes": 1024}

    def test_sibling_spans(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("parent"):
            for name in ("a", "b"):
                with tracer.span(name):
                    clock.advance(1.0)
        assert [c.name for c in tracer.roots[0].children] == ["a", "b"]
        assert tracer.roots[0].self_time == 0.0

    def test_exception_unwinds_and_closes(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    clock.advance(1.0)
                    raise RuntimeError("boom")
        # Both spans closed; the tree is complete despite the unwind.
        assert len(tracer.roots) == 1
        assert tracer.roots[0].end is not None
        assert tracer.roots[0].children[0].end is not None

    def test_to_dict_shape(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("epoch", epoch=0):
            with tracer.span("fwd", kind="enclave"):
                clock.advance(1.0)
        (root,) = tracer.to_dict()
        assert root["name"] == "epoch"
        assert root["attributes"] == {"epoch": 0}
        assert root["children"][0]["kind"] == "enclave"
        assert root["children"][0]["duration"] == 1.0

    def test_open_span_duration_is_zero(self):
        span = Span("open", "internal", 0.0, {})
        assert span.duration == 0.0


class TestAttribution:
    def test_kind_totals_partition_traced_time(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("batch"):
            with tracer.span("front", kind="enclave"):
                clock.advance(3.0)
            with tracer.span("ir", kind="boundary-crossing"):
                clock.advance(1.0)
            with tracer.span("back", kind="untrusted"):
                clock.advance(2.0)
        totals = tracer.kind_totals()
        assert totals["enclave"] == 3.0
        assert totals["boundary-crossing"] == 1.0
        assert totals["untrusted"] == 2.0
        assert totals["internal"] == 0.0  # batch span is pure container
        assert sum(totals.values()) == tracer.roots[0].duration

    def test_render_contains_tree_and_totals(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("epoch-0"):
            with tracer.span("fwd", kind="enclave", batch=8):
                clock.advance(0.25)
        text = tracer.render()
        assert "epoch-0" in text
        assert "[enclave] 0.250000s" in text
        assert "batch=8" in text
        assert "-- attribution (self time) --" in text

    def test_concurrent_threads_get_independent_roots(self):
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def traced(i):
            barrier.wait()
            with tracer.span(f"worker-{i}", kind="untrusted"):
                with tracer.span("step"):
                    pass

        workers = [threading.Thread(target=traced, args=(i,))
                   for i in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        # Four independent trees, never interleaved into one stack.
        assert sorted(root.name for root in tracer.roots) == [
            "worker-0", "worker-1", "worker-2", "worker-3"
        ]
        assert all(len(root.children) == 1 for root in tracer.roots)
