"""Adapter tests: the legacy telemetry surface over the shared registry."""

import threading

import pytest

from repro.ingest.telemetry import IngestTelemetry
from repro.observability.adapter import StageStats, SubsystemTelemetry
from repro.observability.metrics import MetricsRegistry
from repro.resilience.telemetry import RunTelemetry
from repro.serving.telemetry import ServingTelemetry


class TestStageStats:
    def test_immutable(self):
        stats = StageStats(count=2, total=1.0, maximum=0.7)
        with pytest.raises(AttributeError):
            stats.count = 99

    def test_mean_and_as_dict(self):
        stats = StageStats(count=4, total=2.0, maximum=0.9,
                           p50=0.4, p95=0.8, p99=0.9)
        assert stats.mean == 0.5
        assert stats.as_dict() == {
            "count": 4, "mean": 0.5, "max": 0.9, "total": 2.0,
            "p50": 0.4, "p95": 0.8, "p99": 0.9,
        }

    def test_empty_mean(self):
        assert StageStats(count=0, total=0.0, maximum=0.0).mean == 0.0


class TestNameMapping:
    def test_counter_names_follow_scheme(self):
        telemetry = ServingTelemetry()
        assert telemetry.counter_metric_name("cache_hits") == \
            "repro_serving_cache_hits_total"
        assert telemetry.counter_metric_name("bad-name.x") == \
            "repro_serving_bad_name_x_total"

    def test_stage_names_carry_seconds_unit(self):
        telemetry = IngestTelemetry()
        assert telemetry.stage_metric_name("validate") == \
            "repro_ingest_stage_validate_seconds"

    def test_occupancy_stages_stay_unitless(self):
        telemetry = ServingTelemetry()
        assert telemetry.stage_metric_name("queue_occupancy") == \
            "repro_serving_stage_queue_occupancy"


class TestAdapterSurface:
    def test_counters_land_in_registry(self):
        registry = MetricsRegistry()
        telemetry = ServingTelemetry(registry=registry)
        telemetry.count("queries", 7)
        assert telemetry.counter("queries") == 7
        assert registry.counter("repro_serving_queries_total").value == 7

    def test_unknown_counter_and_stage(self):
        telemetry = ServingTelemetry()
        assert telemetry.counter("never_written") == 0
        assert telemetry.stage("never_observed") is None

    def test_negative_counts_supported(self):
        # quarantine_at_commit retroactively un-counts accepted records.
        telemetry = IngestTelemetry()
        telemetry.count("records_accepted", 10)
        telemetry.count("records_accepted", -1)
        assert telemetry.counter("records_accepted") == 9

    def test_stage_returns_point_in_time_copy(self):
        telemetry = ServingTelemetry()
        telemetry.observe("search", 0.010)
        first = telemetry.stage("search")
        telemetry.observe("search", 0.030)
        second = telemetry.stage("search")
        # Regression: stage() used to hand out the live mutable object, so
        # a reader's snapshot changed under it (and could tear mid-update).
        assert first.count == 1 and first.total == pytest.approx(0.010)
        assert second.count == 2 and second.total == pytest.approx(0.040)

    def test_concurrent_readers_never_tear(self):
        telemetry = ServingTelemetry()
        stop = threading.Event()
        torn = []

        def writer():
            value = 0
            while not stop.is_set():
                telemetry.observe("total", 0.001 * (value % 5 + 1))
                value += 1

        def reader():
            while not stop.is_set():
                stats = telemetry.stage("total")
                if stats is None or stats.count == 0:
                    continue
                # count and total are captured under one lock: a torn pair
                # would make the mean drift outside the observed range.
                if not 0.0009 < stats.mean < 0.0051:
                    torn.append((stats.count, stats.total))

        workers = [threading.Thread(target=writer) for _ in range(2)]
        workers += [threading.Thread(target=reader) for _ in range(2)]
        for worker in workers:
            worker.start()
        threading.Event().wait(0.2)
        stop.set()
        for worker in workers:
            worker.join()
        assert torn == []

    def test_snapshot_parity_with_stage(self):
        telemetry = RunTelemetry()
        telemetry.count("retries", 2)
        telemetry.observe("checkpoint_save", 0.5)
        telemetry.observe("checkpoint_save", 1.5)
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["retries"] == 2
        stage = telemetry.stage("checkpoint_save")
        assert snapshot["stages"]["checkpoint_save"] == stage.as_dict()


class TestLegacyBehaviour:
    def test_serving_derived_rates(self):
        telemetry = ServingTelemetry()
        telemetry.count("queries", 10)
        telemetry.count("cache_hits", 4)
        telemetry.count("cache_misses", 6)
        telemetry.count("batches", 2)
        telemetry.count("batched_queries", 6)
        assert telemetry.cache_hit_rate == pytest.approx(0.4)
        assert telemetry.mean_batch_size == pytest.approx(3.0)

    def test_ingest_quarantine_rate(self):
        telemetry = IngestTelemetry()
        telemetry.count("records_accepted", 8)
        telemetry.count("records_quarantined", 2)
        assert telemetry.quarantine_rate == pytest.approx(0.2)

    def test_resilience_fault_count_sums_kinds(self):
        telemetry = RunTelemetry()
        telemetry.count("fault_enclave", 2)
        telemetry.count("fault_epc")
        telemetry.count("retries", 3)  # not a fault counter
        assert telemetry.fault_count == 3
        assert telemetry.snapshot()["fault_count"] == 3

    def test_render_is_textual(self):
        for telemetry, header in ((ServingTelemetry(), "serving telemetry"),
                                  (IngestTelemetry(), "ingest telemetry"),
                                  (RunTelemetry(), "resilience telemetry")):
            telemetry.count("events", 1)
            telemetry.observe("work", 0.001)
            text = telemetry.render()
            assert text.startswith(header)
            assert "events" in text and "stage work" in text


class TestSharedRegistry:
    def test_subsystems_aggregate_into_one_registry(self):
        registry = MetricsRegistry()
        serving = ServingTelemetry(registry=registry)
        ingest = IngestTelemetry(registry=registry)
        run = RunTelemetry(registry=registry)
        serving.count("queries", 5)
        ingest.count("chunks", 3)
        run.count("retries", 1)
        names = set(registry.snapshot()["counters"])
        assert names == {
            "repro_serving_queries_total",
            "repro_ingest_chunks_total",
            "repro_resilience_retries_total",
        }

    def test_namespaces_do_not_collide(self):
        registry = MetricsRegistry()
        serving = ServingTelemetry(registry=registry)
        ingest = IngestTelemetry(registry=registry)
        serving.count("errors", 2)
        ingest.count("errors", 5)
        assert serving.counter("errors") == 2
        assert ingest.counter("errors") == 5

    def test_private_registries_by_default(self):
        a = ServingTelemetry()
        b = ServingTelemetry()
        a.count("queries")
        assert b.counter("queries") == 0
        assert a.registry is not b.registry

    def test_base_class_namespace(self):
        telemetry = SubsystemTelemetry()
        assert telemetry.counter_metric_name("x") == "repro_repro_x_total"
