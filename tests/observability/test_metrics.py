"""Metrics substrate tests: registry, histogram math, export round-trip."""

import math
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.observability.metrics import (Counter, Gauge, Histogram,
                                         MetricsRegistry,
                                         default_latency_buckets,
                                         parse_prometheus)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.add(-3.0)
        assert gauge.value == 7.0

    def test_histogram_exact_aggregates(self):
        histogram = Histogram("h_seconds")
        for value in (0.001, 0.002, 0.004):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.007)
        assert histogram.mean == pytest.approx(0.007 / 3)
        assert histogram.minimum == 0.001
        assert histogram.maximum == 0.004

    def test_histogram_empty(self):
        histogram = Histogram("h_seconds")
        assert histogram.count == 0
        assert histogram.percentile(50) == 0.0
        assert histogram.as_dict()["max"] == 0.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=[2.0, 1.0])

    def test_bad_percentile_rejected(self):
        histogram = Histogram("h_seconds")
        with pytest.raises(ConfigurationError):
            histogram.percentile(0.0)
        with pytest.raises(ConfigurationError):
            histogram.percentile(101)


class TestHistogramPercentiles:
    def test_percentiles_track_numpy_within_a_bucket(self, generator):
        # Log-uniform latencies over 4 decades; the bucket-interpolated
        # percentile must stay within one bucket ratio (10**0.25) of the
        # exact numpy percentile.
        samples = 10.0 ** generator.uniform(-4, 0, size=5000)
        histogram = Histogram("h_seconds")
        for value in samples:
            histogram.observe(float(value))
        ratio = 10.0 ** 0.25
        for q in (50, 95, 99):
            exact = float(np.percentile(samples, q))
            estimate = histogram.percentile(q)
            assert exact / ratio <= estimate <= exact * ratio, (
                f"p{q}: exact {exact:.6g}, estimate {estimate:.6g}"
            )

    def test_percentiles_clamped_to_observed_range(self):
        histogram = Histogram("h_seconds")
        for _ in range(100):
            histogram.observe(0.0033)  # mid-bucket
        assert histogram.percentile(50) == pytest.approx(0.0033)
        assert histogram.percentile(99) == pytest.approx(0.0033)

    def test_cumulative_buckets_end_at_total(self):
        histogram = Histogram("h_seconds", buckets=[1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        buckets = histogram.cumulative_buckets()
        assert buckets[-1] == (math.inf, 4)
        assert [count for _, count in buckets] == [1, 2, 3, 4]

    def test_default_buckets_are_sorted_log_spaced(self):
        bounds = default_latency_buckets()
        assert list(bounds) == sorted(bounds)
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(r == pytest.approx(10.0 ** 0.25) for r in ratios)


class TestRegistry:
    def test_create_on_first_use_and_reuse(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h_seconds") is registry.histogram("h_seconds")

    def test_type_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")

    def test_invalid_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("bad-name")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("c_total", 3)
        registry.set_gauge("g", 1.5)
        registry.observe("h_seconds", 0.01)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c_total": 3}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h_seconds"]["count"] == 1

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        threads = 8
        per_thread = 2000
        barrier = threading.Barrier(threads)

        def hammer(i):
            barrier.wait()
            for n in range(per_thread):
                registry.inc("hits_total")
                registry.observe("lat_seconds", 1e-4 * (n % 7 + 1))
                registry.set_gauge("depth", float(n))

        workers = [threading.Thread(target=hammer, args=(i,))
                   for i in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert registry.counter("hits_total").value == threads * per_thread
        histogram = registry.histogram("lat_seconds")
        assert histogram.count == threads * per_thread
        assert histogram.sum == pytest.approx(
            sum(1e-4 * (n % 7 + 1) for n in range(per_thread)) * threads
        )


class TestPrometheusExposition:
    def _populated(self):
        registry = MetricsRegistry()
        registry.inc("repro_demo_events_total", 42)
        registry.set_gauge("repro_demo_depth", 3.5)
        for value in (0.001, 0.01, 0.1):
            registry.observe("repro_demo_lat_seconds", value)
        return registry

    def test_render_declares_types(self):
        text = self._populated().render_prometheus()
        assert "# TYPE repro_demo_events_total counter" in text
        assert "# TYPE repro_demo_depth gauge" in text
        assert "# TYPE repro_demo_lat_seconds histogram" in text
        assert 'repro_demo_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_demo_lat_seconds_count 3" in text

    def test_parse_round_trip(self):
        registry = self._populated()
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["repro_demo_events_total"]["type"] == "counter"
        assert parsed["repro_demo_events_total"]["samples"][""] == 42
        assert parsed["repro_demo_depth"]["samples"][""] == 3.5
        histogram = parsed["repro_demo_lat_seconds"]
        assert histogram["type"] == "histogram"
        assert histogram["samples"]["_count"] == 3
        assert histogram["samples"]["_sum"] == pytest.approx(0.111)
        assert histogram["samples"]['_bucket{le="+Inf"}'] == 3

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not { exposition\n")

    def test_bucket_counts_are_monotone(self):
        parsed = parse_prometheus(self._populated().render_prometheus())
        buckets = [
            (key, value)
            for key, value in parsed["repro_demo_lat_seconds"]["samples"].items()
            if key.startswith("_bucket")
        ]
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)
