"""Classification evaluation report tests."""

import numpy as np
import pytest

from repro.analysis.evaluation import (
    evaluate_classifier,
    render_confusion_matrix,
)
from repro.errors import ConfigurationError


class _FixedModel:
    """A stub model with predetermined predictions."""

    def __init__(self, predictions, classes):
        self._onehot = np.eye(classes)[predictions]

    def predict(self, x):
        return self._onehot[: x.shape[0]]


class TestEvaluateClassifier:
    def test_perfect_classifier(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        model = _FixedModel(y, classes=3)
        report = evaluate_classifier(model, np.zeros((6, 1)), y)
        assert report.accuracy == 1.0
        assert report.macro_f1() == pytest.approx(1.0)
        assert all(c.precision == c.recall == 1.0 for c in report.per_class)

    def test_known_confusion(self):
        actual = np.array([0, 0, 1, 1])
        predicted = np.array([0, 1, 1, 1])
        model = _FixedModel(predicted, classes=2)
        report = evaluate_classifier(model, np.zeros((4, 1)), actual)
        assert report.accuracy == 0.75
        class0 = report.per_class[0]
        assert class0.precision == 1.0 and class0.recall == 0.5
        class1 = report.per_class[1]
        assert class1.precision == pytest.approx(2 / 3)
        assert class1.recall == 1.0
        assert report.worst_class().label == 0
        assert report.per_class[0].support == 2

    def test_absent_class_zero_scores(self):
        actual = np.array([0, 0, 2])
        model = _FixedModel(np.array([0, 0, 2]), classes=3)
        report = evaluate_classifier(model, np.zeros((3, 1)), actual,
                                     num_classes=3)
        assert report.per_class[1].f1 == 0.0
        assert report.per_class[1].support == 0

    def test_render_contains_rows(self):
        y = np.array([0, 1])
        model = _FixedModel(y, classes=2)
        report = evaluate_classifier(model, np.zeros((2, 1)), y)
        text = report.render(class_names=["cat", "dog"])
        assert "cat" in text and "dog" in text and "accuracy" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate_classifier(_FixedModel(np.array([0]), 2),
                                np.zeros((0, 1)), np.zeros(0, dtype=int))

    def test_real_model_integration(self, rng, tiny_cifar):
        from repro.data.batching import iterate_minibatches
        from repro.nn.optimizers import Sgd
        from repro.nn.zoo import tiny_testnet

        train, test = tiny_cifar
        net = tiny_testnet(rng.child("n").generator)
        optimizer = Sgd(0.02, 0.9)
        batch_rng = rng.child("b").generator
        for _ in range(8):
            for xb, yb in iterate_minibatches(train.x, train.y, 16,
                                              rng=batch_rng):
                net.train_batch(xb, yb, optimizer)
        report = evaluate_classifier(net, test.x, test.y)
        assert 0.0 <= report.accuracy <= 1.0
        assert len(report.per_class) == 4
        assert report.matrix.sum() == len(test)


class TestRenderConfusionMatrix:
    def test_rows_and_columns(self):
        matrix = np.array([[5, 1], [2, 8]])
        text = render_confusion_matrix(matrix, class_names=["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 3
        assert "5" in lines[1] and "8" in lines[2]
