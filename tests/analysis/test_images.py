"""Image operation tests."""

import numpy as np
import pytest

from repro.analysis.images import bilinear_resize, to_ir_image
from repro.errors import ConfigurationError


class TestBilinearResize:
    def test_identity_resize(self, generator):
        image = generator.random((6, 6, 3))
        np.testing.assert_allclose(bilinear_resize(image, 6, 6), image, atol=1e-9)

    def test_2d_input_stays_2d(self, generator):
        image = generator.random((4, 4))
        assert bilinear_resize(image, 8, 8).shape == (8, 8)

    def test_upsample_preserves_range(self, generator):
        image = generator.random((4, 4, 1))
        out = bilinear_resize(image, 16, 16)
        assert out.min() >= image.min() - 1e-9
        assert out.max() <= image.max() + 1e-9

    def test_constant_image_stays_constant(self):
        image = np.full((3, 5), 0.7)
        np.testing.assert_allclose(bilinear_resize(image, 9, 11), 0.7)

    def test_downsample_shape(self, generator):
        assert bilinear_resize(generator.random((16, 16, 2)), 4, 4).shape == (4, 4, 2)

    def test_bad_rank_rejected(self):
        with pytest.raises(ConfigurationError):
            bilinear_resize(np.zeros((2, 2, 2, 2)), 4, 4)


class TestToIrImage:
    def test_normalized_and_replicated(self, generator):
        fmap = generator.normal(size=(7, 7)) * 100
        image = to_ir_image(fmap, 28, 28, channels=3)
        assert image.shape == (28, 28, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0
        np.testing.assert_array_equal(image[..., 0], image[..., 1])

    def test_constant_map_is_black(self):
        image = to_ir_image(np.full((4, 4), 3.0), 8, 8)
        np.testing.assert_array_equal(image, np.zeros((8, 8, 3), dtype=np.float32))

    def test_full_dynamic_range_used(self, generator):
        fmap = generator.normal(size=(5, 5))
        image = to_ir_image(fmap, 5, 5)
        assert image.max() == pytest.approx(1.0, abs=1e-6)
        assert image.min() == pytest.approx(0.0, abs=1e-6)

    def test_1xd_vector_projects(self):
        image = to_ir_image(np.arange(10, dtype=float).reshape(1, 10), 8, 8)
        assert image.shape == (8, 8, 3)
