"""Locally linear embedding tests."""

import numpy as np
import pytest

from repro.analysis.lle import locally_linear_embedding
from repro.errors import ConfigurationError


class TestLle:
    def test_output_shape(self, generator):
        points = generator.normal(size=(40, 10))
        embedding = locally_linear_embedding(points, n_neighbors=6, n_components=2)
        assert embedding.shape == (40, 2)
        assert np.isfinite(embedding).all()

    def test_preserves_cluster_structure(self, generator):
        """Two well-separated high-dimensional clusters stay separated in
        the 2-D embedding (the property Fig. 7 depends on)."""
        cluster_a = generator.normal(size=(25, 20)) * 0.3
        cluster_b = generator.normal(size=(25, 20)) * 0.3 + 8.0
        points = np.concatenate([cluster_a, cluster_b])
        embedding = locally_linear_embedding(points, n_neighbors=5)
        from scipy.spatial.distance import cdist

        within_a = cdist(embedding[:25], embedding[:25]).mean()
        within_b = cdist(embedding[25:], embedding[25:]).mean()
        between = cdist(embedding[:25], embedding[25:]).mean()
        assert between > within_a and between > within_b

    def test_swiss_roll_unrolls_monotonically(self):
        """Points along a 1-D curve embed in curve order (local geometry
        preserved)."""
        t = np.linspace(0, 3 * np.pi, 60)
        curve = np.stack([np.cos(t) * t, np.sin(t) * t, t], axis=1)
        embedding = locally_linear_embedding(curve, n_neighbors=8, n_components=1)
        coordinate = embedding[:, 0]
        correlation = abs(np.corrcoef(coordinate, t)[0, 1])
        assert correlation > 0.7

    def test_too_many_neighbors_rejected(self, generator):
        points = generator.normal(size=(5, 3))
        with pytest.raises(ConfigurationError):
            locally_linear_embedding(points, n_neighbors=5)

    def test_too_many_components_rejected(self, generator):
        points = generator.normal(size=(4, 3))
        with pytest.raises(ConfigurationError):
            locally_linear_embedding(points, n_neighbors=2, n_components=4)

    def test_deterministic(self, generator):
        points = generator.normal(size=(20, 6))
        a = locally_linear_embedding(points, n_neighbors=5)
        b = locally_linear_embedding(points, n_neighbors=5)
        np.testing.assert_allclose(a, b)
