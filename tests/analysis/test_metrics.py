"""Metric tests."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    auc_score,
    confusion_matrix,
    precision_recall_f1,
    top_k_accuracy,
)
from repro.errors import ConfigurationError


class TestTopK:
    def test_top1(self):
        probs = np.array([[0.7, 0.2, 0.1], [0.1, 0.2, 0.7]])
        assert top_k_accuracy(probs, np.array([0, 0]), k=1) == 0.5

    def test_top2_superset_of_top1(self, generator):
        probs = generator.random((30, 5))
        probs /= probs.sum(axis=1, keepdims=True)
        labels = generator.integers(0, 5, size=30)
        assert top_k_accuracy(probs, labels, 2) >= top_k_accuracy(probs, labels, 1)

    def test_top_n_is_one(self, generator):
        probs = generator.random((10, 4))
        labels = generator.integers(0, 4, size=10)
        assert top_k_accuracy(probs, labels, 4) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            top_k_accuracy(np.ones((1, 2)), np.array([0]), k=0)


class TestPrecisionRecall:
    def test_perfect(self):
        mask = np.array([True, False, True])
        metrics = precision_recall_f1(mask, mask)
        assert metrics["precision"] == metrics["recall"] == metrics["f1"] == 1.0

    def test_counts(self):
        predicted = np.array([True, True, False, False])
        actual = np.array([True, False, True, False])
        metrics = precision_recall_f1(predicted, actual)
        assert (metrics["tp"], metrics["fp"], metrics["fn"]) == (1, 1, 1)
        assert metrics["precision"] == 0.5 and metrics["recall"] == 0.5

    def test_no_predictions(self):
        metrics = precision_recall_f1(np.zeros(3, bool), np.ones(3, bool))
        assert metrics["precision"] == 0.0 and metrics["f1"] == 0.0


class TestConfusionMatrix:
    def test_counts(self):
        actual = np.array([0, 0, 1, 2])
        predicted = np.array([0, 1, 1, 2])
        matrix = confusion_matrix(predicted, actual, 3)
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1
        assert matrix[1, 1] == 1 and matrix[2, 2] == 1
        assert matrix.sum() == 4


class TestAuc:
    def test_perfect_separation(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([True, True, False, False])
        assert auc_score(scores, labels) == 1.0

    def test_inverted(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([True, True, False, False])
        assert auc_score(scores, labels) == 0.0

    def test_random_is_half(self, generator):
        scores = generator.random(2000)
        labels = generator.random(2000) > 0.5
        assert auc_score(scores, labels) == pytest.approx(0.5, abs=0.05)

    def test_ties_averaged(self):
        scores = np.array([0.5, 0.5])
        labels = np.array([True, False])
        assert auc_score(scores, labels) == 0.5

    def test_single_class_rejected(self):
        with pytest.raises(ConfigurationError):
            auc_score(np.array([0.1, 0.2]), np.array([True, True]))
