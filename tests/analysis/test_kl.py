"""KL divergence tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.kl import kl_divergence, kl_to_uniform
from repro.errors import ConfigurationError


class TestKlDivergence:
    def test_zero_for_identical(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-8)

    def test_known_value(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) == pytest.approx(np.log(2), abs=1e-6)

    def test_asymmetric(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            kl_divergence(np.ones(3) / 3, np.ones(4) / 4)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=1.0),
                    min_size=2, max_size=10))
    def test_non_negative_property(self, weights):
        p = np.array(weights)
        p /= p.sum()
        gen = np.random.default_rng(int(p.sum() * 1000))
        q = gen.random(p.shape)
        q /= q.sum()
        assert kl_divergence(p, q) >= -1e-9

    def test_unnormalized_inputs_normalized(self):
        # The helper normalizes, so scaled inputs give the same answer.
        p = np.array([2.0, 3.0, 5.0])
        q = np.array([1.0, 1.0, 1.0])
        assert kl_divergence(p, q) == pytest.approx(
            kl_divergence(p / 10, q / 3), abs=1e-6
        )


class TestKlToUniform:
    def test_uniform_is_zero(self):
        assert kl_to_uniform(np.full(10, 0.1)) == pytest.approx(0.0, abs=1e-6)

    def test_one_hot_is_log_n(self):
        p = np.zeros(10)
        p[3] = 1.0
        assert kl_to_uniform(p) == pytest.approx(np.log(10), rel=1e-3)

    def test_confidence_monotone(self):
        """More confident distributions sit farther from uniform."""
        soft = np.array([0.4, 0.3, 0.3])
        sharp = np.array([0.8, 0.1, 0.1])
        assert kl_to_uniform(sharp) > kl_to_uniform(soft)
