"""Text renderer tests."""

from repro.analysis.reporting import (
    render_epoch_series,
    render_kl_figure,
    render_neighbor_table,
    render_overhead_series,
)


def test_epoch_series_rows():
    text = render_epoch_series(
        "Fig 3", {"top1": [0.5, 0.7], "top2": [0.8, 0.9]}
    )
    assert "Fig 3" in text
    assert "70.00%" in text and "90.00%" in text
    assert len([l for l in text.splitlines() if l.strip().startswith(("1 ", "2 "))]) == 2


def test_kl_figure_marks_leaks():
    text = render_kl_figure(
        per_epoch_ranges=[[(0.0, 3.0), (2.5, 4.0)]],
        uniform_baselines=[2.0],
        chosen_layers=[2],
    )
    assert "LEAK" in text and "safe" in text
    assert "delta_mu" in text
    assert "first 2 layers" in text


def test_overhead_series_percentages():
    text = render_overhead_series([(2, 0.06), (10, 0.22)])
    assert "6.00%" in text and "22.00%" in text


def test_neighbor_table():
    text = render_neighbor_table([
        {"name": "trojaned A.J.Buckley", "neighbors": [
            {"distance": 0.42, "source": "attacker", "kind": "poisoned"},
            {"distance": 0.65, "source": "p0", "kind": "normal"},
        ]}
    ])
    assert "trojaned A.J.Buckley" in text
    assert "0.420" in text and "poisoned" in text
