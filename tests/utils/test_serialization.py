"""Tests for canonical serialization and stable hashing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.serialization import (
    array_from_bytes,
    array_to_bytes,
    canonical_json,
    stable_hash,
)


class TestArrayRoundtrip:
    @given(
        hnp.arrays(
            dtype=st.sampled_from([np.float32, np.float64, np.int64, np.uint8]),
            shape=hnp.array_shapes(max_dims=4, max_side=6),
        )
    )
    def test_roundtrip(self, array):
        restored = array_from_bytes(array_to_bytes(array))
        assert restored.dtype == array.dtype
        assert restored.shape == array.shape
        np.testing.assert_array_equal(restored, array)

    def test_non_contiguous_equals_contiguous(self):
        base = np.arange(24, dtype=np.float32).reshape(4, 6)
        view = base[:, ::2]
        assert array_to_bytes(view) == array_to_bytes(view.copy())

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            array_from_bytes(b"nope" + b"\x00" * 32)

    def test_zero_size_array(self):
        empty = np.zeros((0, 3), dtype=np.float32)
        restored = array_from_bytes(array_to_bytes(empty))
        assert restored.shape == (0, 3)


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_no_whitespace(self):
        assert b" " not in canonical_json({"a": [1, 2], "b": "x y"}).replace(b'"x y"', b"")


class TestStableHash:
    def test_deterministic(self):
        arr = np.ones((3, 3), dtype=np.float32)
        assert stable_hash(arr, "label", 5) == stable_hash(arr, "label", 5)

    def test_array_content_sensitivity(self):
        a = np.zeros(4, dtype=np.float32)
        b = np.zeros(4, dtype=np.float32)
        b[0] = 1e-6
        assert stable_hash(a) != stable_hash(b)

    def test_dtype_sensitivity(self):
        a = np.zeros(4, dtype=np.float32)
        assert stable_hash(a) != stable_hash(a.astype(np.float64))

    def test_length_prefixing_prevents_concat_collisions(self):
        assert stable_hash(b"ab", b"c") != stable_hash(b"a", b"bc")

    def test_mixed_parts(self):
        digest = stable_hash(np.arange(3), b"raw", {"k": 1})
        assert isinstance(digest, bytes) and len(digest) == 32
