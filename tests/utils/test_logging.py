"""Tests for the logging helpers."""

import logging

from repro.utils.logging import get_logger


def test_namespaced_under_repro():
    assert get_logger("enclave").name == "repro.enclave"


def test_already_namespaced_untouched():
    assert get_logger("repro.core").name == "repro.core"


def test_root_has_null_handler():
    root = logging.getLogger("repro")
    assert any(isinstance(h, logging.NullHandler) for h in root.handlers)
