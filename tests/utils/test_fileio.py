"""Crash-safe write tests."""

import pytest

from repro.utils.fileio import atomic_write_bytes, atomic_write_text


class TestAtomicWrite:
    def test_writes_payload(self, tmp_path):
        target = tmp_path / "artifact.bin"
        atomic_write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "artifact.bin"
        target.write_bytes(b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"

    def test_no_temp_file_left_behind(self, tmp_path):
        atomic_write_bytes(tmp_path / "artifact.bin", b"x" * 4096)
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.bin"]

    def test_failed_write_preserves_old_file(self, tmp_path, monkeypatch):
        """A crash mid-write must leave the previous version intact."""
        import os

        target = tmp_path / "artifact.bin"
        atomic_write_bytes(target, b"stable")

        def crash(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError):
            atomic_write_bytes(target, b"torn")
        assert target.read_bytes() == b"stable"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.bin"]

    def test_text_wrapper_utf8(self, tmp_path):
        target = tmp_path / "manifest.json"
        atomic_write_text(target, "{\"ünïcode\": true}")
        assert target.read_text() == "{\"ünïcode\": true}"
