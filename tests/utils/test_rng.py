"""Tests for deterministic RNG streams."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import (RngStream, derive_seed, get_generator_state,
                             set_generator_state)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a") == derive_seed(7, "a")

    def test_name_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.text(max_size=30))
    def test_always_64bit(self, seed, name):
        derived = derive_seed(seed, name)
        assert 0 <= derived < 2**64


class TestRngStream:
    def test_same_seed_same_draws(self):
        a = RngStream(5).generator.standard_normal(8)
        b = RngStream(5).generator.standard_normal(8)
        np.testing.assert_array_equal(a, b)

    def test_children_are_independent(self):
        root = RngStream(5)
        a = root.child("a").generator.standard_normal(64)
        b = root.child("b").generator.standard_normal(64)
        assert not np.allclose(a, b)

    def test_children_insensitive_to_creation_order(self):
        root1 = RngStream(5)
        first_a = root1.child("a").generator.standard_normal()
        root2 = RngStream(5)
        root2.child("b")  # create b first this time
        second_a = root2.child("a").generator.standard_normal()
        assert first_a == second_a

    def test_randbytes_length(self):
        assert len(RngStream(1).randbytes(37)) == 37

    def test_fork_generator_replays(self):
        stream = RngStream(9)
        stream.generator.standard_normal(10)  # advance the main generator
        fresh = stream.fork_generator().standard_normal(3)
        np.testing.assert_array_equal(
            fresh, RngStream(9).generator.standard_normal(3)
        )

    def test_nested_children(self):
        root = RngStream(2, name="root")
        grandchild = root.child("x").child("y")
        assert grandchild.name == "root/x/y"
        assert grandchild.seed == RngStream(2).child("x").child("y").seed

    def test_child_does_not_consume_parent_state(self):
        """Deriving a child is pure: the parent's draw sequence is
        unaffected, which checkpoint/resume parity depends on."""
        plain = RngStream(11)
        derived = RngStream(11)
        derived.child("a")
        derived.child("b")
        np.testing.assert_array_equal(plain.generator.random(8),
                                      derived.generator.random(8))


class TestGeneratorState:
    def test_state_roundtrip_replays_draws(self):
        generator = np.random.default_rng(3)
        generator.random(100)  # advance to an arbitrary position
        state = get_generator_state(generator)
        first = generator.random(16)
        set_generator_state(generator, state)
        np.testing.assert_array_equal(generator.random(16), first)

    def test_state_transfers_between_generators(self):
        source = np.random.default_rng(4)
        source.random(7)
        target = np.random.default_rng(999)
        set_generator_state(target, get_generator_state(source))
        np.testing.assert_array_equal(target.random(8), source.random(8))

    def test_state_is_json_serializable(self):
        import json

        generator = np.random.default_rng(5)
        generator.random(3)
        state = get_generator_state(generator)
        revived = json.loads(json.dumps(state))
        target = np.random.default_rng(0)
        set_generator_state(target, revived)
        np.testing.assert_array_equal(target.random(4), generator.random(4))

    def test_captured_state_is_a_snapshot(self):
        """Mutating the generator after capture must not alter the
        captured state (deep copy, not a live view)."""
        generator = np.random.default_rng(6)
        state = get_generator_state(generator)
        expected = generator.random(4)
        generator.random(1000)
        set_generator_state(generator, state)
        np.testing.assert_array_equal(generator.random(4), expected)

    def test_stream_get_set_state(self):
        stream = RngStream(8)
        stream.generator.random(10)
        state = stream.get_state()
        first = stream.generator.random(5)
        stream.set_state(state)
        np.testing.assert_array_equal(stream.generator.random(5), first)
