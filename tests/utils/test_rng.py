"""Tests for deterministic RNG streams."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a") == derive_seed(7, "a")

    def test_name_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.text(max_size=30))
    def test_always_64bit(self, seed, name):
        derived = derive_seed(seed, name)
        assert 0 <= derived < 2**64


class TestRngStream:
    def test_same_seed_same_draws(self):
        a = RngStream(5).generator.standard_normal(8)
        b = RngStream(5).generator.standard_normal(8)
        np.testing.assert_array_equal(a, b)

    def test_children_are_independent(self):
        root = RngStream(5)
        a = root.child("a").generator.standard_normal(64)
        b = root.child("b").generator.standard_normal(64)
        assert not np.allclose(a, b)

    def test_children_insensitive_to_creation_order(self):
        root1 = RngStream(5)
        first_a = root1.child("a").generator.standard_normal()
        root2 = RngStream(5)
        root2.child("b")  # create b first this time
        second_a = root2.child("a").generator.standard_normal()
        assert first_a == second_a

    def test_randbytes_length(self):
        assert len(RngStream(1).randbytes(37)) == 37

    def test_fork_generator_replays(self):
        stream = RngStream(9)
        stream.generator.standard_normal(10)  # advance the main generator
        fresh = stream.fork_generator().standard_normal(3)
        np.testing.assert_array_equal(
            fresh, RngStream(9).generator.standard_normal(3)
        )

    def test_nested_children(self):
        root = RngStream(2, name="root")
        grandchild = root.child("x").child("y")
        assert grandchild.name == "root/x/y"
        assert grandchild.seed == RngStream(2).child("x").child("y").seed
