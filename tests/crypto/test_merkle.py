"""Merkle tree tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.errors import CryptoError


class TestMerkleTree:
    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert tree.prove(0).verify(b"only", tree.root)

    def test_all_leaves_verify(self):
        leaves = [f"record-{i}".encode() for i in range(7)]  # odd count
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert tree.prove(i).verify(leaf, tree.root), f"leaf {i}"

    def test_wrong_leaf_rejected(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        assert not tree.prove(1).verify(b"evil", tree.root)

    def test_wrong_root_rejected(self):
        tree = MerkleTree([b"a", b"b"])
        other = MerkleTree([b"a", b"x"])
        assert not tree.prove(0).verify(b"a", other.root)

    def test_proof_not_transferable_between_positions(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        proof_for_0 = tree.prove(0)
        # The same proof cannot authenticate a different leaf value.
        assert not proof_for_0.verify(b"b", tree.root)

    def test_root_depends_on_order(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_leaf_interior_domain_separation(self):
        """A leaf equal to an interior-node preimage does not collide."""
        inner = MerkleTree([b"a", b"b"])
        # Committing to the raw concatenation as a leaf gives another root.
        fake = MerkleTree([b"\x01" + b"a" + b"b"])
        assert inner.root != fake.root

    def test_empty_rejected(self):
        with pytest.raises(CryptoError):
            MerkleTree([])

    def test_out_of_range_proof(self):
        with pytest.raises(CryptoError):
            MerkleTree([b"a"]).prove(5)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=33))
    def test_every_leaf_always_verifies(self, leaves):
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert tree.prove(i).verify(leaf, tree.root)


class TestLinkageCommitment:
    def test_query_answers_verifiable(self, generator):
        from repro.core.linkage import LinkageDatabase, LinkageRecord

        db = LinkageDatabase()
        for i in range(9):
            db.add(LinkageRecord(
                fingerprint=generator.normal(size=4).astype("float32"),
                label=i % 2, source=f"p{i % 3}", digest=b"h" * 32,
                source_index=i,
            ))
        tree = db.merkle_commitment()
        for i in range(9):
            proof = db.prove_record(tree, i)
            assert db.verify_record_inclusion(tree.root, i, proof)

    def test_altered_record_fails_commitment(self, generator):
        from repro.core.linkage import LinkageDatabase, LinkageRecord

        db = LinkageDatabase()
        for i in range(4):
            db.add(LinkageRecord(
                fingerprint=generator.normal(size=4).astype("float32"),
                label=0, source="p0", digest=b"h" * 32, source_index=i,
            ))
        tree = db.merkle_commitment()
        proof = db.prove_record(tree, 2)
        # Mutate the stored fingerprint after committing.
        db.record(2).fingerprint[...] += 1.0
        assert not db.verify_record_inclusion(tree.root, 2, proof)

    def test_empty_db_cannot_commit(self):
        from repro.core.linkage import LinkageDatabase
        from repro.errors import LinkageError

        with pytest.raises(LinkageError):
            LinkageDatabase().merkle_commitment()
