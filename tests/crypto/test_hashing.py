"""Hash/MAC helper tests."""

import hashlib
import hmac

from repro.crypto.hashing import constant_time_equal, hmac_sha256, sha256


def test_sha256_matches_hashlib():
    assert sha256(b"a", b"b") == hashlib.sha256(b"ab").digest()


def test_hmac_matches_stdlib():
    assert hmac_sha256(b"key", b"msg") == hmac.new(
        b"key", b"msg", hashlib.sha256
    ).digest()


def test_hmac_multi_part_concatenates():
    assert hmac_sha256(b"key", b"m", b"sg") == hmac_sha256(b"key", b"msg")


def test_constant_time_equal():
    assert constant_time_equal(b"same", b"same")
    assert not constant_time_equal(b"same", b"diff")
