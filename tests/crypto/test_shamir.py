"""Shamir secret sharing tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.shamir import Share, reconstruct_secret, split_secret
from repro.errors import CryptoError
from repro.utils.rng import RngStream


class TestSplitReconstruct:
    def test_threshold_reconstructs(self, rng):
        secret = b"a 32 byte secret value.........."
        shares = split_secret(secret, threshold=3, num_shares=5,
                              rng=rng.child("s"))
        assert reconstruct_secret(shares[:3], 32) == secret
        assert reconstruct_secret(shares[2:], 32) == secret
        assert reconstruct_secret([shares[0], shares[2], shares[4]], 32) == secret

    def test_more_than_threshold_also_works(self, rng):
        secret = b"\x01" * 16
        shares = split_secret(secret, threshold=2, num_shares=4,
                              rng=rng.child("s"))
        assert reconstruct_secret(shares, 16) == secret

    def test_below_threshold_reveals_nothing(self, rng):
        """With t-1 shares every candidate secret is equally consistent;
        operationally: interpolating t-1 shares yields garbage (a random
        field element, usually too large to even fit the secret length)."""
        secret = b"\x07" * 32
        shares = split_secret(secret, threshold=3, num_shares=5,
                              rng=rng.child("s"))
        try:
            assert reconstruct_secret(shares[:2], 32) != secret
        except CryptoError:
            pass  # equally acceptable: the garbage didn't fit 32 bytes

    def test_threshold_one_is_replication(self, rng):
        secret = b"replicated"
        shares = split_secret(secret, threshold=1, num_shares=3,
                              rng=rng.child("s"))
        for share in shares:
            assert reconstruct_secret([share], len(secret)) == secret

    def test_invalid_threshold(self, rng):
        with pytest.raises(CryptoError):
            split_secret(b"x", threshold=0, num_shares=3, rng=rng.child("s"))
        with pytest.raises(CryptoError):
            split_secret(b"x", threshold=4, num_shares=3, rng=rng.child("s"))

    def test_oversized_secret_rejected(self, rng):
        with pytest.raises(CryptoError):
            split_secret(b"\xff" * 66, threshold=2, num_shares=3,
                         rng=rng.child("s"))

    def test_duplicate_points_rejected(self, rng):
        shares = split_secret(b"x" * 8, threshold=2, num_shares=3,
                              rng=rng.child("s"))
        with pytest.raises(CryptoError):
            reconstruct_secret([shares[0], shares[0]], 8)

    def test_no_shares_rejected(self):
        with pytest.raises(CryptoError):
            reconstruct_secret([], 8)

    @settings(max_examples=20, deadline=None)
    @given(secret=st.binary(min_size=1, max_size=64),
           threshold=st.integers(1, 4), extra=st.integers(0, 3),
           seed=st.integers(0, 2**32))
    def test_roundtrip_property(self, secret, threshold, extra, seed):
        num_shares = threshold + extra
        shares = split_secret(secret, threshold, num_shares,
                              rng=RngStream(seed).child("h"))
        assert reconstruct_secret(shares[:threshold], len(secret)) == secret


class TestDropoutRecovery:
    def test_dropped_client_mask_cancelled(self, rng, generator):
        """The full Bonawitz flow: a client uploads, drops, and survivors'
        shares let the server cancel its orphaned masks exactly."""
        import numpy as np

        from repro.federation.secure_agg import (
            SecureAggregationClient,
            aggregate,
            recover_dropout,
        )

        vectors = [generator.normal(size=30) for _ in range(4)]
        clients = [SecureAggregationClient(i, rng.child("sa"))
                   for i in range(4)]
        directory = {c.client_id: c.public_key for c in clients}
        for client in clients:
            client.establish_pairs(directory)
        # Every client escrows its key, 2-of-3 among the others.
        escrow = {c.client_id: c.escrow_private_key(2, 3) for c in clients}
        uploads = [c.masked_update(v) for c, v in zip(clients, vectors)]

        # Client 2 uploads and then drops: the naive aggregate over the
        # SURVIVORS' uploads only would carry uncancelled masks; here the
        # server has all 4 uploads but client 2 can no longer participate
        # in any unmasking round, so its mask must be reconstructed.
        naive = aggregate(uploads)
        mask = recover_dropout(2, escrow[2][:2], directory,
                               vector_shape=(30,))
        recovered = naive  # all uploads present: masks already cancel
        np.testing.assert_allclose(recovered, sum(vectors), atol=1e-6)

        # The harder case: aggregate WITHOUT the dropped client's upload.
        partial = aggregate([u for i, u in enumerate(uploads) if i != 2])
        # partial = sum_{i != 2} x_i  - (masks client 2 would have
        # cancelled) => adding the reconstructed mask fixes it.
        fixed = partial + mask
        expected = sum(v for i, v in enumerate(vectors) if i != 2)
        np.testing.assert_allclose(fixed, expected, atol=1e-6)

    def test_bad_shares_detected(self, rng):
        from repro.federation.secure_agg import (
            SecureAggregationClient,
            recover_dropout,
        )

        clients = [SecureAggregationClient(i, rng.child("sa"))
                   for i in range(3)]
        directory = {c.client_id: c.public_key for c in clients}
        for client in clients:
            client.establish_pairs(directory)
        # Shares of client 0's key cannot recover client 1.
        shares = clients[0].escrow_private_key(2, 3)
        with pytest.raises(CryptoError):
            recover_dropout(1, shares[:2], directory, vector_shape=(4,))
