"""Diffie-Hellman key agreement tests."""

import pytest

from repro.crypto.dh import MODP_2048, DhKeyPair, DhParams
from repro.errors import HandshakeError
from repro.utils.rng import RngStream


class TestKeyAgreement:
    def test_shared_secret_agreement(self, rng):
        alice = DhKeyPair(rng.child("alice"))
        bob = DhKeyPair(rng.child("bob"))
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)

    def test_different_pairs_different_secrets(self, rng):
        alice = DhKeyPair(rng.child("alice"))
        bob = DhKeyPair(rng.child("bob"))
        eve = DhKeyPair(rng.child("eve"))
        assert alice.shared_secret(bob.public) != alice.shared_secret(eve.public)

    def test_public_in_range(self, rng):
        pair = DhKeyPair(rng.child("kp"))
        assert 2 <= pair.public <= MODP_2048.p - 2

    def test_secret_length_matches_group(self, rng):
        alice = DhKeyPair(rng.child("alice"))
        bob = DhKeyPair(rng.child("bob"))
        assert len(alice.shared_secret(bob.public)) == 256  # 2048-bit group

    def test_deterministic_from_stream(self):
        a = DhKeyPair(RngStream(3).child("x")).public
        b = DhKeyPair(RngStream(3).child("x")).public
        assert a == b


class TestDegenerateRejection:
    @pytest.mark.parametrize("bad", [0, 1])
    def test_small_values_rejected(self, rng, bad):
        pair = DhKeyPair(rng.child("kp"))
        with pytest.raises(HandshakeError):
            pair.shared_secret(bad)

    def test_p_minus_one_rejected(self, rng):
        pair = DhKeyPair(rng.child("kp"))
        with pytest.raises(HandshakeError):
            pair.shared_secret(MODP_2048.p - 1)

    def test_out_of_range_rejected(self, rng):
        pair = DhKeyPair(rng.child("kp"))
        with pytest.raises(HandshakeError):
            pair.shared_secret(MODP_2048.p + 5)

    def test_params_validation_helper(self):
        params = DhParams(p=23, g=5)
        params.validate_public(7)
        with pytest.raises(HandshakeError):
            params.validate_public(22)
