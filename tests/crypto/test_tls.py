"""Secure channel (TLS-like handshake + record layer) tests."""

import pytest

from repro.crypto.tls import Finished, ServerHello, TlsClient, TlsServer
from repro.errors import AuthenticationError, HandshakeError


def _handshake(rng, report_data=b"report"):
    client = TlsClient(rng.child("client"))
    server = TlsServer(rng.child("server"), report_data=report_data)
    hello_c = client.client_hello()
    hello_s = server.process_client_hello(hello_c)
    finished = client.process_server_hello(hello_s)
    server.process_finished(finished)
    return client, server


class TestHandshake:
    def test_completes_and_channels_interoperate(self, rng):
        client, server = _handshake(rng)
        c_chan, s_chan = client.channel(), server.channel()
        record = c_chan.send(b"the participant key")
        assert s_chan.receive(record) == b"the participant key"
        reply = s_chan.send(b"ack")
        assert c_chan.receive(reply) == b"ack"

    def test_client_sees_report_data(self, rng):
        client, _ = _handshake(rng, report_data=b"bound-quote")
        assert client.report_data == b"bound-quote"

    def test_tampered_server_mac_rejected(self, rng):
        client = TlsClient(rng.child("client"))
        server = TlsServer(rng.child("server"))
        hello_s = server.process_client_hello(client.client_hello())
        forged = ServerHello(
            dh_public=hello_s.dh_public,
            nonce=hello_s.nonce,
            report_data=hello_s.report_data,
            transcript_mac=bytes(32),
        )
        with pytest.raises(HandshakeError):
            client.process_server_hello(forged)

    def test_tampered_report_data_breaks_transcript(self, rng):
        client = TlsClient(rng.child("client"))
        server = TlsServer(rng.child("server"), report_data=b"honest")
        hello_s = server.process_client_hello(client.client_hello())
        mitm = ServerHello(
            dh_public=hello_s.dh_public,
            nonce=hello_s.nonce,
            report_data=b"evil",
            transcript_mac=hello_s.transcript_mac,
        )
        with pytest.raises(HandshakeError):
            client.process_server_hello(mitm)

    def test_forged_finished_rejected(self, rng):
        client = TlsClient(rng.child("client"))
        server = TlsServer(rng.child("server"))
        hello_s = server.process_client_hello(client.client_hello())
        client.process_server_hello(hello_s)
        with pytest.raises(HandshakeError):
            server.process_finished(Finished(transcript_mac=bytes(32)))

    def test_out_of_order_usage_rejected(self, rng):
        client = TlsClient(rng.child("client"))
        with pytest.raises(HandshakeError):
            client.channel()
        server = TlsServer(rng.child("server"))
        with pytest.raises(HandshakeError):
            server.process_finished(Finished(transcript_mac=bytes(32)))

    def test_rebind_after_handshake_rejected(self, rng):
        client = TlsClient(rng.child("client"))
        server = TlsServer(rng.child("server"))
        server.process_client_hello(client.client_hello())
        with pytest.raises(HandshakeError):
            server.bind_report_data(b"late")


class TestRecordLayer:
    def test_replay_detected(self, rng):
        client, server = _handshake(rng)
        c_chan, s_chan = client.channel(), server.channel()
        record = c_chan.send(b"once")
        s_chan.receive(record)
        with pytest.raises(AuthenticationError):
            s_chan.receive(record)  # same record again: sequence mismatch

    def test_reorder_detected(self, rng):
        client, server = _handshake(rng)
        c_chan, s_chan = client.channel(), server.channel()
        first = c_chan.send(b"one")
        second = c_chan.send(b"two")
        with pytest.raises(AuthenticationError):
            s_chan.receive(second)  # skipped a record

    def test_directional_keys_differ(self, rng):
        client, server = _handshake(rng)
        c_chan = client.channel()
        record = c_chan.send(b"hello")
        # A client cannot decrypt its own sent record (different keys).
        fresh_client_chan = client.channel()
        with pytest.raises(AuthenticationError):
            fresh_client_chan.receive(record)
