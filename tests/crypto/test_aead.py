"""Tests for the AEAD ciphers, including NIST AES-GCM vectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import AesGcm, HmacCtrAead, new_aead
from repro.errors import AuthenticationError, ConfigurationError


class TestAesGcmVectors:
    """NIST GCM test vectors (McGrew & Viega test cases)."""

    def test_empty_plaintext(self):
        # Test case 1: all-zero key/IV, empty plaintext.
        cipher = AesGcm(bytes(16))
        sealed = cipher.seal(bytes(12), b"")
        assert sealed.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_single_zero_block(self):
        # Test case 2.
        cipher = AesGcm(bytes(16))
        sealed = cipher.seal(bytes(12), bytes(16))
        assert sealed[:16].hex() == "0388dace60b6a392f328c2b971b2fe78"
        assert sealed[16:].hex() == "ab6e47d42cec13bdf53a67b21257bddf"

    def test_case_3_long_plaintext(self):
        key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
        iv = bytes.fromhex("cafebabefacedbaddecaf888")
        pt = bytes.fromhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255"
        )
        sealed = AesGcm(key).seal(iv, pt)
        assert sealed[-16:].hex() == "4d5c2af327cd64a62cf35abd2ba6fab4"

    def test_case_4_with_aad(self):
        key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
        iv = bytes.fromhex("cafebabefacedbaddecaf888")
        pt = bytes.fromhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
            "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
        )
        aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
        sealed = AesGcm(key).seal(iv, pt, aad)
        assert sealed[-16:].hex() == "5bc94fbc3221a5db94fae95ae7121a47"

    def test_wrong_key_length_rejected(self):
        with pytest.raises(ConfigurationError):
            AesGcm(b"short")


@pytest.mark.parametrize("cipher_cls", [AesGcm, HmacCtrAead])
class TestAeadSemantics:
    def _cipher(self, cipher_cls):
        return cipher_cls(bytes(range(16)))

    def test_roundtrip(self, cipher_cls):
        cipher = self._cipher(cipher_cls)
        sealed = cipher.seal(b"\x01" * 12, b"hello world", b"aad")
        assert cipher.open(b"\x01" * 12, sealed, b"aad") == b"hello world"

    def test_ciphertext_tamper_detected(self, cipher_cls):
        cipher = self._cipher(cipher_cls)
        sealed = bytearray(cipher.seal(b"\x01" * 12, b"hello world"))
        sealed[0] ^= 0x01
        with pytest.raises(AuthenticationError):
            cipher.open(b"\x01" * 12, bytes(sealed))

    def test_tag_tamper_detected(self, cipher_cls):
        cipher = self._cipher(cipher_cls)
        sealed = bytearray(cipher.seal(b"\x01" * 12, b"hello world"))
        sealed[-1] ^= 0x01
        with pytest.raises(AuthenticationError):
            cipher.open(b"\x01" * 12, bytes(sealed))

    def test_wrong_aad_detected(self, cipher_cls):
        cipher = self._cipher(cipher_cls)
        sealed = cipher.seal(b"\x01" * 12, b"payload", b"label=3")
        with pytest.raises(AuthenticationError):
            cipher.open(b"\x01" * 12, sealed, b"label=7")

    def test_wrong_nonce_detected(self, cipher_cls):
        cipher = self._cipher(cipher_cls)
        sealed = cipher.seal(b"\x01" * 12, b"payload")
        with pytest.raises(AuthenticationError):
            cipher.open(b"\x02" * 12, sealed)

    def test_wrong_key_detected(self, cipher_cls):
        sealed = self._cipher(cipher_cls).seal(b"\x01" * 12, b"payload")
        other = cipher_cls(bytes(range(1, 17)))
        with pytest.raises(AuthenticationError):
            other.open(b"\x01" * 12, sealed)

    def test_truncated_sealed_rejected(self, cipher_cls):
        cipher = self._cipher(cipher_cls)
        with pytest.raises(AuthenticationError):
            cipher.open(b"\x01" * 12, b"short")

    @settings(max_examples=25, deadline=None)
    @given(plaintext=st.binary(max_size=200), aad=st.binary(max_size=40))
    def test_roundtrip_property(self, cipher_cls, plaintext, aad):
        cipher = cipher_cls(bytes(range(16)))
        sealed = cipher.seal(b"\x05" * 12, plaintext, aad)
        assert cipher.open(b"\x05" * 12, sealed, aad) == plaintext
        assert len(sealed) == len(plaintext) + 16


class TestHmacCtrSpecifics:
    def test_distinct_nonces_distinct_ciphertexts(self):
        cipher = HmacCtrAead(bytes(16))
        c1 = cipher.seal(b"\x01" * 12, b"same message")
        c2 = cipher.seal(b"\x02" * 12, b"same message")
        assert c1[:-16] != c2[:-16]

    def test_large_payload(self):
        cipher = HmacCtrAead(bytes(16))
        payload = np.arange(100_000, dtype=np.uint8).tobytes()
        sealed = cipher.seal(b"\x09" * 12, payload)
        assert cipher.open(b"\x09" * 12, sealed) == payload

    def test_short_key_rejected(self):
        with pytest.raises(ConfigurationError):
            HmacCtrAead(b"short")


class TestFactory:
    def test_default_is_bulk(self):
        assert isinstance(new_aead(bytes(16)), HmacCtrAead)

    def test_control_path(self):
        assert isinstance(new_aead(bytes(16), bulk=False), AesGcm)

    def test_explicit_cipher(self):
        assert isinstance(new_aead(bytes(16), cipher="aes-128-gcm"), AesGcm)

    def test_unknown_cipher(self):
        with pytest.raises(ConfigurationError):
            new_aead(bytes(16), cipher="rot13")

    def test_interop_within_cipher(self):
        a = new_aead(bytes(16), cipher="hmac-ctr")
        b = new_aead(bytes(16), cipher="hmac-ctr")
        assert b.open(b"\x01" * 12, a.seal(b"\x01" * 12, b"x")) == b"x"


class TestBulkSealMany:
    """The vectorised batch path must be byte-identical to per-record seal."""

    _LENGTHS = [0, 1, 31, 32, 33, 1000, 9408]

    def _items(self):
        return [
            (bytes([i]) * 12, bytes(range(256)) * (length // 256)
             + bytes(range(length % 256)), b"aad-%d" % i)
            for i, length in enumerate(self._LENGTHS)
        ]

    def test_matches_per_record_seal(self):
        bulk = HmacCtrAead(bytes(range(16)))
        one_by_one = HmacCtrAead(bytes(range(16)))
        sealed = bulk.seal_many(self._items())
        for (nonce, plaintext, aad), got in zip(self._items(), sealed):
            assert got == one_by_one.seal(nonce, plaintext, aad)

    def test_sealed_records_open(self):
        cipher = HmacCtrAead(bytes(range(16)))
        for (nonce, plaintext, aad), sealed in zip(
            self._items(), cipher.seal_many(self._items())
        ):
            assert cipher.open(nonce, sealed, aad) == plaintext

    def test_empty_batch(self):
        assert HmacCtrAead(bytes(16)).seal_many([]) == []

    def test_keystream_matches_definition(self):
        """The partial-hash prefix trick must still produce
        SHA256(enc_key || nonce || counter) per 32-byte block."""
        import hashlib
        import struct

        from repro.crypto.hashing import hmac_sha256

        cipher = HmacCtrAead(bytes(range(16)))
        enc_key = hmac_sha256(bytes(range(16)), b"enc")
        nonce = b"\x07" * 12
        length = 100
        expected = b"".join(
            hashlib.sha256(enc_key + nonce + struct.pack("<Q", i)).digest()
            for i in range((length + 31) // 32)
        )[:length]
        assert cipher._keystream(nonce, length) == expected

    def test_aes_gcm_has_no_bulk_path(self):
        """encryption.py gates bulk sealing on hasattr(aead, "seal_many")."""
        assert not hasattr(AesGcm(bytes(16)), "seal_many")
