"""RFC 5869 test vectors and HKDF properties."""

import pytest

from repro.crypto.hkdf import hkdf, hkdf_expand, hkdf_extract
from repro.errors import ConfigurationError


class TestRfc5869Vectors:
    def test_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_case_3_empty_salt_info(self):
        ikm = bytes.fromhex("0b" * 22)
        okm = hkdf(ikm, salt=b"", info=b"", length=42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )


class TestProperties:
    def test_info_separation(self):
        assert hkdf(b"secret", info=b"a") != hkdf(b"secret", info=b"b")

    def test_salt_separation(self):
        assert hkdf(b"secret", salt=b"a") != hkdf(b"secret", salt=b"b")

    def test_length(self):
        assert len(hkdf(b"secret", length=77)) == 77

    def test_prefix_consistency(self):
        long = hkdf(b"secret", length=64)
        short = hkdf(b"secret", length=32)
        assert long[:32] == short

    def test_too_long_rejected(self):
        with pytest.raises(ConfigurationError):
            hkdf(b"secret", length=255 * 32 + 1)
