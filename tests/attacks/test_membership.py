"""Membership inference tests and the DP-SGD countermeasure."""

import numpy as np
import pytest

from repro.attacks.membership import membership_inference_auc, membership_scores
from repro.data.batching import iterate_minibatches
from repro.nn.optimizers import DpSgd, Sgd
from repro.nn.zoo import tiny_testnet


def _overfit(net, x, y, optimizer, epochs, rng):
    batch_rng = rng
    for _ in range(epochs):
        for xb, yb in iterate_minibatches(x, y, 16, rng=batch_rng):
            net.train_batch(xb, yb, optimizer)


class TestMembershipInference:
    def test_overfit_model_leaks(self, rng, tiny_cifar):
        """An overfit model scores members above non-members (AUC > 0.5)."""
        train, test = tiny_cifar
        members = train.subset(range(48))
        net = tiny_testnet(rng.child("net").generator)
        _overfit(net, members.x, members.y, Sgd(0.05, 0.9), epochs=30,
                 rng=rng.child("b").generator)
        auc = membership_inference_auc(
            net, members.x, members.y, test.x, test.y
        )
        assert auc > 0.55

    def test_dpsgd_reduces_leakage(self, rng, tiny_cifar):
        """DP-SGD noise lowers the membership AUC relative to plain SGD
        (the paper's Section VII countermeasure)."""
        train, test = tiny_cifar
        members = train.subset(range(48))

        net_plain = tiny_testnet(rng.child("same").generator)
        _overfit(net_plain, members.x, members.y, Sgd(0.05, 0.9), epochs=30,
                 rng=rng.child("b1").generator)
        auc_plain = membership_inference_auc(
            net_plain, members.x, members.y, test.x, test.y
        )

        net_dp = tiny_testnet(rng.child("same").generator)
        dp = DpSgd(0.05, momentum=0.9, clip_norm=0.5, noise_multiplier=4.0,
                   batch_size=16, rng=rng.child("noise").generator)
        _overfit(net_dp, members.x, members.y, dp, epochs=30,
                 rng=rng.child("b2").generator)
        auc_dp = membership_inference_auc(
            net_dp, members.x, members.y, test.x, test.y
        )
        assert auc_dp < auc_plain

    def test_scores_are_true_label_confidences(self, rng, tiny_cifar):
        train, _ = tiny_cifar
        net = tiny_testnet(rng.child("n").generator)
        scores = membership_scores(net, train.x[:5], train.y[:5])
        probs = net.predict(train.x[:5])
        np.testing.assert_allclose(
            scores, probs[np.arange(5), train.y[:5]], rtol=1e-6
        )
