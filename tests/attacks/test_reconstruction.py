"""Input reconstruction attack tests — the FrontNet secrecy claim."""

import numpy as np
import pytest

from repro.attacks.reconstruction import InputReconstructionAttack
from repro.errors import ConfigurationError
from repro.nn.zoo import tiny_testnet


@pytest.fixture
def setup(rng, generator):
    net = tiny_testnet(rng.child("victim").generator)
    x = generator.random((8, 8, 3)).astype(np.float32)
    partition = 1  # the IR of the first conv layer, pre-pooling
    ir = net.forward(x[None], stop=partition)
    return net, x, ir, partition


class TestReconstruction:
    def test_whitebox_beats_chance(self, setup, rng):
        """With the true FrontNet, reconstruction clearly improves on an
        uninformed guess — IRs do carry input content (why the FrontNet
        must stay inside the enclave)."""
        net, x, ir, partition = setup
        attack = InputReconstructionAttack(net, partition)
        outcome = attack.reconstruct(ir, x, iterations=250, lr=10.0,
                                     rng=rng.child("recon").generator)
        chance = attack.baseline_mse(x, rng=rng.child("guess").generator)
        assert outcome.input_mse < 0.1 * chance
        assert outcome.ir_loss < 1e-3

    def test_pooling_degrades_reconstruction(self, setup, rng):
        """Deeper IRs (past pooling) reconstruct far worse — the basis of
        choosing a deep-enough partition."""
        net, x, _, _ = setup
        shallow_ir = net.forward(x[None], stop=1)
        deep_ir = net.forward(x[None], stop=2)
        shallow = InputReconstructionAttack(net, 1).reconstruct(
            shallow_ir, x, iterations=250, lr=10.0,
            rng=rng.child("s").generator)
        deep = InputReconstructionAttack(net, 2).reconstruct(
            deep_ir, x, iterations=250, lr=10.0,
            rng=rng.child("d").generator)
        assert deep.input_mse > 3.0 * shallow.input_mse

    def test_blackbox_surrogate_fails(self, setup, rng):
        """Without the enclave's FrontNet weights, the adversary can only
        optimize against a surrogate — reconstruction stays near chance."""
        net, x, ir, partition = setup
        surrogate = tiny_testnet(rng.child("surrogate").generator)
        attack = InputReconstructionAttack(surrogate, partition)
        outcome = attack.reconstruct(ir, x, iterations=250, lr=10.0,
                                     rng=rng.child("recon").generator)
        whitebox = InputReconstructionAttack(net, partition).reconstruct(
            ir, x, iterations=250, lr=10.0, rng=rng.child("recon").generator
        )
        assert outcome.input_mse > 5.0 * whitebox.input_mse

    def test_partition_zero_rejected(self, setup):
        net = setup[0]
        with pytest.raises(ConfigurationError):
            InputReconstructionAttack(net, 0)

    def test_reconstruction_clipped_to_image_range(self, setup, rng):
        net, x, ir, partition = setup
        outcome = InputReconstructionAttack(net, partition).reconstruct(
            ir, x, iterations=20, rng=rng.child("r").generator
        )
        assert outcome.reconstruction.min() >= 0.0
        assert outcome.reconstruction.max() <= 1.0
