"""Shadow-model membership inference tests."""

import numpy as np
import pytest

from repro.attacks.membership import ShadowModelAttack
from repro.data.batching import iterate_minibatches
from repro.errors import ConfigurationError
from repro.nn.optimizers import Sgd
from repro.nn.zoo import tiny_testnet


def _factory(seed):
    return tiny_testnet(np.random.default_rng(1000 + seed))


def _overfit(model, x, y, seed, epochs=40):
    optimizer = Sgd(0.05, 0.9)
    batch_rng = np.random.default_rng(2000 + seed)
    for _ in range(epochs):
        for xb, yb in iterate_minibatches(x, y, 16, rng=batch_rng):
            model.train_batch(xb, yb, optimizer)


@pytest.fixture(scope="module")
def shadow_world():
    from repro.data.datasets import synthetic_cifar
    from repro.utils.rng import RngStream

    rng = RngStream(808, "shadow0.7")
    # High-noise variant: a harder task gives the victim a genuine
    # generalization gap for the attack to exploit.
    train, test = synthetic_cifar(rng.child("d"), num_train=400, num_test=120,
                                  num_classes=4, shape=(8, 8, 3), noise=0.7)
    # The victim trains on a slice the adversary never sees.
    victim_members = train.subset(range(40))
    victim = _factory(99)
    _overfit(victim, victim_members.x, victim_members.y, seed=99, epochs=40)
    # The adversary's own same-distribution data.
    shadow_data = train.subset(range(100, 400))
    attack = ShadowModelAttack(_factory, _overfit, num_shadows=3)
    attack.fit(shadow_data.x, shadow_data.y)
    return attack, victim, victim_members, test


class TestShadowModelAttack:
    def test_attack_beats_chance_on_overfit_victim(self, shadow_world):
        attack, victim, members, test = shadow_world
        auc = attack.auc(victim, members.x, members.y, test.x, test.y)
        assert auc > 0.55

    def test_scores_are_probabilities(self, shadow_world):
        attack, victim, members, _ = shadow_world
        scores = attack.score(victim, members.x[:10], members.y[:10])
        assert np.all((scores >= 0) & (scores <= 1))

    def test_members_score_above_nonmembers_on_average(self, shadow_world):
        attack, victim, members, test = shadow_world
        member_scores = attack.score(victim, members.x, members.y)
        nonmember_scores = attack.score(victim, test.x, test.y)
        assert member_scores.mean() > nonmember_scores.mean()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShadowModelAttack(_factory, _overfit, num_shadows=0)
        attack = ShadowModelAttack(_factory, _overfit, num_shadows=5)
        with pytest.raises(ConfigurationError):
            attack.fit(np.zeros((4, 8, 8, 3)), np.zeros(4, dtype=int))
