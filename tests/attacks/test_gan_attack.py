"""GAN attack tests (Section VII security analysis)."""

import numpy as np
import pytest

from repro.attacks.gan_attack import GanAttack, Generator
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def gan_world():
    from repro.data.batching import iterate_minibatches
    from repro.data.datasets import synthetic_faces
    from repro.nn.optimizers import Sgd
    from repro.nn.zoo import face_recognition_net
    from repro.utils.rng import RngStream

    rng = RngStream(21, "gan-tests")
    faces = synthetic_faces(rng.child("faces"), num_identities=4,
                            per_identity=40)
    # One spare class slot plays Hitaj et al.'s artificial "fake" class.
    victim = face_recognition_net(num_classes=5,
                                  rng=rng.child("init").generator)
    optimizer = Sgd(0.01, 0.9)
    batch_rng = rng.child("batches").generator
    for _ in range(18):
        for xb, yb in iterate_minibatches(faces.x, faces.y, 16, rng=batch_rng):
            victim.train_batch(xb, yb, optimizer)
    return rng, faces, victim


class TestGenerator:
    def test_sample_shape_and_range(self, generator):
        gen = Generator(latent_dim=4, output_shape=(8, 8, 3),
                        rng=np.random.default_rng(0))
        z = generator.standard_normal((5, 4))
        samples = gen.sample(z)
        assert samples.shape == (5, 8, 8, 3)
        assert samples.min() >= 0.0 and samples.max() <= 1.0

    def test_invalid_latent(self):
        with pytest.raises(ConfigurationError):
            Generator(latent_dim=0, output_shape=(4, 4, 1))


class TestGanAttack:
    def test_offline_fools_the_model_without_content(self, gan_world):
        """The CalTrain condition: against the single released model the
        generator reaches high target-class confidence but does not
        recover the private class's content — the paper's argument that
        the GAN attack is inapplicable to offline centralized training."""
        rng, faces, victim = gan_world
        attack = GanAttack(victim, target_class=0,
                           rng=rng.child("offline").fork_generator())
        outcome = attack.run(
            rounds=80, batch=16, lr=0.5, online=False,
            class_mean=faces.of_class(0).x.mean(axis=0),
            global_mean=faces.x.mean(axis=0),
        )
        assert outcome.confidence > 0.9           # fools the classifier
        assert abs(outcome.class_correlation) < 0.5  # but reveals little

    def test_offline_does_not_change_the_victim(self, gan_world):
        rng, faces, victim = gan_world
        from repro.nn.zoo import face_recognition_net

        clone = face_recognition_net(num_classes=5,
                                     rng=np.random.default_rng(9))
        clone.set_weights(victim.get_weights())
        attack = GanAttack(clone, target_class=0,
                           rng=rng.child("frozen").fork_generator())
        attack.run(rounds=20, batch=8, lr=0.5, online=False)
        for la, lb in zip(clone.layers, victim.layers):
            for name, arr in la.params().items():
                np.testing.assert_array_equal(arr, lb.params()[name])

    def test_online_requires_private_data(self, gan_world):
        rng, _, victim = gan_world
        attack = GanAttack(victim, target_class=0,
                           rng=rng.child("x").fork_generator())
        with pytest.raises(ConfigurationError):
            attack.run(rounds=1, online=True)

    def test_online_runs_and_victim_evolves(self, gan_world):
        """In the distributed condition the victim keeps updating — the
        iterative feedback CalTrain removes."""
        rng, faces, victim = gan_world
        from repro.nn.zoo import face_recognition_net

        clone = face_recognition_net(num_classes=5,
                                     rng=np.random.default_rng(10))
        clone.set_weights(victim.get_weights())
        private = faces.of_class(0)
        attack = GanAttack(clone, target_class=0,
                           rng=rng.child("online").fork_generator())
        attack.run(rounds=10, batch=8, lr=0.5, online=True,
                   private_x=private.x, private_y=private.y, fake_label=4)
        changed = any(
            not np.array_equal(la.params()[name], lb.params()[name])
            for la, lb in zip(clone.layers, victim.layers)
            for name in la.params()
        )
        assert changed
