"""Model Inversion attack tests (Section VII security analysis)."""

import numpy as np
import pytest

from repro.attacks.inversion import ModelInversionAttack
from repro.data.batching import iterate_minibatches
from repro.errors import ConfigurationError
from repro.nn.layers import CostLayer, DenseLayer, FlattenLayer, SoftmaxLayer
from repro.nn.network import Network
from repro.nn.optimizers import Sgd


@pytest.fixture(scope="module")
def shallow_world():
    """A softmax-regression model — the regime where the paper says Model
    Inversion works — trained on a tiny face-like task."""
    from repro.data.datasets import synthetic_faces
    from repro.utils.rng import RngStream

    rng = RngStream(31, "inversion")
    faces = synthetic_faces(rng.child("faces"), num_identities=4,
                            per_identity=40)
    shallow = Network(
        faces.x.shape[1:],
        [FlattenLayer(), DenseLayer(4, activation="linear"),
         SoftmaxLayer(), CostLayer()],
        rng=rng.child("init").generator,
    )
    optimizer = Sgd(0.05, 0.9)
    batch_rng = rng.child("batches").generator
    for _ in range(30):
        for xb, yb in iterate_minibatches(faces.x, faces.y, 16, rng=batch_rng):
            shallow.train_batch(xb, yb, optimizer)
    return rng, faces, shallow


class TestModelInversion:
    def test_reaches_high_confidence(self, shallow_world):
        _, faces, shallow = shallow_world
        attack = ModelInversionAttack(shallow, target_class=0)
        outcome = attack.invert(iterations=150, lr=2.0)
        assert outcome.confidence > 0.9
        assert outcome.reconstruction.min() >= 0.0
        assert outcome.reconstruction.max() <= 1.0

    def test_recovers_class_direction_on_shallow_model(self, shallow_world):
        """The paper's claim: inversion works on shallow models — the
        reconstruction points along the target class's distinguishing
        direction in pixel space."""
        from repro.attacks.inversion import class_direction_correlation

        _, faces, shallow = shallow_world
        global_mean = faces.x.mean(axis=0)
        class_mean = faces.of_class(0).x.mean(axis=0)
        attack = ModelInversionAttack(shallow, target_class=0)
        outcome = attack.invert(iterations=200, lr=0.5)
        corr = class_direction_correlation(outcome.reconstruction,
                                           class_mean, global_mean)
        assert corr > 0.4

    def test_deep_model_resists(self, shallow_world):
        """The paper's contrast: on a deep convolutional model, inversion
        yields obscure outputs — near-zero correlation with the class's
        distinguishing direction, despite maximal confidence."""
        from repro.attacks.inversion import class_direction_correlation
        from repro.nn.zoo import face_recognition_net

        rng, faces, shallow = shallow_world
        deep = face_recognition_net(num_classes=4,
                                    rng=rng.child("deep-init").generator)
        optimizer = Sgd(0.01, 0.9)
        batch_rng = rng.child("deep-batches").generator
        for _ in range(20):
            for xb, yb in iterate_minibatches(faces.x, faces.y, 16,
                                              rng=batch_rng):
                deep.train_batch(xb, yb, optimizer)
        global_mean = faces.x.mean(axis=0)
        class_mean = faces.of_class(0).x.mean(axis=0)

        shallow_corr = class_direction_correlation(
            ModelInversionAttack(shallow, 0).invert(iterations=200, lr=0.5)
            .reconstruction, class_mean, global_mean)
        deep_outcome = ModelInversionAttack(deep, 0).invert(iterations=200,
                                                            lr=0.5)
        deep_corr = class_direction_correlation(
            deep_outcome.reconstruction, class_mean, global_mean)
        # Both attacks reach high confidence, but only the shallow one
        # recovers content.
        assert deep_outcome.confidence > 0.9
        assert shallow_corr > 0.4
        assert abs(deep_corr) < 0.5 * shallow_corr

    def test_invalid_iterations(self, shallow_world):
        _, _, shallow = shallow_world
        with pytest.raises(ConfigurationError):
            ModelInversionAttack(shallow, 0).invert(iterations=0)
