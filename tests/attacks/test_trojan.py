"""Trojaning attack tests (the paper's Experiment IV precondition)."""

import numpy as np
import pytest

from repro.attacks.trojan import TrojanAttack, make_corner_mask, stamp_trigger
from repro.errors import ConfigurationError


class TestTriggerMechanics:
    def test_corner_mask_location(self):
        mask = make_corner_mask((8, 8, 3), patch=3)
        assert mask[7, 7, 0] == 1.0 and mask[0, 0, 0] == 0.0
        assert mask.sum() == 3 * 3 * 3

    def test_mask_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            make_corner_mask((4, 4, 3), patch=4)

    def test_stamp_only_touches_masked_region(self, generator):
        images = generator.random((2, 8, 8, 3)).astype(np.float32)
        mask = make_corner_mask((8, 8, 3), patch=2)
        trigger = np.ones((8, 8, 3), dtype=np.float32) * mask
        stamped = stamp_trigger(images, trigger, mask)
        np.testing.assert_array_equal(stamped[:, :6, :6, :], images[:, :6, :6, :])
        np.testing.assert_allclose(stamped[:, 6:, 6:, :], 1.0)


class TestTriggerGeneration:
    def test_trigger_confined_to_mask(self, fresh_model, face_world):
        attack = TrojanAttack(fresh_model, target_label=0, patch=4,
                              rng=np.random.default_rng(0))
        trigger = attack.generate_trigger(iterations=10)
        assert trigger.shape == fresh_model.input_shape
        outside = trigger * (1.0 - attack.mask)
        np.testing.assert_array_equal(outside, np.zeros_like(outside))

    def test_trigger_activates_target_neurons(self, fresh_model):
        """The optimized trigger activates the target logit more than a
        random patch does."""
        attack = TrojanAttack(fresh_model, target_label=0, patch=4,
                              rng=np.random.default_rng(0))
        trigger = attack.generate_trigger(iterations=30)
        gray = np.full((1,) + fresh_model.input_shape, 0.5, dtype=np.float32)
        stamped = stamp_trigger(gray, trigger, attack.mask)
        penultimate = fresh_model.penultimate_index()
        act_trigger = fresh_model.forward_collect(stamped, [penultimate])
        act_gray = fresh_model.forward_collect(gray, [penultimate])
        assert act_trigger[penultimate][0, 0] > act_gray[penultimate][0, 0]


class TestFullAttack:
    @pytest.fixture(scope="class")
    def result(self, request):
        # Build once for the class: run the full attack.
        face_world = request.getfixturevalue("face_world")
        from repro.nn.zoo import face_recognition_net

        model = face_recognition_net(num_classes=5, rng=np.random.default_rng(0))
        model.set_weights(face_world["net"].get_weights())
        attack = TrojanAttack(model, target_label=0, patch=4,
                              rng=np.random.default_rng(1))
        outcome = attack.run(
            face_world["substitute"], face_world["test"],
            trigger_iterations=40, retrain_epochs=6, learning_rate=0.01,
        )
        return attack, outcome, face_world

    def test_backdoor_success_rate(self, result):
        attack, outcome, _ = result
        assert attack.attack_success_rate(outcome) >= 0.8

    def test_clean_accuracy_mostly_retained(self, result):
        """The attack is stealthy: benign behaviour barely changes."""
        _, outcome, face_world = result
        test = face_world["test"]
        probs = outcome.trojaned_model.predict(test.x)
        accuracy = float(np.mean(probs.argmax(axis=1) == test.y))
        assert accuracy >= 0.7

    def test_poisoned_data_flagged(self, result):
        _, outcome, _ = result
        assert outcome.poisoned_train.flags["poisoned"].all()
        assert np.all(outcome.poisoned_train.y == 0)

    def test_fingerprint_clustering(self, result):
        """Trojaned test data cluster with poisoned training data, away
        from normal class-0 data (the Fig. 7 structure)."""
        from scipy.spatial.distance import cdist

        from repro.core.fingerprint import Fingerprinter

        _, outcome, face_world = result
        fingerprinter = Fingerprinter(outcome.trojaned_model)
        f_normal = fingerprinter.fingerprint(face_world["train"].of_class(0).x)
        f_poison = fingerprinter.fingerprint(outcome.poisoned_train.x)
        f_test = fingerprinter.fingerprint(outcome.trojaned_test.x)
        to_poison = cdist(f_test, f_poison).min(axis=1).mean()
        to_normal = cdist(f_test, f_normal).min(axis=1).mean()
        assert to_poison < to_normal
