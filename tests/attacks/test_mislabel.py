"""Mislabeled-data injection tests."""

import numpy as np
import pytest

from repro.attacks.mislabel import inject_mislabeled
from repro.errors import ConfigurationError


class TestInjectMislabeled:
    def test_count_and_label(self, tiny_cifar, generator):
        train, _ = tiny_cifar
        mislabeled = inject_mislabeled(train, target_label=0, count=12,
                                       rng=generator)
        assert len(mislabeled) == 12
        assert np.all(mislabeled.y == 0)
        assert mislabeled.flags["mislabeled"].all()

    def test_sources_not_of_target_class(self, tiny_cifar, generator):
        """Mislabeled instances really come from other classes: their
        images match pool instances whose true label differs."""
        train, _ = tiny_cifar
        mislabeled = inject_mislabeled(train, target_label=1, count=8,
                                       rng=generator)
        flat_pool = train.x.reshape(len(train), -1)
        for image in mislabeled.x:
            matches = np.flatnonzero(
                np.all(flat_pool == image.ravel(), axis=1)
            )
            assert len(matches) >= 1
            assert all(train.y[m] != 1 for m in matches)

    def test_pool_too_small_rejected(self, tiny_cifar, generator):
        train, _ = tiny_cifar
        with pytest.raises(ConfigurationError):
            inject_mislabeled(train, target_label=0, count=10_000, rng=generator)

    def test_vgg_face_statistic_scenario(self, tiny_faces, generator):
        """Reproduce the paper's class-0 composition: ~50% correct, ~24%
        mislabeled (the VGG-Face A.J.Buckley discovery)."""
        class0 = tiny_faces.of_class(0)
        n_mislabeled = int(round(len(class0) * 0.243 / 0.497))
        mislabeled = inject_mislabeled(tiny_faces, target_label=0,
                                       count=n_mislabeled, rng=generator)
        from repro.data.datasets import Dataset

        merged = Dataset.concatenate([class0, mislabeled])
        fraction = merged.flags["mislabeled"].mean()
        assert 0.2 < fraction < 0.4
