"""BadNets poisoning tests."""

import numpy as np
import pytest

from repro.attacks.badnets import BadNetsAttack
from repro.data.batching import iterate_minibatches
from repro.errors import ConfigurationError
from repro.nn.optimizers import Sgd
from repro.nn.zoo import tiny_testnet


class TestPoisonDataset:
    def test_fraction_poisoned(self, tiny_cifar, generator):
        train, _ = tiny_cifar
        attack = BadNetsAttack(target_label=0)
        poisoned = attack.poison_dataset(train, fraction=0.25, rng=generator)
        assert poisoned.flags["poisoned"].sum() == round(0.25 * len(train))
        flagged = poisoned.flags["poisoned"]
        assert np.all(poisoned.y[flagged] == 0)
        # Unflagged rows are untouched.
        np.testing.assert_array_equal(poisoned.x[~flagged], train.x[~flagged])

    def test_invalid_fraction(self, tiny_cifar, generator):
        train, _ = tiny_cifar
        with pytest.raises(ConfigurationError):
            BadNetsAttack(0).poison_dataset(train, fraction=0.0, rng=generator)

    def test_trigger_is_checkerboard(self):
        trigger, mask = BadNetsAttack(0, patch=2).trigger_for((8, 8, 3))
        corner = trigger[6:, 6:, 0]
        assert corner[0, 0] != corner[0, 1]  # alternating pattern

    def test_backdoor_learned_during_training(self, tiny_cifar, rng):
        """Training on poisoned data implants a working backdoor."""
        train, test = tiny_cifar
        attack = BadNetsAttack(target_label=0, patch=3)
        poisoned = attack.poison_dataset(
            train, fraction=0.3, rng=rng.child("poison").generator
        )
        net = tiny_testnet(rng.child("net").generator)
        optimizer = Sgd(0.02, 0.9)
        batch_rng = rng.child("batches").generator
        for _ in range(10):
            for xb, yb in iterate_minibatches(poisoned.x, poisoned.y, 16,
                                              rng=batch_rng):
                net.train_batch(xb, yb, optimizer)
        stamped_test = attack.stamp_test_set(test)
        probs = net.predict(stamped_test.x)
        success = float(np.mean(probs.argmax(axis=1) == 0))
        assert success > 0.8
