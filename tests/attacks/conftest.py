"""Shared fixtures for the attack tests: a trained face model."""

import numpy as np
import pytest

from repro.data.batching import iterate_minibatches
from repro.data.datasets import synthetic_faces
from repro.nn.optimizers import Sgd
from repro.nn.zoo import face_recognition_net
from repro.utils.rng import RngStream


@pytest.fixture(scope="module")
def face_world():
    """A well-trained face model plus train/test/substitute splits.

    Module-scoped: training takes a few seconds and the attacks can share
    the same starting point (each attack copies weights before mutating).
    """
    rng = RngStream(77, "attack-fixtures")
    faces = synthetic_faces(rng.child("faces"), num_identities=5, per_identity=48)
    train, test, substitute = faces.split(
        [0.6, 0.2, 0.2], rng=rng.child("split").generator
    )
    net = face_recognition_net(num_classes=5, rng=rng.child("init").generator)
    optimizer = Sgd(0.01, 0.9)
    batch_rng = rng.child("batches").generator
    for _ in range(18):
        for xb, yb in iterate_minibatches(train.x, train.y, 16, rng=batch_rng):
            net.train_batch(xb, yb, optimizer)
    return {"rng": rng, "net": net, "train": train, "test": test,
            "substitute": substitute}


@pytest.fixture
def fresh_model(face_world):
    """A copy of the clean trained model (safe to mutate)."""
    from repro.nn.zoo import face_recognition_net

    clone = face_recognition_net(
        num_classes=5, rng=np.random.default_rng(0)
    )
    clone.set_weights(face_world["net"].get_weights())
    return clone
