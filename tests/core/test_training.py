"""Confidential trainer and freeze-schedule tests."""

import numpy as np
import pytest

from repro.core.freezing import FreezeSchedule
from repro.core.partition import PartitionedNetwork
from repro.core.partitioned_training import ConfidentialTrainer
from repro.data.augmentation import Augmenter
from repro.errors import ConfigurationError
from repro.nn.optimizers import Sgd
from repro.nn.zoo import tiny_testnet


@pytest.fixture
def trainer_setup(rng, platform, tiny_cifar):
    train, test = tiny_cifar
    enclave = platform.create_enclave("train")
    enclave.init()
    net = tiny_testnet(rng.child("net").generator)
    partitioned = PartitionedNetwork(net, 2, enclave)
    trainer = ConfidentialTrainer(
        partitioned, Sgd(0.02, 0.9),
        batch_rng=rng.child("batches").generator, batch_size=16,
    )
    return trainer, train, test


class TestConfidentialTrainer:
    def test_reports_per_epoch(self, trainer_setup):
        trainer, train, test = trainer_setup
        reports = trainer.train(train.x, train.y, epochs=3,
                                test_x=test.x, test_y=test.y)
        assert len(reports) == 3
        assert all(r.top1 is not None and 0 <= r.top1 <= 1 for r in reports)
        assert all(r.top2 >= r.top1 for r in reports)
        assert all(r.simulated_seconds > 0 for r in reports)

    def test_loss_improves(self, trainer_setup):
        trainer, train, _ = trainer_setup
        reports = trainer.train(train.x, train.y, epochs=6)
        assert reports[-1].mean_loss < reports[0].mean_loss

    def test_snapshots_kept(self, trainer_setup):
        trainer, train, _ = trainer_setup
        trainer.train(train.x, train.y, epochs=2, keep_snapshots=True)
        assert len(trainer.snapshots) == 2
        # Snapshots are distinct (weights moved between epochs).
        first = trainer.snapshots[0][0]["weights"]
        second = trainer.snapshots[1][0]["weights"]
        assert not np.allclose(first, second)

    def test_epoch_end_hook_called(self, trainer_setup):
        trainer, train, _ = trainer_setup
        calls = []
        trainer.on_epoch_end = lambda epoch, t: calls.append(epoch)
        trainer.train(train.x, train.y, epochs=3)
        assert calls == [0, 1, 2]

    def test_hook_can_repartition(self, trainer_setup):
        """The dynamic re-assessment path: re-partitioning mid-training."""
        trainer, train, _ = trainer_setup

        def repartition(epoch, t):
            if epoch == 0:
                t.partitioned.set_partition(3)

        trainer.on_epoch_end = repartition
        reports = trainer.train(train.x, train.y, epochs=2)
        assert reports[0].partition == 2
        assert reports[1].partition == 3

    def test_augmenter_applies(self, rng, platform, tiny_cifar):
        train, _ = tiny_cifar
        enclave = platform.create_enclave("aug")
        enclave.init()
        net = tiny_testnet(rng.child("net").generator)
        trainer = ConfidentialTrainer(
            PartitionedNetwork(net, 1, enclave), Sgd(0.02),
            batch_rng=rng.child("b").generator,
            augmenter=Augmenter(rng=enclave.trusted_rng.generator),
            batch_size=16,
        )
        reports = trainer.train(train.x, train.y, epochs=1)
        assert np.isfinite(reports[0].mean_loss)


class TestFreezeSchedule:
    def test_invalid_epoch(self):
        with pytest.raises(ConfigurationError):
            FreezeSchedule(freeze_at_epoch=-1)

    def test_applies_at_epoch(self, rng, platform):
        enclave = platform.create_enclave("f")
        enclave.init()
        net = tiny_testnet(rng.child("n").generator)
        partitioned = PartitionedNetwork(net, 2, enclave)
        schedule = FreezeSchedule(freeze_at_epoch=2)
        assert not schedule.apply(partitioned, epoch=1)
        assert not net.layers[0].frozen
        assert schedule.apply(partitioned, epoch=2)
        assert net.layers[0].frozen and net.layers[1].frozen
        assert not net.layers[2].frozen

    def test_frozen_epochs_faster(self, rng, platform, tiny_cifar):
        """Simulated epoch time drops once the FrontNet freezes."""
        train, _ = tiny_cifar
        enclave = platform.create_enclave("perf")
        enclave.init()
        net = tiny_testnet(rng.child("n").generator)
        trainer = ConfidentialTrainer(
            PartitionedNetwork(net, 3, enclave), Sgd(0.02),
            batch_rng=rng.child("b").generator, batch_size=16,
            freeze_schedule=FreezeSchedule(freeze_at_epoch=2),
        )
        reports = trainer.train(train.x, train.y, epochs=4)
        unfrozen_time = np.mean([r.simulated_seconds for r in reports[:2]])
        frozen_time = np.mean([r.simulated_seconds for r in reports[2:]])
        assert frozen_time < unfrozen_time
        assert reports[3].frontnet_frozen and not reports[0].frontnet_frozen

    def test_frozen_weights_do_not_move(self, rng, platform, tiny_cifar):
        train, _ = tiny_cifar
        enclave = platform.create_enclave("fw")
        enclave.init()
        net = tiny_testnet(rng.child("n").generator)
        trainer = ConfidentialTrainer(
            PartitionedNetwork(net, 2, enclave), Sgd(0.05),
            batch_rng=rng.child("b").generator, batch_size=16,
            freeze_schedule=FreezeSchedule(freeze_at_epoch=0),
        )
        w0 = net.layers[0].weights.copy()
        trainer.train(train.x, train.y, epochs=2)
        np.testing.assert_array_equal(net.layers[0].weights, w0)
