"""Misprediction query service tests."""

import numpy as np
import pytest

from repro.core.linkage import LinkageDatabase, LinkageRecord
from repro.core.query import QueryService
from repro.errors import QueryError


def _db(points, labels, sources=None):
    db = LinkageDatabase()
    sources = sources or [f"p{i % 2}" for i in range(len(points))]
    for i, (point, label) in enumerate(zip(points, labels)):
        db.add(LinkageRecord(
            fingerprint=np.asarray(point, dtype=np.float32),
            label=label, source=sources[i], digest=b"h" * 32, source_index=i,
        ))
    return db


class TestQuery:
    def test_nearest_first(self):
        db = _db([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]], [0, 0, 0])
        neighbors = QueryService(db).query(np.array([0.9, 0.0]), label=0, k=3)
        assert [n.record_index for n in neighbors] == [1, 0, 2]
        assert neighbors[0].distance == pytest.approx(0.1, abs=1e-6)
        assert [n.rank for n in neighbors] == [1, 2, 3]

    def test_label_filtering(self):
        db = _db([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]], [0, 1, 0])
        neighbors = QueryService(db).query(np.array([0.0, 0.0]), label=0, k=9)
        assert {n.record_index for n in neighbors} == {0, 2}

    def test_k_limits_results(self):
        db = _db([[float(i), 0.0] for i in range(10)], [0] * 10)
        assert len(QueryService(db).query(np.zeros(2), label=0, k=4)) == 4

    def test_missing_label_rejected(self):
        db = _db([[0.0, 0.0]], [0])
        with pytest.raises(QueryError):
            QueryService(db).query(np.zeros(2), label=7)

    def test_dimension_mismatch_rejected(self):
        db = _db([[0.0, 0.0]], [0])
        with pytest.raises(QueryError):
            QueryService(db).query(np.zeros(5), label=0)

    def test_invalid_k(self):
        db = _db([[0.0, 0.0]], [0])
        with pytest.raises(QueryError):
            QueryService(db).query(np.zeros(2), label=0, k=0)

    def test_query_batch(self):
        db = _db([[0.0, 0.0], [1.0, 1.0]], [0, 1])
        results = QueryService(db).query_batch(
            np.array([[0.1, 0.0], [0.9, 1.0]]), labels=[0, 1], k=1
        )
        assert results[0][0].record_index == 0
        assert results[1][0].record_index == 1

    def test_distances_monotone(self, generator):
        points = generator.normal(size=(30, 8))
        db = _db(points.tolist(), [0] * 30)
        neighbors = QueryService(db).query(generator.normal(size=8), label=0, k=30)
        distances = [n.distance for n in neighbors]
        assert distances == sorted(distances)


class TestStableTieBreaking:
    def test_equal_distances_rank_in_insertion_order(self):
        # Four records equidistant from the query: ranks must follow
        # insertion order so forensics reports are reproducible.
        db = _db([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0], [0.0, -1.0]],
                 [0, 0, 0, 0])
        neighbors = QueryService(db).query(np.zeros(2), label=0, k=4)
        assert [n.record_index for n in neighbors] == [0, 1, 2, 3]

    def test_partial_ties_keep_insertion_order(self):
        db = _db([[2.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 0.5]],
                 [0, 0, 0, 0])
        neighbors = QueryService(db).query(np.zeros(2), label=0, k=4)
        # 0.5 first, then the two distance-1.0 ties in insertion order.
        assert [n.record_index for n in neighbors] == [3, 1, 2, 0]


class TestStaleIndexInvalidation:
    def _record(self, point, label):
        return LinkageRecord(
            fingerprint=np.asarray(point, dtype=np.float32),
            label=label, source="p0", digest=b"h" * 32,
        )

    def test_kdtree_sees_records_added_after_first_query(self):
        db = _db([[0.0, 0.0], [4.0, 0.0]], [0, 0])
        service = QueryService(db, index="kdtree")
        assert len(service.query(np.zeros(2), label=0, k=9)) == 2
        # Regression: the cached per-label tree used to hide this record.
        db.add(self._record([0.1, 0.0], 0))
        neighbors = service.query(np.zeros(2), label=0, k=9)
        assert len(neighbors) == 3
        assert neighbors[0].record_index == 0
        assert neighbors[1].record_index == 2  # the new record, d=0.1

    def test_growth_in_other_label_keeps_cached_tree(self):
        db = _db([[0.0, 0.0], [1.0, 0.0]], [0, 0])
        service = QueryService(db, index="kdtree")
        service.query(np.zeros(2), label=0, k=1)
        tree_first = service._trees[0][0]
        db.add(self._record([5.0, 5.0], 1))  # different label
        service.query(np.zeros(2), label=0, k=1)
        assert service._trees[0][0] is tree_first

    def test_new_label_after_construction_is_queryable(self):
        db = _db([[0.0, 0.0]], [0])
        service = QueryService(db, index="kdtree")
        with pytest.raises(QueryError):
            service.query(np.zeros(2), label=3)
        db.add(self._record([1.0, 1.0], 3))
        assert service.query(np.zeros(2), label=3, k=1)[0].record_index == 1


class TestBatchVectorization:
    def _loop_reference(self, service, fingerprints, labels, k):
        return [service.query(fingerprints[i], int(labels[i]), k=k)
                for i in range(fingerprints.shape[0])]

    @pytest.mark.parametrize("index", ["brute", "kdtree"])
    def test_batch_parity_with_loop(self, generator, index):
        points = generator.normal(size=(80, 6)).astype(np.float32)
        labels = [i % 4 for i in range(80)]
        db = _db(points.tolist(), labels)
        service = QueryService(db, index=index)
        queries = points[:20] + generator.normal(
            size=(20, 6)).astype(np.float32) * 0.1
        query_labels = [labels[i] for i in range(20)]
        batched = service.query_batch(queries, query_labels, k=5)
        reference = self._loop_reference(service, queries, query_labels, k=5)
        assert batched == reference

    def test_batch_parity_with_ties(self):
        # Duplicate points => equal distances; grouping must not perturb
        # the stable insertion-order tie-break.
        points = [[1.0, 0.0], [0.0, 1.0], [1.0, 0.0], [0.0, 1.0]]
        db = _db(points, [0, 0, 0, 0])
        service = QueryService(db)
        queries = np.zeros((3, 2), dtype=np.float32)
        batched = service.query_batch(queries, [0, 0, 0], k=4)
        reference = self._loop_reference(service, queries, [0, 0, 0], k=4)
        assert batched == reference
        assert [n.record_index for n in batched[0]] == [0, 1, 2, 3]

    def test_batch_preserves_submission_order_across_labels(self, generator):
        points = generator.normal(size=(40, 4)).astype(np.float32)
        labels = [i % 3 for i in range(40)]
        db = _db(points.tolist(), labels)
        service = QueryService(db)
        # Interleaved labels: results must come back in submission order.
        order = [2, 0, 1, 1, 0, 2, 0]
        queries = points[:7]
        query_labels = [labels[i] for i in range(7)]
        shuffled = np.stack([queries[i] for i in order])
        shuffled_labels = [query_labels[i] for i in order]
        batched = service.query_batch(shuffled, shuffled_labels, k=3)
        for row, src in enumerate(order):
            assert batched[row] == service.query(queries[src],
                                                 query_labels[src], k=3)

    def test_batch_length_mismatch_rejected(self):
        db = _db([[0.0, 0.0]], [0])
        with pytest.raises(QueryError):
            QueryService(db).query_batch(np.zeros((2, 2)), labels=[0])

    def test_batch_invalid_k_rejected(self):
        db = _db([[0.0, 0.0]], [0])
        with pytest.raises(QueryError):
            QueryService(db).query_batch(np.zeros((1, 2)), labels=[0], k=0)
