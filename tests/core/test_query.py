"""Misprediction query service tests."""

import numpy as np
import pytest

from repro.core.linkage import LinkageDatabase, LinkageRecord
from repro.core.query import QueryService
from repro.errors import QueryError


def _db(points, labels, sources=None):
    db = LinkageDatabase()
    sources = sources or [f"p{i % 2}" for i in range(len(points))]
    for i, (point, label) in enumerate(zip(points, labels)):
        db.add(LinkageRecord(
            fingerprint=np.asarray(point, dtype=np.float32),
            label=label, source=sources[i], digest=b"h" * 32, source_index=i,
        ))
    return db


class TestQuery:
    def test_nearest_first(self):
        db = _db([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]], [0, 0, 0])
        neighbors = QueryService(db).query(np.array([0.9, 0.0]), label=0, k=3)
        assert [n.record_index for n in neighbors] == [1, 0, 2]
        assert neighbors[0].distance == pytest.approx(0.1, abs=1e-6)
        assert [n.rank for n in neighbors] == [1, 2, 3]

    def test_label_filtering(self):
        db = _db([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]], [0, 1, 0])
        neighbors = QueryService(db).query(np.array([0.0, 0.0]), label=0, k=9)
        assert {n.record_index for n in neighbors} == {0, 2}

    def test_k_limits_results(self):
        db = _db([[float(i), 0.0] for i in range(10)], [0] * 10)
        assert len(QueryService(db).query(np.zeros(2), label=0, k=4)) == 4

    def test_missing_label_rejected(self):
        db = _db([[0.0, 0.0]], [0])
        with pytest.raises(QueryError):
            QueryService(db).query(np.zeros(2), label=7)

    def test_dimension_mismatch_rejected(self):
        db = _db([[0.0, 0.0]], [0])
        with pytest.raises(QueryError):
            QueryService(db).query(np.zeros(5), label=0)

    def test_invalid_k(self):
        db = _db([[0.0, 0.0]], [0])
        with pytest.raises(QueryError):
            QueryService(db).query(np.zeros(2), label=0, k=0)

    def test_query_batch(self):
        db = _db([[0.0, 0.0], [1.0, 1.0]], [0, 1])
        results = QueryService(db).query_batch(
            np.array([[0.1, 0.0], [0.9, 1.0]]), labels=[0, 1], k=1
        )
        assert results[0][0].record_index == 0
        assert results[1][0].record_index == 1

    def test_distances_monotone(self, generator):
        points = generator.normal(size=(30, 8))
        db = _db(points.tolist(), [0] * 30)
        neighbors = QueryService(db).query(generator.normal(size=8), label=0, k=30)
        distances = [n.distance for n in neighbors]
        assert distances == sorted(distances)
