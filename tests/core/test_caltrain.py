"""CalTrain facade integration tests — the full Fig. 2 pipeline."""

import numpy as np
import pytest

from repro.core.caltrain import CalTrain, CalTrainConfig
from repro.data.datasets import synthetic_cifar
from repro.errors import ConfigurationError, TrainingError
from repro.federation.participant import TrainingParticipant
from repro.nn.zoo import tiny_testnet
from repro.utils.rng import RngStream


@pytest.fixture
def config():
    return CalTrainConfig(
        seed=7, epochs=2, batch_size=16, partition=1, augment=False,
        network_factory=lambda gen: tiny_testnet(
            gen, input_shape=(8, 8, 3), num_classes=4
        ),
    )


@pytest.fixture
def world(config):
    rng = RngStream(99, "world")
    train, test = synthetic_cifar(rng.child("data"), num_train=192, num_test=48,
                                  num_classes=4, shape=(8, 8, 3))
    system = CalTrain(config)
    participants = []
    for i, ds in enumerate(train.split([0.5, 0.5],
                                       rng=rng.child("split").generator)):
        participant = TrainingParticipant(f"p{i}", ds, rng.child(f"p{i}"))
        system.register_participant(participant)
        system.submit_data(participant)
        participants.append(participant)
    return system, participants, test


class TestPipeline:
    def test_full_pipeline(self, world):
        system, participants, test = world
        reports = system.train(test_x=test.x, test_y=test.y)
        assert len(reports) == 2
        assert system.decryption_summary.accepted == 192

        db = system.fingerprint_stage()
        assert len(db) == 192
        service = system.query_service()
        labels, _, fps = system.fingerprinter.predict_with_fingerprint(test.x[:2])
        neighbors = service.query(fps[0], int(labels[0]), k=3)
        assert len(neighbors) == 3

        investigator = system.investigator()
        result = investigator.investigate(
            test.x[:2], participants=system.participants
        )
        assert all(result.verified_disclosures.values())

    def test_stage_ordering_enforced(self, config):
        system = CalTrain(config)
        with pytest.raises(TrainingError):
            system.train()  # nothing submitted
        with pytest.raises(TrainingError):
            system.fingerprint_stage()
        with pytest.raises(TrainingError):
            system.query_service()
        with pytest.raises(TrainingError):
            system.investigator()

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ConfigurationError):
            CalTrain(CalTrainConfig(architecture="resnet-9000"))

    def test_named_architectures_resolve(self):
        system = CalTrain(CalTrainConfig(architecture="cifar10-10layer",
                                         width_scale=0.05, epochs=1))
        assert "conv" in system.network_config

    def test_expected_measurement_stable(self, config):
        a = CalTrain(config)
        b = CalTrain(config)
        assert a.expected_measurement == b.expected_measurement

    def test_kinds_recorded_in_linkage(self, world):
        system, participants, test = world
        system.train()
        kinds = {
            "p0": np.array(["poisoned"] * 3 + ["normal"] * 93),
            "p1": np.array(["normal"] * 96),
        }
        db = system.fingerprint_stage(kinds_by_source=kinds)
        poisoned = [r for r in db.records() if r.kind == "poisoned"]
        assert len(poisoned) == 3
        assert all(r.source == "p0" for r in poisoned)

    def test_reassessment_hook(self, config):
        """With an assessor installed and reassess on, training adjusts the
        partition to the participants' consensus vote."""
        rng = RngStream(5, "re")
        train, _ = synthetic_cifar(rng.child("d"), num_train=96, num_test=16,
                                   num_classes=4, shape=(8, 8, 3))
        config.reassess_every_epoch = True
        config.assess_samples = 1
        system = CalTrain(config)
        participant = TrainingParticipant("p0", train, rng.child("p0"))
        system.register_participant(participant)
        system.submit_data(participant)

        from repro.core.assessment import ExposureAssessor

        oracle = tiny_testnet(rng.child("oracle").generator,
                              input_shape=(8, 8, 3), num_classes=4)
        system.set_assessor(ExposureAssessor(oracle, max_channels_per_layer=2))
        reports = system.train()
        assert len(reports) == 2
        assert 1 <= system.partitioned.partition <= system.model.penultimate_index()
