"""Fingerprinting tests."""

import numpy as np
import pytest

from repro.core.fingerprint import Fingerprinter, normalize_fingerprints
from repro.errors import ConfigurationError


class TestNormalize:
    def test_unit_norm(self, generator):
        emb = generator.normal(size=(5, 8))
        norms = np.linalg.norm(normalize_fingerprints(emb), axis=1)
        np.testing.assert_allclose(norms, np.ones(5), rtol=1e-6)

    def test_zero_rows_stay_zero(self):
        emb = np.zeros((2, 4))
        np.testing.assert_array_equal(normalize_fingerprints(emb), emb)


class TestFingerprinter:
    def test_dimension_is_penultimate_size(self, tiny_net):
        fingerprinter = Fingerprinter(tiny_net)
        assert fingerprinter.dimension == 4  # avg output = classes

    def test_fingerprints_normalized(self, tiny_net, generator):
        fingerprinter = Fingerprinter(tiny_net)
        fps = fingerprinter.fingerprint(
            generator.random((6, 8, 8, 3)).astype(np.float32)
        )
        assert fps.shape == (6, 4)
        np.testing.assert_allclose(np.linalg.norm(fps, axis=1), np.ones(6), rtol=1e-5)

    def test_batching_consistent(self, tiny_net, generator):
        x = generator.random((10, 8, 8, 3)).astype(np.float32)
        small = Fingerprinter(tiny_net, batch_size=3).fingerprint(x)
        large = Fingerprinter(tiny_net, batch_size=100).fingerprint(x)
        np.testing.assert_allclose(small, large, rtol=1e-5)

    def test_predict_with_fingerprint_consistent(self, tiny_net, generator):
        x = generator.random((4, 8, 8, 3)).astype(np.float32)
        labels, probs, fps = Fingerprinter(tiny_net).predict_with_fingerprint(x)
        np.testing.assert_array_equal(labels, probs.argmax(axis=1))
        np.testing.assert_allclose(
            fps, Fingerprinter(tiny_net).fingerprint(x), rtol=1e-5
        )

    def test_enclave_cost_charged(self, tiny_net, platform, generator):
        enclave = platform.create_enclave("fp")
        enclave.init()
        fingerprinter = Fingerprinter(tiny_net, enclave=enclave)
        before = platform.clock.now
        fingerprinter.fingerprint(generator.random((4, 8, 8, 3)).astype(np.float32))
        assert platform.clock.now > before

    def test_whole_model_in_enclave_epc(self, tiny_net, platform):
        enclave = platform.create_enclave("fp")
        enclave.init()
        Fingerprinter(tiny_net, enclave=enclave)
        assert "data/fingerprint-model" in enclave.epc.usage_report()

    def test_invalid_batch_size(self, tiny_net):
        with pytest.raises(ConfigurationError):
            Fingerprinter(tiny_net, batch_size=0)
