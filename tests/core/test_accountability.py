"""Accountability investigator tests."""

import numpy as np
import pytest

from repro.core.accountability import Investigator
from repro.core.fingerprint import Fingerprinter
from repro.core.linkage import LinkageDatabase, instance_digest
from repro.core.query import QueryService
from repro.data.datasets import Dataset
from repro.federation.participant import TrainingParticipant
from repro.nn.optimizers import Sgd
from repro.nn.zoo import tiny_testnet
from repro.data.batching import iterate_minibatches


@pytest.fixture
def investigation_world(rng, tiny_cifar):
    """A trained model, a linkage DB over two participants' data, and a
    poisoned subset planted in participant p1's share."""
    train, test = tiny_cifar
    net = tiny_testnet(rng.child("net").generator)
    optimizer = Sgd(0.02, 0.9)
    batch_rng = rng.child("batches").generator
    for _ in range(8):
        for xb, yb in iterate_minibatches(train.x, train.y, 16, rng=batch_rng):
            net.train_batch(xb, yb, optimizer)

    halves = train.split([0.5, 0.5], rng=rng.child("split").generator)
    participants = {}
    db = LinkageDatabase()
    fingerprinter = Fingerprinter(net)
    for pid, ds in zip(("p0", "p1"), halves):
        participants[pid] = TrainingParticipant(pid, ds, rng.child(pid))
        fps = fingerprinter.fingerprint(ds.x)
        kinds = ["poisoned" if (pid == "p1" and i < 10) else "normal"
                 for i in range(len(ds))]
        db.add_batch(
            fps, ds.y.tolist(), [pid] * len(ds),
            [instance_digest(ds.x[i]) for i in range(len(ds))],
            source_indices=list(range(len(ds))), kinds=kinds,
        )
    investigator = Investigator(fingerprinter, QueryService(db),
                                neighbors_per_query=5)
    return investigator, participants, test, db


class TestInvestigator:
    def test_investigation_structure(self, investigation_world):
        investigator, participants, test, _ = investigation_world
        result = investigator.investigate(test.x[:3])
        assert len(result.neighbor_lists) == 3
        assert all(len(lst) == 5 for lst in result.neighbor_lists)
        assert result.suspicious_records
        assert sum(result.source_counts.values()) == 15

    def test_disclosure_verification(self, investigation_world):
        investigator, participants, test, _ = investigation_world
        result = investigator.investigate(test.x[:3], participants=participants)
        assert result.verified_disclosures
        assert all(result.verified_disclosures.values())

    def test_missing_participant_marked_unverified(self, investigation_world):
        investigator, participants, test, _ = investigation_world
        only_p0 = {"p0": participants["p0"]}
        result = investigator.investigate(test.x[:3], participants=only_p0)
        p1_records = [
            i for i in result.suspicious_records
            if investigator.query_service.database.record(i).source == "p1"
        ]
        assert all(not result.verified_disclosures[i] for i in p1_records)

    def test_tampered_disclosure_fails_verification(self, investigation_world, rng):
        """A participant returning different data than it trained on is
        caught by the hash digest H."""
        investigator, participants, test, _ = investigation_world
        cheater = participants["p1"]
        cheater.dataset.x[:] = cheater.dataset.x[::-1].copy()  # swap contents
        result = investigator.investigate(test.x[:3], participants=participants)
        p1_flagged = [
            i for i in result.suspicious_records
            if investigator.query_service.database.record(i).source == "p1"
        ]
        if p1_flagged:  # only meaningful when p1 shows up in neighbours
            # Reversal maps index i -> n-1-i, so at most the middle record
            # could still verify.
            failures = [i for i in p1_flagged if not result.verified_disclosures[i]]
            assert failures

    def test_distance_threshold_filters(self, investigation_world):
        investigator, _, test, _ = investigation_world
        strict = investigator.investigate(test.x[:3], distance_threshold=0.0)
        assert strict.suspicious_records == []

    def test_source_share_threshold(self, investigation_world):
        investigator, _, test, _ = investigation_world
        lax = investigator.investigate(test.x[:3], source_share_threshold=0.0)
        strict = investigator.investigate(test.x[:3], source_share_threshold=1.0)
        assert len(strict.implicated_sources) <= len(lax.implicated_sources)

    def test_detection_metrics_computable(self, investigation_world):
        investigator, _, test, db = investigation_world
        result = investigator.investigate(test.x[:3])
        kinds = [r.kind for r in db.records()]
        metrics = result.detection_metrics(kinds)
        assert set(metrics) >= {"precision", "recall", "f1"}
