"""Information-exposure assessment tests."""

import numpy as np
import pytest

from repro.core.assessment import (
    AssessmentResult,
    ExposureAssessor,
    LayerExposure,
    train_validation_oracle,
)
from repro.errors import ConfigurationError
from repro.nn.zoo import tiny_testnet


class TestLayerExposure:
    def test_leak_predicate(self):
        exposure = LayerExposure(layer_index=0, kl_min=0.5, kl_max=3.0)
        assert exposure.leaks(baseline=1.0)
        assert not exposure.leaks(baseline=0.4)


class TestOptimalPartition:
    def _layers(self, mins):
        return [
            LayerExposure(layer_index=i, kl_min=m, kl_max=m + 1)
            for i, m in enumerate(mins)
        ]

    def test_paper_pattern(self):
        """Layers 1-3 leak, 4+ safe (baseline 1.0) -> enclose 4 layers."""
        layers = self._layers([0.0, 0.1, 0.2, 2.0, 3.0, 3.0])
        assert ExposureAssessor._optimal_partition(layers, 1.0) == 4

    def test_nothing_leaks(self):
        layers = self._layers([2.0, 2.0, 2.0])
        assert ExposureAssessor._optimal_partition(layers, 1.0) == 1

    def test_everything_leaks_capped(self):
        layers = self._layers([0.0, 0.0, 0.0])
        assert ExposureAssessor._optimal_partition(layers, 1.0) == 3

    def test_interior_safe_layer_not_enough(self):
        """A safe layer sandwiched between leaking ones cannot be the
        partition point: deeper IRs would still leak."""
        layers = self._layers([0.0, 2.0, 0.0, 2.0])
        assert ExposureAssessor._optimal_partition(layers, 1.0) == 4


class TestAssessor:
    def test_assess_structure(self, rng, tiny_cifar):
        train, test = tiny_cifar
        oracle = tiny_testnet(rng.child("oracle").generator)
        gen_net = tiny_testnet(rng.child("gen").generator)
        assessor = ExposureAssessor(oracle, max_channels_per_layer=2)
        result = assessor.assess(gen_net, test.x[:2])
        # tiny_testnet penultimate index is 3 -> four assessable layers.
        assert len(result.layers) == 4
        assert result.uniform_baseline > 0
        assert 1 <= result.optimal_partition <= 4
        for lo, hi in result.layer_ranges():
            assert lo <= hi

    def test_assess_training_sequence(self, rng, tiny_cifar):
        _, test = tiny_cifar
        oracle = tiny_testnet(rng.child("oracle").generator)
        models = [tiny_testnet(rng.child(f"m{i}").generator) for i in range(3)]
        assessor = ExposureAssessor(oracle, max_channels_per_layer=2)
        results = assessor.assess_training(models, test.x[:2])
        assert len(results) == 3
        assert all(isinstance(r, AssessmentResult) for r in results)

    def test_invalid_inputs_rejected(self, rng):
        oracle = tiny_testnet(rng.child("o").generator)
        assessor = ExposureAssessor(oracle)
        with pytest.raises(ConfigurationError):
            assessor.assess(tiny_testnet(rng.child("g").generator),
                            np.zeros((8, 8, 3)))

    def test_invalid_channel_cap(self, rng):
        with pytest.raises(ConfigurationError):
            ExposureAssessor(tiny_testnet(rng.child("o").generator),
                             max_channels_per_layer=0)


class TestOracleBuilder:
    def test_oracle_has_background_class(self, rng, tiny_cifar):
        train, test = tiny_cifar
        oracle = train_validation_oracle(
            train.x, train.y, rng.child("oracle"), epochs=2, width_scale=0.05
        )
        probs = oracle.predict(test.x[:4])
        assert probs.shape == (4, train.num_classes + 1)

    def test_oracle_learns_classes(self, rng, tiny_cifar):
        train, test = tiny_cifar
        oracle = train_validation_oracle(
            train.x, train.y, rng.child("oracle"), epochs=8, width_scale=0.15,
            learning_rate=0.03,
        )
        probs = oracle.predict(test.x)
        accuracy = float(np.mean(probs.argmax(axis=1) == test.y))
        assert accuracy > 0.5

    def test_oracle_flags_smooth_fields_as_background(self, rng, tiny_cifar):
        train, _ = tiny_cifar
        oracle = train_validation_oracle(
            train.x, train.y, rng.child("oracle"), epochs=8, width_scale=0.15,
            learning_rate=0.03,
        )
        from repro.analysis.images import bilinear_resize

        gen = rng.child("smooth").generator
        h, w, c = train.x.shape[1:]
        smooth = np.stack([
            np.repeat(bilinear_resize(gen.random((3, 3)), h, w)[..., None], c, axis=-1)
            for _ in range(6)
        ]).astype(np.float32)
        probs = oracle.predict(smooth)
        background = train.num_classes
        assert float(np.mean(probs.argmax(axis=1) == background)) > 0.5
