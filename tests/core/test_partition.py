"""FrontNet/BackNet partitioned execution tests."""

import numpy as np
import pytest

from repro.core.partition import PartitionedNetwork
from repro.crypto.aead import AesGcm
from repro.errors import AuthenticationError, PartitionError
from repro.nn.optimizers import Sgd
from repro.nn.zoo import tiny_testnet


@pytest.fixture
def enclave(platform):
    enclave = platform.create_enclave("training")
    enclave.init()
    return enclave


@pytest.fixture
def batch(generator):
    x = generator.random((8, 8, 8, 3)).astype(np.float32)
    y = generator.integers(0, 4, size=8)
    return x, y


class TestPartitionValidation:
    def test_valid_range(self, tiny_net, enclave):
        limit = tiny_net.penultimate_index()
        PartitionedNetwork(tiny_net, 0, enclave)
        PartitionedNetwork(tiny_net, limit, enclave)

    def test_cannot_split_past_penultimate(self, tiny_net, enclave):
        with pytest.raises(PartitionError):
            PartitionedNetwork(tiny_net, len(tiny_net.layers), enclave)

    def test_negative_rejected(self, tiny_net, enclave):
        with pytest.raises(PartitionError):
            PartitionedNetwork(tiny_net, -1, enclave)

    def test_repartition(self, tiny_net, enclave):
        partitioned = PartitionedNetwork(tiny_net, 1, enclave)
        partitioned.set_partition(3)
        assert partitioned.partition == 3
        assert len(partitioned.frontnet_layers) == 3


class TestEquivalence:
    def test_forward_matches_unpartitioned(self, rng, enclave, batch):
        x, _ = batch
        net_a = tiny_testnet(rng.child("same").generator)
        net_b = tiny_testnet(rng.child("same").generator)
        plain = net_a.predict(x)
        partitioned = PartitionedNetwork(net_b, 2, enclave).predict(x)
        np.testing.assert_allclose(plain, partitioned, rtol=1e-5)

    def test_training_matches_unpartitioned(self, rng, enclave, batch):
        """Partitioned SGD computes bit-identical weight updates."""
        x, y = batch
        net_a = tiny_testnet(rng.child("same").generator)
        net_b = tiny_testnet(rng.child("same").generator)
        loss_a = net_a.train_batch(x, y, Sgd(0.05, momentum=0.0))
        loss_b = PartitionedNetwork(net_b, 2, enclave).train_batch(
            x, y, Sgd(0.05, momentum=0.0)
        )
        assert loss_a == pytest.approx(loss_b, rel=1e-6)
        for la, lb in zip(net_a.layers, net_b.layers):
            for name, arr in la.params().items():
                np.testing.assert_allclose(arr, lb.params()[name], rtol=1e-6)

    def test_partition_zero_is_nonprotected_baseline(self, rng, batch):
        x, y = batch
        net = tiny_testnet(rng.child("n").generator)
        partitioned = PartitionedNetwork(net, 0, enclave=None)
        loss = partitioned.train_batch(x, y, Sgd(0.05))
        assert np.isfinite(loss)


class TestCostAccounting:
    def test_deeper_partition_costs_more(self, rng, platform, batch):
        """With the IR payload held constant (equal-width conv layers),
        enclosing more conv layers strictly raises simulated cost — the
        Fig. 6 effect."""
        from repro.nn.layers import (
            AvgPoolLayer,
            ConvLayer,
            CostLayer,
            SoftmaxLayer,
        )
        from repro.nn.network import Network

        x, y = batch

        def make_net():
            layers = [
                ConvLayer(16, 3, 1),
                ConvLayer(16, 3, 1),  # same output shape as layer 1
                ConvLayer(4, 1, 1, activation="linear"),
                AvgPoolLayer(),
                SoftmaxLayer(),
                CostLayer(),
            ]
            return Network((8, 8, 3), layers, rng=rng.child("same").fork_generator())

        def epoch_cost(partition):
            enclave = platform.create_enclave(f"bench-{partition}")
            enclave.init()
            partitioned = PartitionedNetwork(make_net(), partition, enclave)
            start = platform.clock.now
            partitioned.train_batch(x, y, Sgd(0.05))
            return platform.clock.now - start

        assert epoch_cost(2) > epoch_cost(1) > epoch_cost(0) > 0

    def test_transitions_counted(self, rng, enclave, batch):
        x, y = batch
        net = tiny_testnet(rng.child("n").generator)
        partitioned = PartitionedNetwork(net, 2, enclave)
        partitioned.train_batch(x, y, Sgd(0.05))
        assert enclave.ocall_count >= 1  # IR shipped out

    def test_paging_cliff(self, rng, batch):
        """A FrontNet bigger than the EPC triggers paging cost."""
        from repro.enclave.platform import SgxPlatform
        from repro.utils.rng import RngStream

        x, y = batch
        tiny_epc = SgxPlatform(rng=RngStream(1).child("p"), epc_bytes=4096 * 4)
        big_epc = SgxPlatform(rng=RngStream(1).child("p"), epc_bytes=4096 * 100000)

        def cost(platform):
            enclave = platform.create_enclave("e")
            enclave.init()
            net = tiny_testnet(rng.child("same").generator)
            partitioned = PartitionedNetwork(net, 3, enclave)
            start = platform.clock.now
            partitioned.train_batch(x, y, Sgd(0.05))
            return platform.clock.now - start, enclave.epc.page_faults

        constrained_cost, constrained_faults = cost(tiny_epc)
        ample_cost, ample_faults = cost(big_epc)
        assert constrained_faults > 0 and ample_faults == 0
        assert constrained_cost > ample_cost

    def test_frozen_frontnet_cheaper(self, rng, platform, batch):
        x, y = batch

        def epoch_cost(frozen):
            enclave = platform.create_enclave(f"freeze-{frozen}")
            enclave.init()
            net = tiny_testnet(rng.child("same").generator)
            partitioned = PartitionedNetwork(net, 3, enclave)
            if frozen:
                net.freeze_layers(3)
            start = platform.clock.now
            partitioned.train_batch(x, y, Sgd(0.05))
            return platform.clock.now - start

        assert epoch_cost(True) < epoch_cost(False)


class TestModelRelease:
    def test_frontnet_encrypted_roundtrip(self, rng, enclave, batch):
        net_a = tiny_testnet(rng.child("trained").generator)
        part_a = PartitionedNetwork(net_a, 2, enclave)
        cipher = AesGcm(bytes(16))
        sealed = part_a.export_frontnet_encrypted(cipher, b"\x01" * 12)

        net_b = tiny_testnet(rng.child("fresh").generator)
        part_b = PartitionedNetwork(net_b, 2, enclave=None)
        part_b.import_frontnet_encrypted(cipher, b"\x01" * 12, sealed)
        for la, lb in zip(part_a.frontnet_layers, part_b.frontnet_layers):
            for name, arr in la.params().items():
                np.testing.assert_array_equal(arr, lb.params()[name])

    def test_wrong_key_cannot_decrypt_frontnet(self, rng, enclave):
        net = tiny_testnet(rng.child("t").generator)
        partitioned = PartitionedNetwork(net, 2, enclave)
        sealed = partitioned.export_frontnet_encrypted(AesGcm(bytes(16)), b"\x01" * 12)
        with pytest.raises(AuthenticationError):
            partitioned.import_frontnet_encrypted(
                AesGcm(bytes(range(16))), b"\x01" * 12, sealed
            )
