"""Linkage structure Omega = [F, Y, S, H] and database tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linkage import LinkageDatabase, LinkageRecord, instance_digest
from repro.errors import LinkageError


def _record(label=0, source="p0", dim=4, seed=0, kind="normal"):
    gen = np.random.default_rng(seed)
    image = gen.random((2, 2, 1)).astype(np.float32)
    return LinkageRecord(
        fingerprint=gen.normal(size=dim).astype(np.float32),
        label=label,
        source=source,
        digest=instance_digest(image),
        source_index=seed,
        kind=kind,
    ), image


class TestDatabase:
    def test_add_and_count(self):
        db = LinkageDatabase()
        record, _ = _record()
        db.add(record)
        assert len(db) == 1
        assert db.dimension == 4

    def test_dimension_mismatch_rejected(self):
        db = LinkageDatabase()
        db.add(_record(dim=4)[0])
        with pytest.raises(LinkageError):
            db.add(_record(dim=5)[0])

    def test_by_label_index(self):
        db = LinkageDatabase()
        for i, label in enumerate([0, 1, 0, 2, 0]):
            db.add(_record(label=label, seed=i)[0])
        matrix, indices = db.by_label(0)
        assert matrix.shape == (3, 4)
        assert indices == [0, 2, 4]
        assert db.labels() == [0, 1, 2]

    def test_by_label_missing(self):
        db = LinkageDatabase()
        db.add(_record(label=0)[0])
        matrix, indices = db.by_label(9)
        assert matrix.shape[0] == 0 and indices == []

    def test_add_batch_validates_lengths(self):
        db = LinkageDatabase()
        with pytest.raises(LinkageError):
            db.add_batch(np.zeros((2, 4)), [0], ["p0"], [b"h"])

    def test_verify_instance(self):
        db = LinkageDatabase()
        record, image = _record()
        db.add(record)
        assert db.verify_instance(0, image)
        assert not db.verify_instance(0, image + 1e-3)


class TestSerialization:
    def test_roundtrip(self):
        db = LinkageDatabase()
        for i in range(5):
            db.add(_record(label=i % 2, source=f"p{i % 3}", seed=i,
                           kind="poisoned" if i == 3 else "normal")[0])
        restored = LinkageDatabase.from_bytes(db.to_bytes())
        assert len(restored) == 5
        for i in range(5):
            original, back = db.record(i), restored.record(i)
            np.testing.assert_allclose(original.fingerprint, back.fingerprint,
                                       rtol=1e-6)
            assert (original.label, original.source, original.digest,
                    original.source_index, original.kind) == (
                back.label, back.source, back.digest,
                back.source_index, back.kind)

    def test_empty_roundtrip(self):
        restored = LinkageDatabase.from_bytes(LinkageDatabase().to_bytes())
        assert len(restored) == 0

    def test_sealable_in_enclave(self, platform):
        """The database survives seal/unseal in the fingerprinting enclave."""
        from repro.enclave.sealing import seal, unseal

        enclave = platform.create_enclave("fp")
        enclave.init()
        db = LinkageDatabase()
        db.add(_record()[0])
        blob = seal(enclave, db.to_bytes())
        restored = LinkageDatabase.from_bytes(unseal(enclave, blob))
        assert len(restored) == 1

    @settings(max_examples=10, deadline=None)
    @given(labels=st.lists(st.integers(min_value=0, max_value=3),
                           min_size=1, max_size=12))
    def test_label_index_partition_property(self, labels):
        """Every record appears in exactly one label bucket."""
        db = LinkageDatabase()
        for i, label in enumerate(labels):
            db.add(_record(label=label, seed=i)[0])
        total = sum(len(db.by_label(lab)[1]) for lab in db.labels())
        assert total == len(labels)


class TestInstanceDigest:
    def test_content_sensitive(self, generator):
        image = generator.random((4, 4, 3)).astype(np.float32)
        assert instance_digest(image) != instance_digest(image * 0.999)

    def test_deterministic(self, generator):
        image = generator.random((4, 4, 3)).astype(np.float32)
        assert instance_digest(image) == instance_digest(image.copy())
