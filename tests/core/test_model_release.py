"""Model release flow tests (encrypted FrontNet per participant)."""

import numpy as np
import pytest

from repro.core.caltrain import CalTrain, CalTrainConfig
from repro.crypto.aead import AesGcm
from repro.data.datasets import synthetic_cifar
from repro.errors import AuthenticationError, ConfigurationError, TrainingError
from repro.federation.participant import TrainingParticipant
from repro.nn.zoo import tiny_testnet
from repro.utils.rng import RngStream


@pytest.fixture
def trained_system():
    rng = RngStream(55, "release")
    train, test = synthetic_cifar(rng.child("data"), num_train=120,
                                  num_test=30, num_classes=4, shape=(8, 8, 3))
    system = CalTrain(CalTrainConfig(
        seed=7, epochs=1, batch_size=16, partition=2, augment=False,
        network_factory=lambda gen: tiny_testnet(gen, input_shape=(8, 8, 3),
                                                 num_classes=4),
    ))
    participants = []
    for i, share in enumerate(train.split([0.5, 0.5],
                                          rng=rng.child("s").generator)):
        participant = TrainingParticipant(f"p{i}", share, rng.child(f"p{i}"))
        system.register_participant(participant)
        system.submit_data(participant)
        participants.append(participant)
    system.train()
    return system, participants, test


class TestModelRelease:
    def test_recipient_can_reconstruct_full_model(self, trained_system):
        system, participants, test = trained_system
        release = system.release_model("p0")

        # The participant rebuilds the network from the released config,
        # decrypts the FrontNet under its own key, loads the BackNet.
        from repro.core.partition import PartitionedNetwork
        from repro.nn.config import network_from_config

        rebuilt = network_from_config(
            release["network_config"].decode("utf-8"),
            rng=np.random.default_rng(0),
        )
        partitioned = PartitionedNetwork(rebuilt, system.partitioned.partition)
        cipher = AesGcm(participants[0].key.material)
        partitioned.import_frontnet_encrypted(
            cipher, release["frontnet_nonce"], release["frontnet_sealed"]
        )
        import io

        with np.load(io.BytesIO(release["backnet"])) as data:
            for key in data.files:
                layer_part, name = key.split("/", 1)
                idx = system.partitioned.partition + int(layer_part[len("layer"):])
                rebuilt.layers[idx].params()[name][...] = data[key]

        np.testing.assert_allclose(
            rebuilt.predict(test.x[:8]), system.model.predict(test.x[:8]),
            rtol=1e-5,
        )

    def test_other_participants_cannot_open_frontnet(self, trained_system):
        system, participants, _ = trained_system
        release = system.release_model("p0")
        wrong_cipher = AesGcm(participants[1].key.material)
        with pytest.raises(AuthenticationError):
            wrong_cipher.open(release["frontnet_nonce"],
                              release["frontnet_sealed"],
                              aad=b"caltrain-frontnet")

    def test_per_participant_releases_differ(self, trained_system):
        system, _, _ = trained_system
        a = system.release_model("p0")
        b = system.release_model("p1")
        assert a["frontnet_sealed"] != b["frontnet_sealed"]
        assert a["backnet"] == b["backnet"]  # the BackNet is public

    def test_unknown_participant_rejected(self, trained_system):
        system, _, _ = trained_system
        with pytest.raises(ConfigurationError):
            system.release_model("stranger")

    def test_release_before_training_rejected(self):
        system = CalTrain(CalTrainConfig(
            seed=7, epochs=1,
            network_factory=lambda gen: tiny_testnet(gen),
        ))
        with pytest.raises(TrainingError):
            system.release_model("p0")
