"""Audit log tests."""

import pytest

from repro.core.audit import AuditLog
from repro.errors import LinkageError


class TestAuditLog:
    def test_append_and_chain(self):
        log = AuditLog()
        first = log.append("participant-registered", participant="p0")
        second = log.append("data-accepted", source="p0", count=100)
        assert first.sequence == 0 and second.sequence == 1
        assert log.head == second.chain_hash
        assert log.verify_chain()

    def test_head_of_empty_log(self):
        log = AuditLog()
        assert len(log) == 0
        assert isinstance(log.head, bytes)

    def test_filter_by_kind(self):
        log = AuditLog()
        log.append("a", v=1)
        log.append("b", v=2)
        log.append("a", v=3)
        assert [e.details["v"] for e in log.events("a")] == [1, 3]

    def test_tamper_detected(self):
        log = AuditLog()
        log.append("decrypt", accepted=100, rejected=0)
        log.append("train", epochs=12)
        # Retroactively whitewash the rejection count.
        log._events[0].details["rejected"] = 0  # same value: still passes
        assert log.verify_chain()
        log._events[0].details["accepted"] = 500
        assert not log.verify_chain()

    def test_bytes_roundtrip(self):
        log = AuditLog()
        log.append("partition-changed", old=2, new=4, epoch=3)
        restored = AuditLog.from_bytes(log.to_bytes())
        assert len(restored) == 1
        assert restored.head == log.head
        assert restored.verify_chain()

    def test_tampered_bytes_rejected(self):
        log = AuditLog()
        log.append("x", value=1)
        blob = log.to_bytes().replace(b'"value":1', b'"value":2')
        with pytest.raises(LinkageError):
            AuditLog.from_bytes(blob)

    def test_sealable(self, platform):
        from repro.enclave.sealing import seal, unseal

        enclave = platform.create_enclave("audit")
        enclave.init()
        log = AuditLog()
        log.append("fingerprint-stage", records=240)
        blob = seal(enclave, log.to_bytes())
        restored = AuditLog.from_bytes(unseal(enclave, blob))
        assert restored.verify_chain() and len(restored) == 1
