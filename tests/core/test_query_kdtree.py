"""KD-tree query index tests."""

import numpy as np
import pytest

from repro.core.linkage import LinkageDatabase, LinkageRecord
from repro.core.query import QueryService
from repro.errors import ConfigurationError, QueryError


def _db(generator, n=60, dim=6, labels=3):
    db = LinkageDatabase()
    for i in range(n):
        db.add(LinkageRecord(
            fingerprint=generator.normal(size=dim).astype(np.float32),
            label=i % labels, source=f"p{i % 2}", digest=b"h" * 32,
            source_index=i,
        ))
    return db


class TestKdTreeIndex:
    def test_matches_brute_force(self, generator):
        db = _db(generator)
        brute = QueryService(db, index="brute")
        tree = QueryService(db, index="kdtree")
        query = generator.normal(size=6).astype(np.float32)
        for label in (0, 1, 2):
            a = brute.query(query, label, k=7)
            b = tree.query(query, label, k=7)
            assert [n.record_index for n in a] == [n.record_index for n in b]
            np.testing.assert_allclose(
                [n.distance for n in a], [n.distance for n in b], rtol=1e-5
            )

    def test_k_larger_than_class(self, generator):
        db = _db(generator, n=6, labels=3)  # two records per label
        service = QueryService(db, index="kdtree")
        neighbors = service.query(generator.normal(size=6), 0, k=10)
        assert len(neighbors) == 2

    def test_k_equals_one(self, generator):
        db = _db(generator)
        service = QueryService(db, index="kdtree")
        neighbors = service.query(generator.normal(size=6), 0, k=1)
        assert len(neighbors) == 1 and neighbors[0].rank == 1

    def test_missing_label(self, generator):
        service = QueryService(_db(generator), index="kdtree")
        with pytest.raises(QueryError):
            service.query(generator.normal(size=6), 99)

    def test_unknown_index_rejected(self, generator):
        with pytest.raises(ConfigurationError):
            QueryService(_db(generator), index="faiss")

    def test_tie_breaking_matches_brute(self, generator):
        # Regression: with duplicated fingerprints the tree used to rank
        # equal-distance neighbours by tree topology, not insertion order,
        # so kdtree and brute mode disagreed on which records to summon.
        db = LinkageDatabase()
        base = generator.normal(size=(4, 6)).astype(np.float32)
        for i in range(20):
            db.add(LinkageRecord(
                fingerprint=base[i % 4].copy(),  # 5 exact copies of each
                label=0, source=f"p{i}", digest=b"h" * 32, source_index=i,
            ))
        brute = QueryService(db, index="brute")
        tree = QueryService(db, index="kdtree")
        for k in (1, 3, 7, 12, 20):
            query = generator.normal(size=6).astype(np.float32)
            a = brute.query(query, 0, k=k)
            b = tree.query(query, 0, k=k)
            assert [n.record_index for n in a] == [n.record_index for n in b]
            assert [n.distance for n in a] == [n.distance for n in b]

    def test_batch_tie_breaking_matches_brute(self, generator):
        db = LinkageDatabase()
        point = generator.normal(size=6).astype(np.float32)
        for i in range(8):
            db.add(LinkageRecord(
                fingerprint=point.copy(), label=0, source=f"p{i}",
                digest=b"h" * 32, source_index=i,
            ))
        brute = QueryService(db, index="brute")
        tree = QueryService(db, index="kdtree")
        queries = generator.normal(size=(3, 6)).astype(np.float32)
        a = brute.query_batch(queries, [0, 0, 0], k=5)
        b = tree.query_batch(queries, [0, 0, 0], k=5)
        for row_a, row_b in zip(a, b):
            assert ([n.record_index for n in row_a]
                    == [n.record_index for n in row_b])

    def test_tree_reused_across_queries(self, generator):
        db = _db(generator)
        service = QueryService(db, index="kdtree")
        service.query(generator.normal(size=6), 0, k=1)
        tree_first = service._trees[0][0]
        service.query(generator.normal(size=6), 0, k=1)
        assert service._trees[0][0] is tree_first
