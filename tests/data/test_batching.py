"""Mini-batch iterator tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.batching import iterate_minibatches
from repro.errors import ConfigurationError


def _data(n):
    return np.arange(n, dtype=np.float32).reshape(n, 1), np.arange(n)


class TestIterateMinibatches:
    def test_covers_all_instances(self):
        x, y = _data(25)
        seen = np.concatenate(
            [yb for _, yb in iterate_minibatches(x, y, 4,
                                                 rng=np.random.default_rng(0))]
        )
        assert sorted(seen.tolist()) == list(range(25))

    def test_batch_sizes(self):
        x, y = _data(10)
        sizes = [xb.shape[0] for xb, _ in iterate_minibatches(x, y, 4)]
        assert sizes == [4, 4, 2]

    def test_drop_last(self):
        x, y = _data(10)
        sizes = [xb.shape[0] for xb, _ in iterate_minibatches(x, y, 4, drop_last=True)]
        assert sizes == [4, 4]

    def test_no_rng_preserves_order(self):
        x, y = _data(6)
        first_batch = next(iterate_minibatches(x, y, 3))
        np.testing.assert_array_equal(first_batch[1], [0, 1, 2])

    def test_rng_shuffles(self):
        x, y = _data(100)
        shuffled = next(iterate_minibatches(x, y, 100, rng=np.random.default_rng(0)))
        assert not np.array_equal(shuffled[1], y)

    def test_labels_track_inputs(self):
        x, y = _data(30)
        for xb, yb in iterate_minibatches(x, y, 7, rng=np.random.default_rng(1)):
            np.testing.assert_array_equal(xb[:, 0].astype(int), yb)

    def test_invalid_batch_size(self):
        x, y = _data(4)
        with pytest.raises(ConfigurationError):
            list(iterate_minibatches(x, y, 0))

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=1, max_value=50),
           batch=st.integers(min_value=1, max_value=50))
    def test_coverage_property(self, n, batch):
        x, y = _data(n)
        seen = [yb for _, yb in iterate_minibatches(x, y, batch,
                                                    rng=np.random.default_rng(0))]
        assert sorted(np.concatenate(seen).tolist()) == list(range(n))


class TestStartBatch:
    def test_resumes_exactly_where_interrupted(self):
        """With the RNG rewound to its epoch-start state, ``start_batch=k``
        yields exactly the batches an uninterrupted epoch would after k."""
        x, y = _data(50)
        full = list(iterate_minibatches(x, y, 8, rng=np.random.default_rng(9)))
        for k in range(len(full) + 1):
            resumed = list(iterate_minibatches(
                x, y, 8, rng=np.random.default_rng(9), start_batch=k))
            assert len(resumed) == len(full) - k
            for (xa, ya), (xb, yb) in zip(resumed, full[k:]):
                np.testing.assert_array_equal(xa, xb)
                np.testing.assert_array_equal(ya, yb)

    def test_rng_consumed_even_when_all_batches_skipped(self):
        """The shuffle permutation is always drawn, so the generator ends
        the epoch at the same position however far the resume skipped."""
        rng_full = np.random.default_rng(9)
        rng_skip = np.random.default_rng(9)
        x, y = _data(24)
        list(iterate_minibatches(x, y, 8, rng=rng_full))
        list(iterate_minibatches(x, y, 8, rng=rng_skip, start_batch=3))
        np.testing.assert_array_equal(rng_full.random(4), rng_skip.random(4))

    def test_negative_start_batch_rejected(self):
        x, y = _data(8)
        with pytest.raises(ConfigurationError):
            list(iterate_minibatches(x, y, 4, start_batch=-1))
