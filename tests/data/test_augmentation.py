"""Augmentation tests."""

import numpy as np

from repro.data.augmentation import Augmenter


def _batch(n=4, seed=0):
    gen = np.random.default_rng(seed)
    return gen.random((n, 12, 12, 3)).astype(np.float32)


class TestAugmenter:
    def test_shape_and_range_preserved(self):
        augmenter = Augmenter(rng=np.random.default_rng(0))
        out = augmenter.augment_batch(_batch())
        assert out.shape == (4, 12, 12, 3)
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert out.dtype == np.float32

    def test_changes_the_batch(self):
        augmenter = Augmenter(rng=np.random.default_rng(0))
        x = _batch()
        assert not np.allclose(augmenter.augment_batch(x), x)

    def test_deterministic_given_rng(self):
        x = _batch()
        a = Augmenter(rng=np.random.default_rng(7)).augment_batch(x)
        b = Augmenter(rng=np.random.default_rng(7)).augment_batch(x)
        np.testing.assert_array_equal(a, b)

    def test_flip_only(self):
        augmenter = Augmenter(
            rng=np.random.default_rng(0), max_rotation_degrees=0.0,
            flip_probability=1.0, distortion=0.0,
        )
        x = _batch(n=1)
        out = augmenter.augment_batch(x)
        np.testing.assert_allclose(out[0], x[0][:, ::-1, :])

    def test_disabled_is_identity(self):
        augmenter = Augmenter(
            rng=np.random.default_rng(0), max_rotation_degrees=0.0,
            flip_probability=0.0, distortion=0.0,
        )
        x = _batch()
        np.testing.assert_allclose(augmenter.augment_batch(x), x)
