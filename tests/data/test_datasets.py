"""Dataset substrate tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.datasets import Dataset, synthetic_cifar, synthetic_faces
from repro.errors import ConfigurationError
from repro.utils.rng import RngStream


class TestDataset:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Dataset(x=np.zeros((3, 2, 2, 1)), y=np.zeros(4))

    def test_dtypes_normalized(self):
        ds = Dataset(x=np.zeros((2, 2, 2, 1), dtype=np.float64),
                     y=np.zeros(2, dtype=np.int32))
        assert ds.x.dtype == np.float32 and ds.y.dtype == np.int64

    def test_subset_carries_flags(self):
        ds = Dataset(x=np.zeros((4, 1, 1, 1)), y=np.arange(4),
                     flags={"poisoned": np.array([True, False, True, False])})
        sub = ds.subset([0, 3])
        np.testing.assert_array_equal(sub.flags["poisoned"], [True, False])

    def test_of_class(self):
        ds = Dataset(x=np.zeros((6, 1, 1, 1)), y=np.array([0, 1, 0, 2, 1, 0]))
        assert len(ds.of_class(0)) == 3
        assert np.all(ds.of_class(0).y == 0)

    def test_split_disjoint_and_sized(self):
        ds = Dataset(x=np.zeros((100, 1, 1, 1)), y=np.arange(100))
        a, b, c = ds.split([0.5, 0.3, 0.2], rng=np.random.default_rng(0))
        assert (len(a), len(b), len(c)) == (50, 30, 20)
        ids = np.concatenate([a.y, b.y, c.y])
        assert len(set(ids.tolist())) == 100  # disjoint

    def test_split_over_one_rejected(self):
        ds = Dataset(x=np.zeros((10, 1, 1, 1)), y=np.arange(10))
        with pytest.raises(ConfigurationError):
            ds.split([0.7, 0.7])

    def test_concatenate_merges_flags(self):
        a = Dataset(x=np.zeros((2, 1, 1, 1)), y=np.zeros(2),
                    flags={"poisoned": np.array([True, True])})
        b = Dataset(x=np.zeros((3, 1, 1, 1)), y=np.ones(3))
        merged = Dataset.concatenate([a, b])
        assert len(merged) == 5
        np.testing.assert_array_equal(
            merged.flags["poisoned"], [True, True, False, False, False]
        )


class TestSyntheticCifar:
    def test_shapes_and_ranges(self, rng):
        train, test = synthetic_cifar(rng.child("c"), num_train=100, num_test=50)
        assert train.x.shape == (100, 28, 28, 3)
        assert test.x.shape == (50, 28, 28, 3)
        assert train.x.min() >= 0.0 and train.x.max() <= 1.0
        assert train.num_classes == 10

    def test_balanced_classes(self, rng):
        train, _ = synthetic_cifar(rng.child("c"), num_train=100, num_test=10)
        counts = np.bincount(train.y, minlength=10)
        assert np.all(counts == 10)

    def test_deterministic(self):
        a, _ = synthetic_cifar(RngStream(3).child("d"), num_train=40, num_test=10)
        b, _ = synthetic_cifar(RngStream(3).child("d"), num_train=40, num_test=10)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_train_test_differ(self, rng):
        train, test = synthetic_cifar(rng.child("c"), num_train=40, num_test=40)
        assert not np.allclose(train.x, test.x)

    def test_classes_are_separable_by_nearest_prototype(self, rng):
        """Within-class instances resemble each other more than across."""
        train, test = synthetic_cifar(rng.child("c"), num_train=400, num_test=100,
                                      num_classes=4)
        means = np.stack([train.of_class(k).x.mean(axis=0).ravel() for k in range(4)])
        correct = 0
        for i in range(len(test)):
            distances = np.linalg.norm(means - test.x[i].ravel(), axis=1)
            correct += int(distances.argmin() == test.y[i])
        assert correct / len(test) > 0.6  # far above the 0.25 chance level

    @settings(max_examples=5, deadline=None)
    @given(classes=st.integers(min_value=2, max_value=6))
    def test_arbitrary_class_counts(self, classes):
        train, _ = synthetic_cifar(
            RngStream(1).child("h"), num_train=classes * 4, num_test=classes,
            num_classes=classes, shape=(12, 12, 3),
        )
        assert train.num_classes == classes


class TestSyntheticFaces:
    def test_shapes(self, rng):
        faces = synthetic_faces(rng.child("f"), num_identities=5, per_identity=8)
        assert faces.x.shape == (40, 16, 16, 3)
        assert faces.num_classes == 5

    def test_identity_clustering(self, rng):
        """Same-identity faces are mutually closer than cross-identity."""
        faces = synthetic_faces(rng.child("f"), num_identities=4, per_identity=20)
        flat = faces.x.reshape(len(faces), -1)
        within, across = [], []
        for i in range(0, len(faces), 5):
            for j in range(i + 1, len(faces), 7):
                dist = np.linalg.norm(flat[i] - flat[j])
                (within if faces.y[i] == faces.y[j] else across).append(dist)
        assert np.mean(within) < np.mean(across)
