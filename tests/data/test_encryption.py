"""Encrypted provisioning format tests."""

import dataclasses

import numpy as np
import pytest

from repro.crypto.aead import new_aead
from repro.crypto.keys import SymmetricKey
from repro.data.datasets import Dataset
from repro.data.encryption import (decrypt_record, encrypt_dataset,
                                   iter_encrypted_records)
from repro.errors import AuthenticationError


@pytest.fixture
def dataset(generator):
    return Dataset(
        x=generator.random((6, 4, 4, 3)).astype(np.float32),
        y=generator.integers(0, 3, size=6),
    )


@pytest.fixture
def key():
    return SymmetricKey(key_id="p0/key", material=bytes(range(16)))


class TestEncryptDecrypt:
    def test_roundtrip(self, dataset, key):
        encrypted = encrypt_dataset(dataset, key, "p0")
        aead = new_aead(key.material, cipher="hmac-ctr")
        for i, record in enumerate(encrypted.records):
            image, label = decrypt_record(record, aead)
            np.testing.assert_array_equal(image, dataset.x[i])
            assert label == dataset.y[i]

    def test_labels_in_clear(self, dataset, key):
        encrypted = encrypt_dataset(dataset, key, "p0")
        assert [r.label for r in encrypted.records] == dataset.y.tolist()

    def test_unique_nonces(self, dataset, key):
        encrypted = encrypt_dataset(dataset, key, "p0")
        nonces = [r.nonce for r in encrypted.records]
        assert len(set(nonces)) == len(nonces)

    def test_aes_gcm_cipher_option(self, dataset, key):
        small = dataset.subset([0, 1])
        encrypted = encrypt_dataset(small, key, "p0", cipher="aes-128-gcm")
        aead = new_aead(key.material, cipher="aes-128-gcm")
        image, _ = decrypt_record(encrypted.records[0], aead)
        np.testing.assert_array_equal(image, small.x[0])


class TestStreamingEncryption:
    def test_matches_encrypt_dataset(self, dataset, key):
        streamed = list(iter_encrypted_records(dataset, key, "p0"))
        fresh = SymmetricKey(key_id=key.key_id, material=key.material)
        assert streamed == encrypt_dataset(dataset, fresh, "p0").records

    def test_lazy(self, dataset, key):
        """Nothing is sealed until the stream is pulled."""
        stream = iter_encrypted_records(dataset, key, "p0")
        assert key._counter == 0
        next(stream)
        assert key._counter == 1

    def test_start_index_skips_without_spending_nonces(self, dataset, key):
        full = list(iter_encrypted_records(dataset, key, "p0"))
        resumed_key = SymmetricKey(key_id=key.key_id, material=key.material)
        resumed_key.advance_past(full[3].nonce)
        tail = list(iter_encrypted_records(dataset, resumed_key, "p0",
                                           start_index=4))
        assert tail == full[4:]

    def test_decryptable(self, dataset, key):
        aead = new_aead(key.material, cipher="hmac-ctr")
        for i, record in enumerate(iter_encrypted_records(dataset, key, "p0")):
            image, label = decrypt_record(record, aead)
            np.testing.assert_array_equal(image, dataset.x[i])
            assert record.index == i


class TestBulkParity:
    """encrypt_dataset's vectorised path vs the record-at-a-time oracle."""

    def _record_at_a_time(self, dataset, key, source_id, cipher="hmac-ctr"):
        return list(iter_encrypted_records(dataset, key, source_id,
                                           cipher=cipher, bulk_chunk=1))

    def test_bulk_matches_record_at_a_time(self, dataset, key):
        bulk = encrypt_dataset(dataset, key, "p0")
        fresh = SymmetricKey(key_id=key.key_id, material=key.material)
        assert bulk.records == self._record_at_a_time(dataset, fresh, "p0")

    def test_chunk_boundaries(self, dataset, key, monkeypatch):
        """Identical bytes when records straddle bulk-chunk boundaries."""
        import repro.data.encryption as encryption

        monkeypatch.setattr(encryption, "_BULK_CHUNK", 4)
        chunked = encrypt_dataset(dataset, key, "p0")
        fresh = SymmetricKey(key_id=key.key_id, material=key.material)
        assert chunked.records == self._record_at_a_time(dataset, fresh, "p0")

    def test_bulk_chunk_streaming_matches(self, dataset, key):
        chunked = list(iter_encrypted_records(dataset, key, "p0",
                                              bulk_chunk=2))
        fresh = SymmetricKey(key_id=key.key_id, material=key.material)
        assert chunked == self._record_at_a_time(dataset, fresh, "p0")

    def test_aes_gcm_ignores_bulk_chunk(self, dataset, key):
        """AES-GCM has no seal_many; the per-record path must kick in."""
        small = dataset.subset([0, 1, 2])
        chunked = list(iter_encrypted_records(small, key, "p0",
                                              cipher="aes-128-gcm",
                                              bulk_chunk=2))
        fresh = SymmetricKey(key_id=key.key_id, material=key.material)
        assert chunked == self._record_at_a_time(small, fresh, "p0",
                                                 cipher="aes-128-gcm")


class TestTamperDetection:
    def test_payload_tamper(self, dataset, key):
        encrypted = encrypt_dataset(dataset, key, "p0")
        record = encrypted.records[0]
        forged = dataclasses.replace(
            record, sealed=bytes([record.sealed[0] ^ 1]) + record.sealed[1:]
        )
        with pytest.raises(AuthenticationError):
            decrypt_record(forged, new_aead(key.material, cipher="hmac-ctr"))

    def test_label_relabelling_detected(self, dataset, key):
        """Flipping the cleartext label breaks the AAD binding."""
        encrypted = encrypt_dataset(dataset, key, "p0")
        record = encrypted.records[0]
        forged = dataclasses.replace(record, label=(record.label + 1) % 3)
        with pytest.raises(AuthenticationError):
            decrypt_record(forged, new_aead(key.material, cipher="hmac-ctr"))

    def test_source_spoofing_detected(self, dataset, key):
        encrypted = encrypt_dataset(dataset, key, "p0")
        forged = dataclasses.replace(encrypted.records[0], source_id="p1")
        with pytest.raises(AuthenticationError):
            decrypt_record(forged, new_aead(key.material, cipher="hmac-ctr"))

    def test_record_splicing_detected(self, dataset, key):
        """Moving a record to another index breaks the AAD binding."""
        encrypted = encrypt_dataset(dataset, key, "p0")
        forged = dataclasses.replace(encrypted.records[0], index=3)
        with pytest.raises(AuthenticationError):
            decrypt_record(forged, new_aead(key.material, cipher="hmac-ctr"))

    def test_wrong_key_detected(self, dataset, key):
        encrypted = encrypt_dataset(dataset, key, "p0")
        wrong = new_aead(bytes(range(1, 17)), cipher="hmac-ctr")
        with pytest.raises(AuthenticationError):
            decrypt_record(encrypted.records[0], wrong)
