"""Contribution-ledger tests: lanes, content addressing, sealing."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.data.encryption import iter_encrypted_records
from repro.errors import LedgerError
from repro.ingest import (ContributionLedger, pack_records, record_digest,
                          unpack_records)


def _records(contributor, n=None):
    records = list(iter_encrypted_records(contributor.dataset,
                                          contributor.key,
                                          contributor.participant_id))
    return records if n is None else records[:n]


class TestPacking:
    def test_roundtrip(self, contributors):
        records = _records(contributors[0], 5)
        assert unpack_records(pack_records(records)) == records

    def test_canonical(self, contributors):
        records = _records(contributors[0], 5)
        assert pack_records(records) == pack_records(list(records))

    def test_trailing_bytes_rejected(self, contributors):
        blob = pack_records(_records(contributors[0], 2))
        with pytest.raises(LedgerError):
            unpack_records(blob + b"x")


class TestLanes:
    def test_append_and_iterate(self, ledger, contributors):
        records = _records(contributors[0])
        info = ledger.append(records, "c0")
        assert info.records == len(records)
        assert list(ledger.iter_records()) == records
        assert len(ledger) == len(records)
        assert ledger.contributors() == ["c0"]

    def test_quarantine_never_reaches_committed_lane(self, ledger,
                                                     contributors):
        good = _records(contributors[0], 6)
        bad = _records(contributors[1], 3)
        ledger.append(good, "c0")
        ledger.quarantine(bad, "c1", reason="tampered")
        assert list(ledger.iter_records()) == good
        assert list(ledger.iter_records(lane="quarantine")) == bad
        assert ledger.quarantined_records == 3
        assert ledger.quarantined[0].reason == "tampered"

    def test_has_ciphertext_commits_only(self, ledger, contributors):
        good = _records(contributors[0], 3)
        bad = _records(contributors[1], 2)
        ledger.append(good, "c0")
        ledger.quarantine(bad, "c1", reason="duplicate")
        assert ledger.has_ciphertext(record_digest(good[0]))
        assert not ledger.has_ciphertext(record_digest(bad[0]))

    def test_empty_segment_rejected(self, ledger):
        with pytest.raises(LedgerError):
            ledger.append([], "c0")


class TestCommitDeduplicated:
    def test_partitions_fresh_from_committed(self, ledger, contributors):
        records = _records(contributors[0], 6)
        ledger.append(records[:3], "c0")
        segment, duplicates = ledger.commit_deduplicated(records, "c0")
        assert segment is not None and segment.records == 3
        assert duplicates == records[:3]
        assert list(ledger.iter_records()) == records

    def test_catches_duplicates_within_the_batch(self, ledger, contributors):
        records = _records(contributors[0], 3)
        segment, duplicates = ledger.commit_deduplicated(
            records + [records[0]], "c0"
        )
        assert segment.records == 3
        assert duplicates == [records[0]]

    def test_all_duplicates_commits_nothing(self, ledger, contributors):
        records = _records(contributors[0], 3)
        ledger.append(records, "c0")
        segment, duplicates = ledger.commit_deduplicated(records, "c0")
        assert segment is None and duplicates == records
        assert len(ledger) == 3

    def test_racing_commits_admit_exactly_one_copy(self, ledger,
                                                   contributors):
        """Two sessions committing the same ciphertexts concurrently must
        not both pass a check-then-commit window: one wins, the loser
        gets every record back as a duplicate."""
        records = _records(contributors[0])
        with ThreadPoolExecutor(max_workers=2) as pool:
            outcomes = list(pool.map(
                lambda name: ledger.commit_deduplicated(records, name),
                ["c0", "c1"],
            ))
        committed = [seg for seg, _ in outcomes if seg is not None]
        assert len(committed) == 1 and committed[0].records == len(records)
        refused = [dups for _, dups in outcomes if dups]
        assert refused == [records]
        assert len(ledger) == len(records)
        assert ledger.verify()


class TestConcurrency:
    def test_concurrent_appends_keep_ledger_consistent(self, ledger,
                                                       contributors):
        """Parallel session commits must never reuse a segment name or
        leave manifest digests out of sync with disk (the gateway allows
        up to max_open_sessions completions in flight)."""
        batches = [
            [r] for r in _records(contributors[0]) + _records(contributors[1])
        ]
        with ThreadPoolExecutor(max_workers=8) as pool:
            infos = list(pool.map(
                lambda batch: ledger.append(batch, batch[0].source_id),
                batches,
            ))
        assert len({info.name for info in infos}) == len(batches)
        assert len(ledger) == len(batches)
        assert ledger.verify()
        reopened = ContributionLedger.open(ledger.path)
        assert reopened.manifest_digest() == ledger.manifest_digest()


class TestDurability:
    def test_reopen_preserves_state(self, ledger, contributors, tmp_path):
        records = _records(contributors[0])
        ledger.append(records, "c0")
        digest = ledger.manifest_digest()
        reopened = ContributionLedger.open(tmp_path / "ledger")
        assert list(reopened.iter_records()) == records
        assert reopened.manifest_digest() == digest
        assert reopened.has_ciphertext(record_digest(records[0]))

    def test_create_over_existing_rejected(self, ledger, tmp_path):
        with pytest.raises(LedgerError):
            ContributionLedger.create(tmp_path / "ledger")

    def test_tampered_segment_fails_closed(self, ledger, contributors,
                                           tmp_path):
        ledger.append(_records(contributors[0]), "c0")
        target = next((tmp_path / "ledger").glob("segment-*.bin"))
        blob = bytearray(target.read_bytes())
        blob[10] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(LedgerError):
            ContributionLedger.open(tmp_path / "ledger")

    def test_missing_segment_fails_closed(self, ledger, contributors,
                                          tmp_path):
        ledger.append(_records(contributors[0]), "c0")
        next((tmp_path / "ledger").glob("segment-*.bin")).unlink()
        with pytest.raises(LedgerError):
            ContributionLedger.open(tmp_path / "ledger")


class TestManifestDigest:
    def test_commits_to_both_lanes(self, ledger, contributors):
        before = ledger.manifest_digest()
        ledger.append(_records(contributors[0], 4), "c0")
        mid = ledger.manifest_digest()
        assert mid != before
        ledger.quarantine(_records(contributors[1], 2), "c1", "tampered")
        assert ledger.manifest_digest() != mid

    def test_seal_and_verify(self, ledger, contributors, server):
        ledger.append(_records(contributors[0]), "c0")
        sealed = ledger.seal_manifest(server.enclave)
        assert ledger.verify_sealed_manifest(server.enclave, sealed)
        ledger.append(_records(contributors[1]), "c1")
        assert not ledger.verify_sealed_manifest(server.enclave, sealed)

    def test_status(self, ledger, contributors):
        ledger.append(_records(contributors[0], 4), "c0")
        status = ledger.status()
        assert status["committed_records"] == 4
        assert status["quarantine_records"] == 0
        assert status["contributors"] == ["c0"]
