"""Shared fixtures for the ingest-plane tests.

One attested world per test: a training server with its enclave, two
provisioned contributors (and one who never provisioned), a fresh
contribution ledger, validation pool, and gateway over a tmp spool.
"""

import numpy as np
import pytest

from repro.data.datasets import Dataset
from repro.federation.participant import TrainingParticipant
from repro.federation.provisioning import provision_key
from repro.federation.server import TrainingServer
from repro.ingest import (ContributionLedger, GatewayConfig, IngestGateway,
                          ValidationConfig, ValidationPool)

SHAPE = (4, 4, 3)
CLASSES = 3


def make_participant(rng, name, n=12):
    gen = rng.child(f"data-{name}").generator
    dataset = Dataset(
        x=gen.random((n,) + SHAPE).astype(np.float32),
        y=gen.integers(0, CLASSES, size=n),
    )
    return TrainingParticipant(name, dataset, rng.child(name))


@pytest.fixture
def server(platform, attestation_service, rng):
    server = TrainingServer(platform, attestation_service, rng.child("server"))
    server.build_training_enclave("[net]\ninput = 4,4,3\n[softmax]\n[cost]\n")
    return server


@pytest.fixture
def contributors(server, attestation_service, rng):
    out = []
    for name in ("c0", "c1"):
        participant = make_participant(rng, name)
        provision_key(participant, server.enclave, attestation_service,
                      expected_mrenclave=server.enclave.mrenclave)
        out.append(participant)
    return out


@pytest.fixture
def stranger(rng):
    """A contributor who never ran the provisioning handshake."""
    return make_participant(rng, "stranger")


@pytest.fixture
def ledger(tmp_path):
    return ContributionLedger.create(tmp_path / "ledger")


@pytest.fixture
def validator(server, ledger):
    return ValidationPool(
        server.enclave,
        ValidationConfig(num_classes=CLASSES, input_shape=SHAPE, workers=2,
                         batch_records=4),
        ledger=ledger,
    )


@pytest.fixture
def gateway(ledger, validator, tmp_path):
    return IngestGateway(
        ledger, validator, spool_dir=tmp_path / "spool",
        config=GatewayConfig(chunk_records=4, max_open_sessions=4,
                             max_records_per_contributor=64,
                             max_bytes_per_contributor=1 << 20,
                             rate_capacity=1000.0, rate_refill_per_s=1000.0),
    )
