"""Nonce-discipline regressions (satellite of the ingestion plane).

The AEAD security of the whole pipeline rests on one invariant: a key
never seals two different payloads under the same nonce. These tests pin
the two places an interrupted upload could break it — the client's
counter after a crash, and the server's journal on a replay.
"""

import pytest

from repro.crypto.keys import SymmetricKey
from repro.data.encryption import iter_encrypted_records
from repro.errors import TransferError
from repro.ingest import UploadTransfer


@pytest.fixture
def contributor(contributors):
    return contributors[0]


class TestCounterDiscipline:
    def test_next_nonce_never_repeats(self, contributor):
        key = SymmetricKey("k", contributor.key.material)
        nonces = [key.next_nonce() for _ in range(64)]
        assert len(set(nonces)) == len(nonces)
        assert nonces == sorted(nonces)

    def test_advance_past_never_rewinds(self, contributor):
        key = SymmetricKey("k", contributor.key.material)
        high = key.next_nonce()
        for _ in range(5):
            high = key.next_nonce()
        fresh = SymmetricKey("k", contributor.key.material)
        fresh.advance_past(high)
        assert fresh.next_nonce() > high
        # advancing past an *older* nonce must not rewind the counter
        fresh.advance_past((1).to_bytes(len(high), "big"))
        assert fresh.next_nonce() > high

    def test_interrupted_and_resumed_upload_never_reuses_a_nonce(
            self, contributor, tmp_path):
        """The crash-resume path: a fresh process re-derives the key from
        its material, advances past the highest journaled nonce, and the
        resumed stream's nonces are disjoint from the acked ones."""
        key = SymmetricKey("c0/data-key", contributor.key.material)
        stream = iter_encrypted_records(contributor.dataset, key, "c0")
        transfer = UploadTransfer.create(tmp_path / "t")
        acked = []
        for _ in range(2):  # 8 of 12 records journaled, then the crash
            chunk = [next(stream) for _ in range(4)]
            transfer.append_chunk(chunk)
            acked.extend(chunk)
        del key, stream

        resumed = UploadTransfer.resume(tmp_path / "t")
        fresh_key = SymmetricKey("c0/data-key", contributor.key.material)
        fresh_key.advance_past(resumed.max_nonce())
        rest = list(iter_encrypted_records(
            contributor.dataset, fresh_key, "c0",
            start_index=resumed.acked_records,
        ))
        resumed.append_chunk(rest)

        all_nonces = [r.nonce for r in acked] + [r.nonce for r in rest]
        assert len(set(all_nonces)) == len(all_nonces)

    def test_resumed_stream_is_byte_identical(self, contributor):
        """Deterministic counter nonces make the resumed suffix equal the
        suffix of an uninterrupted upload — the property the ledger's
        manifest-digest parity check depends on."""
        key_a = SymmetricKey("c0/data-key", contributor.key.material)
        uninterrupted = list(iter_encrypted_records(
            contributor.dataset, key_a, "c0"
        ))
        key_b = SymmetricKey("c0/data-key", contributor.key.material)
        head = [
            r for _, r in zip(range(8), iter_encrypted_records(
                contributor.dataset, key_b, "c0"))
        ]
        key_c = SymmetricKey("c0/data-key", contributor.key.material)
        key_c.advance_past(max(r.nonce for r in head))
        tail = list(iter_encrypted_records(
            contributor.dataset, key_c, "c0", start_index=8
        ))
        assert head + tail == uninterrupted


class TestJournalDiscipline:
    def test_replayed_chunk_not_double_committed(self, contributor, tmp_path):
        """Same nonce, same ciphertext — the client's retry after a lost
        ack — is detected by the journal digest and acked idempotently."""
        records = list(iter_encrypted_records(
            contributor.dataset,
            SymmetricKey("c0/data-key", contributor.key.material), "c0"
        ))
        transfer = UploadTransfer.create(tmp_path / "t")
        transfer.append_chunk(records[:4])
        receipt = transfer.append_chunk(records[:4])
        assert receipt.replayed
        assert transfer.acked_records == 4
        assert [r.nonce for r in transfer.iter_records()] == \
            [r.nonce for r in records[:4]]

    def test_replay_survives_the_crash_window(self, contributor, tmp_path):
        """The journal (not in-memory state) carries the replay barrier:
        after a resume, both the idempotent re-ack and the new-seq nonce
        reuse rejection still hold."""
        records = list(iter_encrypted_records(
            contributor.dataset,
            SymmetricKey("c0/data-key", contributor.key.material), "c0"
        ))
        transfer = UploadTransfer.create(tmp_path / "t")
        transfer.append_chunk(records[:4])
        resumed = UploadTransfer.resume(tmp_path / "t")
        assert resumed.append_chunk(records[:4]).replayed
        with pytest.raises(TransferError):
            resumed.append_chunk([records[0]] + records[4:6])
