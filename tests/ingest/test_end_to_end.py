"""End-to-end acceptance tests for the ingestion plane.

The fault-injection criterion: kill an upload after N chunks, resume it
from chunk N+1 in a fresh "process" (new key object rebuilt from the
same material), and the final ledger manifest digest must be
byte-identical to an uninterrupted upload's. Hostile records — tampered
payloads, flipped labels — land in the quarantine lane with audit
entries and never reach training.
"""

import dataclasses

import pytest

from repro.crypto.keys import SymmetricKey
from repro.data.encryption import iter_encrypted_records
from repro.ingest import (ContributionLedger, GatewayConfig, IngestGateway,
                          ValidationConfig, ValidationPool, chunk_stream)

from tests.ingest.conftest import CLASSES, SHAPE

CHUNK = 4


def _world(server, tmp_path, name):
    ledger = ContributionLedger.create(tmp_path / f"ledger-{name}")
    validator = ValidationPool(
        server.enclave,
        ValidationConfig(num_classes=CLASSES, input_shape=SHAPE, workers=2,
                         batch_records=CHUNK),
        ledger=ledger,
    )
    gateway = IngestGateway(
        ledger, validator, spool_dir=tmp_path / f"spool-{name}",
        config=GatewayConfig(chunk_records=CHUNK),
    )
    return ledger, gateway


def _fresh_key(contributor):
    return SymmetricKey(contributor.key.key_id, contributor.key.material)


def _upload(gateway, contributor):
    session = gateway.open_session(contributor.participant_id)
    stream = iter_encrypted_records(
        contributor.dataset, _fresh_key(contributor),
        contributor.participant_id,
    )
    for chunk in chunk_stream(stream, CHUNK):
        session.send_chunk(chunk)
    return session.complete()


class TestFaultInjection:
    def test_resumed_upload_ledger_is_byte_identical(self, server, tmp_path,
                                                     contributors):
        crash_after = 2  # chunks acked before the client dies

        ledger_a, gateway_a = _world(server, tmp_path, "uninterrupted")
        for contributor in contributors:
            _upload(gateway_a, contributor)

        ledger_b, gateway_b = _world(server, tmp_path, "faulted")
        victim, bystander = contributors

        # the victim's client dies mid-upload after `crash_after` acks
        session = gateway_b.open_session(victim.participant_id)
        stream = iter_encrypted_records(victim.dataset, _fresh_key(victim),
                                        victim.participant_id)
        chunks = chunk_stream(stream, CHUNK)
        for _ in range(crash_after):
            session.send_chunk(next(chunks))
        del session, stream, chunks  # the process is gone
        assert gateway_b.evict_session(victim.participant_id)

        # a fresh process resumes from the journal: chunk N+1 onwards
        resumed = gateway_b.resume_session(victim.participant_id)
        assert resumed.next_seq == crash_after
        assert resumed.acked_records == crash_after * CHUNK
        key = _fresh_key(victim)
        key.advance_past(resumed.max_nonce())
        rest = iter_encrypted_records(victim.dataset, key,
                                      victim.participant_id,
                                      start_index=resumed.acked_records)
        for chunk in chunk_stream(rest, CHUNK):
            resumed.send_chunk(chunk)
        receipt = resumed.complete()
        assert receipt.committed == len(victim.dataset)
        _upload(gateway_b, bystander)

        assert ledger_b.manifest_digest() == ledger_a.manifest_digest()
        assert list(ledger_b.iter_records()) == list(ledger_a.iter_records())


class TestHostileTraffic:
    def test_tampered_and_relabelled_never_reach_training(
            self, server, tmp_path, contributors, attestation_service):
        ledger, gateway = _world(server, tmp_path, "hostile")
        honest, hostile = contributors

        _upload(gateway, honest)

        records = list(iter_encrypted_records(
            hostile.dataset, _fresh_key(hostile), hostile.participant_id
        ))
        flipped = records[1]
        records[1] = dataclasses.replace(
            flipped, label=(flipped.label + 1) % CLASSES  # relabel attack
        )
        forged = records[5]
        records[5] = dataclasses.replace(
            forged, sealed=bytes([forged.sealed[0] ^ 0xFF]) + forged.sealed[1:]
        )
        session = gateway.open_session(hostile.participant_id)
        for start in range(0, len(records), CHUNK):
            session.send_chunk(records[start : start + CHUNK])
        receipt = session.complete()
        assert receipt.committed == len(records) - 2
        assert receipt.quarantined == 2

        # forensic lane + audit trail carry the evidence
        quarantined = list(ledger.iter_records(lane="quarantine"))
        assert sorted(r.index for r in quarantined) == [1, 5]
        assert all(q.reason == "tampered" for q in ledger.quarantined)
        verdicts = [e.details["verdict"]
                    for e in gateway.validator.audit.events("ingest-validate")]
        assert verdicts.count("tampered") == 2
        assert gateway.validator.verify_audit_chain()

        # training consumes the committed lane only: nothing left to reject
        server.from_ledger(ledger)
        summary = server.decrypt_submissions()
        assert summary.rejected_tampered == 0
        assert summary.rejected_unregistered == 0
        assert summary.accepted == len(honest.dataset) + len(records) - 2
        hostile_nonces = {records[1].nonce, records[5].nonce}
        committed_hostile = {r.nonce for r in ledger.iter_records()
                             if r.source_id == hostile.participant_id}
        assert not hostile_nonces & committed_hostile
