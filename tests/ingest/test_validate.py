"""Validation-pipeline tests: gates, quarantine lanes, audit chain."""

import dataclasses

import numpy as np
import pytest

from repro.data.datasets import Dataset
from repro.data.encryption import iter_encrypted_records
from repro.ingest import ValidationConfig, ValidationPool

from tests.ingest.conftest import CLASSES, SHAPE


def _records(contributor):
    return list(iter_encrypted_records(contributor.dataset, contributor.key,
                                       contributor.participant_id))


class TestGates:
    def test_clean_records_accepted_in_order(self, validator, contributors):
        records = _records(contributors[0])
        report = validator.validate("c0", records)
        assert report.accepted == records
        assert report.quarantined == []

    def test_tampered_payload_quarantined(self, validator, contributors):
        records = _records(contributors[0])
        bad = records[2]
        records[2] = dataclasses.replace(
            bad, sealed=bytes([bad.sealed[0] ^ 0xFF]) + bad.sealed[1:]
        )
        report = validator.validate("c0", records)
        assert len(report.accepted) == len(records) - 1
        assert report.quarantined_by_reason == {"tampered": 1}

    def test_relabelled_record_quarantined_not_crashed(self, validator,
                                                       contributors):
        """A flipped cleartext label breaks the AAD tag — quarantine lane,
        not an exception."""
        records = _records(contributors[0])
        records[0] = dataclasses.replace(
            records[0], label=(records[0].label + 1) % CLASSES
        )
        report = validator.validate("c0", records)
        assert report.quarantined_by_reason == {"tampered": 1}

    def test_label_domain_gate(self, server, ledger, contributors, rng):
        """A label outside the agreed domain (but correctly sealed, so the
        tag verifies) is quarantined by the domain gate."""
        gen = rng.child("wide").generator
        wide = Dataset(x=gen.random((4,) + SHAPE).astype(np.float32),
                       y=np.array([0, 1, CLASSES + 3, 1]))
        contributor = contributors[0]
        records = list(iter_encrypted_records(wide, contributor.key, "c0"))
        validator = ValidationPool(
            server.enclave,
            ValidationConfig(num_classes=CLASSES, input_shape=SHAPE),
            ledger=ledger,
        )
        report = validator.validate("c0", records)
        assert report.quarantined_by_reason == {"label-domain": 1}

    def test_shape_gate(self, server, ledger, contributors, rng):
        gen = rng.child("misshapen").generator
        misshapen = Dataset(x=gen.random((3, 2, 2, 3)).astype(np.float32),
                            y=gen.integers(0, CLASSES, size=3))
        records = list(iter_encrypted_records(misshapen,
                                              contributors[0].key, "c0"))
        validator = ValidationPool(
            server.enclave,
            ValidationConfig(num_classes=CLASSES, input_shape=SHAPE),
            ledger=ledger,
        )
        report = validator.validate("c0", records)
        assert report.quarantined_by_reason == {"shape": 3}

    def test_empty_input(self, validator):
        report = validator.validate("c0", [])
        assert report.accepted == [] and report.quarantined == []


class TestDeduplication:
    def test_duplicate_within_session(self, validator, contributors):
        records = _records(contributors[0])
        report = validator.validate("c0", records + [records[0]])
        assert report.quarantined_by_reason == {"duplicate": 1}
        assert len(report.accepted) == len(records)

    def test_duplicate_across_contributors_via_ledger(self, validator, ledger,
                                                      contributors):
        """c1 relaying c0's committed ciphertexts is caught by the ledger
        digest set even though the records authenticate under no tampering."""
        records = _records(contributors[0])
        ledger.append(records, "c0")
        report = validator.validate("c0", records)
        assert report.accepted == []
        assert report.quarantined_by_reason == {"duplicate": len(records)}


class TestAudit:
    def test_every_decision_audited_and_chained(self, validator, contributors):
        records = _records(contributors[0])
        bad = records[1]
        records[1] = dataclasses.replace(
            bad, sealed=bytes([bad.sealed[0] ^ 0xFF]) + bad.sealed[1:]
        )
        validator.validate("c0", records)
        events = validator.audit.events("ingest-validate")
        assert len(events) == len(records)
        verdicts = [e.details["verdict"] for e in events]
        assert verdicts.count("tampered") == 1
        assert verdicts.count("ok") == len(records) - 1
        assert validator.verify_audit_chain()

    def test_telemetry_counters(self, validator, contributors):
        records = _records(contributors[0])
        records[0] = dataclasses.replace(
            records[0], label=(records[0].label + 1) % CLASSES
        )
        validator.validate("c0", records)
        assert validator.telemetry.counter("records_accepted") == len(records) - 1
        assert validator.telemetry.counter("records_quarantined") == 1
        assert validator.telemetry.counter("quarantined_tampered") == 1
        assert 0 < validator.telemetry.quarantine_rate < 1


class TestConcurrency:
    def test_many_batches_deterministic_order(self, server, ledger,
                                              contributors, rng):
        """4-record ECALL batches across 2 workers must still commit in
        submission order (ledger determinism depends on it)."""
        gen = rng.child("big").generator
        big = Dataset(x=gen.random((40,) + SHAPE).astype(np.float32),
                      y=gen.integers(0, CLASSES, size=40))
        records = list(iter_encrypted_records(big, contributors[0].key, "c0"))
        validator = ValidationPool(
            server.enclave,
            ValidationConfig(num_classes=CLASSES, input_shape=SHAPE,
                             workers=4, batch_records=4),
            ledger=ledger,
        )
        report = validator.validate("c0", records)
        assert report.accepted == records
