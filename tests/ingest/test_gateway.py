"""Gateway tests: attestation gate, backpressure, quotas, rate limits."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.crypto.keys import SymmetricKey
from repro.data.encryption import iter_encrypted_records
from repro.errors import ConfigurationError, IngestError, UploadRejected
from repro.ingest import GatewayConfig, IngestGateway, TokenBucket


def _records(contributor):
    # A fresh key object per call keeps the nonce stream deterministic, so
    # repeated calls reproduce identical ciphertexts for comparison.
    key = SymmetricKey(contributor.key.key_id, contributor.key.material)
    return list(iter_encrypted_records(contributor.dataset, key,
                                       contributor.participant_id))


def _upload_all(gateway, contributor, chunk=4):
    session = gateway.open_session(contributor.participant_id)
    records = _records(contributor)
    for start in range(0, len(records), chunk):
        session.send_chunk(records[start : start + chunk])
    return session.complete()


class TestConfig:
    @pytest.mark.parametrize("overrides", [
        {"max_open_sessions": 0},
        {"max_records_per_contributor": 0},
        {"max_bytes_per_contributor": 0},
        {"rate_capacity": 0.0},
        {"rate_refill_per_s": -1.0},
        {"chunk_records": 0},
    ])
    def test_bad_config_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            GatewayConfig(**overrides)


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(capacity=10, refill_per_s=5, clock=lambda: now[0])
        assert bucket.try_take(10)
        assert not bucket.try_take(1)
        now[0] = 1.0  # 5 tokens refilled
        assert bucket.try_take(5)
        assert not bucket.try_take(1)

    def test_capacity_caps_refill(self):
        now = [0.0]
        bucket = TokenBucket(capacity=4, refill_per_s=100, clock=lambda: now[0])
        now[0] = 60.0
        assert bucket.try_take(4)
        assert not bucket.try_take(1)


class TestAttestationGate:
    def test_unprovisioned_contributor_refused(self, gateway, stranger):
        with pytest.raises(UploadRejected, match="provisioned"):
            gateway.open_session(stranger.participant_id)
        assert gateway.telemetry.counter("rejected_unprovisioned") == 1

    def test_unprovisioned_resume_refused(self, gateway, stranger):
        with pytest.raises(UploadRejected):
            gateway.resume_session(stranger.participant_id)

    def test_provisioned_contributor_admitted(self, gateway, contributors):
        session = gateway.open_session(contributors[0].participant_id)
        assert gateway.open_sessions == 1
        session.abort()


class TestBackpressure:
    def test_bounded_sessions(self, gateway, contributors):
        held = [gateway.open_session(contributors[0].participant_id, f"s{i}")
                for i in range(4)]
        with pytest.raises(UploadRejected, match="in flight"):
            gateway.open_session(contributors[1].participant_id)
        assert gateway.telemetry.counter("rejected_backpressure") == 1
        held[0].abort()
        gateway.open_session(contributors[1].participant_id)

    def test_duplicate_session_refused(self, gateway, contributors):
        gateway.open_session(contributors[0].participant_id, "s")
        with pytest.raises(UploadRejected, match="already"):
            gateway.open_session(contributors[0].participant_id, "s")

    def test_oversized_chunk_refused(self, gateway, contributors):
        session = gateway.open_session(contributors[0].participant_id)
        with pytest.raises(UploadRejected, match="bound"):
            session.send_chunk(_records(contributors[0])[:5])
        assert gateway.telemetry.counter("rejected_oversized_chunk") == 1


class TestQuotas:
    def test_record_quota_cuts_stream_midflight(self, ledger, validator,
                                                tmp_path, contributors):
        gateway = IngestGateway(
            ledger, validator, spool_dir=tmp_path / "spool",
            config=GatewayConfig(chunk_records=4,
                                 max_records_per_contributor=8),
        )
        session = gateway.open_session(contributors[0].participant_id)
        records = _records(contributors[0])
        session.send_chunk(records[:4])
        session.send_chunk(records[4:8])
        with pytest.raises(UploadRejected, match="quota"):
            session.send_chunk(records[8:12])
        assert gateway.telemetry.counter("rejected_quota") == 1

    def test_record_quota_spans_sessions(self, ledger, validator, tmp_path,
                                         contributors):
        gateway = IngestGateway(
            ledger, validator, spool_dir=tmp_path / "spool",
            config=GatewayConfig(chunk_records=8,
                                 max_records_per_contributor=14),
        )
        receipt = _upload_all(gateway, contributors[0], chunk=8)
        assert receipt.committed == 12
        session = gateway.open_session(contributors[0].participant_id, "more")
        with pytest.raises(UploadRejected, match="quota"):
            session.send_chunk(_records(contributors[1])[:4])

    def test_byte_quota(self, ledger, validator, tmp_path, contributors):
        gateway = IngestGateway(
            ledger, validator, spool_dir=tmp_path / "spool",
            config=GatewayConfig(chunk_records=4,
                                 max_bytes_per_contributor=64),
        )
        session = gateway.open_session(contributors[0].participant_id)
        with pytest.raises(UploadRejected, match="byte quota"):
            session.send_chunk(_records(contributors[0])[:1])

    def test_byte_quota_counts_spooled_bytes(self, ledger, validator,
                                             tmp_path, contributors):
        """Bytes journaled but not yet committed count against the byte
        quota, so a contributor cannot spool past the cap inside one
        session (the disk-exhaustion vector)."""
        records = _records(contributors[0])
        chunk_bytes = sum(len(r.sealed) for r in records[:4])
        gateway = IngestGateway(
            ledger, validator, spool_dir=tmp_path / "spool",
            config=GatewayConfig(
                chunk_records=4,
                max_bytes_per_contributor=chunk_bytes + chunk_bytes // 2,
            ),
        )
        session = gateway.open_session(contributors[0].participant_id)
        session.send_chunk(records[:4])
        with pytest.raises(UploadRejected, match="byte quota"):
            session.send_chunk(records[4:8])
        assert gateway.telemetry.counter("rejected_quota") == 1

    def test_quotas_span_concurrent_open_sessions(self, ledger, validator,
                                                  tmp_path, contributors):
        """Pending records in *other* open sessions of the same
        contributor count too — quotas cannot be dodged by sharding an
        upload across parallel sessions."""
        gateway = IngestGateway(
            ledger, validator, spool_dir=tmp_path / "spool",
            config=GatewayConfig(chunk_records=4,
                                 max_records_per_contributor=10),
        )
        records = _records(contributors[0])
        first = gateway.open_session(contributors[0].participant_id, "s1")
        second = gateway.open_session(contributors[0].participant_id, "s2")
        first.send_chunk(records[:4])
        second.send_chunk(records[4:8])
        with pytest.raises(UploadRejected, match="quota"):
            first.send_chunk(records[8:12])

    def test_quota_state_rebuilt_from_ledger(self, ledger, validator,
                                             tmp_path, contributors):
        ledger.append(_records(contributors[0]), "c0")
        gateway = IngestGateway(
            ledger, validator, spool_dir=tmp_path / "spool",
            config=GatewayConfig(chunk_records=4,
                                 max_records_per_contributor=14),
        )
        assert gateway.committed_records("c0") == 12
        session = gateway.open_session("c0")
        with pytest.raises(UploadRejected, match="quota"):
            session.send_chunk(_records(contributors[1])[:4])


class TestRateLimit:
    def test_sustained_rate_capped(self, ledger, validator, tmp_path,
                                   contributors):
        now = [0.0]
        gateway = IngestGateway(
            ledger, validator, spool_dir=tmp_path / "spool",
            config=GatewayConfig(chunk_records=4, rate_capacity=8.0,
                                 rate_refill_per_s=4.0),
            clock=lambda: now[0],
        )
        session = gateway.open_session(contributors[0].participant_id)
        records = _records(contributors[0])
        session.send_chunk(records[:4])
        session.send_chunk(records[4:8])  # burst capacity exhausted
        with pytest.raises(UploadRejected, match="rate"):
            session.send_chunk(records[8:12])
        assert gateway.telemetry.counter("rejected_rate") == 1
        now[0] = 1.0  # 4 records/s refill
        session.send_chunk(records[8:12])


class TestLifecycle:
    def test_complete_commits_to_ledger(self, gateway, ledger, contributors):
        receipt = _upload_all(gateway, contributors[0])
        assert receipt.committed == 12 and receipt.quarantined == 0
        assert receipt.segment is not None
        assert receipt.manifest_digest == ledger.manifest_digest().hex()
        assert list(ledger.iter_records()) == _records(contributors[0])
        assert gateway.open_sessions == 0
        assert gateway.committed_records("c0") == 12
        assert gateway.telemetry.counter("sessions_committed") == 1

    def test_complete_discards_spool(self, gateway, contributors, tmp_path):
        _upload_all(gateway, contributors[0])
        assert not list((tmp_path / "spool").rglob("*.bin"))
        assert not list((tmp_path / "spool").rglob("journal.jsonl"))

    def test_closed_session_rejects_traffic(self, gateway, contributors):
        session = gateway.open_session(contributors[0].participant_id)
        records = _records(contributors[0])
        session.send_chunk(records[:4])
        session.complete()
        with pytest.raises(IngestError):
            session.send_chunk(records[4:8])
        with pytest.raises(IngestError):
            session.complete()

    def test_abort_frees_slot_and_spool(self, gateway, contributors,
                                        tmp_path):
        session = gateway.open_session(contributors[0].participant_id)
        session.send_chunk(_records(contributors[0])[:4])
        session.abort()
        assert gateway.open_sessions == 0
        assert not list((tmp_path / "spool").rglob("journal.jsonl"))
        assert gateway.telemetry.counter("sessions_aborted") == 1

    def test_evict_then_resume(self, gateway, contributors, tmp_path):
        """A crashed client's slot is reclaimed; its journal survives for
        resume, and the resumed session continues at the journal head."""
        session = gateway.open_session(contributors[0].participant_id)
        records = _records(contributors[0])
        session.send_chunk(records[:4])
        assert gateway.evict_session(contributors[0].participant_id)
        assert gateway.open_sessions == 0
        assert list((tmp_path / "spool").rglob("journal.jsonl"))

        resumed = gateway.resume_session(contributors[0].participant_id)
        assert resumed.resumed and resumed.next_seq == 1
        assert resumed.acked_records == 4
        assert resumed.max_nonce() == max(r.nonce for r in records[:4])
        resumed.send_chunk(records[4:8])
        resumed.send_chunk(records[8:12])
        receipt = resumed.complete()
        assert receipt.committed == 12
        assert gateway.telemetry.counter("sessions_resumed") == 1

    def test_evict_unknown_session(self, gateway):
        assert not gateway.evict_session("nobody")

    def test_open_over_stale_spool_typed_rejection(self, gateway,
                                                   contributors):
        """A crashed session's spool makes a fresh open fail with the
        gateway's typed backpressure error pointing at resume_session,
        not a raw internal TransferError."""
        session = gateway.open_session(contributors[0].participant_id)
        session.send_chunk(_records(contributors[0])[:4])
        gateway.evict_session(contributors[0].participant_id)
        with pytest.raises(UploadRejected, match="resume_session"):
            gateway.open_session(contributors[0].participant_id)
        assert gateway.telemetry.counter("rejected_stale_spool") == 1
        resumed = gateway.resume_session(contributors[0].participant_id)
        assert resumed.next_seq == 1

    def test_resume_without_spool_typed_rejection(self, gateway,
                                                  contributors):
        with pytest.raises(UploadRejected, match="no spooled"):
            gateway.resume_session(contributors[0].participant_id)


class TestConcurrentCompletion:
    def test_racing_duplicate_sessions_commit_once(self, gateway, ledger,
                                                   validator, contributors):
        """Two sessions carrying the same sealed ciphertexts complete
        concurrently: exactly one copy is committed, the other is
        quarantined as a duplicate, and both ledger and audit chain stay
        consistent."""
        records = _records(contributors[0])
        sessions = []
        for name in ("s1", "s2"):
            session = gateway.open_session(contributors[0].participant_id,
                                           name)
            for start in range(0, len(records), 4):
                session.send_chunk(records[start : start + 4])
            sessions.append(session)
        with ThreadPoolExecutor(max_workers=2) as pool:
            receipts = list(pool.map(lambda s: s.complete(), sessions))
        assert sum(r.committed for r in receipts) == len(records)
        assert sum(r.quarantined for r in receipts) == len(records)
        assert len(ledger) == len(records)
        assert list(ledger.iter_records()) == records
        assert ledger.quarantined_records == len(records)
        assert all(info.reason == "duplicate" for info in ledger.quarantined)
        assert ledger.verify()
        assert validator.verify_audit_chain()
        assert gateway.committed_records("c0") == len(records)

    def test_many_contributor_sessions_complete_in_parallel(
            self, gateway, ledger, validator, contributors):
        """Distinct contributors completing at once — the benchmark's
        shape — must each land exactly their own records."""
        sessions = []
        for contributor in contributors:
            records = _records(contributor)
            session = gateway.open_session(contributor.participant_id)
            for start in range(0, len(records), 4):
                session.send_chunk(records[start : start + 4])
            sessions.append(session)
        with ThreadPoolExecutor(max_workers=2) as pool:
            receipts = list(pool.map(lambda s: s.complete(), sessions))
        assert all(r.committed == 12 and r.quarantined == 0
                   for r in receipts)
        assert len(ledger) == 24
        assert ledger.verify()
        assert validator.verify_audit_chain()
