"""Chunked-transfer tests: journal durability, resume, replay discipline."""

import json

import pytest

from repro.data.encryption import iter_encrypted_records
from repro.errors import TransferError
from repro.ingest import UploadTransfer, chunk_stream


@pytest.fixture
def records(contributors):
    return list(iter_encrypted_records(contributors[0].dataset,
                                       contributors[0].key,
                                       contributors[0].participant_id))


class TestChunkStream:
    def test_bounds_chunks(self, records):
        chunks = list(chunk_stream(iter(records), 5))
        assert [len(c) for c in chunks] == [5, 5, 2]
        assert [r for c in chunks for r in c] == records

    def test_bad_bound_rejected(self, records):
        with pytest.raises(TransferError):
            list(chunk_stream(iter(records), 0))


class TestAppend:
    def test_ack_sequence(self, tmp_path, records):
        transfer = UploadTransfer.create(tmp_path / "t")
        r0 = transfer.append_chunk(records[:4])
        r1 = transfer.append_chunk(records[4:8])
        assert (r0.seq, r1.seq) == (0, 1)
        assert transfer.next_seq == 2
        assert transfer.acked_records == 8
        assert list(transfer.iter_records()) == records[:8]

    def test_empty_chunk_rejected(self, tmp_path):
        transfer = UploadTransfer.create(tmp_path / "t")
        with pytest.raises(TransferError):
            transfer.append_chunk([])

    def test_replayed_chunk_idempotent(self, tmp_path, records):
        """Same nonce, same ciphertext: ack again, never double-commit."""
        transfer = UploadTransfer.create(tmp_path / "t")
        transfer.append_chunk(records[:4])
        receipt = transfer.append_chunk(records[:4])
        assert receipt.replayed and receipt.seq == 0
        assert transfer.acked_records == 4
        assert list(transfer.iter_records()) == records[:4]

    def test_nonce_replay_under_new_seq_rejected(self, tmp_path, records):
        """Old records smuggled into a fresh chunk are a protocol breach."""
        transfer = UploadTransfer.create(tmp_path / "t")
        transfer.append_chunk(records[:4])
        with pytest.raises(TransferError):
            transfer.append_chunk([records[0]] + records[4:6])

    def test_duplicate_nonces_within_chunk_rejected(self, tmp_path, records):
        transfer = UploadTransfer.create(tmp_path / "t")
        with pytest.raises(TransferError):
            transfer.append_chunk([records[0], records[0]])


class TestResume:
    def test_resume_reports_journal_head(self, tmp_path, records):
        transfer = UploadTransfer.create(tmp_path / "t")
        transfer.append_chunk(records[:4])
        transfer.append_chunk(records[4:8])
        resumed = UploadTransfer.resume(tmp_path / "t")
        assert resumed.next_seq == 2
        assert resumed.acked_records == 8
        assert resumed.max_nonce() == max(r.nonce for r in records[:8])
        resumed.append_chunk(records[8:])
        assert list(resumed.iter_records()) == records

    def test_torn_unjournaled_chunk_discarded(self, tmp_path, records):
        """A chunk file written but never journaled (the crash window) is
        deleted on resume so the client re-sends it."""
        transfer = UploadTransfer.create(tmp_path / "t")
        transfer.append_chunk(records[:4])
        (tmp_path / "t" / "chunk-000001.bin").write_bytes(b"half-written")
        resumed = UploadTransfer.resume(tmp_path / "t")
        assert resumed.next_seq == 1
        assert not (tmp_path / "t" / "chunk-000001.bin").exists()

    def test_corrupted_acked_chunk_fails_closed(self, tmp_path, records):
        """A failed chunk *behind* the journal head was acknowledged —
        corruption after the fact, never a crash window — so resume
        refuses rather than silently dropping committed data."""
        transfer = UploadTransfer.create(tmp_path / "t")
        transfer.append_chunk(records[:4])
        transfer.append_chunk(records[4:8])
        chunk = tmp_path / "t" / "chunk-000000.bin"
        blob = bytearray(chunk.read_bytes())
        blob[8] ^= 0xFF
        chunk.write_bytes(bytes(blob))
        with pytest.raises(TransferError):
            UploadTransfer.resume(tmp_path / "t")

    def test_missing_acked_chunk_fails_closed(self, tmp_path, records):
        transfer = UploadTransfer.create(tmp_path / "t")
        transfer.append_chunk(records[:4])
        transfer.append_chunk(records[4:8])
        (tmp_path / "t" / "chunk-000000.bin").unlink()
        with pytest.raises(TransferError):
            UploadTransfer.resume(tmp_path / "t")

    def test_torn_tail_chunk_truncates_journal(self, tmp_path, records):
        """A journal line whose chunk never became durable (power loss
        between the chunk fsync and the journal fsync being observed by
        the client) was never acknowledged: resume truncates back to the
        last consistent entry instead of failing the session forever."""
        transfer = UploadTransfer.create(tmp_path / "t")
        transfer.append_chunk(records[:4])
        transfer.append_chunk(records[4:8])
        chunk = tmp_path / "t" / "chunk-000001.bin"
        blob = bytearray(chunk.read_bytes())
        blob[8] ^= 0xFF
        chunk.write_bytes(bytes(blob))
        resumed = UploadTransfer.resume(tmp_path / "t")
        assert resumed.next_seq == 1
        assert resumed.acked_records == 4
        assert not chunk.exists()
        journal = (tmp_path / "t" / "journal.jsonl").read_text().splitlines()
        assert len(journal) == 1
        # The client re-sends the dropped chunk and the stream continues.
        resumed.append_chunk(records[4:8])
        resumed.append_chunk(records[8:])
        assert list(resumed.iter_records()) == records

    def test_missing_tail_chunk_truncates_journal(self, tmp_path, records):
        transfer = UploadTransfer.create(tmp_path / "t")
        transfer.append_chunk(records[:4])
        transfer.append_chunk(records[4:8])
        (tmp_path / "t" / "chunk-000001.bin").unlink()
        resumed = UploadTransfer.resume(tmp_path / "t")
        assert resumed.next_seq == 1
        assert resumed.max_nonce() == max(r.nonce for r in records[:4])

    def test_journal_tracks_bytes(self, tmp_path, records):
        transfer = UploadTransfer.create(tmp_path / "t")
        transfer.append_chunk(records[:4])
        assert transfer.acked_bytes == sum(len(r.sealed) for r in records[:4])
        resumed = UploadTransfer.resume(tmp_path / "t")
        assert resumed.acked_bytes == transfer.acked_bytes

    def test_resume_without_journal_rejected(self, tmp_path):
        with pytest.raises(TransferError):
            UploadTransfer.resume(tmp_path / "nothing")

    def test_journal_records_nonces(self, tmp_path, records):
        transfer = UploadTransfer.create(tmp_path / "t")
        transfer.append_chunk(records[:4])
        line = json.loads(
            (tmp_path / "t" / "journal.jsonl").read_text().splitlines()[0]
        )
        assert line["nonces"] == [r.nonce.hex() for r in records[:4]]


class TestFinalize:
    def test_finalize_closes_transfer(self, tmp_path, records):
        transfer = UploadTransfer.create(tmp_path / "t")
        transfer.append_chunk(records[:4])
        assert transfer.finalize() == records[:4]
        with pytest.raises(TransferError):
            transfer.append_chunk(records[4:8])
        with pytest.raises(TransferError):
            transfer.finalize()

    def test_discard_removes_spool(self, tmp_path, records):
        transfer = UploadTransfer.create(tmp_path / "t")
        transfer.append_chunk(records[:4])
        transfer.discard()
        assert not (tmp_path / "t").exists()
