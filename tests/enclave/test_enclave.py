"""Enclave lifecycle, measurement, and ECALL boundary tests."""

import pytest

from repro.enclave.enclave import Enclave, EnclaveState
from repro.errors import EnclaveLifecycleError


def _trusted_echo(enclave, value):
    return ("echo", value)


def _trusted_store(enclave, key, value):
    enclave.trusted_put(key, value)


class TestLifecycle:
    def test_states(self, platform):
        enclave = platform.create_enclave("e")
        assert enclave.state is EnclaveState.CREATED
        enclave.init()
        assert enclave.state is EnclaveState.INITIALIZED
        enclave.destroy()
        assert enclave.state is EnclaveState.DESTROYED

    def test_no_ecall_before_init(self, platform):
        enclave = platform.create_enclave("e")
        enclave.add_code("echo", _trusted_echo)
        with pytest.raises(EnclaveLifecycleError):
            enclave.ecall("echo", 1)

    def test_no_add_after_init(self, platform):
        enclave = platform.create_enclave("e")
        enclave.init()
        with pytest.raises(EnclaveLifecycleError):
            enclave.add_code("late", _trusted_echo)
        with pytest.raises(EnclaveLifecycleError):
            enclave.add_data("late", 1)

    def test_destroy_clears_secrets(self, platform):
        enclave = platform.create_enclave("e")
        enclave.add_code("store", _trusted_store)
        enclave.init()
        enclave.ecall("store", "secret", b"k")
        enclave.destroy()
        assert not enclave._storage

    def test_unknown_ecall(self, platform):
        enclave = platform.create_enclave("e")
        enclave.init()
        with pytest.raises(EnclaveLifecycleError):
            enclave.ecall("ghost")


class TestMeasurement:
    def test_same_build_same_measurement(self, platform):
        def build():
            e = platform.create_enclave("m")
            e.add_code("echo", _trusted_echo)
            e.add_data("config", {"layers": 4})
            e.init()
            return e.mrenclave

        assert build() == build()

    def test_different_data_different_measurement(self, platform):
        def build(config):
            e = platform.create_enclave("m")
            e.add_data("config", config)
            e.init()
            return e.mrenclave

        assert build({"lr": 0.1}) != build({"lr": 0.2})

    def test_code_order_matters(self, platform):
        def build(order):
            e = platform.create_enclave("m")
            for name in order:
                e.add_code(name, _trusted_echo)
            e.init()
            return e.mrenclave

        assert build(["a", "b"]) != build(["b", "a"])

    def test_init_extends_measurement(self, platform):
        e = platform.create_enclave("m")
        before = e.mrenclave
        e.init()
        assert e.mrenclave != before


class TestEcallBoundary:
    def test_ecall_runs_trusted_code(self, platform):
        enclave = platform.create_enclave("e")
        enclave.add_code("echo", _trusted_echo)
        enclave.init()
        assert enclave.ecall("echo", 42) == ("echo", 42)

    def test_transition_costs_charged(self, platform):
        enclave = platform.create_enclave("e")
        enclave.add_code("echo", _trusted_echo)
        enclave.init()
        before = platform.clock.now
        enclave.ecall("echo", 1, payload_bytes=10_000_000)
        assert platform.clock.now > before
        assert enclave.ecall_count == 1

    def test_ocall_cost(self, platform):
        enclave = platform.create_enclave("e")
        enclave.init()
        before = platform.clock.now
        enclave.ocall_cost(payload_bytes=1_000_000)
        assert platform.clock.now > before
        assert enclave.ocall_count == 1

    def test_trusted_storage_epc_accounting(self, platform):
        enclave = platform.create_enclave("e")
        enclave.add_code("store", _trusted_store)
        enclave.init()
        before = enclave.epc.resident_bytes
        enclave.ecall("store", "blob", b"x" * 100)
        assert enclave.epc.resident_bytes > before
        enclave.trusted_delete("blob")
        assert enclave.epc.resident_bytes == before

    def test_trusted_put_resize(self, platform):
        enclave = platform.create_enclave("e")
        enclave.init()
        enclave.trusted_put("k", b"v", nbytes=10)
        enclave.trusted_put("k", b"v2", nbytes=100_000)
        assert enclave.trusted_get("k") == b"v2"
