"""Remote attestation tests."""

import pytest

from repro.enclave.attestation import AttestationService, Quote
from repro.errors import AttestationError


@pytest.fixture
def initialized_enclave(platform):
    enclave = platform.create_enclave("attested")
    enclave.add_data("config", {"agreed": True})
    enclave.init()
    return enclave


class TestQuotes:
    def test_valid_quote_verifies(self, initialized_enclave, attestation_service):
        quote = initialized_enclave.quote(report_data=b"bind")
        attestation_service.verify(quote)
        attestation_service.verify(
            quote, expected_mrenclave=initialized_enclave.mrenclave
        )

    def test_report_data_carried(self, initialized_enclave):
        assert initialized_enclave.quote(b"xyz").report_data == b"xyz"

    def test_unregistered_platform_rejected(self, initialized_enclave):
        empty_service = AttestationService()
        with pytest.raises(AttestationError):
            empty_service.verify(initialized_enclave.quote())

    def test_forged_signature_rejected(self, initialized_enclave, attestation_service):
        quote = initialized_enclave.quote(b"data")
        forged = Quote(
            platform_id=quote.platform_id,
            mrenclave=quote.mrenclave,
            report_data=quote.report_data,
            signature=bytes(32),
        )
        with pytest.raises(AttestationError):
            attestation_service.verify(forged)

    def test_tampered_report_data_rejected(self, initialized_enclave, attestation_service):
        quote = initialized_enclave.quote(b"honest")
        tampered = Quote(
            platform_id=quote.platform_id,
            mrenclave=quote.mrenclave,
            report_data=b"evil",
            signature=quote.signature,
        )
        with pytest.raises(AttestationError):
            attestation_service.verify(tampered)

    def test_wrong_mrenclave_rejected(self, initialized_enclave, attestation_service):
        quote = initialized_enclave.quote()
        with pytest.raises(AttestationError):
            attestation_service.verify(quote, expected_mrenclave=bytes(32))

    def test_modified_enclave_has_different_measurement(self, platform, attestation_service):
        """An enclave with different code cannot impersonate the agreed one."""
        honest = platform.create_enclave("honest")
        honest.add_data("config", {"lr": 0.1})
        honest.init()
        evil = platform.create_enclave("evil")
        evil.add_data("config", {"lr": 0.1, "backdoor": True})
        evil.init()
        quote = evil.quote()
        with pytest.raises(AttestationError):
            attestation_service.verify(quote, expected_mrenclave=honest.mrenclave)
