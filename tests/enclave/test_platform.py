"""Cost model, clock, and trusted RNG tests."""

import pytest

from repro.enclave.platform import CostModel, SgxPlatform, SimClock, TrustedRng
from repro.errors import ConfigurationError
from repro.utils.rng import RngStream


class TestSimClock:
    def test_monotonic(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_backwards_rejected(self):
        with pytest.raises(ConfigurationError):
            SimClock().advance(-1)


class TestCostModel:
    def test_enclave_compute_slower(self):
        model = CostModel()
        flops = 1e9
        assert model.compute_seconds(flops, in_enclave=True) > model.compute_seconds(
            flops, in_enclave=False
        )

    def test_slowdown_factor_exact(self):
        model = CostModel(enclave_flop_slowdown=1.25)
        ratio = model.compute_seconds(1e9, True) / model.compute_seconds(1e9, False)
        assert ratio == pytest.approx(1.25)

    def test_transition_has_fixed_floor(self):
        model = CostModel()
        assert model.transition_cost(0) == pytest.approx(model.transition_seconds)

    def test_transition_scales_with_payload(self):
        model = CostModel()
        assert model.transition_cost(10**9) > model.transition_cost(10**3)

    def test_paging_slower_than_boundary_copy(self):
        model = CostModel()
        nbytes = 10**8
        assert model.paging_cost(nbytes) > nbytes / model.boundary_bytes_per_second


class TestTrustedRng:
    def test_deterministic(self):
        a = TrustedRng(RngStream(1).child("rdrand")).random_bytes(16)
        b = TrustedRng(RngStream(1).child("rdrand")).random_bytes(16)
        assert a == b

    def test_per_enclave_streams_differ(self, platform):
        e1 = platform.create_enclave("one")
        e2 = platform.create_enclave("two")
        assert e1.trusted_rng.random_bytes(16) != e2.trusted_rng.random_bytes(16)


class TestPlatform:
    def test_platform_key_generated(self, rng):
        platform = SgxPlatform(rng=rng.child("p"))
        assert len(platform.platform_key) == 32

    def test_create_enclave_uses_platform_epc_size(self, rng):
        platform = SgxPlatform(rng=rng.child("p"), epc_bytes=4096 * 10)
        enclave = platform.create_enclave("small")
        assert enclave.epc.capacity_bytes == 4096 * 10
