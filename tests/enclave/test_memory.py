"""EPC memory model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.enclave.memory import EPC_USABLE_BYTES, PAGE_SIZE, EpcMemory
from repro.errors import EnclaveMemoryError


class TestAllocation:
    def test_resident_page_rounding(self):
        epc = EpcMemory()
        epc.alloc("a", 1)
        assert epc.resident_bytes == PAGE_SIZE

    def test_duplicate_name_rejected(self):
        epc = EpcMemory()
        epc.alloc("a", 10)
        with pytest.raises(EnclaveMemoryError):
            epc.alloc("a", 10)

    def test_free_unknown_rejected(self):
        with pytest.raises(EnclaveMemoryError):
            EpcMemory().free("ghost")

    def test_negative_size_rejected(self):
        with pytest.raises(EnclaveMemoryError):
            EpcMemory().alloc("a", -1)

    def test_free_releases(self):
        epc = EpcMemory()
        epc.alloc("a", PAGE_SIZE * 3)
        epc.free("a")
        assert epc.resident_bytes == 0

    def test_resize(self):
        epc = EpcMemory()
        epc.alloc("a", PAGE_SIZE)
        epc.resize("a", PAGE_SIZE * 10)
        assert epc.resident_bytes == PAGE_SIZE * 10

    def test_resize_unknown_rejected(self):
        with pytest.raises(EnclaveMemoryError):
            EpcMemory().resize("ghost", PAGE_SIZE)

    def test_failed_resize_leaves_allocation_intact(self):
        # Regression: resize used to free the old allocation before
        # validating the new size, so a rejected resize destroyed the
        # allocation and corrupted the EPC accounting.
        epc = EpcMemory()
        epc.alloc("a", PAGE_SIZE * 4)
        before_resident = epc.resident_bytes
        before_report = epc.usage_report()
        with pytest.raises(EnclaveMemoryError):
            epc.resize("a", -1)
        assert epc.resident_bytes == before_resident
        assert epc.usage_report() == before_report
        # The allocation is still live and resizable.
        epc.resize("a", PAGE_SIZE * 2)
        assert epc.resident_bytes == PAGE_SIZE * 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(EnclaveMemoryError):
            EpcMemory(capacity_bytes=0)

    def test_usage_report(self):
        epc = EpcMemory()
        epc.alloc("x", 100)
        epc.alloc("y", 200)
        assert epc.usage_report() == {"x": 100, "y": 200}


class TestPaging:
    def test_no_paging_under_capacity(self):
        epc = EpcMemory(capacity_bytes=PAGE_SIZE * 100)
        epc.alloc("a", PAGE_SIZE * 50)
        assert epc.touch(PAGE_SIZE * 50) == 0
        assert epc.page_faults == 0

    def test_paging_over_capacity(self):
        epc = EpcMemory(capacity_bytes=PAGE_SIZE * 100)
        epc.alloc("a", PAGE_SIZE * 200)  # 2x over
        paged = epc.touch(PAGE_SIZE * 10)
        assert paged == PAGE_SIZE * 5  # overflow fraction = 0.5
        assert epc.page_faults > 0
        assert epc.paged_bytes_total == paged

    def test_overflow_fraction_monotone(self):
        epc = EpcMemory(capacity_bytes=PAGE_SIZE * 10)
        epc.alloc("a", PAGE_SIZE * 10)
        f0 = epc.overflow_fraction
        epc.alloc("b", PAGE_SIZE * 10)
        assert epc.overflow_fraction > f0

    @given(st.integers(min_value=1, max_value=400))
    def test_overflow_fraction_in_unit_interval(self, pages):
        epc = EpcMemory(capacity_bytes=PAGE_SIZE * 100)
        epc.alloc("a", PAGE_SIZE * pages)
        assert 0.0 <= epc.overflow_fraction < 1.0

    def test_default_capacity_is_paper_epc(self):
        assert EpcMemory().capacity_bytes == EPC_USABLE_BYTES == 93 * 1024 * 1024
