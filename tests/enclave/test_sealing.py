"""Sealed storage tests."""

import pytest

from repro.enclave.sealing import SealedBlob, seal, unseal
from repro.errors import SealingError
from repro.utils.rng import RngStream
from repro.enclave.platform import SgxPlatform


def _enclave(platform, name="sealer", config=None):
    enclave = platform.create_enclave(name)
    enclave.add_data("config", config or {"v": 1})
    enclave.init()
    return enclave


class TestSealing:
    def test_roundtrip(self, platform):
        enclave = _enclave(platform)
        blob = seal(enclave, b"linkage database bytes")
        assert unseal(enclave, blob) == b"linkage database bytes"

    def test_same_identity_other_instance_can_unseal(self, platform):
        a = _enclave(platform, "a")
        b = _enclave(platform, "a")  # identical build => same MRENCLAVE
        assert a.mrenclave == b.mrenclave
        blob = seal(a, b"shared")
        assert unseal(b, blob) == b"shared"

    def test_different_identity_cannot_unseal(self, platform):
        a = _enclave(platform, "a", config={"v": 1})
        b = _enclave(platform, "a", config={"v": 2})
        blob = seal(a, b"private")
        with pytest.raises(SealingError):
            unseal(b, blob)

    def test_different_platform_cannot_unseal(self, platform):
        other_platform = SgxPlatform(
            rng=RngStream(999).child("other"), platform_id="other"
        )
        a = _enclave(platform)
        b = _enclave(other_platform)
        assert a.mrenclave == b.mrenclave  # same code, different machine
        blob = seal(a, b"machine-bound")
        with pytest.raises(SealingError):
            unseal(b, blob)

    def test_tampered_blob_rejected(self, platform):
        enclave = _enclave(platform)
        blob = seal(enclave, b"data")
        tampered = SealedBlob(
            nonce=blob.nonce,
            ciphertext=bytes([blob.ciphertext[0] ^ 1]) + blob.ciphertext[1:],
        )
        with pytest.raises(SealingError):
            unseal(enclave, tampered)
