"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.command == "train"
        assert args.architecture == "cifar10-10layer"
        assert args.seed == 7

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "42", "info"])
        assert args.seed == 42

    def test_unknown_architecture_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--architecture", "vgg"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "28x28x128" in out

    def test_info_lists_ingest_plane(self, capsys):
        from repro.ingest import LEDGER_FORMAT

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Ingestion plane" in out
        assert f"ledger segment format    v{LEDGER_FORMAT}" in out
        assert "repro ingest" in out and "repro ingest-status" in out

    def test_train_end_to_end(self, capsys):
        code = main([
            "--seed", "3", "train", "--epochs", "1", "--width-scale", "0.05",
            "--train-size", "60", "--test-size", "20", "--participants", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MRENCLAVE" in out
        assert "accepted 60 records" in out
        assert "linkage database: 60 records" in out


class TestServingCommands:
    def test_build_index(self, capsys, tmp_path):
        code = main([
            "build-index", "--path", str(tmp_path / "store"),
            "--records", "3000", "--dim", "8", "--labels", "3",
            "--segment-size", "1500", "--shard-threshold", "500",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "3000 records in 2 segments" in out
        assert "segment digests: verified" in out
        assert "manifest sealed" in out and "valid" in out

    def test_serve_queries(self, capsys):
        code = main([
            "serve-queries", "--records", "3000", "--dim", "8",
            "--labels", "3", "--queries", "64", "--k", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "answered 64 queries" in out
        assert "cache_hit_rate" in out
        assert "chain VERIFIED" in out


class TestIngestCommands:
    def _ingest_args(self, tmp_path, *extra):
        return [
            "ingest", "--path", str(tmp_path / "ledger"),
            "--contributors", "2", "--records-per", "24",
            "--chunk-records", "8", "--tamper", "2", *extra,
        ]

    def test_ingest(self, capsys, tmp_path):
        assert main(self._ingest_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "2 contributors provisioned over attested TLS" in out
        assert "c0: committed 22, quarantined 2" in out
        assert "manifest sealed to enclave identity: valid" in out
        assert "chain VERIFIED" in out
        assert "staged 44 ledger records" in out
        assert "0 tampered slipped through" in out

    def test_ingest_with_fault_injection(self, capsys, tmp_path):
        assert main(self._ingest_args(tmp_path, "--fault")) == 0
        out = capsys.readouterr().out
        assert "c0: CRASH after 1 chunks (8 records acked)" in out
        assert "c0: resumed at chunk 1" in out
        assert "c0: committed 22, quarantined 2" in out

    def test_ingest_status(self, capsys, tmp_path):
        assert main(self._ingest_args(tmp_path)) == 0
        capsys.readouterr()
        assert main(["ingest-status", "--path",
                     str(tmp_path / "ledger")]) == 0
        out = capsys.readouterr().out
        assert "committed records        44" in out
        assert "quarantine records       4" in out
        assert "contributors             c0, c1" in out
        assert "(tampered)" in out
        assert "segment digests: verified" in out

    def test_ingest_status_fails_closed_on_tamper(self, capsys, tmp_path):
        assert main(self._ingest_args(tmp_path)) == 0
        capsys.readouterr()
        target = next((tmp_path / "ledger").glob("segment-*.bin"))
        blob = bytearray(target.read_bytes())
        blob[10] ^= 0xFF
        target.write_bytes(bytes(blob))
        assert main(["ingest-status", "--path",
                     str(tmp_path / "ledger")]) == 1
        assert "ledger INVALID" in capsys.readouterr().out

    def test_ingest_status_missing_ledger(self, capsys, tmp_path):
        assert main(["ingest-status", "--path",
                     str(tmp_path / "nothing")]) == 1
        assert "ledger INVALID" in capsys.readouterr().out
