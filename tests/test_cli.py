"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.command == "train"
        assert args.architecture == "cifar10-10layer"
        assert args.seed == 7

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "42", "info"])
        assert args.seed == 42

    def test_unknown_architecture_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--architecture", "vgg"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "28x28x128" in out

    def test_train_end_to_end(self, capsys):
        code = main([
            "--seed", "3", "train", "--epochs", "1", "--width-scale", "0.05",
            "--train-size", "60", "--test-size", "20", "--participants", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MRENCLAVE" in out
        assert "accepted 60 records" in out
        assert "linkage database: 60 records" in out


class TestServingCommands:
    def test_build_index(self, capsys, tmp_path):
        code = main([
            "build-index", "--path", str(tmp_path / "store"),
            "--records", "3000", "--dim", "8", "--labels", "3",
            "--segment-size", "1500", "--shard-threshold", "500",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "3000 records in 2 segments" in out
        assert "segment digests: verified" in out
        assert "manifest sealed" in out and "valid" in out

    def test_serve_queries(self, capsys):
        code = main([
            "serve-queries", "--records", "3000", "--dim", "8",
            "--labels", "3", "--queries", "64", "--k", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "answered 64 queries" in out
        assert "cache_hit_rate" in out
        assert "chain VERIFIED" in out
