"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.command == "train"
        assert args.architecture == "cifar10-10layer"
        assert args.seed == 7

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "42", "info"])
        assert args.seed == 42

    def test_unknown_architecture_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--architecture", "vgg"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "28x28x128" in out

    def test_info_lists_ingest_plane(self, capsys):
        from repro.ingest import LEDGER_FORMAT

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Ingestion plane" in out
        assert f"ledger segment format    v{LEDGER_FORMAT}" in out
        assert "repro ingest" in out and "repro ingest-status" in out

    def test_train_end_to_end(self, capsys):
        code = main([
            "--seed", "3", "train", "--epochs", "1", "--width-scale", "0.05",
            "--train-size", "60", "--test-size", "20", "--participants", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MRENCLAVE" in out
        assert "accepted 60 records" in out
        assert "linkage database: 60 records" in out


class TestServingCommands:
    def test_build_index(self, capsys, tmp_path):
        code = main([
            "build-index", "--path", str(tmp_path / "store"),
            "--records", "3000", "--dim", "8", "--labels", "3",
            "--segment-size", "1500", "--shard-threshold", "500",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "3000 records in 2 segments" in out
        assert "segment digests: verified" in out
        assert "manifest sealed" in out and "valid" in out

    def test_serve_queries(self, capsys):
        code = main([
            "serve-queries", "--records", "3000", "--dim", "8",
            "--labels", "3", "--queries", "64", "--k", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "answered 64 queries" in out
        assert "cache_hit_rate" in out
        assert "chain VERIFIED" in out

    def test_serve_cluster_fault_drill(self, capsys):
        # The CI chaos drill: kill one replica and corrupt one replica's
        # index mid-run; the cluster must keep >= 99% availability with
        # a verified audit chain (exit code 0 enforces both).
        code = main([
            "serve-cluster", "--records", "1500", "--dim", "8",
            "--labels", "3", "--queries", "80", "--k", "3",
            "--inject", "replica-crash@20",
            "--inject", "index-corrupt@40:replica-1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "injected replica-crash before query 20" in out
        assert "injected index-corrupt before query 40" in out
        assert "chain VERIFIED" in out
        assert "replica-evicted" in out
        assert "availability: " in out

    def test_serve_cluster_rejects_malformed_injection(self):
        with pytest.raises(SystemExit):
            main(["serve-cluster", "--queries", "10",
                  "--inject", "not-a-spec"])


class TestIngestCommands:
    def _ingest_args(self, tmp_path, *extra):
        return [
            "ingest", "--path", str(tmp_path / "ledger"),
            "--contributors", "2", "--records-per", "24",
            "--chunk-records", "8", "--tamper", "2", *extra,
        ]

    def test_ingest(self, capsys, tmp_path):
        assert main(self._ingest_args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "2 contributors provisioned over attested TLS" in out
        assert "c0: committed 22, quarantined 2" in out
        assert "manifest sealed to enclave identity: valid" in out
        assert "chain VERIFIED" in out
        assert "staged 44 ledger records" in out
        assert "0 tampered slipped through" in out

    def test_ingest_with_fault_injection(self, capsys, tmp_path):
        assert main(self._ingest_args(tmp_path, "--fault")) == 0
        out = capsys.readouterr().out
        assert "c0: CRASH after 1 chunks (8 records acked)" in out
        assert "c0: resumed at chunk 1" in out
        assert "c0: committed 22, quarantined 2" in out

    def test_ingest_status(self, capsys, tmp_path):
        assert main(self._ingest_args(tmp_path)) == 0
        capsys.readouterr()
        assert main(["ingest-status", "--path",
                     str(tmp_path / "ledger")]) == 0
        out = capsys.readouterr().out
        assert "committed records        44" in out
        assert "quarantine records       4" in out
        assert "contributors             c0, c1" in out
        assert "(tampered)" in out
        assert "segment digests: verified" in out

    def test_ingest_status_fails_closed_on_tamper(self, capsys, tmp_path):
        assert main(self._ingest_args(tmp_path)) == 0
        capsys.readouterr()
        target = next((tmp_path / "ledger").glob("segment-*.bin"))
        blob = bytearray(target.read_bytes())
        blob[10] ^= 0xFF
        target.write_bytes(bytes(blob))
        assert main(["ingest-status", "--path",
                     str(tmp_path / "ledger")]) == 1
        assert "ledger INVALID" in capsys.readouterr().out

    def test_ingest_status_missing_ledger(self, capsys, tmp_path):
        assert main(["ingest-status", "--path",
                     str(tmp_path / "nothing")]) == 1
        assert "ledger INVALID" in capsys.readouterr().out


class TestResilienceCommands:
    def test_train_flag_parsing(self):
        args = build_parser().parse_args([
            "train", "--checkpoint-dir", "/tmp/ck", "--resume",
            "--checkpoint-every", "4",
            "--inject", "enclave-abort@1:3", "--inject", "epc-pressure@2",
        ])
        assert args.checkpoint_dir == "/tmp/ck"
        assert args.resume is True
        assert args.checkpoint_every == 4
        assert args.inject == ["enclave-abort@1:3", "epc-pressure@2"]

    def test_inject_spec_parsing(self):
        from repro.cli import _parse_fault_specs
        from repro.errors import ConfigurationError

        assert _parse_fault_specs([]) is None
        plan = _parse_fault_specs(["enclave-abort@1:3", "ir-corrupt@2"])
        assert plan.remaining == 2
        with pytest.raises(ConfigurationError):
            _parse_fault_specs(["enclave-abort@one"])
        with pytest.raises(ConfigurationError):
            _parse_fault_specs(["meteor@1:1"])

    def test_train_with_faults_and_checkpoint_inspection(self, capsys,
                                                         tmp_path):
        code = main([
            "--seed", "3", "train", "--epochs", "2", "--width-scale", "0.05",
            "--train-size", "60", "--test-size", "20", "--participants", "2",
            "--checkpoint-dir", str(tmp_path), "--checkpoint-every", "2",
            "--inject", "enclave-abort@1:1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "resilience telemetry" in out
        assert "fault_enclave" in out
        assert "audit chain" in out and "VERIFIED" in out
        assert "linkage database: 60 records" in out

        code = main(["checkpoints", "--path", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "valid checkpoints" in out
        assert "resume target: ckpt-" in out
        assert "boundary" in out

    def test_checkpoints_empty_directory(self, capsys, tmp_path):
        assert main(["checkpoints", "--path", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "valid checkpoints        0" in out


class TestGovernanceCommands:
    ARGS = ["--epochs", "1", "--width-scale", "0.05"]

    def test_govern_parser_defaults(self):
        args = build_parser().parse_args(["govern"])
        assert args.command == "govern"
        assert args.train_size == 40 and args.contributors == 3
        assert args.tamper is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["govern", "--tamper", "weights"])

    def test_promote_and_attribute_require_path(self):
        for verb in ("promote", "attribute"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([verb])

    def test_govern_promote_attribute_round_trip(self, capsys, tmp_path):
        root = str(tmp_path / "deployment")
        assert main(["govern", "--train-size", "20", "--contributors", "2",
                     "--path", root] + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "run key" in out and "PROMOTED" in out
        assert "chain VERIFIED" in out

        # A separate process re-derives the same run key from the same
        # agreement and re-walks the on-disk lineage.
        assert main(["promote", "--path", root] + self.ARGS) == 0
        assert "PROMOTED" in capsys.readouterr().out

        report = str(tmp_path / "report.json")
        assert main(["attribute", "--path", root, "--output", report]
                    + self.ARGS) == 0
        out = capsys.readouterr().out
        assert "implicated" in out
        import json

        body = json.loads(open(report, "rb").read())
        assert body["implicated"] and body["report_digest"]

    def test_govern_tamper_drill_fails_closed(self, capsys, tmp_path):
        code = main(["govern", "--train-size", "20", "--contributors", "2",
                     "--path", str(tmp_path / "drill"),
                     "--tamper", "ledger"] + self.ARGS)
        assert code == 2
        assert "REFUSED (fail-closed)" in capsys.readouterr().out

    def test_promote_refuses_missing_artifacts(self, capsys, tmp_path):
        assert main(["promote", "--path", str(tmp_path)] + self.ARGS) == 1
        assert "REFUSED" in capsys.readouterr().out
