"""Distributed selective SGD baseline tests."""

import numpy as np
import pytest

from repro.data.datasets import synthetic_cifar
from repro.errors import ConfigurationError
from repro.federation.dssgd import DistributedSelectiveSgd
from repro.nn.zoo import tiny_testnet


@pytest.fixture
def clients(rng):
    train, _ = synthetic_cifar(rng.child("ds-data"), num_train=192, num_test=16,
                               num_classes=4, shape=(8, 8, 3))
    return train.split([0.5, 0.5], rng=rng.child("split").generator)


def _loss(net, x, y):
    probs = net.predict(x)
    return float(-np.log(probs[np.arange(y.shape[0]), y] + 1e-12).mean())


class TestDssgd:
    def _trainer(self, rng, clients, theta=0.2):
        return DistributedSelectiveSgd(
            model_factory=lambda: tiny_testnet(rng.child("init").fork_generator()),
            client_datasets=clients,
            rng=rng.child("dssgd"),
            theta=theta,
            batch_size=16,
            learning_rate=0.02,
        )

    def test_training_improves_global_model(self, rng, clients):
        trainer = self._trainer(rng, clients)
        x = np.concatenate([c.x for c in clients])
        y = np.concatenate([c.y for c in clients])
        before = _loss(trainer.global_model, x, y)
        trainer.train(rounds=4)
        assert _loss(trainer.global_model, x, y) < before

    def test_selective_upload_sparsity(self, rng, clients):
        """With theta << 1, each turn changes only a fraction of weights."""
        trainer = self._trainer(rng, clients, theta=0.05)
        before = np.concatenate([
            layer["weights"].ravel().copy()
            for layer in trainer.global_model.get_weights() if "weights" in layer
        ])
        trainer._client_turn(0, turn=0)
        after = np.concatenate([
            layer["weights"].ravel()
            for layer in trainer.global_model.get_weights() if "weights" in layer
        ])
        changed = np.mean(before != after)
        assert changed <= 0.12  # ~theta, plus bias coordinates

    def test_theta_one_uploads_everything(self, rng, clients):
        trainer = self._trainer(rng, clients, theta=1.0)
        before = trainer.global_model.get_weights()[0]["weights"].copy()
        trainer._client_turn(0, turn=0)
        after = trainer.global_model.get_weights()[0]["weights"]
        assert np.mean(before != after) > 0.9

    def test_invalid_theta(self, rng, clients):
        with pytest.raises(ConfigurationError):
            self._trainer(rng, clients, theta=0.0)
