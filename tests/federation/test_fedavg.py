"""Federated Averaging baseline tests."""

import numpy as np
import pytest

from repro.data.datasets import synthetic_cifar
from repro.errors import ConfigurationError
from repro.federation.fedavg import FedAvgTrainer, average_weights
from repro.nn.zoo import tiny_testnet


@pytest.fixture
def clients(rng):
    train, _ = synthetic_cifar(rng.child("fed-data"), num_train=192, num_test=16,
                               num_classes=4, shape=(8, 8, 3))
    return train.split([1 / 3, 1 / 3, 1 / 3], rng=rng.child("split").generator)


class TestAverageWeights:
    def test_uniform_average(self):
        a = [{"w": np.array([1.0, 3.0])}]
        b = [{"w": np.array([3.0, 5.0])}]
        merged = average_weights([a, b])
        np.testing.assert_allclose(merged[0]["w"], [2.0, 4.0])

    def test_size_weighted(self):
        a = [{"w": np.array([0.0])}]
        b = [{"w": np.array([4.0])}]
        merged = average_weights([a, b], sizes=[3, 1])
        np.testing.assert_allclose(merged[0]["w"], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            average_weights([])


class TestFedAvgTrainer:
    def _trainer(self, rng, clients, **kwargs):
        return FedAvgTrainer(
            model_factory=lambda: tiny_testnet(rng.child("init").fork_generator()),
            client_datasets=clients,
            rng=rng.child("fed"),
            batch_size=16,
            learning_rate=0.02,
            **kwargs,
        )

    def test_round_improves_loss(self, rng, clients):
        trainer = self._trainer(rng, clients)
        first = trainer.run_round(0).loss
        for r in range(1, 5):
            last = trainer.run_round(r).loss
        assert last < first

    def test_client_sampling(self, rng, clients):
        trainer = self._trainer(rng, clients, client_fraction=0.34)
        record = trainer.run_round(0)
        assert len(record.participating) == 1

    def test_all_clients_with_fraction_one(self, rng, clients):
        trainer = self._trainer(rng, clients, client_fraction=1.0)
        assert len(trainer.run_round(0).participating) == 3

    def test_global_model_changes_each_round(self, rng, clients):
        trainer = self._trainer(rng, clients)
        w0 = trainer.global_model.get_weights()[0]["weights"].copy()
        trainer.run_round(0)
        assert not np.allclose(trainer.global_model.get_weights()[0]["weights"], w0)

    def test_invalid_config(self, rng, clients):
        with pytest.raises(ConfigurationError):
            self._trainer(rng, clients, client_fraction=0.0)
        with pytest.raises(ConfigurationError):
            FedAvgTrainer(lambda: None, [], rng.child("x"))

    def test_poisoning_is_unattributable(self, rng, clients):
        """The motivating weakness: a poisoned client shifts the global
        model, and nothing in the FedAvg history links model changes to the
        client's *data* — only participation is visible."""
        from repro.attacks.badnets import BadNetsAttack

        attack = BadNetsAttack(target_label=0, patch=3)
        poisoned_clients = list(clients)
        poisoned_clients[1] = attack.poison_dataset(
            clients[1], fraction=0.5, rng=rng.child("poison").generator
        )
        trainer = self._trainer(rng, poisoned_clients)
        for r in range(3):
            record = trainer.run_round(r)
        # The history records only which client indices participated.
        assert set(record.participating) <= {0, 1, 2}
        assert not hasattr(record, "training_data")
