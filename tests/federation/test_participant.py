"""Participant tests."""

import numpy as np
import pytest

from repro.data.datasets import Dataset
from repro.errors import QueryError
from repro.federation.participant import TrainingParticipant
from repro.utils.serialization import stable_hash


@pytest.fixture
def participant(rng, generator):
    dataset = Dataset(
        x=generator.random((6, 4, 4, 3)).astype(np.float32),
        y=generator.integers(0, 2, size=6),
    )
    return TrainingParticipant("alice", dataset, rng.child("alice"))


class TestParticipant:
    def test_key_is_local_and_deterministic(self, rng, generator):
        dataset = Dataset(x=np.zeros((2, 2, 2, 1)), y=np.zeros(2))
        a = TrainingParticipant("p", dataset, rng.child("same"))
        b = TrainingParticipant("p", dataset, rng.child("same"))
        assert a.key.material == b.key.material
        c = TrainingParticipant("p", dataset, rng.child("other"))
        assert a.key.material != c.key.material

    def test_encrypt_dataset_uses_own_source_id(self, participant):
        encrypted = participant.encrypt_dataset()
        assert encrypted.source_id == "alice"
        assert len(encrypted) == 6

    def test_disclose_instance(self, participant):
        disclosed = participant.disclose_instance(2)
        np.testing.assert_array_equal(disclosed, participant.dataset.x[2])

    def test_disclose_out_of_range(self, participant):
        with pytest.raises(QueryError):
            participant.disclose_instance(99)

    def test_instance_digest_matches_canonical_hash(self, participant):
        assert participant.instance_digest(1) == stable_hash(participant.dataset.x[1])
