"""Training server tests: in-enclave authentication + decryption."""

import dataclasses

import numpy as np
import pytest

from repro.data.datasets import Dataset
from repro.data.encryption import EncryptedDataset, encrypt_dataset
from repro.crypto.keys import SymmetricKey
from repro.errors import DuplicateSubmissionError, LedgerError, TrainingError
from repro.federation.participant import TrainingParticipant
from repro.federation.provisioning import provision_key
from repro.federation.server import TrainingServer


@pytest.fixture
def server(platform, attestation_service, rng):
    server = TrainingServer(platform, attestation_service, rng.child("server"))
    server.build_training_enclave("[net]\ninput = 2,2,1\n[softmax]\n[cost]\n")
    return server


def _participant(rng, name, n=5):
    gen = rng.child(f"data-{name}").generator
    dataset = Dataset(
        x=gen.random((n, 2, 2, 1)).astype(np.float32),
        y=gen.integers(0, 3, size=n),
    )
    return TrainingParticipant(name, dataset, rng.child(name))


class TestDecryption:
    def test_registered_sources_accepted(self, server, rng, attestation_service):
        for name in ("p0", "p1"):
            p = _participant(rng, name)
            provision_key(p, server.enclave, attestation_service,
                          expected_mrenclave=server.enclave.mrenclave)
            server.submit(p.encrypt_dataset())
        summary = server.decrypt_submissions()
        assert summary.accepted == 10
        assert summary.rejected_unregistered == 0
        assert summary.accepted_by_source == {"p0": 5, "p1": 5}
        x, y, sources, indices = server.staged_training_data()
        assert x.shape == (10, 2, 2, 1)
        assert len(sources) == 10

    def test_unregistered_source_discarded(self, server, rng):
        """Injected data from a source that never provisioned a key is
        discarded wholesale (the paper's illegitimate-channel defence)."""
        intruder = _participant(rng, "intruder")
        server.submit(intruder.encrypt_dataset())
        summary = server.decrypt_submissions()
        assert summary.accepted == 0
        assert summary.rejected_unregistered == 5

    def test_tampered_records_discarded(self, server, rng, attestation_service):
        p = _participant(rng, "p0")
        provision_key(p, server.enclave, attestation_service,
                      expected_mrenclave=server.enclave.mrenclave)
        encrypted = p.encrypt_dataset()
        # Tamper with two of the five records in transit.
        for i in (1, 3):
            rec = encrypted.records[i]
            encrypted.records[i] = dataclasses.replace(
                rec, sealed=bytes([rec.sealed[0] ^ 0xFF]) + rec.sealed[1:]
            )
        server.submit(encrypted)
        summary = server.decrypt_submissions()
        assert summary.accepted == 3
        assert summary.rejected_tampered == 2

    def test_relabelled_records_discarded(self, server, rng, attestation_service):
        p = _participant(rng, "p0")
        provision_key(p, server.enclave, attestation_service,
                      expected_mrenclave=server.enclave.mrenclave)
        encrypted = p.encrypt_dataset()
        rec = encrypted.records[0]
        encrypted.records[0] = dataclasses.replace(rec, label=rec.label + 1)
        server.submit(encrypted)
        summary = server.decrypt_submissions()
        assert summary.rejected_tampered == 1

    def test_key_spoofing_between_participants_fails(self, server, rng,
                                                     attestation_service):
        """p1 cannot submit data claiming to be p0 (wrong key)."""
        p0 = _participant(rng, "p0")
        p1 = _participant(rng, "p1")
        for p in (p0, p1):
            provision_key(p, server.enclave, attestation_service,
                          expected_mrenclave=server.enclave.mrenclave)
        spoofed = encrypt_dataset(p1.dataset, p1.key, "p0")  # p1's key, p0's name
        server.submit(spoofed)
        summary = server.decrypt_submissions()
        assert summary.accepted == 0
        assert summary.rejected_tampered == 5

    def test_decrypt_before_build_rejected(self, platform, attestation_service, rng):
        server = TrainingServer(platform, attestation_service, rng.child("s"))
        with pytest.raises(TrainingError):
            server.decrypt_submissions()

    def test_staged_data_before_decrypt_rejected(self, server):
        with pytest.raises(TrainingError):
            server.staged_training_data()

    def test_measurement_covers_architecture(self, platform, attestation_service, rng):
        s1 = TrainingServer(platform, attestation_service, rng.child("s1"))
        e1 = s1.build_training_enclave("[net]\ninput = 2,2,1\n[softmax]\n[cost]\n")
        s2 = TrainingServer(platform, attestation_service, rng.child("s2"))
        e2 = s2.build_training_enclave("[net]\ninput = 4,4,3\n[softmax]\n[cost]\n")
        assert e1.mrenclave != e2.mrenclave


class TestReplayGuard:
    def test_duplicate_submission_rejected(self, server, rng, attestation_service):
        p = _participant(rng, "p0")
        provision_key(p, server.enclave, attestation_service,
                      expected_mrenclave=server.enclave.mrenclave)
        server.submit(p.encrypt_dataset())
        with pytest.raises(DuplicateSubmissionError):
            server.submit(p.encrypt_dataset())

    def test_colliding_record_indices_rejected(self, server, rng,
                                               attestation_service):
        """One replayed record inside an otherwise fresh dataset would
        double its training weight — refused at the transport layer."""
        p = _participant(rng, "p0")
        provision_key(p, server.enclave, attestation_service,
                      expected_mrenclave=server.enclave.mrenclave)
        encrypted = p.encrypt_dataset()
        encrypted.records.append(encrypted.records[2])
        with pytest.raises(DuplicateSubmissionError, match="colliding"):
            server.submit(encrypted)
        assert server._submissions == []

    def test_distinct_sources_fine(self, server, rng, attestation_service):
        for name in ("p0", "p1"):
            p = _participant(rng, name)
            provision_key(p, server.enclave, attestation_service,
                          expected_mrenclave=server.enclave.mrenclave)
            server.submit(p.encrypt_dataset())
        assert server.decrypt_submissions().accepted == 10


class TestFromLedger:
    def _build_ledger(self, server, rng, attestation_service, tmp_path):
        from repro.ingest import ContributionLedger

        ledger = ContributionLedger.create(tmp_path / "ledger")
        for name in ("p0", "p1"):
            p = _participant(rng, name)
            provision_key(p, server.enclave, attestation_service,
                          expected_mrenclave=server.enclave.mrenclave)
            ledger.append(p.encrypt_dataset().records, name)
        return ledger

    def test_stages_committed_lane(self, server, rng, attestation_service,
                                   tmp_path):
        ledger = self._build_ledger(server, rng, attestation_service, tmp_path)
        assert server.from_ledger(ledger) == 10
        summary = server.decrypt_submissions()
        assert summary.accepted == 10
        assert summary.accepted_by_source == {"p0": 5, "p1": 5}

    def test_quarantine_lane_never_staged(self, server, rng,
                                          attestation_service, tmp_path):
        ledger = self._build_ledger(server, rng, attestation_service, tmp_path)
        bad = _participant(rng, "hostile")
        ledger.quarantine(bad.encrypt_dataset().records, "hostile",
                          reason="tampered")
        assert server.from_ledger(ledger) == 10
        assert server.decrypt_submissions().rejected_tampered == 0

    def test_tampered_ledger_fails_closed(self, server, rng,
                                          attestation_service, tmp_path):
        ledger = self._build_ledger(server, rng, attestation_service, tmp_path)
        target = next((tmp_path / "ledger").glob("segment-*.bin"))
        blob = bytearray(target.read_bytes())
        blob[10] ^= 0xFF
        target.write_bytes(bytes(blob))
        with pytest.raises(LedgerError):
            server.from_ledger(ledger)
        assert server._submissions == []
