"""Hierarchical learning hub tests."""

import numpy as np
import pytest

from repro.data.datasets import synthetic_cifar
from repro.errors import ConfigurationError
from repro.federation.hubs import HubAggregator, LearningHub
from repro.nn.zoo import tiny_testnet


@pytest.fixture
def hub_setup(rng, platform):
    train, test = synthetic_cifar(rng.child("hub-data"), num_train=160, num_test=40,
                                  num_classes=4, shape=(8, 8, 3))
    groups = train.split([0.5, 0.5], rng=rng.child("split").generator)
    factory = lambda: tiny_testnet(rng.child("init").fork_generator())
    hubs = [
        LearningHub(f"hub{i}", platform, factory, partition=1,
                    datasets=[groups[i]], rng=rng.child(f"hub{i}"),
                    batch_size=16, learning_rate=0.02)
        for i in range(2)
    ]
    return hubs, test


class TestLearningHub:
    def test_hub_has_own_enclave(self, hub_setup):
        hubs, _ = hub_setup
        assert hubs[0].enclave is not hubs[1].enclave

    def test_train_epoch_returns_loss(self, hub_setup):
        hubs, _ = hub_setup
        loss = hubs[0].train_epoch(0)
        assert np.isfinite(loss) and loss > 0

    def test_empty_hub_rejected(self, rng, platform):
        with pytest.raises(ConfigurationError):
            LearningHub("empty", platform, lambda: tiny_testnet(), partition=1,
                        datasets=[], rng=rng.child("e"))


class TestHubAggregator:
    def test_aggregation_improves_model(self, hub_setup):
        hubs, test = hub_setup
        aggregator = HubAggregator(hubs)
        probs = aggregator.global_model.predict(test.x)
        before = float(np.mean(probs.argmax(1) == test.y))
        aggregator.train(rounds=4)
        probs = aggregator.global_model.predict(test.x)
        after = float(np.mean(probs.argmax(1) == test.y))
        assert after >= before

    def test_round_broadcasts_global_weights(self, hub_setup):
        hubs, _ = hub_setup
        aggregator = HubAggregator(hubs)
        aggregator.run_round(0)
        # After a round, both hub models trained from the same broadcast.
        assert len(aggregator.history) == 1
        assert len(aggregator.history[0].hub_losses) == 2

    def test_enclave_costs_accrue(self, hub_setup, platform):
        hubs, _ = hub_setup
        before = platform.clock.now
        HubAggregator(hubs).run_round(0)
        assert platform.clock.now > before

    def test_no_hubs_rejected(self):
        with pytest.raises(ConfigurationError):
            HubAggregator([])
