"""Secure aggregation tests."""

import numpy as np
import pytest

from repro.errors import AggregationError, ConfigurationError
from repro.federation.secure_agg import (
    SecureAggregationClient,
    aggregate,
    aggregate_with_dropouts,
    run_secure_aggregation,
)


class TestSecureAggregation:
    def test_masks_cancel_exactly(self, rng, generator):
        vectors = [generator.normal(size=50) for _ in range(4)]
        total = run_secure_aggregation(vectors, rng.child("sa"))
        np.testing.assert_allclose(total, sum(vectors), atol=1e-6)

    def test_individual_uploads_are_masked(self, rng, generator):
        """The server sees uploads that reveal nothing about the vectors:
        each upload differs from its plaintext by a large-mask amount."""
        vectors = [generator.normal(size=100) * 0.01 for _ in range(3)]
        clients = [SecureAggregationClient(i, rng.child("sa")) for i in range(3)]
        directory = {c.client_id: c.public_key for c in clients}
        for client in clients:
            client.establish_pairs(directory)
        uploads = [c.masked_update(v) for c, v in zip(clients, vectors)]
        for upload, vector in zip(uploads, vectors):
            # Mask magnitude dwarfs the signal.
            assert np.abs(upload - vector).mean() > 10 * np.abs(vector).mean()
        np.testing.assert_allclose(aggregate(uploads), sum(vectors), atol=1e-6)

    def test_pairwise_seeds_agree(self, rng):
        a = SecureAggregationClient(0, rng.child("sa"))
        b = SecureAggregationClient(1, rng.child("sa"))
        directory = {0: a.public_key, 1: b.public_key}
        a.establish_pairs(directory)
        b.establish_pairs(directory)
        assert a._pair_seeds[1] == b._pair_seeds[0]

    def test_matrix_shapes_preserved(self, rng, generator):
        vectors = [generator.normal(size=(4, 5)) for _ in range(2)]
        total = run_secure_aggregation(vectors, rng.child("sa"))
        assert total.shape == (4, 5)
        np.testing.assert_allclose(total, vectors[0] + vectors[1], atol=1e-6)

    def test_needs_two_clients(self, rng, generator):
        with pytest.raises(ConfigurationError):
            run_secure_aggregation([generator.normal(size=3)], rng.child("sa"))

    def test_upload_before_pairing_rejected(self, rng):
        client = SecureAggregationClient(0, rng.child("sa"))
        with pytest.raises(ConfigurationError):
            client.masked_update(np.zeros(4))

    def test_empty_aggregate_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate([])

    def test_unattributable_poisoning(self, rng, generator):
        """The accountability gap CalTrain fills: a poisoned update hides
        inside the aggregate — the server cannot tell which client sent it."""
        honest = [generator.normal(size=20) * 0.1 for _ in range(3)]
        poisoned = generator.normal(size=20) * 0.1 + 5.0  # a huge shift
        vectors = honest + [poisoned]
        clients = [SecureAggregationClient(i, rng.child("sa"))
                   for i in range(4)]
        directory = {c.client_id: c.public_key for c in clients}
        for client in clients:
            client.establish_pairs(directory)
        uploads = [c.masked_update(v) for c, v in zip(clients, vectors)]
        # The aggregate clearly shifted...
        assert aggregate(uploads).mean() > 3.0
        # ...but no single upload stands out: the masked poisoned upload is
        # statistically indistinguishable from the honest ones.
        deviations = [float(np.abs(u).mean()) for u in uploads]
        assert max(deviations) < 3 * min(deviations)


def _cohort(rng, generator, n, size=40):
    """A paired cohort with escrowed keys and plaintext vectors."""
    vectors = [generator.normal(size=size) * 0.1 for _ in range(n)]
    clients = [SecureAggregationClient(i, rng.child("sa")) for i in range(n)]
    directory = {c.client_id: c.public_key for c in clients}
    for client in clients:
        client.establish_pairs(directory)
    threshold = 1 if n <= 2 else n // 2 + 1
    escrow = {c.client_id: c.escrow_private_key(threshold, n) for c in clients}
    return vectors, clients, directory, escrow, threshold


class TestAggregateWithDropouts:
    def test_no_dropouts_matches_plain_aggregate(self, rng, generator):
        vectors, clients, directory, _, _ = _cohort(rng, generator, 4)
        uploads = {c.client_id: c.masked_update(v)
                   for c, v in zip(clients, vectors)}
        total = aggregate_with_dropouts(uploads, directory)
        np.testing.assert_allclose(total, sum(vectors), atol=1e-6)

    def test_dropout_with_shares_is_exact(self, rng, generator):
        """A paired-but-silent client's orphaned masks are reconstructed
        from its escrowed shares; the survivors' sum comes out exact."""
        vectors, clients, directory, escrow, threshold = _cohort(
            rng, generator, 4
        )
        uploads = {c.client_id: c.masked_update(v)
                   for c, v in zip(clients, vectors) if c.client_id != 2}
        total = aggregate_with_dropouts(
            uploads, directory, dropped=[2],
            shares={2: escrow[2][:threshold]}, threshold=threshold,
            vector_shape=(40,),
        )
        expected = sum(v for c, v in zip(clients, vectors)
                       if c.client_id != 2)
        np.testing.assert_allclose(total, expected, atol=1e-6)

    def test_multiple_dropouts_cross_terms_cancel(self, rng, generator):
        """Two dropped clients' pairwise masks with *each other* cancel in
        the reconstruction; only survivor-facing masks matter."""
        vectors, clients, directory, escrow, threshold = _cohort(
            rng, generator, 5
        )
        alive = [0, 2, 4]
        uploads = {c.client_id: c.masked_update(v)
                   for c, v in zip(clients, vectors) if c.client_id in alive}
        total = aggregate_with_dropouts(
            uploads, directory, dropped=[1, 3],
            shares={1: escrow[1][:threshold], 3: escrow[3][:threshold]},
            threshold=threshold, vector_shape=(40,),
        )
        np.testing.assert_allclose(
            total, sum(vectors[i] for i in alive), atol=1e-6
        )

    def test_dropout_without_shares_fails_closed(self, rng, generator):
        """The historical bug: silently returning the still-masked sum. A
        dropout with no escrowed shares must be a typed error, never a
        biased aggregate."""
        vectors, clients, directory, _, _ = _cohort(rng, generator, 3)
        uploads = {c.client_id: c.masked_update(v)
                   for c, v in zip(clients, vectors) if c.client_id != 1}
        with pytest.raises(AggregationError, match="escrowed shares"):
            aggregate_with_dropouts(uploads, directory, dropped=[1],
                                    vector_shape=(40,))

    def test_insufficient_shares_fail_closed(self, rng, generator):
        vectors, clients, directory, escrow, threshold = _cohort(
            rng, generator, 5
        )
        uploads = {c.client_id: c.masked_update(v)
                   for c, v in zip(clients, vectors) if c.client_id != 1}
        with pytest.raises(AggregationError, match="shares"):
            aggregate_with_dropouts(
                uploads, directory, dropped=[1],
                shares={1: escrow[1][:threshold - 1]}, threshold=threshold,
                vector_shape=(40,),
            )

    def test_unaccounted_member_fails_closed(self, rng, generator):
        """Every directory member must be either an upload or a declared
        dropout — a silently missing client would bias the sum."""
        vectors, clients, directory, _, _ = _cohort(rng, generator, 3)
        uploads = {c.client_id: c.masked_update(v)
                   for c, v in zip(clients, vectors) if c.client_id != 1}
        with pytest.raises(AggregationError, match="neither uploaded"):
            aggregate_with_dropouts(uploads, directory)

    def test_upload_from_declared_dropout_rejected(self, rng, generator):
        vectors, clients, directory, escrow, threshold = _cohort(
            rng, generator, 3
        )
        uploads = {c.client_id: c.masked_update(v)
                   for c, v in zip(clients, vectors)}
        with pytest.raises(AggregationError, match="both uploaded"):
            aggregate_with_dropouts(
                uploads, directory, dropped=[1],
                shares={1: escrow[1][:threshold]}, threshold=threshold,
                vector_shape=(40,),
            )

    def test_unknown_uploader_rejected(self, rng, generator):
        vectors, clients, directory, _, _ = _cohort(rng, generator, 3)
        uploads = {c.client_id: c.masked_update(v)
                   for c, v in zip(clients, vectors)}
        uploads[99] = np.zeros(40)
        with pytest.raises(AggregationError, match="not in the cohort"):
            aggregate_with_dropouts(uploads, directory)

    def test_empty_uploads_rejected(self, rng, generator):
        _, _, directory, _, _ = _cohort(rng, generator, 3)
        with pytest.raises(AggregationError, match="no surviving uploads"):
            aggregate_with_dropouts({}, directory, dropped=[0, 1, 2])

    def test_bad_shares_fail_closed(self, rng, generator):
        """Shares that reconstruct the wrong key must not silently produce
        a garbage mask."""
        vectors, clients, directory, escrow, threshold = _cohort(
            rng, generator, 3
        )
        uploads = {c.client_id: c.masked_update(v)
                   for c, v in zip(clients, vectors) if c.client_id != 1}
        wrong = escrow[0][:threshold]  # client 0's shares, claimed for 1
        with pytest.raises(AggregationError):
            aggregate_with_dropouts(
                uploads, directory, dropped=[1], shares={1: wrong},
                threshold=threshold, vector_shape=(40,),
            )


class TestShareSealing:
    """Shares transit the untrusted relay sealed under pairwise keys."""

    def test_roundtrip_between_paired_clients(self, rng):
        _, clients, _, escrow, threshold = _cohort(
            rng, np.random.default_rng(3), 3
        )
        share = escrow[0][1]  # client 0's share for holder 1
        record = clients[0].encrypt_share_for(1, share)
        assert clients[1].decrypt_share_from(0, record) == share

    def test_record_is_not_the_plaintext_share(self, rng):
        from repro.crypto.shamir import encode_share

        _, clients, _, escrow, _ = _cohort(rng, np.random.default_rng(3), 2)
        share = escrow[0][1]
        record = clients[0].encrypt_share_for(1, share)
        assert encode_share(share) not in record

    def test_tampered_record_rejected(self, rng):
        from repro.errors import AuthenticationError

        _, clients, _, escrow, _ = _cohort(rng, np.random.default_rng(3), 2)
        record = bytearray(clients[0].encrypt_share_for(1, escrow[0][1]))
        record[len(record) // 2] ^= 0x01
        with pytest.raises(AuthenticationError):
            clients[1].decrypt_share_from(0, bytes(record))

    def test_rerouted_record_rejected(self, rng):
        """The relay cannot claim client 0's record came from client 2:
        the (owner, holder) pair is bound as AEAD associated data."""
        from repro.errors import AuthenticationError

        _, clients, _, escrow, _ = _cohort(rng, np.random.default_rng(3), 3)
        record = clients[0].encrypt_share_for(1, escrow[0][1])
        with pytest.raises(AuthenticationError):
            clients[1].decrypt_share_from(2, record)

    def test_sealing_requires_established_pairs(self, rng):
        client = SecureAggregationClient(0, rng.child("sa"))
        with pytest.raises(ConfigurationError, match="establish_pairs"):
            client.encrypt_share_for(1, None)
