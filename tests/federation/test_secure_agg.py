"""Secure aggregation tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.federation.secure_agg import (
    SecureAggregationClient,
    aggregate,
    run_secure_aggregation,
)


class TestSecureAggregation:
    def test_masks_cancel_exactly(self, rng, generator):
        vectors = [generator.normal(size=50) for _ in range(4)]
        total = run_secure_aggregation(vectors, rng.child("sa"))
        np.testing.assert_allclose(total, sum(vectors), atol=1e-6)

    def test_individual_uploads_are_masked(self, rng, generator):
        """The server sees uploads that reveal nothing about the vectors:
        each upload differs from its plaintext by a large-mask amount."""
        vectors = [generator.normal(size=100) * 0.01 for _ in range(3)]
        clients = [SecureAggregationClient(i, rng.child("sa")) for i in range(3)]
        directory = {c.client_id: c.public_key for c in clients}
        for client in clients:
            client.establish_pairs(directory)
        uploads = [c.masked_update(v) for c, v in zip(clients, vectors)]
        for upload, vector in zip(uploads, vectors):
            # Mask magnitude dwarfs the signal.
            assert np.abs(upload - vector).mean() > 10 * np.abs(vector).mean()
        np.testing.assert_allclose(aggregate(uploads), sum(vectors), atol=1e-6)

    def test_pairwise_seeds_agree(self, rng):
        a = SecureAggregationClient(0, rng.child("sa"))
        b = SecureAggregationClient(1, rng.child("sa"))
        directory = {0: a.public_key, 1: b.public_key}
        a.establish_pairs(directory)
        b.establish_pairs(directory)
        assert a._pair_seeds[1] == b._pair_seeds[0]

    def test_matrix_shapes_preserved(self, rng, generator):
        vectors = [generator.normal(size=(4, 5)) for _ in range(2)]
        total = run_secure_aggregation(vectors, rng.child("sa"))
        assert total.shape == (4, 5)
        np.testing.assert_allclose(total, vectors[0] + vectors[1], atol=1e-6)

    def test_needs_two_clients(self, rng, generator):
        with pytest.raises(ConfigurationError):
            run_secure_aggregation([generator.normal(size=3)], rng.child("sa"))

    def test_upload_before_pairing_rejected(self, rng):
        client = SecureAggregationClient(0, rng.child("sa"))
        with pytest.raises(ConfigurationError):
            client.masked_update(np.zeros(4))

    def test_empty_aggregate_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate([])

    def test_unattributable_poisoning(self, rng, generator):
        """The accountability gap CalTrain fills: a poisoned update hides
        inside the aggregate — the server cannot tell which client sent it."""
        honest = [generator.normal(size=20) * 0.1 for _ in range(3)]
        poisoned = generator.normal(size=20) * 0.1 + 5.0  # a huge shift
        vectors = honest + [poisoned]
        clients = [SecureAggregationClient(i, rng.child("sa"))
                   for i in range(4)]
        directory = {c.client_id: c.public_key for c in clients}
        for client in clients:
            client.establish_pairs(directory)
        uploads = [c.masked_update(v) for c, v in zip(clients, vectors)]
        # The aggregate clearly shifted...
        assert aggregate(uploads).mean() > 3.0
        # ...but no single upload stands out: the masked poisoned upload is
        # statistically indistinguishable from the honest ones.
        deviations = [float(np.abs(u).mean()) for u in uploads]
        assert max(deviations) < 3 * min(deviations)
