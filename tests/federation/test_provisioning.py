"""Attested-TLS key provisioning tests."""

import numpy as np
import pytest

from repro.data.datasets import Dataset
from repro.enclave.attestation import AttestationService
from repro.errors import AttestationError
from repro.federation.participant import TrainingParticipant
from repro.federation.provisioning import (
    install_provisioning_ecalls,
    provision_key,
    provisioned_key,
    registered_participants,
)


@pytest.fixture
def training_enclave(platform):
    enclave = platform.create_enclave("training")
    install_provisioning_ecalls(enclave)
    enclave.add_data("config", {"arch": "test"})
    enclave.init()
    return enclave


@pytest.fixture
def participant(rng):
    dataset = Dataset(x=np.zeros((4, 2, 2, 1)), y=np.zeros(4))
    return TrainingParticipant("alice", dataset, rng.child("alice"))


class TestProvisioning:
    def test_key_reaches_enclave(self, participant, training_enclave,
                                 attestation_service):
        provision_key(participant, training_enclave, attestation_service,
                      expected_mrenclave=training_enclave.mrenclave)
        assert provisioned_key(training_enclave, "alice") == participant.key.material

    def test_registered_participants_listing(self, rng, training_enclave,
                                             attestation_service):
        for name in ("alice", "bob"):
            p = TrainingParticipant(
                name, Dataset(x=np.zeros((2, 2, 2, 1)), y=np.zeros(2)),
                rng.child(name),
            )
            provision_key(p, training_enclave, attestation_service,
                          expected_mrenclave=training_enclave.mrenclave)
        assert set(registered_participants(training_enclave)) == {"alice", "bob"}

    def test_wrong_mrenclave_refused(self, participant, training_enclave,
                                     attestation_service):
        with pytest.raises(AttestationError):
            provision_key(participant, training_enclave, attestation_service,
                          expected_mrenclave=bytes(32))
        assert not training_enclave.trusted_has("participant-key/alice")

    def test_unregistered_platform_refused(self, participant, training_enclave):
        empty_service = AttestationService()
        with pytest.raises(AttestationError):
            provision_key(participant, training_enclave, empty_service,
                          expected_mrenclave=training_enclave.mrenclave)

    def test_modified_enclave_refused(self, participant, platform,
                                      attestation_service):
        """An enclave running different (backdoored) code fails the check
        against the participants' agreed measurement."""
        honest = platform.create_enclave("honest")
        install_provisioning_ecalls(honest)
        honest.add_data("config", {"arch": "agreed"})
        honest.init()
        evil = platform.create_enclave("evil")
        install_provisioning_ecalls(evil)
        evil.add_data("config", {"arch": "agreed", "exfiltrate": True})
        evil.init()
        with pytest.raises(AttestationError):
            provision_key(participant, evil, attestation_service,
                          expected_mrenclave=honest.mrenclave)

    def test_transitions_charged(self, participant, training_enclave,
                                 attestation_service, platform):
        before = platform.clock.now
        provision_key(participant, training_enclave, attestation_service,
                      expected_mrenclave=training_enclave.mrenclave)
        assert platform.clock.now > before
        assert training_enclave.ecall_count == 3  # hello, finished, key
