"""Cross-module integration scenarios.

These tests exercise full multi-subsystem flows that no single module test
covers: the audited pipeline, a poisoned participant caught end-to-end,
the sealed linkage database surviving an enclave restart, and hub training
feeding the accountability stage.
"""

import numpy as np
import pytest

from repro.core.caltrain import CalTrain, CalTrainConfig
from repro.data.datasets import Dataset, synthetic_cifar
from repro.federation.participant import TrainingParticipant
from repro.nn.zoo import tiny_testnet
from repro.utils.rng import RngStream


@pytest.fixture
def world():
    rng = RngStream(321, "integration")
    train, test = synthetic_cifar(rng.child("data"), num_train=240,
                                  num_test=60, num_classes=4, shape=(8, 8, 3))
    return rng, train, test


def _system(epochs=2, **kwargs):
    return CalTrain(CalTrainConfig(
        seed=7, epochs=epochs, batch_size=16, partition=1, augment=False,
        network_factory=lambda gen: tiny_testnet(gen, input_shape=(8, 8, 3),
                                                 num_classes=4),
        **kwargs,
    ))


class TestAuditedPipeline:
    def test_every_stage_recorded_and_chain_verifies(self, world):
        rng, train, test = world
        system = _system()
        for i, share in enumerate(train.split([0.5, 0.5],
                                              rng=rng.child("s").generator)):
            participant = TrainingParticipant(f"p{i}", share, rng.child(f"p{i}"))
            system.register_participant(participant)
            system.submit_data(participant)
        system.train()
        system.fingerprint_stage()

        kinds = [e.kind for e in system.audit_log.events()]
        assert kinds[0] == "setup"
        assert kinds.count("participant-registered") == 2
        assert kinds.count("data-submitted") == 2
        assert "decryption" in kinds
        assert "training-complete" in kinds
        assert kinds[-1] == "fingerprint-stage"
        assert system.audit_log.verify_chain()

    def test_audit_records_rejections(self, world):
        """An unregistered injector's records appear in the audit trail."""
        rng, train, _ = world
        system = _system()
        honest = TrainingParticipant("honest", train.subset(range(100)),
                                     rng.child("h"))
        system.register_participant(honest)
        system.submit_data(honest)
        # The intruder bypasses registration and submits directly.
        intruder = TrainingParticipant("intruder", train.subset(range(100, 140)),
                                       rng.child("i"))
        system.server.submit(intruder.encrypt_dataset())
        system.train()
        (event,) = system.audit_log.events("decryption")
        assert event.details["accepted"] == 100
        assert event.details["rejected_unregistered"] == 40

    def test_audit_log_sealable_in_training_enclave(self, world):
        from repro.core.audit import AuditLog
        from repro.enclave.sealing import seal, unseal

        rng, train, _ = world
        system = _system()
        participant = TrainingParticipant("p0", train, rng.child("p0"))
        system.register_participant(participant)
        blob = seal(system.training_enclave, system.audit_log.to_bytes())
        restored = AuditLog.from_bytes(unseal(system.training_enclave, blob))
        assert restored.verify_chain()
        assert restored.head == system.audit_log.head


class TestPoisonedParticipantEndToEnd:
    def test_badnets_participant_is_implicated(self, world):
        """The headline accountability flow against BadNets poisoning, on
        the full facade: attack -> training -> fingerprints -> query ->
        implication -> verified disclosure."""
        from repro.attacks.badnets import BadNetsAttack

        rng, train, test = world
        attack = BadNetsAttack(target_label=0, patch=3)
        shares = train.split([0.5, 0.5], rng=rng.child("s").generator)
        shares[1] = attack.poison_dataset(shares[1], fraction=0.4,
                                          rng=rng.child("poison").generator)
        system = _system(epochs=6)
        kinds = {}
        for i, share in enumerate(shares):
            participant = TrainingParticipant(f"p{i}", share, rng.child(f"p{i}"))
            system.register_participant(participant)
            system.submit_data(participant)
            flags = share.flags.get("poisoned", np.zeros(len(share), bool))
            kinds[f"p{i}"] = np.where(flags, "poisoned", "normal")
        system.train()
        system.fingerprint_stage(kinds_by_source=kinds)

        stamped = attack.stamp_test_set(test)
        result = system.investigator().investigate(
            stamped.x[:6], participants=system.participants,
        )
        assert "p1" in result.implicated_sources
        assert all(result.verified_disclosures.values())
        # Most flagged records genuinely carry the trigger.
        db = system.linkage_db
        flagged_kinds = [db.record(i).kind for i in result.suspicious_records]
        assert flagged_kinds.count("poisoned") > len(flagged_kinds) / 2


class TestSealedLinkagePersistence:
    def test_linkage_db_survives_enclave_restart(self, world):
        """Fingerprinting enclave seals the DB; an identically-built
        enclave on the same platform unseals it and answers queries with
        a verifiable Merkle commitment."""
        from repro.core.linkage import LinkageDatabase
        from repro.core.query import QueryService
        from repro.enclave.sealing import seal, unseal

        rng, train, test = world
        system = _system()
        participant = TrainingParticipant("p0", train, rng.child("p0"))
        system.register_participant(participant)
        system.submit_data(participant)
        system.train()
        database = system.fingerprint_stage()
        commitment = database.merkle_commitment()

        # Seal in one fingerprint enclave...
        enclave_a = system.platform.create_enclave("fp-store")
        enclave_a.init()
        blob = seal(enclave_a, database.to_bytes())
        # ...restart: an identical enclave unseals.
        enclave_b = system.platform.create_enclave("fp-store")
        enclave_b.init()
        restored = LinkageDatabase.from_bytes(unseal(enclave_b, blob))
        assert len(restored) == len(database)
        # Queries over the restored DB verify against the old commitment.
        service = QueryService(restored, index="kdtree")
        labels, _, fps = system.fingerprinter.predict_with_fingerprint(
            test.x[:1]
        )
        neighbors = service.query(fps[0], int(labels[0]), k=3)
        for neighbor in neighbors:
            proof = restored.prove_record(commitment, neighbor.record_index)
            assert restored.verify_record_inclusion(
                commitment.root, neighbor.record_index, proof
            )


class TestHubsFeedAccountability:
    def test_hub_trained_model_supports_fingerprinting(self, world):
        """A model trained by the hub aggregator plugs into the
        fingerprint/query stages like a single-enclave model."""
        from repro.core.fingerprint import Fingerprinter
        from repro.core.linkage import LinkageDatabase, instance_digest
        from repro.core.query import QueryService
        from repro.federation.hubs import HubAggregator, LearningHub

        rng, train, test = world
        from repro.enclave.platform import SgxPlatform

        factory = lambda: tiny_testnet(rng.child("init").fork_generator(),
                                       input_shape=(8, 8, 3), num_classes=4)
        groups = train.split([0.5, 0.5], rng=rng.child("g").generator)
        hubs = [
            LearningHub(f"hub{i}", SgxPlatform(rng=rng.child(f"plat{i}")),
                        factory, partition=1, datasets=[groups[i]],
                        rng=rng.child(f"hub{i}"), batch_size=16,
                        learning_rate=0.02)
            for i in range(2)
        ]
        model = HubAggregator(hubs, global_model=factory()).train(rounds=3)

        fingerprinter = Fingerprinter(model)
        database = LinkageDatabase()
        fingerprints = fingerprinter.fingerprint(train.x)
        database.add_batch(
            fingerprints, train.y.tolist(), ["pool"] * len(train),
            [instance_digest(train.x[i]) for i in range(len(train))],
            source_indices=list(range(len(train))),
        )
        labels, _, fps = fingerprinter.predict_with_fingerprint(test.x[:2])
        neighbors = QueryService(database).query(fps[0], int(labels[0]), k=5)
        assert len(neighbors) == 5
