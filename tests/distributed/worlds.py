"""Reproducible multi-enclave worlds shared by the distributed suite."""

import numpy as np

from repro.data.datasets import synthetic_cifar
from repro.distributed import DistributedCoordinator
from repro.enclave.attestation import AttestationService
from repro.federation.participant import TrainingParticipant
from repro.federation.provisioning import provision_key
from repro.nn.config import network_to_config
from repro.nn.zoo import tiny_testnet
from repro.utils.rng import RngStream
from repro.utils.serialization import stable_hash

N_TRAIN = 64
BATCH_SIZE = 16
HYPER = {"epochs": 3, "batch_size": BATCH_SIZE,
         "learning_rate": 0.05, "momentum": 0.9}


def tiny_factory(generator):
    return tiny_testnet(generator, input_shape=(8, 8, 3), num_classes=4)


def make_coordinator(tmp_path, seed=7, num_workers=2, participants=2,
                     injections=(), straggler_factor=2.5, blacklist_after=2,
                     num_train=N_TRAIN, tracer=None):
    """A standalone coordinator over freshly encrypted submissions.

    Returns ``(coordinator, rng)`` with the shards already distributed,
    trainers built, and attested aggregator channels open.
    """
    rng = RngStream(seed, "distributed-world")
    reference = tiny_factory(rng.child("reference-init").generator)
    network_config = network_to_config(reference)
    service = AttestationService()
    train, _ = synthetic_cifar(rng.child("data"), num_train=num_train,
                               num_test=16, num_classes=4, shape=(8, 8, 3))
    fractions = [1.0 / participants] * participants
    people = [
        TrainingParticipant(f"p{i}", share, rng.child(f"p{i}"))
        for i, share in enumerate(
            train.split(fractions, rng=rng.child("split").generator))
    ]
    datasets = [p.encrypt_dataset() for p in people]

    def provisioner(enclave):
        for person in people:
            provision_key(person, enclave, service,
                          expected_mrenclave=enclave.mrenclave)

    coordinator = DistributedCoordinator(
        num_workers=num_workers,
        network_factory=tiny_factory,
        network_config=network_config,
        hyperparameters=HYPER,
        partition=1,
        batch_size=BATCH_SIZE,
        learning_rate=0.05,
        momentum=0.9,
        rng=rng.child("distributed"),
        attestation_service=service,
        provisioner=provisioner,
        init_generator_factory=lambda: rng.child("model-init").generator,
        checkpoint_root=tmp_path,
        config_digest=stable_hash(network_config, HYPER),
        straggler_factor=straggler_factor,
        blacklist_after=blacklist_after,
        injections=injections,
        tracer=tracer,
    )
    coordinator.distribute(datasets)
    return coordinator, rng


def losses(reports):
    return [r.mean_loss for r in reports]


def assert_same_weights(got, expected):
    assert len(got) == len(expected)
    for layer_got, layer_expected in zip(got, expected):
        assert set(layer_got) == set(layer_expected)
        for name in layer_got:
            np.testing.assert_array_equal(layer_got[name],
                                          layer_expected[name], err_msg=name)
