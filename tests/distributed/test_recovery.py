"""Worker crash/recovery tests: sealed checkpoints, replay, partial rounds."""

import pytest

from repro.distributed import WorkerInjection
from repro.errors import CheckpointError

from tests.distributed.worlds import (assert_same_weights, losses,
                                      make_coordinator)


class TestCrashRecovery:
    def test_round_completes_via_partial_aggregation(self, tmp_path):
        """The acceptance drill: a killed worker's round still aggregates
        from the survivors, with the dropout's masks reconstructed."""
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=3,
            injections=(WorkerInjection("crash", "w1", 0, batch=1),),
        )
        report = coordinator.run(1)[0]
        assert report.faulted == ["w1"]
        assert sorted(report.participating) == ["w0", "w2"]
        assert report.recovered == ["w1"]
        assert report.recovered_masks == 1
        assert coordinator.telemetry.counter("worker_faults") == 1
        assert coordinator.telemetry.counter("worker_recoveries") == 1

    def test_recovered_worker_resumes_from_sealed_checkpoint(self, tmp_path):
        """After recovery + broadcast the crashed replica is bitwise
        identical to the survivors — the sealed checkpoint restored the
        exact round-start state."""
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=3,
            injections=(WorkerInjection("crash", "w1", 0, batch=1),),
        )
        coordinator.run(1)
        reference = coordinator.workers[0].replica_weights()
        assert_same_weights(coordinator.workers[1].replica_weights(),
                            reference)

    def test_recovered_worker_participates_next_round(self, tmp_path):
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=2,
            injections=(WorkerInjection("crash", "w1", 0, batch=1),),
        )
        reports = coordinator.run(2)
        assert reports[0].faulted == ["w1"]
        assert sorted(reports[1].participating) == ["w0", "w1"]
        assert reports[1].faulted == []

    def test_crash_run_is_deterministic(self, tmp_path):
        """Same seed + same injection -> identical losses and weights."""
        injections = (WorkerInjection("crash", "w1", 1, batch=2),)
        a, _ = make_coordinator(tmp_path / "a", seed=23,
                                injections=injections)
        b, _ = make_coordinator(tmp_path / "b", seed=23,
                                injections=injections)
        assert losses(a.run(3)) == losses(b.run(3))
        assert_same_weights(a.final_weights(), b.final_weights())

    def test_lone_worker_crash_aborts_round(self, tmp_path):
        from repro.errors import RoundAborted

        coordinator, _ = make_coordinator(
            tmp_path, num_workers=1,
            injections=(WorkerInjection("crash", "w0", 0, batch=1),),
        )
        with pytest.raises(RoundAborted, match="no worker finished"):
            coordinator.run(1)

    def test_training_continues_after_crash_and_learns(self, tmp_path):
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=2,
            injections=(WorkerInjection("crash", "w0", 1, batch=1),),
        )
        reports = coordinator.run(3)
        assert reports[-1].mean_loss < reports[0].mean_loss

    def test_recovery_without_checkpoint_fails_closed(self, tmp_path):
        coordinator, _ = make_coordinator(tmp_path, num_workers=2)
        worker = coordinator.workers[0]
        # Crash before any round ran: nothing was ever sealed.
        try:
            worker.crash()
        except Exception:
            pass
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            worker.recover(coordinator.provisioner, coordinator.aggregator)


def _form_cohort(coordinator, threshold=2):
    """Run the per-round escrow flow by hand; returns (workers, relayed).

    ``relayed`` is every escrow record the coordinator saw in transit —
    all of them sealed for their recipient enclaves.
    """
    active = coordinator.workers
    cohort = {w.worker_id: i for i, w in enumerate(active)}
    round_rng = coordinator.rng.child("secagg/test")
    for worker in active:
        worker.begin_cohort(cohort[worker.worker_id], round_rng)
    directory = {cohort[w.worker_id]: w.secagg_public_key for w in active}
    for worker in active:
        worker.establish_pairs(directory)
    relayed = []
    for worker in active:
        records = worker.escrow_records(threshold, len(active))
        for peer in active:
            position = cohort[peer.worker_id]
            if position in records:
                relayed.append(
                    (cohort[worker.worker_id], peer, records[position])
                )
                peer.hold_share_record(cohort[worker.worker_id],
                                       records[position])
    return active, relayed


class TestShareEscrowLifecycle:
    def test_shares_die_with_the_enclave(self, tmp_path):
        """Escrowed shares live in enclave memory: a crashed holder cannot
        surrender them, which is what bounds simultaneous-crash recovery
        at the Shamir threshold (fail closed beyond it)."""
        coordinator, _ = make_coordinator(tmp_path, num_workers=3)
        active, _ = _form_cohort(coordinator)
        holder = active[1]
        assert holder.reveal_share_record(0) is not None
        holder.enclave.destroy()
        assert holder.reveal_share_record(0) is None

    def test_relayed_escrow_records_are_sealed(self, tmp_path):
        """The coordinator relays one escrow record per (owner, holder)
        pair and none of them contains the plaintext share the holder
        ends up with — with threshold=1 a single readable share would
        hand the coordinator a dropout's round DH key."""
        from repro.crypto.shamir import encode_share

        coordinator, _ = make_coordinator(tmp_path, num_workers=3)
        active, relayed = _form_cohort(coordinator)
        assert len(relayed) == len(active) * (len(active) - 1)
        for owner_id, holder, record in relayed:
            held = holder.enclave.trusted_get(f"secagg-share/{owner_id}")
            assert encode_share(held) not in record

    def test_tampered_escrow_record_fails_closed(self, tmp_path):
        """A coordinator that flips a bit in a relayed escrow record is
        caught at the holder, not silently escrowed as garbage."""
        from repro.errors import AuthenticationError

        coordinator, _ = make_coordinator(tmp_path, num_workers=2)
        active = coordinator.workers
        cohort = {w.worker_id: i for i, w in enumerate(active)}
        round_rng = coordinator.rng.child("secagg/test")
        for worker in active:
            worker.begin_cohort(cohort[worker.worker_id], round_rng)
        directory = {cohort[w.worker_id]: w.secagg_public_key
                     for w in active}
        for worker in active:
            worker.establish_pairs(directory)
        records = active[0].escrow_records(1, 2)
        (position, record), = records.items()
        assert position == 1
        flipped = bytearray(record)
        flipped[len(flipped) // 2] ^= 0x01
        with pytest.raises(AuthenticationError):
            active[1].hold_share_record(0, bytes(flipped))

    def test_tampered_reveal_record_aborts_the_round(self, tmp_path):
        """A revealed share travels the attested channel; the coordinator
        flipping a bit in the relay makes aggregation fail closed instead
        of rebuilding a dropout's masks from forged material."""
        from repro.errors import RoundAborted

        coordinator, _ = make_coordinator(
            tmp_path, num_workers=3,
            injections=(WorkerInjection("crash", "w1", 0, batch=1),),
        )
        original = coordinator.aggregator.reduce

        def tampering_reduce(round_index, **kwargs):
            for records in kwargs["share_records"].values():
                if records:
                    holder, record = records[0]
                    flipped = bytearray(record)
                    flipped[len(flipped) // 2] ^= 0x01
                    records[0] = (holder, bytes(flipped))
                    break
            return original(round_index, **kwargs)

        coordinator.aggregator.reduce = tampering_reduce
        with pytest.raises(RoundAborted, match="failed closed"):
            coordinator.run(1)
