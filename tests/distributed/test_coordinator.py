"""Coordinator round-loop tests: sharding, rounds, stragglers, blacklists."""

import numpy as np
import pytest

from repro.data.encryption import EncryptedDataset
from repro.distributed import DistributedCoordinator, WorkerInjection
from repro.errors import ConfigurationError, RoundAborted

from tests.distributed.worlds import (assert_same_weights, losses,
                                      make_coordinator)


class TestSharding:
    def test_round_robin_is_balanced(self, tmp_path):
        coordinator, _ = make_coordinator(tmp_path, num_workers=4,
                                          num_train=64)
        sizes = [w.examples for w in coordinator.workers]
        assert sum(sizes) == 64
        assert max(sizes) - min(sizes) <= 1

    def test_every_record_lands_exactly_once(self, tmp_path):
        coordinator, _ = make_coordinator(tmp_path, num_workers=3,
                                          participants=2, num_train=64)
        seen = set()
        for worker in coordinator.workers:
            for dataset in worker._shard:
                for record in dataset.records:
                    key = (record.source_id, record.index)
                    assert key not in seen, "record assigned twice"
                    seen.add(key)
        assert len(seen) == 64

    def test_sharding_is_deterministic(self, tmp_path):
        a, _ = make_coordinator(tmp_path / "a", num_workers=3, seed=5)
        b, _ = make_coordinator(tmp_path / "b", num_workers=3, seed=5)
        for wa, wb in zip(a.workers, b.workers):
            assert [(d.source_id, [r.index for r in d.records])
                    for d in wa._shard] == \
                   [(d.source_id, [r.index for r in d.records])
                    for d in wb._shard]

    def test_empty_distribution_rejected(self, tmp_path):
        coordinator, _ = make_coordinator(tmp_path)
        with pytest.raises(ConfigurationError):
            coordinator.distribute([])


class TestRounds:
    def test_replicas_bitwise_identical_after_each_round(self, tmp_path):
        coordinator, _ = make_coordinator(tmp_path, num_workers=3)
        coordinator.run(2)
        reference = coordinator.workers[0].replica_weights()
        for worker in coordinator.workers[1:]:
            assert_same_weights(worker.replica_weights(), reference)

    def test_losses_decrease(self, tmp_path):
        coordinator, _ = make_coordinator(tmp_path, num_workers=2)
        reports = coordinator.run(3)
        ls = losses(reports)
        assert ls[-1] < ls[0]

    def test_deterministic_across_runs(self, tmp_path):
        a, _ = make_coordinator(tmp_path / "a", seed=11)
        b, _ = make_coordinator(tmp_path / "b", seed=11)
        assert losses(a.run(2)) == losses(b.run(2))
        assert_same_weights(a.final_weights(), b.final_weights())

    def test_single_worker_degenerate_cohort(self, tmp_path):
        """N=1 skips masking (the aggregate would reveal the lone update
        anyway) but still rides the aggregator-enclave channel."""
        coordinator, _ = make_coordinator(tmp_path, num_workers=1)
        reports = coordinator.run(2)
        assert all(r.participating == ["w0"] for r in reports)
        assert all(r.recovered_masks == 0 for r in reports)

    def test_round_wallclock_is_concurrent_not_serial(self, tmp_path):
        """Round cost is the slowest worker, not the sum of workers."""
        coordinator, _ = make_coordinator(tmp_path, num_workers=4)
        report = coordinator.run(1)[0]
        per_worker = [
            w.platform.clock.now for w in coordinator.workers
        ]
        assert report.train_seconds <= max(per_worker) + 1e-9
        assert report.round_seconds < sum(per_worker)

    def test_parity_with_single_enclave_loss_band(self, tmp_path):
        """Data-parallel rounds track the single-worker trajectory on the
        same seed within a loose tolerance (different batch composition,
        same data + init)."""
        multi, _ = make_coordinator(tmp_path / "multi", num_workers=4,
                                    seed=13)
        single, _ = make_coordinator(tmp_path / "single", num_workers=1,
                                     seed=13)
        multi_losses = losses(multi.run(3))
        single_losses = losses(single.run(3))
        for m, s in zip(multi_losses, single_losses):
            assert abs(m - s) < 0.5, (multi_losses, single_losses)
        # Both must actually learn.
        assert multi_losses[-1] < multi_losses[0]
        assert single_losses[-1] < single_losses[0]

    def test_replica_structural_divergence_detected(self, tmp_path):
        """The consistency assertion must catch replicas that differ in
        *structure* — extra layers or extra per-layer arrays would slip
        through a zip/keys walk that only visits the reference's entries."""
        coordinator, _ = make_coordinator(tmp_path, num_workers=2)
        reference = coordinator.workers[0].replica_weights()

        class _Doctored:
            worker_id = "wx"

            def __init__(self, weights):
                self._weights = weights

            def replica_weights(self):
                return self._weights

        extra_layer = reference + [{"w": np.zeros(2)}]
        with pytest.raises(RoundAborted, match="divergence"):
            coordinator._assert_replicas_consistent(
                [coordinator.workers[0], _Doctored(extra_layer)], 0
            )
        extra_param = [dict(layer) for layer in reference]
        extra_param[0]["rogue"] = np.zeros(2)
        with pytest.raises(RoundAborted, match="divergence"):
            coordinator._assert_replicas_consistent(
                [coordinator.workers[0], _Doctored(extra_param)], 0
            )

    def test_audit_trail_one_event_per_round(self, tmp_path):
        coordinator, _ = make_coordinator(tmp_path, num_workers=2)
        coordinator.run(3)
        events = coordinator.audit.events("aggregation")
        assert [e.details["round"] for e in events] == [0, 1, 2]
        assert coordinator.audit.verify_chain()


class TestStragglers:
    def test_straggler_excluded_by_deadline(self, tmp_path):
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=3,
            injections=(WorkerInjection("straggle", "w2", 0, factor=5.0),),
        )
        report = coordinator.run(1)[0]
        assert report.stragglers == ["w2"]
        assert sorted(report.participating) == ["w0", "w1"]
        assert report.recovered_masks == 1

    def test_straggler_converges_at_broadcast(self, tmp_path):
        """The straggler's local progress is discarded; it still applies
        the agreed update and stays bitwise consistent."""
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=3,
            injections=(WorkerInjection("straggle", "w1", 0, factor=5.0),),
        )
        coordinator.run(1)
        reference = coordinator.workers[0].replica_weights()
        assert_same_weights(coordinator.workers[1].replica_weights(),
                            reference)

    def test_straggler_round_costs_the_deadline(self, tmp_path):
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=2,
            injections=(WorkerInjection("straggle", "w1", 0, factor=9.0),),
        )
        report = coordinator.run(1)[0]
        assert report.stragglers == ["w1"]
        assert report.train_seconds == pytest.approx(report.deadline_seconds)

    def test_telemetry_counts_stragglers(self, tmp_path):
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=2,
            injections=(WorkerInjection("straggle", "w1", 0, factor=9.0),
                        WorkerInjection("straggle", "w1", 1, factor=9.0)),
            blacklist_after=5,
        )
        coordinator.run(2)
        assert coordinator.telemetry.counter("stragglers") == 2
        assert coordinator.telemetry.counter("partial_aggregations") == 2


class TestBlacklisting:
    def test_repeat_straggler_blacklisted_and_shard_reassigned(self, tmp_path):
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=3, blacklist_after=2,
            injections=(WorkerInjection("straggle", "w2", 0, factor=9.0),
                        WorkerInjection("straggle", "w2", 1, factor=9.0)),
        )
        before = coordinator._by_id["w2"].examples
        assert before > 0
        reports = coordinator.run(3)
        assert reports[1].blacklisted == ["w2"]
        assert "w2" in coordinator.blacklisted
        # The shard moved to the survivors; nothing was lost.
        survivors = [w for w in coordinator.workers if w.worker_id != "w2"]
        assert sum(w.examples for w in survivors) == 64
        # Round 2 runs without the blacklisted worker.
        assert "w2" not in reports[2].participating

    def test_offender_streak_resets_on_good_round(self, tmp_path):
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=2, blacklist_after=2,
            injections=(WorkerInjection("straggle", "w1", 0, factor=9.0),
                        WorkerInjection("straggle", "w1", 2, factor=9.0)),
        )
        reports = coordinator.run(3)
        assert coordinator.blacklisted == set()
        assert all(not r.blacklisted for r in reports)

    def test_all_blacklisted_aborts(self, tmp_path):
        coordinator, _ = make_coordinator(tmp_path, num_workers=1)
        coordinator.blacklisted.add("w0")
        with pytest.raises(RoundAborted, match="blacklisted"):
            coordinator.run(1)


class TestInjectionSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerInjection("explode", "w0", 0)

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            make_coordinator(tmp_path, num_workers=0)
        with pytest.raises(ConfigurationError):
            make_coordinator(tmp_path, straggler_factor=1.0)
        with pytest.raises(ConfigurationError):
            make_coordinator(tmp_path, blacklist_after=0)
