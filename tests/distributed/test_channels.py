"""Attested-channel and record-integrity failure-mode tests.

The satellite's contract: mid-round corruption of a masked upload is
detected (AEAD tag or boundary checksum), classified as a *worker* fault,
and the round completes by partial aggregation — the coordinator never
crashes over a bad record.
"""

import numpy as np
import pytest

from repro.distributed import WorkerInjection, decode_vector, encode_vector
from repro.distributed.channels import open_attested_channel
from repro.errors import (AttestationError, AuthenticationError,
                          ChannelIntegrityError, RoundAborted)

from tests.distributed.worlds import assert_same_weights, make_coordinator


class TestVectorRecords:
    def test_roundtrip(self, generator):
        vector = generator.normal(size=257)
        np.testing.assert_array_equal(
            decode_vector(encode_vector(vector)), vector.astype(np.float64)
        )

    def test_roundtrip_with_shape(self, generator):
        vector = generator.normal(size=12)
        out = decode_vector(encode_vector(vector), shape=(3, 4))
        assert out.shape == (3, 4)

    def test_truncated_record_fails_closed(self):
        with pytest.raises(ChannelIntegrityError, match="truncated"):
            decode_vector(b"\x01\x02")

    def test_length_mismatch_fails_closed(self, generator):
        blob = encode_vector(generator.normal(size=8))
        with pytest.raises(ChannelIntegrityError, match="payload bytes"):
            decode_vector(blob[:-8])

    def test_bitflip_fails_boundary_checksum(self, generator):
        blob = bytearray(encode_vector(generator.normal(size=8)))
        blob[20] ^= 0x40
        with pytest.raises(ChannelIntegrityError, match="checksum"):
            decode_vector(bytes(blob))


class TestAttestedChannel:
    def test_handshake_requires_agreed_measurement(self, tmp_path):
        """A worker refuses a channel to an aggregator whose quote does
        not carry the agreed MRENCLAVE."""
        coordinator, rng = make_coordinator(tmp_path, num_workers=2)
        with pytest.raises(AttestationError):
            open_attested_channel(
                rng=rng.child("probe"),
                aggregator=coordinator.aggregator,
                peer_id="probe",
                attestation_service=coordinator.workers[0].attestation_service,
                expected_mrenclave=b"\x00" * 32,
            )

    def test_channel_records_are_sequence_bound(self, tmp_path):
        """Replaying a worker's previous record into the aggregator fails
        the AEAD sequence check — records cannot be reordered/replayed."""
        coordinator, _ = make_coordinator(tmp_path, num_workers=2)
        coordinator.run(1)
        worker = coordinator.workers[0]
        record = worker.upload_record(masked=False)
        coordinator.aggregator.submit(worker.worker_id, record)
        with pytest.raises(AuthenticationError):
            coordinator.aggregator.submit(worker.worker_id, record)

    def test_rehandshake_derives_fresh_server_keys(self, tmp_path):
        """Successive handshakes for the same peer must not reproduce the
        aggregator's DH share or nonce: seed-derived reuse would rebuild
        the previous session's record keys with sequence counters reset."""
        from repro.crypto.tls import TlsClient

        coordinator, rng = make_coordinator(tmp_path, num_workers=2)
        hello_1 = TlsClient(rng=rng.child("probe-1")).client_hello()
        hello_2 = TlsClient(rng=rng.child("probe-2")).client_hello()
        hello_s1, _ = coordinator.aggregator.start_handshake("probe", hello_1)
        hello_s2, _ = coordinator.aggregator.start_handshake("probe", hello_2)
        assert hello_s1.dh_public != hello_s2.dh_public
        assert hello_s1.nonce != hello_s2.nonce

    def test_stale_record_rejected_after_rehandshake(self, tmp_path):
        """The replay attack a re-handshake must shut out: the coordinator
        corrupts one upload to force a channel reset, then replays a
        record captured from the old session onto the 'fresh' channel. If
        either side re-derived the same handshake keys, the stale record
        would re-authenticate at sequence 0 and silently bias the round."""
        coordinator, _ = make_coordinator(tmp_path, num_workers=2)
        coordinator.run(1)
        worker = coordinator.workers[0]
        worker.open_channel(coordinator.aggregator)   # session A (reset)
        stale = worker.upload_record(masked=False)    # sequence 0 on A
        worker.open_channel(coordinator.aggregator)   # session B (fresh)
        with pytest.raises(AuthenticationError):
            coordinator.aggregator.submit(worker.worker_id, stale)


class TestMidRoundCorruption:
    def test_corruption_is_a_worker_fault_not_a_coordinator_crash(
            self, tmp_path):
        """The headline failure mode: one flipped byte in the relay path
        drops that worker from the round; everyone else aggregates."""
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=3,
            injections=(WorkerInjection("corrupt", "w1", 0),),
        )
        report = coordinator.run(1)[0]  # must not raise
        assert report.corrupted == ["w1"]
        assert sorted(report.participating) == ["w0", "w2"]
        assert report.recovered_masks == 1
        assert coordinator.telemetry.counter("channel_corruptions") == 1
        assert coordinator.telemetry.counter("worker_faults") == 1

    def test_corrupted_worker_converges_at_broadcast(self, tmp_path):
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=3,
            injections=(WorkerInjection("corrupt", "w2", 0),),
        )
        coordinator.run(1)
        reference = coordinator.workers[0].replica_weights()
        assert_same_weights(coordinator.workers[2].replica_weights(),
                            reference)

    def test_corrupted_worker_rejoins_next_round(self, tmp_path):
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=2,
            injections=(WorkerInjection("corrupt", "w0", 0),),
        )
        reports = coordinator.run(2)
        assert reports[0].corrupted == ["w0"]
        assert sorted(reports[1].participating) == ["w0", "w1"]

    def test_every_upload_corrupted_aborts_fail_closed(self, tmp_path):
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=2,
            injections=(WorkerInjection("corrupt", "w0", 0),
                        WorkerInjection("corrupt", "w1", 0)),
        )
        with pytest.raises(RoundAborted, match="no upload survived"):
            coordinator.run(1)

    def test_aggregator_audit_names_the_dropout(self, tmp_path):
        coordinator, _ = make_coordinator(
            tmp_path, num_workers=3,
            injections=(WorkerInjection("corrupt", "w1", 0),),
        )
        coordinator.run(1)
        event = coordinator.audit.events("aggregation")[0]
        assert event.details["dropped"] == ["w1"]
        assert coordinator.audit.verify_chain()
