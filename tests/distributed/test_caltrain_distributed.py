"""CalTrain facade integration for the distributed training stage."""

import numpy as np
import pytest

from repro.core.caltrain import CalTrain, CalTrainConfig
from repro.data.datasets import synthetic_cifar
from repro.distributed import WorkerInjection
from repro.errors import ConfigurationError
from repro.federation.participant import TrainingParticipant
from repro.nn.zoo import tiny_testnet
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.utils.rng import RngStream


def make_world(seed=7, epochs=3, participants=2):
    config = CalTrainConfig(
        seed=seed, epochs=epochs, batch_size=16, partition=1, augment=False,
        network_factory=lambda gen: tiny_testnet(
            gen, input_shape=(8, 8, 3), num_classes=4),
    )
    rng = RngStream(99, "dist-world")
    train, test = synthetic_cifar(rng.child("data"), num_train=64,
                                  num_test=32, num_classes=4, shape=(8, 8, 3))
    system = CalTrain(config)
    fractions = [1.0 / participants] * participants
    for i, share in enumerate(
            train.split(fractions, rng=rng.child("split").generator)):
        participant = TrainingParticipant(f"p{i}", share, rng.child(f"p{i}"))
        system.register_participant(participant)
        system.submit_data(participant)
    return system, test


class TestCalTrainDistributed:
    def test_two_worker_training_end_to_end(self, tmp_path):
        system, test = make_world()
        reports = system.train(test_x=test.x, test_y=test.y, workers=2,
                               checkpoint_dir=str(tmp_path))
        assert len(reports) == 3
        assert reports[-1].top1 is not None
        assert reports[-1].mean_loss < reports[0].mean_loss
        assert system.coordinator is not None
        assert len(system.coordinator.workers) == 2
        assert system.audit_log.verify_chain()

    def test_loss_parity_with_single_enclave(self, tmp_path):
        """Same seed, same data: the distributed trajectory stays within a
        tolerance band of the classic single-enclave path."""
        dist, test = make_world(seed=7)
        dist_reports = dist.train(workers=2, checkpoint_dir=str(tmp_path))
        single, _ = make_world(seed=7)
        single_reports = single.train()
        for d, s in zip(dist_reports, single_reports):
            assert abs(d.mean_loss - s.mean_loss) < 0.5
        assert dist_reports[-1].mean_loss < dist_reports[0].mean_loss

    def test_fingerprint_stage_runs_after_distributed_training(
            self, tmp_path):
        system, _ = make_world()
        system.train(workers=2, checkpoint_dir=str(tmp_path))
        database = system.fingerprint_stage()
        assert len(database) == system.decryption_summary.accepted
        service = system.query_service()
        assert service is not None

    def test_distributed_audit_events_present(self, tmp_path):
        system, _ = make_world(epochs=2)
        system.train(workers=2, checkpoint_dir=str(tmp_path))
        kinds = [e.kind for e in system.audit_log.entries] \
            if hasattr(system.audit_log, "entries") else None
        setup = system.audit_log.events("distributed-setup")
        rounds = system.audit_log.events("distributed-round")
        complete = system.audit_log.events("training-complete")
        assert len(setup) == 1
        assert setup[0].details["workers"] == 2
        assert [e.details["round"] for e in rounds] == [0, 1]
        assert len(complete) == 1

    def test_injections_flow_through_facade(self, tmp_path):
        system, _ = make_world()
        system.train(
            workers=2, checkpoint_dir=str(tmp_path),
            injections=(WorkerInjection("crash", "w1", 1, batch=1),),
            blacklist_after=3,
        )
        assert system.round_reports[1].faulted == ["w1"]
        assert system.round_reports[1].recovered == ["w1"]

    def test_incompatible_resilience_options_rejected(self, tmp_path):
        system, _ = make_world()
        with pytest.raises(ConfigurationError, match="incompatible"):
            system.train(workers=2, resume=True,
                         checkpoint_dir=str(tmp_path))
        with pytest.raises(ConfigurationError, match="incompatible"):
            system.train(
                workers=2, checkpoint_dir=str(tmp_path),
                fault_plan=FaultPlan([FaultSpec("enclave-abort", 0, 1)]),
            )
        with pytest.raises(ConfigurationError, match="incompatible"):
            system.train(workers=2, keep_snapshots=True)

    def test_reassessment_rejected_with_workers(self, tmp_path):
        system, _ = make_world()
        system.config.reassess_every_epoch = True
        with pytest.raises(ConfigurationError, match="reassess"):
            system.train(workers=2)

    def test_distributed_metrics_share_deployment_registry(self, tmp_path):
        system, _ = make_world(epochs=2)
        system.train(workers=2, checkpoint_dir=str(tmp_path))
        assert system.distributed_telemetry.registry is system.metrics
        assert system.distributed_telemetry.counter("rounds") == 2
