"""BatchNorm layer tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn.config import network_from_config, network_to_config
from repro.nn.gradcheck import check_gradients
from repro.nn.layers import (
    AvgPoolLayer,
    BatchNormLayer,
    ConvLayer,
    CostLayer,
    SoftmaxLayer,
)
from repro.nn.network import Network


def _built(channels=3):
    layer = BatchNormLayer()
    layer.build(channels)
    return layer


class TestForward:
    def test_training_normalizes(self, generator):
        layer = _built(4)
        x = generator.normal(2.0, 3.0, size=(8, 5, 5, 4)).astype(np.float32)
        out = layer.forward(x, training=True)
        assert abs(out.mean()) < 1e-5
        assert out.std() == pytest.approx(1.0, rel=0.01)

    def test_gamma_beta_applied(self, generator):
        layer = _built(2)
        layer.gamma[...] = 3.0
        layer.beta[...] = -1.0
        x = generator.normal(size=(16, 2)).astype(np.float32)
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(-1.0, abs=0.01)
        assert out.std() == pytest.approx(3.0, rel=0.05)

    def test_inference_uses_running_stats(self, generator):
        layer = _built(3)
        x = generator.normal(5.0, 2.0, size=(64, 3)).astype(np.float32)
        for _ in range(50):
            layer.forward(x, training=True)
        out = layer.forward(x)  # inference
        assert abs(out.mean()) < 0.2

    def test_dense_and_conv_shapes(self, generator):
        layer = _built(3)
        assert layer.forward(np.zeros((2, 4, 4, 3), dtype=np.float32),
                             training=True).shape == (2, 4, 4, 3)
        assert layer.forward(np.zeros((2, 3), dtype=np.float32)).shape == (2, 3)

    def test_channel_mismatch(self):
        with pytest.raises(ShapeError):
            _built(3).forward(np.zeros((1, 4, 4, 5), dtype=np.float32))

    def test_unbuilt_rejected(self):
        with pytest.raises(ShapeError):
            BatchNormLayer().forward(np.zeros((1, 2)))

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            BatchNormLayer(momentum=1.0)
        with pytest.raises(ConfigurationError):
            BatchNormLayer(eps=0.0)


class TestBackward:
    def test_gradcheck_through_batchnorm(self):
        layers = [
            ConvLayer(4, 3, 1, activation="linear"),
            BatchNormLayer(),
            ConvLayer(3, 1, 1, activation="linear"),
            AvgPoolLayer(),
            SoftmaxLayer(),
            CostLayer(),
        ]
        net = Network((6, 6, 2), layers, rng=np.random.default_rng(0))
        gen = np.random.default_rng(3)
        x = gen.normal(size=(4, 6, 6, 2))
        y = gen.integers(0, 3, size=4)
        errors = check_gradients(net, x, y, samples_per_param=8,
                                 rng=np.random.default_rng(0))
        assert max(errors.values()) < 1e-4, errors


class TestStateHandling:
    def test_running_stats_survive_weight_roundtrip(self, generator):
        layers_a = [BatchNormLayer(), SoftmaxLayer(), CostLayer()]
        net_a = Network((4,), layers_a, rng=np.random.default_rng(0))
        x = generator.normal(3.0, 2.0, size=(32, 4)).astype(np.float32)
        for _ in range(20):
            net_a.layers[0].forward(x, training=True)

        layers_b = [BatchNormLayer(), SoftmaxLayer(), CostLayer()]
        net_b = Network((4,), layers_b, rng=np.random.default_rng(1))
        net_b.set_weights(net_a.get_weights())
        np.testing.assert_allclose(
            net_b.layers[0].running_mean, net_a.layers[0].running_mean
        )
        np.testing.assert_allclose(
            net_b.layers[0].running_var, net_a.layers[0].running_var
        )

    def test_optimizer_never_touches_running_stats(self, generator):
        from repro.nn.optimizers import Sgd

        layers = [
            ConvLayer(4, 3, 1), BatchNormLayer(),
            ConvLayer(2, 1, 1, activation="linear"),
            AvgPoolLayer(), SoftmaxLayer(), CostLayer(),
        ]
        net = Network((4, 4, 3), layers, rng=np.random.default_rng(0))
        bn = net.layers[1]
        x = generator.random((8, 4, 4, 3)).astype(np.float32)
        y = generator.integers(0, 2, size=8)
        mean_before = bn.running_mean.copy()
        net.train_batch(x, y, Sgd(0.05))
        # Running stats move only via the forward-pass update rule; the
        # optimizer updates gamma/beta.
        assert not np.allclose(bn.running_mean, mean_before)  # fwd updated
        assert bn.extra_state().keys() == {"running_mean", "running_var"}


class TestConfig:
    def test_config_roundtrip(self):
        text = (
            "[net]\ninput = 4,4,2\n[conv]\nfilters = 3\n[batchnorm]\n"
            "momentum = 0.8\n[avg]\n[softmax]\n[cost]\n"
        )
        net = network_from_config(text, rng=np.random.default_rng(0))
        assert net.layers[1].kind == "batchnorm"
        assert net.layers[1].momentum == 0.8
        rebuilt = network_from_config(network_to_config(net),
                                      rng=np.random.default_rng(1))
        assert [l.kind for l in rebuilt.layers] == [l.kind for l in net.layers]
