"""Model persistence tests."""

import numpy as np
import pytest

from repro.errors import NetworkDefinitionError
from repro.nn.model_io import load_model, model_from_bytes, model_to_bytes, save_model
from repro.nn.zoo import cifar10_10layer, tiny_testnet


class TestModelIo:
    def test_bytes_roundtrip_preserves_predictions(self, rng, generator):
        net = tiny_testnet(rng.child("n").generator)
        x = generator.random((3, 8, 8, 3)).astype(np.float32)
        restored = model_from_bytes(model_to_bytes(net))
        np.testing.assert_allclose(restored.predict(x), net.predict(x),
                                   rtol=1e-6)

    def test_architecture_preserved(self, rng):
        net = cifar10_10layer(rng.child("n").generator, width_scale=0.05)
        restored = model_from_bytes(model_to_bytes(net))
        assert [l.kind for l in restored.layers] == [l.kind for l in net.layers]
        assert restored.num_params == net.num_params

    def test_batchnorm_state_preserved(self, rng, generator):
        from repro.nn.config import network_from_config

        net = network_from_config(
            "[net]\ninput = 4,4,2\n[conv]\nfilters = 3\n[batchnorm]\n"
            "[avg]\n[softmax]\n[cost]\n",
            rng=rng.child("n").generator,
        )
        x = generator.normal(2.0, 1.0, size=(16, 4, 4, 2)).astype(np.float32)
        for _ in range(10):
            net.forward(x, training=True)
        restored = model_from_bytes(model_to_bytes(net))
        np.testing.assert_allclose(
            restored.layers[1].running_mean, net.layers[1].running_mean
        )

    def test_file_roundtrip(self, rng, tmp_path, generator):
        net = tiny_testnet(rng.child("n").generator)
        path = tmp_path / "model.caltrain.npz"
        save_model(net, path)
        restored = load_model(path)
        x = generator.random((2, 8, 8, 3)).astype(np.float32)
        np.testing.assert_allclose(restored.predict(x), net.predict(x),
                                   rtol=1e-6)

    def test_interrupted_save_preserves_previous_model(self, rng, tmp_path,
                                                       monkeypatch):
        """save_model is atomic: a crash mid-write leaves the old file."""
        import os

        net_old = tiny_testnet(rng.child("old").generator)
        net_new = tiny_testnet(rng.child("new").generator)
        path = tmp_path / "model.caltrain.npz"
        save_model(net_old, path)

        def crash(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError):
            save_model(net_new, path)
        monkeypatch.undo()
        restored = load_model(path)
        np.testing.assert_array_equal(restored.layers[0].weights,
                                      net_old.layers[0].weights)
        assert [p.name for p in tmp_path.iterdir()] == ["model.caltrain.npz"]

    def test_corruption_detected(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        blob = bytearray(model_to_bytes(net))
        # Flip one byte somewhere in the middle of the archive payload.
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises((NetworkDefinitionError, Exception)):
            model_from_bytes(bytes(blob))

    def test_integrity_digest_guards_weight_splicing(self, rng):
        """Weights from one model cannot be spliced under another model's
        digest."""
        import io

        import numpy as _np

        net_a = tiny_testnet(rng.child("a").generator)
        net_b = tiny_testnet(rng.child("b").generator)
        blob_a = model_to_bytes(net_a)
        blob_b = model_to_bytes(net_b)
        with _np.load(io.BytesIO(blob_a)) as a, _np.load(io.BytesIO(blob_b)) as b:
            buffer = io.BytesIO()
            _np.savez(buffer, format_version=a["format_version"],
                      config=a["config"], weights=b["weights"],
                      digest=a["digest"])
        with pytest.raises(NetworkDefinitionError):
            model_from_bytes(buffer.getvalue())


class TestEarlyStopping:
    def test_stops_and_tracks_best(self, rng, platform, tiny_cifar):
        from repro.core.partition import PartitionedNetwork
        from repro.core.partitioned_training import ConfidentialTrainer
        from repro.nn.optimizers import Sgd

        train, test = tiny_cifar
        enclave = platform.create_enclave("es")
        enclave.init()
        net = tiny_testnet(rng.child("n").generator)
        trainer = ConfidentialTrainer(
            PartitionedNetwork(net, 1, enclave), Sgd(0.02, 0.9),
            batch_rng=rng.child("b").generator, batch_size=16,
            early_stop_patience=2,
        )
        reports = trainer.train(train.x, train.y, epochs=30,
                                test_x=test.x, test_y=test.y)
        assert len(reports) <= 30
        assert trainer.best_top1 == max(r.top1 for r in reports)
        assert trainer.best_weights is not None

    def test_no_test_data_no_early_stop(self, rng, platform, tiny_cifar):
        from repro.core.partition import PartitionedNetwork
        from repro.core.partitioned_training import ConfidentialTrainer
        from repro.nn.optimizers import Sgd

        train, _ = tiny_cifar
        enclave = platform.create_enclave("es2")
        enclave.init()
        trainer = ConfidentialTrainer(
            PartitionedNetwork(tiny_testnet(rng.child("n").generator), 1,
                               enclave),
            Sgd(0.02, 0.9), batch_rng=rng.child("b").generator, batch_size=16,
            early_stop_patience=1,
        )
        reports = trainer.train(train.x, train.y, epochs=4)
        assert len(reports) == 4  # nothing to stop on
