"""Weight quantization tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.pruning import prune_by_magnitude, sparsity
from repro.nn.quantization import quantize_weights, quantized_bytes
from repro.nn.zoo import tiny_testnet


class TestQuantizeWeights:
    def test_weight_values_collapse_to_codebook(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        result = quantize_weights(net, bits=3)
        for layer, books in zip(net.layers, result.codebooks):
            for name, codebook in books.items():
                values = np.unique(layer.params()[name])
                assert values.size <= codebook.size
                assert np.all(np.isin(values, codebook))

    def test_more_bits_less_error(self, rng):
        errors = {}
        for bits in (2, 4, 6):
            net = tiny_testnet(rng.child("same").fork_generator())
            errors[bits] = quantize_weights(net, bits=bits).mse
        assert errors[6] < errors[4] < errors[2]

    def test_sparsity_preserved(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        prune_by_magnitude(net, keep_fraction=0.3)
        before = sparsity(net)
        quantize_weights(net, bits=4)
        assert sparsity(net) >= before - 1e-9

    def test_biases_untouched(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        net.layers[0].bias[...] = 0.123
        quantize_weights(net, bits=2)
        np.testing.assert_allclose(net.layers[0].bias, 0.123)

    def test_storage_shrinks(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        dense = sum(a.nbytes for l in net.layers for a in l.params().values())
        result = quantize_weights(net, bits=4)
        assert result.quantized_bytes < 0.5 * dense
        assert quantized_bytes(net, 4) > 0

    def test_predictions_approximately_preserved(self, rng, tiny_cifar):
        from repro.data.batching import iterate_minibatches
        from repro.nn.optimizers import Sgd

        train, test = tiny_cifar
        net = tiny_testnet(rng.child("n").generator)
        optimizer = Sgd(0.02, 0.9)
        batch_rng = rng.child("b").generator
        for _ in range(10):
            for xb, yb in iterate_minibatches(train.x, train.y, 16,
                                              rng=batch_rng):
                net.train_batch(xb, yb, optimizer)
        before = float(np.mean(net.predict(test.x).argmax(1) == test.y))
        quantize_weights(net, bits=5)
        after = float(np.mean(net.predict(test.x).argmax(1) == test.y))
        assert after > before - 0.15

    def test_invalid_bits(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        with pytest.raises(ConfigurationError):
            quantize_weights(net, bits=0)
        with pytest.raises(ConfigurationError):
            quantize_weights(net, bits=17)
