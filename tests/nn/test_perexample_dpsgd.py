"""Per-example DP-SGD tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.optimizers import PerExampleDpSgd, Sgd
from repro.nn.zoo import tiny_testnet


@pytest.fixture
def batch(generator):
    x = generator.random((8, 8, 8, 3)).astype(np.float32)
    y = generator.integers(0, 4, size=8)
    return x, y


class TestPerExampleDpSgd:
    def test_trains_without_noise(self, rng, batch):
        net = tiny_testnet(rng.child("n").generator)
        dp = PerExampleDpSgd(0.05, momentum=0.0, clip_norm=10.0,
                             noise_multiplier=0.0)
        x, y = batch
        first = dp.train_batch(net, x, y)
        for _ in range(12):
            last = dp.train_batch(net, x, y)
        assert last < first

    def test_zero_noise_large_clip_matches_plain_sgd(self, rng, batch):
        """With no clipping pressure and no noise, per-example DP-SGD is
        exactly mini-batch SGD."""
        x, y = batch
        net_a = tiny_testnet(rng.child("same").generator)
        net_b = tiny_testnet(rng.child("same").generator)
        PerExampleDpSgd(0.05, momentum=0.0, clip_norm=1e9,
                        noise_multiplier=0.0).train_batch(net_a, x, y)
        net_b.train_batch(x, y, Sgd(0.05, momentum=0.0, max_grad_norm=None))
        for la, lb in zip(net_a.layers, net_b.layers):
            for name, arr in la.params().items():
                np.testing.assert_allclose(arr, lb.params()[name],
                                           rtol=1e-4, atol=1e-6)

    def test_clipping_bounds_per_example_influence(self, rng, batch):
        """A single outlier example cannot move the weights by more than
        lr * clip / batch — the DP sensitivity bound."""
        x, y = batch
        # Plant an extreme outlier.
        x = x.copy()
        x[0] = x[0] * 100.0
        clip = 0.1
        net = tiny_testnet(rng.child("n").generator)
        w_before = net.layers[0].weights.copy()
        PerExampleDpSgd(0.1, momentum=0.0, clip_norm=clip,
                        noise_multiplier=0.0).train_batch(net, x, y)
        max_move = float(np.abs(net.layers[0].weights - w_before).max())
        assert max_move <= 0.1 * clip + 1e-9  # lr * clip (sum of 8 * clip/8)

    def test_noise_perturbs(self, rng, batch):
        x, y = batch
        net_a = tiny_testnet(rng.child("same").generator)
        net_b = tiny_testnet(rng.child("same").generator)
        PerExampleDpSgd(0.05, noise_multiplier=1.0,
                        rng=np.random.default_rng(1)).train_batch(net_a, x, y)
        PerExampleDpSgd(0.05, noise_multiplier=1.0,
                        rng=np.random.default_rng(2)).train_batch(net_b, x, y)
        assert not np.allclose(net_a.layers[0].weights, net_b.layers[0].weights)

    def test_works_with_partitioned_network(self, rng, platform, batch):
        from repro.core.partition import PartitionedNetwork

        enclave = platform.create_enclave("dp")
        enclave.init()
        net = tiny_testnet(rng.child("n").generator)
        partitioned = PartitionedNetwork(net, 2, enclave)
        x, y = batch
        loss = PerExampleDpSgd(0.05, noise_multiplier=0.5).train_batch(
            partitioned, x, y
        )
        assert np.isfinite(loss)
        assert enclave.ocall_count >= x.shape[0]  # one IR per example

    def test_learning_rate_property(self):
        dp = PerExampleDpSgd(0.07)
        assert dp.learning_rate == 0.07
        dp.learning_rate = 0.01
        assert dp._sgd.learning_rate == 0.01

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            PerExampleDpSgd(clip_norm=0.0)
        with pytest.raises(ConfigurationError):
            PerExampleDpSgd(noise_multiplier=-1.0)
