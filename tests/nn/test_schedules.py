"""Learning-rate schedule tests."""

import pytest

from repro.errors import ConfigurationError
from repro.nn.optimizers import Sgd
from repro.nn.schedules import (
    ConstantSchedule,
    CosineSchedule,
    PolySchedule,
    StepSchedule,
)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule()
        assert schedule.factor(0) == schedule.factor(100) == 1.0

    def test_step_milestones(self):
        schedule = StepSchedule(milestones=[4, 8], scale=0.1)
        assert schedule.factor(0) == 1.0
        assert schedule.factor(4) == pytest.approx(0.1)
        assert schedule.factor(8) == pytest.approx(0.01)

    def test_step_validation(self):
        with pytest.raises(ConfigurationError):
            StepSchedule(milestones=[5, 3])
        with pytest.raises(ConfigurationError):
            StepSchedule(milestones=[1], scale=0.0)

    def test_poly_decays_to_zero(self):
        schedule = PolySchedule(total_epochs=10, power=2.0)
        assert schedule.factor(0) == 1.0
        assert schedule.factor(5) == pytest.approx(0.25)
        assert schedule.factor(10) == 0.0
        assert schedule.factor(99) == 0.0  # clamped

    def test_cosine_endpoints(self):
        schedule = CosineSchedule(total_epochs=10, floor=0.1)
        assert schedule.factor(0) == pytest.approx(1.0)
        assert schedule.factor(10) == pytest.approx(0.1)
        assert schedule.factor(5) == pytest.approx(0.55, abs=1e-6)

    def test_monotone_decay(self):
        for schedule in (PolySchedule(12), CosineSchedule(12)):
            factors = [schedule.factor(e) for e in range(13)]
            assert all(b <= a + 1e-12 for a, b in zip(factors, factors[1:]))

    def test_apply_sets_optimizer_rate(self):
        optimizer = Sgd(0.1)
        StepSchedule([2], scale=0.5).apply(optimizer, base_rate=0.1, epoch=2)
        assert optimizer.learning_rate == pytest.approx(0.05)


class TestTrainerIntegration:
    def test_trainer_applies_schedule(self, rng, platform, tiny_cifar):
        from repro.core.partition import PartitionedNetwork
        from repro.core.partitioned_training import ConfidentialTrainer
        from repro.nn.zoo import tiny_testnet

        train, _ = tiny_cifar
        enclave = platform.create_enclave("sched")
        enclave.init()
        optimizer = Sgd(0.1)
        trainer = ConfidentialTrainer(
            PartitionedNetwork(tiny_testnet(rng.child("n").generator), 1, enclave),
            optimizer, batch_rng=rng.child("b").generator, batch_size=16,
            lr_schedule=StepSchedule([1], scale=0.1),
        )
        trainer.train(train.x, train.y, epochs=2)
        assert optimizer.learning_rate == pytest.approx(0.01)
