"""Property tests over randomly generated valid architectures.

Hypothesis builds random-but-valid layer stacks and checks the structural
invariants every architecture must satisfy: predicted output shapes match
actual forward shapes, backward returns input-shaped deltas, weight
round-trips preserve predictions, and the config round-trip preserves the
architecture.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.config import network_from_config, network_to_config
from repro.nn.layers import (
    AvgPoolLayer,
    BatchNormLayer,
    ConvLayer,
    CostLayer,
    DropoutLayer,
    MaxPoolLayer,
    SoftmaxLayer,
)
from repro.nn.network import Network


@st.composite
def conv_architectures(draw):
    """A random valid conv stack on a 12x12x3 input, ending in the
    classification tail."""
    layers = []
    spatial = 12
    num_blocks = draw(st.integers(min_value=1, max_value=3))
    for _ in range(num_blocks):
        n_convs = draw(st.integers(min_value=1, max_value=2))
        for _ in range(n_convs):
            filters = draw(st.sampled_from([4, 6, 8]))
            activation = draw(st.sampled_from(["leaky", "relu", "linear"]))
            layers.append(ConvLayer(filters, 3, 1, activation=activation))
        if draw(st.booleans()):
            layers.append(BatchNormLayer())
        if spatial >= 4 and draw(st.booleans()):
            layers.append(MaxPoolLayer(2, 2))
            spatial //= 2
        if draw(st.booleans()):
            layers.append(DropoutLayer(draw(st.sampled_from([0.25, 0.5]))))
    classes = draw(st.integers(min_value=2, max_value=5))
    layers.append(ConvLayer(classes, 1, 1, activation="linear"))
    layers.append(AvgPoolLayer())
    layers.append(SoftmaxLayer())
    layers.append(CostLayer())
    return layers, classes


class TestRandomArchitectures:
    @settings(max_examples=20, deadline=None)
    @given(arch=conv_architectures(), seed=st.integers(0, 2**16))
    def test_shapes_and_probabilities(self, arch, seed):
        layers, classes = arch
        net = Network((12, 12, 3), layers, rng=np.random.default_rng(seed))
        x = np.random.default_rng(seed + 1).random((3, 12, 12, 3)).astype(
            np.float32
        )
        out = net.forward(x)
        # Predicted final shape matches the actual output.
        assert out.shape == (3,) + net.layer_output_shapes()[-1]
        assert out.shape == (3, classes)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(3), atol=1e-5)
        # Every intermediate shape prediction matches reality.
        for i in range(len(net.layers)):
            ir = net.forward(x, stop=i + 1)
            assert ir.shape == (3,) + net.layer_output_shapes()[i]

    @settings(max_examples=15, deadline=None)
    @given(arch=conv_architectures(), seed=st.integers(0, 2**16))
    def test_backward_returns_input_shaped_delta(self, arch, seed):
        layers, classes = arch
        net = Network((12, 12, 3), layers, rng=np.random.default_rng(seed))
        gen = np.random.default_rng(seed + 1)
        x = gen.random((2, 12, 12, 3)).astype(np.float32)
        y = gen.integers(0, classes, size=2)
        probs = net.forward(x, training=True)
        _, delta = net.cost_layer().loss_and_delta(probs, y)
        input_delta = net.backward(delta)
        assert input_delta.shape == x.shape
        assert np.isfinite(input_delta).all()

    @settings(max_examples=15, deadline=None)
    @given(arch=conv_architectures(), seed=st.integers(0, 2**16))
    def test_weight_roundtrip_preserves_predictions(self, arch, seed):
        layers, classes = arch
        net = Network((12, 12, 3), layers, rng=np.random.default_rng(seed))
        x = np.random.default_rng(seed + 1).random((2, 12, 12, 3)).astype(
            np.float32
        )
        before = net.predict(x)
        net.weights_from_bytes(net.weights_to_bytes())
        np.testing.assert_allclose(net.predict(x), before, rtol=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(arch=conv_architectures(), seed=st.integers(0, 2**16))
    def test_config_roundtrip_preserves_architecture(self, arch, seed):
        layers, classes = arch
        net = Network((12, 12, 3), layers, rng=np.random.default_rng(seed))
        rebuilt = network_from_config(network_to_config(net),
                                      rng=np.random.default_rng(seed + 2))
        assert [l.kind for l in rebuilt.layers] == [l.kind for l in net.layers]
        assert rebuilt.layer_output_shapes() == net.layer_output_shapes()
        assert rebuilt.num_params == net.num_params

    @settings(max_examples=10, deadline=None)
    @given(arch=conv_architectures(), seed=st.integers(0, 2**16),
           partition=st.integers(0, 3))
    def test_partitioned_forward_matches_plain(self, arch, seed, partition):
        from repro.core.partition import PartitionedNetwork

        layers, classes = arch
        net = Network((12, 12, 3), layers, rng=np.random.default_rng(seed))
        limit = net.penultimate_index()
        partition = min(partition, limit)
        x = np.random.default_rng(seed + 1).random((2, 12, 12, 3)).astype(
            np.float32
        )
        plain = net.predict(x)
        partitioned = PartitionedNetwork(net, partition).predict(x)
        np.testing.assert_allclose(plain, partitioned, rtol=1e-5)
