"""Reference-vs-optimized compute backend parity.

The ``reference`` backend is the original numpy implementation extracted
verbatim; ``optimized`` must agree with it — bitwise on the integer/argmax
paths (max-pool bookkeeping, optimizer updates, checkpoint resume), and
within float tolerance on the float compute paths (the reference backward
pass promotes to float64 through the leaky-ReLU gradient, the optimized
one stays in float32).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.backends import (
    ENV_VAR,
    OptimizedBackend,
    available_backends,
    default_backend,
    get_backend,
    maxpool_backward_loop,
    maxpool_scatter,
    set_default_backend,
)
from repro.nn.gradcheck import check_gradients
from repro.nn.layers import (
    AvgPoolLayer,
    ConvLayer,
    CostLayer,
    DenseLayer,
    FlattenLayer,
    MaxPoolLayer,
    SoftmaxLayer,
)
from repro.nn.model_io import model_from_bytes, model_to_bytes
from repro.nn.network import Network
from repro.nn.optimizers import Adam, Sgd
from repro.nn.zoo import tiny_testnet

BACKENDS = ["reference", "optimized"]

# Seed with no sampled coordinate on a leaky kink or pool tie (see
# test_gradcheck.py) — finite differences are only valid off those
# non-smooth points. The tie cases the clean seed avoids are covered
# explicitly and bitwise in TestMaxPoolParity.
_CLEAN_SEED = 3


def _data(shape=(8, 8, 3), n=4, classes=4, seed=_CLEAN_SEED):
    gen = np.random.default_rng(seed)
    x = gen.normal(size=(n,) + shape)
    y = gen.integers(0, classes, size=n)
    return x, y


def _nets():
    """One architecture per layer type/configuration worth checking."""
    return {
        "tiny_testnet": lambda: tiny_testnet(np.random.default_rng(100)),
        "conv_stride_2": lambda: Network((8, 8, 3), [
            ConvLayer(6, 3, 2, activation="relu"),
            ConvLayer(4, 1, 1, activation="linear"),
            AvgPoolLayer(),
            SoftmaxLayer(),
            CostLayer(),
        ], rng=np.random.default_rng(7)),
        "dense_head": lambda: Network((6, 6, 3), [
            ConvLayer(4, 3, 1, activation="tanh"),
            MaxPoolLayer(2, 2),
            FlattenLayer(),
            DenseLayer(8, activation="sigmoid"),
            DenseLayer(3, activation="linear"),
            SoftmaxLayer(),
            CostLayer(),
        ], rng=np.random.default_rng(2)),
        "valid_padding": lambda: Network((7, 7, 2), [
            ConvLayer(4, 3, 1, activation="linear", pad="valid"),
            AvgPoolLayer(),
            SoftmaxLayer(),
            CostLayer(),
        ], rng=np.random.default_rng(5)),
    }


def _net_data(name):
    if name == "dense_head":
        return _data(shape=(6, 6, 3), classes=3)
    if name == "valid_padding":
        gen = np.random.default_rng(_CLEAN_SEED)
        return gen.normal(size=(3, 7, 7, 2)), gen.integers(0, 4, size=3)
    return _data()


class TestGradcheck:
    """Every layer type backpropagates correctly under BOTH backends."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", list(_nets()))
    def test_gradients(self, name, backend):
        net = _nets()[name]()
        net.set_backend(backend)
        x, y = _net_data(name)
        errors = check_gradients(net, x, y, samples_per_param=8,
                                 rng=np.random.default_rng(0))
        assert max(errors.values()) < 1e-5, (backend, errors)


class TestForwardParity:
    @pytest.mark.parametrize("name", list(_nets()))
    def test_inference_outputs_match(self, name):
        ref = _nets()[name]()
        opt = _nets()[name]()
        opt.set_weights(ref.get_weights())
        ref.set_backend("reference")
        opt.set_backend("optimized")
        x, _ = _net_data(name)
        x = x.astype(np.float32)
        np.testing.assert_allclose(opt.forward(x), ref.forward(x),
                                   rtol=1e-5, atol=1e-6)


class TestMaxPoolParity:
    """Satellite: the argmax bookkeeping is bitwise-identical (the
    scatter-backward regression oracle)."""

    @pytest.mark.parametrize("size,stride", [(2, 2), (3, 3), (3, 2), (2, 3)])
    def test_forward_and_argmax_bitwise(self, size, stride):
        x = np.random.default_rng(9).normal(
            size=(3, 9, 9, 4)).astype(np.float32)
        outs, argmaxes = [], []
        for backend in BACKENDS:
            layer = MaxPoolLayer(size, stride)
            layer.set_backend(backend)
            outs.append(layer.forward(x, training=True))
            argmaxes.append(layer._cache["argmax"].copy())
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(argmaxes[0], argmaxes[1])

    @pytest.mark.parametrize("size,stride", [(2, 2), (3, 3), (3, 2), (2, 3)])
    @pytest.mark.parametrize("fill", [0.0, 1.5], ids=["zeros", "constant"])
    def test_constant_window_ties_argmax_to_zero(self, size, stride, fill):
        """Regression: an all-tied window (all-zero after ReLU, or any
        constant region) must resolve to first-occurrence flat index 0 in
        both backends — the optimized descending-write loop used to skip
        index 0 and report 1."""
        x = np.full((2, 9, 9, 4), fill, dtype=np.float32)
        argmaxes = []
        for backend in BACKENDS:
            layer = MaxPoolLayer(size, stride)
            layer.set_backend(backend)
            layer.forward(x, training=True)
            argmaxes.append(layer._cache["argmax"].copy())
        np.testing.assert_array_equal(argmaxes[0], 0)
        np.testing.assert_array_equal(argmaxes[0], argmaxes[1])

    def test_partial_tie_with_index_zero_bitwise(self):
        """A max shared by flat index 0 and a later window position must
        pick 0, and gradients must route to the same input cell under
        both backends."""
        # 2x2/stride-2 windows tiled as [[5, 1], [1, 5]]: the max ties
        # between flat indices 0 and 3.
        x = np.ones((1, 6, 6, 2), dtype=np.float32)
        x[:, ::2, ::2, :] = 5.0
        x[:, 1::2, 1::2, :] = 5.0
        argmaxes, deltas = [], []
        for backend in BACKENDS:
            layer = MaxPoolLayer(2, 2)
            layer.set_backend(backend)
            out = layer.forward(x, training=True)
            argmaxes.append(layer._cache["argmax"].copy())
            delta = np.random.default_rng(13).normal(
                size=out.shape).astype(np.float32)
            deltas.append(layer.backward(delta))
        np.testing.assert_array_equal(argmaxes[0], 0)
        np.testing.assert_array_equal(argmaxes[0], argmaxes[1])
        np.testing.assert_array_equal(deltas[0], deltas[1])

    @pytest.mark.parametrize("size,stride", [(2, 2), (3, 3), (2, 3), (3, 2)])
    def test_relu_sparse_ties_bitwise(self, size, stride):
        """Post-ReLU-style inputs (mostly zero, duplicated positives) are
        exactly the tie-rich regime the clean-seed suite avoids."""
        gen = np.random.default_rng(14)
        x = gen.normal(size=(3, 9, 9, 4)).astype(np.float32)
        np.maximum(x, 0.0, out=x)                  # many all-zero windows
        x[x > 0] = np.round(x[x > 0], 1)           # duplicated maxima
        outs, argmaxes, deltas = [], [], []
        for backend in BACKENDS:
            layer = MaxPoolLayer(size, stride)
            layer.set_backend(backend)
            out = layer.forward(x, training=True)
            outs.append(out)
            argmaxes.append(layer._cache["argmax"].copy())
            delta = np.random.default_rng(15).normal(
                size=out.shape).astype(np.float32)
            deltas.append(layer.backward(delta))
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(argmaxes[0], argmaxes[1])
        np.testing.assert_array_equal(deltas[0], deltas[1])

    @pytest.mark.parametrize("size,stride", [(2, 2), (3, 3), (2, 3), (3, 2)])
    def test_backward_bitwise(self, size, stride):
        x = np.random.default_rng(10).normal(
            size=(2, 10, 10, 3)).astype(np.float32)
        deltas = []
        for backend in BACKENDS:
            layer = MaxPoolLayer(size, stride)
            layer.set_backend(backend)
            out = layer.forward(x, training=True)
            delta = np.random.default_rng(11).normal(
                size=out.shape).astype(np.float32)
            deltas.append(layer.backward(delta))
        np.testing.assert_array_equal(deltas[0], deltas[1])

    @pytest.mark.parametrize("size,stride", [(2, 2), (3, 3), (2, 3), (3, 2)])
    def test_scatter_matches_loop_oracle(self, size, stride):
        """maxpool_scatter (vectorised k*k scatter) vs the legacy loop."""
        gen = np.random.default_rng(12)
        oh = ow = (11 - size) // stride + 1
        input_shape = (4, 11, 11, 5)
        delta = gen.normal(size=(4, oh, ow, 5)).astype(np.float32)
        argmax = gen.integers(0, size * size, size=delta.shape)
        fast = maxpool_scatter(delta, argmax, input_shape, size, stride)
        slow = maxpool_backward_loop(delta, argmax, input_shape, size, stride)
        np.testing.assert_array_equal(fast, slow)


class TestGemmThreading:
    def test_threaded_gemm_bitwise_deterministic(self):
        gen = np.random.default_rng(0)
        a = gen.normal(size=(300, 40)).astype(np.float32)
        b = gen.normal(size=(40, 256)).astype(np.float32)
        threaded = OptimizedBackend(threads=2).gemm(a, b)
        np.testing.assert_array_equal(threaded, a @ b)
        np.testing.assert_array_equal(threaded,
                                      OptimizedBackend(threads=2).gemm(a, b))

    def test_small_problems_skip_the_pool(self):
        gen = np.random.default_rng(1)
        a = gen.normal(size=(4, 8)).astype(np.float32)
        b = gen.normal(size=(8, 4)).astype(np.float32)
        np.testing.assert_array_equal(OptimizedBackend(threads=4).gemm(a, b),
                                      a @ b)

    def test_threading_is_opt_in(self, monkeypatch):
        """Without REPRO_NN_THREADS the backend must run single-threaded:
        the row partition depends on the thread count, so a cpu-count
        default would make results vary by host."""
        monkeypatch.delenv("REPRO_NN_THREADS", raising=False)
        assert OptimizedBackend().threads == 1
        monkeypatch.setenv("REPRO_NN_THREADS", "3")
        assert OptimizedBackend().threads == 3
        monkeypatch.setenv("REPRO_NN_THREADS", "bogus")
        assert OptimizedBackend().threads == 1


def _train(net, x, y, optimizer, epochs=3, batch_size=16, shuffle_seed=42):
    losses = []
    for epoch in range(epochs):
        order = np.random.default_rng(shuffle_seed + epoch).permutation(len(x))
        for start in range(0, len(x), batch_size):
            idx = order[start:start + batch_size]
            losses.append(net.train_batch(x[idx], y[idx], optimizer))
    return losses


class TestEndToEndTraining:
    """3-epoch loss trajectories agree within float tolerance (the
    reference backward promotes to float64; optimized stays float32)."""

    def test_loss_parity(self):
        gen = np.random.default_rng(21)
        x = gen.normal(size=(64, 8, 8, 3)).astype(np.float32)
        y = gen.integers(0, 4, size=64)
        trajectories = []
        for backend in BACKENDS:
            net = tiny_testnet(np.random.default_rng(5))
            net.set_backend(backend)
            trajectories.append(
                _train(net, x, y, Sgd(0.05, momentum=0.9)))
        np.testing.assert_allclose(trajectories[0], trajectories[1],
                                   rtol=1e-4, atol=1e-5)


class TestCheckpointResume:
    """Interrupt-and-resume under ``optimized`` is bitwise-identical to
    the uninterrupted run (pooled scratch never leaks into state)."""

    @pytest.mark.parametrize("make_opt", [
        lambda: Sgd(0.05, momentum=0.9, weight_decay=5e-4),
        lambda: Adam(1e-3),
    ], ids=["sgd", "adam"])
    def test_bitwise_resume(self, make_opt):
        gen = np.random.default_rng(33)
        x = gen.normal(size=(64, 8, 8, 3)).astype(np.float32)
        y = gen.integers(0, 4, size=64)
        batches = [(x[i:i + 16], y[i:i + 16]) for i in range(0, 64, 16)]

        straight = tiny_testnet(np.random.default_rng(8))
        straight.set_backend("optimized")
        opt = make_opt()
        for xb, yb in batches:
            straight.train_batch(xb, yb, opt)

        interrupted = tiny_testnet(np.random.default_rng(8))
        interrupted.set_backend("optimized")
        opt1 = make_opt()
        for xb, yb in batches[:2]:
            interrupted.train_batch(xb, yb, opt1)
        blob = model_to_bytes(interrupted)
        opt_state = opt1.state_dict()

        resumed = model_from_bytes(blob)
        resumed.set_backend("optimized")
        opt2 = make_opt()
        opt2.load_state_dict(opt_state)
        for xb, yb in batches[2:]:
            resumed.train_batch(xb, yb, opt2)

        for got, expected in zip(resumed.get_weights(),
                                 straight.get_weights()):
            for name in expected:
                np.testing.assert_array_equal(got[name], expected[name],
                                              err_msg=name)


class TestOptimizerBitwise:
    """The in-place optimizer updates reproduce the original
    expression-form updates bit for bit."""

    @staticmethod
    def _naive_sgd_step(optimizer, network):
        clip = optimizer._clip_scale(network)
        for key, param, grad in optimizer._iter_params(network):
            update = grad
            if clip != 1.0:
                update = grad * clip
            if optimizer.weight_decay and key[1] != "bias":
                update = update + param * optimizer.weight_decay
            step = update * optimizer.learning_rate
            if optimizer.momentum:
                velocity = optimizer._velocity.setdefault(
                    key, np.zeros_like(param))
                velocity *= optimizer.momentum
                velocity -= step
                param += velocity
            else:
                param -= step

    @staticmethod
    def _naive_adam_step(optimizer, network):
        optimizer._t += 1
        bias1 = 1.0 - optimizer.beta1 ** optimizer._t
        bias2 = 1.0 - optimizer.beta2 ** optimizer._t
        for key, param, grad in optimizer._iter_params(network):
            m = optimizer._m.setdefault(key, np.zeros_like(param))
            v = optimizer._v.setdefault(key, np.zeros_like(param))
            m *= optimizer.beta1
            m += (1.0 - optimizer.beta1) * grad
            v *= optimizer.beta2
            v += (1.0 - optimizer.beta2) * grad * grad
            param -= optimizer.learning_rate * (m / bias1) / (
                np.sqrt(v / bias2) + optimizer.eps)

    def _trained_pair(self, make_opt, naive_step, steps=3, grad_scale=1.0):
        nets, opts = [], []
        for _ in range(2):
            net = tiny_testnet(np.random.default_rng(4))
            net.set_backend("optimized")
            nets.append(net)
            opts.append(make_opt())
        gen = np.random.default_rng(44)
        for _ in range(steps):
            grads = [
                (gen.normal(size=g.shape) * grad_scale).astype(g.dtype)
                for layer in nets[0].layers
                for g in layer.grads().values()
            ]
            for net in nets:
                i = 0
                for layer in net.layers:
                    for name, grad in layer.grads().items():
                        grad[...] = grads[i]
                        i += 1
            opts[0].step(nets[0])
            naive_step(opts[1], nets[1])
        return nets

    @pytest.mark.parametrize("wd,clip,grad_scale", [
        (0.0, None, 1.0),
        (0.0, 5.0, 50.0),       # forces the clip path
        (5e-4, 5.0, 50.0),
        (5e-4, None, 1.0),
    ])
    def test_sgd(self, wd, clip, grad_scale):
        nets = self._trained_pair(
            lambda: Sgd(0.05, momentum=0.9, weight_decay=wd,
                        max_grad_norm=clip),
            self._naive_sgd_step, grad_scale=grad_scale)
        for got, expected in zip(nets[0].get_weights(),
                                 nets[1].get_weights()):
            for name in expected:
                np.testing.assert_array_equal(got[name], expected[name])

    def test_adam(self):
        nets = self._trained_pair(lambda: Adam(1e-3), self._naive_adam_step)
        for got, expected in zip(nets[0].get_weights(),
                                 nets[1].get_weights()):
            for name in expected:
                np.testing.assert_array_equal(got[name], expected[name])


class TestBackendSelection:
    def test_registry(self):
        assert available_backends() == ("reference", "optimized")
        assert get_backend("optimized").name == "optimized"
        assert get_backend("optimized") is get_backend("optimized")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            get_backend("cuda")
        with pytest.raises(ConfigurationError):
            set_default_backend("cuda")
        with pytest.raises(ConfigurationError):
            tiny_testnet(np.random.default_rng(0)).set_backend("cuda")

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "optimized")
        assert default_backend().name == "optimized"
        net = tiny_testnet(np.random.default_rng(0))
        assert net.backend_name == "optimized"
        monkeypatch.delenv(ENV_VAR)
        assert net.backend_name == "reference"

    def test_set_default_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "reference")
        set_default_backend("optimized")
        try:
            assert default_backend().name == "optimized"
        finally:
            set_default_backend(None)
        assert default_backend().name == "reference"

    def test_explicit_network_backend_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "optimized")
        net = Network((8, 8, 3), [
            ConvLayer(4, 3, 1), SoftmaxLayer(), CostLayer(),
        ], rng=np.random.default_rng(0), backend="reference")
        assert net.backend_name == "reference"


class TestDistributedReplicaConsistency:
    """The default-backend switch reaches distributed workers without any
    call-site changes, and replicas stay bitwise in lockstep."""

    def test_replicas_identical_under_optimized(self, tmp_path):
        from tests.distributed.worlds import (assert_same_weights,
                                              make_coordinator)

        set_default_backend("optimized")
        try:
            coordinator, _ = make_coordinator(tmp_path, num_workers=2,
                                              num_train=32)
            coordinator.run(1)
            for worker in coordinator.workers:
                assert worker.partitioned.network.backend_name == "optimized"
            reference = coordinator.workers[0].replica_weights()
            assert_same_weights(coordinator.workers[1].replica_weights(),
                                reference)
        finally:
            set_default_backend(None)
