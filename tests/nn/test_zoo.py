"""Model zoo tests — including exact Table I / Table II verification."""

import numpy as np
import pytest

from repro.nn.layers import DropoutLayer
from repro.nn.zoo import (
    CIFAR_INPUT_SHAPE,
    cifar10_10layer,
    cifar10_18layer,
    face_recognition_net,
    tiny_testnet,
)

# Table I of the paper: (kind, filters, size/stride, output shape).
TABLE_I = [
    ("conv", 128, (3, 1), (28, 28, 128)),
    ("conv", 128, (3, 1), (28, 28, 128)),
    ("max", None, (2, 2), (14, 14, 128)),
    ("conv", 64, (3, 1), (14, 14, 64)),
    ("max", None, (2, 2), (7, 7, 64)),
    ("conv", 128, (3, 1), (7, 7, 128)),
    ("conv", 10, (1, 1), (7, 7, 10)),
    ("avg", None, None, (10,)),
    ("softmax", None, None, (10,)),
    ("cost", None, None, (10,)),
]

# Table II of the paper.
TABLE_II = [
    ("conv", 128, (3, 1), (28, 28, 128)),
    ("conv", 128, (3, 1), (28, 28, 128)),
    ("conv", 128, (3, 1), (28, 28, 128)),
    ("max", None, (2, 2), (14, 14, 128)),
    ("dropout", None, None, (14, 14, 128)),
    ("conv", 256, (3, 1), (14, 14, 256)),
    ("conv", 256, (3, 1), (14, 14, 256)),
    ("conv", 256, (3, 1), (14, 14, 256)),
    ("max", None, (2, 2), (7, 7, 256)),
    ("dropout", None, None, (7, 7, 256)),
    ("conv", 512, (3, 1), (7, 7, 512)),
    ("conv", 512, (3, 1), (7, 7, 512)),
    ("conv", 512, (3, 1), (7, 7, 512)),
    ("dropout", None, None, (7, 7, 512)),
    ("conv", 10, (1, 1), (7, 7, 10)),
    ("avg", None, None, (10,)),
    ("softmax", None, None, (10,)),
    ("cost", None, None, (10,)),
]


def _check_table(network, table):
    assert len(network.layers) == len(table)
    shapes = network.layer_output_shapes()
    for i, (kind, filters, size_stride, out_shape) in enumerate(table):
        layer = network.layers[i]
        assert layer.kind == kind, f"layer {i + 1}"
        if filters is not None:
            assert layer.filters == filters, f"layer {i + 1}"
        if size_stride is not None and kind in ("conv", "max"):
            assert (layer.size, layer.stride) == size_stride, f"layer {i + 1}"
        assert shapes[i] == out_shape, f"layer {i + 1}"


class TestTableArchitectures:
    def test_table_i_exact(self):
        net = cifar10_10layer(np.random.default_rng(0), width_scale=1.0)
        assert net.input_shape == CIFAR_INPUT_SHAPE == (28, 28, 3)
        _check_table(net, TABLE_I)

    def test_table_ii_exact(self):
        net = cifar10_18layer(np.random.default_rng(0), width_scale=1.0)
        _check_table(net, TABLE_II)

    def test_table_ii_dropout_probability(self):
        net = cifar10_18layer(np.random.default_rng(0), width_scale=1.0)
        dropouts = [l for l in net.layers if isinstance(l, DropoutLayer)]
        assert len(dropouts) == 3
        assert all(l.probability == 0.5 for l in dropouts)

    def test_width_scaling_preserves_topology(self):
        full = cifar10_18layer(np.random.default_rng(0), width_scale=1.0)
        slim = cifar10_18layer(np.random.default_rng(0), width_scale=0.1)
        assert [l.kind for l in full.layers] == [l.kind for l in slim.layers]
        assert slim.num_params < full.num_params
        # The class head stays at 10 regardless of scaling.
        assert slim.layer_output_shapes()[-1] == (10,)

    @pytest.mark.parametrize("factory", [cifar10_10layer, cifar10_18layer])
    def test_forward_runs(self, factory):
        net = factory(np.random.default_rng(0), width_scale=0.05)
        out = net.forward(np.zeros((2,) + CIFAR_INPUT_SHAPE, dtype=np.float32))
        assert out.shape == (2, 10)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(2), atol=1e-5)


class TestOtherModels:
    def test_face_net_penultimate_is_class_logits(self):
        """The fingerprint layer has one dimension per class, as VGG-Face's
        fc8 (2622 = number of identities) does in the paper."""
        net = face_recognition_net(num_classes=7, rng=np.random.default_rng(0))
        penultimate = net.penultimate_index()
        assert net.layer_output_shapes()[penultimate] == (7,)

    def test_tiny_testnet_shapes(self):
        net = tiny_testnet(np.random.default_rng(0))
        out = net.forward(np.zeros((1, 8, 8, 3), dtype=np.float32))
        assert out.shape == (1, 4)
