"""Initializer tests."""

import numpy as np
import pytest

from repro.nn.initializers import gaussian_init, he_init, xavier_init


def test_gaussian_default_uses_he_scale():
    init = gaussian_init(np.random.default_rng(0))
    weights = init((3, 3, 64, 128))
    expected_std = np.sqrt(2.0 / (3 * 3 * 64))
    assert weights.std() == pytest.approx(expected_std, rel=0.05)


def test_gaussian_explicit_std():
    init = gaussian_init(np.random.default_rng(0), std=0.3)
    weights = init((100, 100))
    assert weights.std() == pytest.approx(0.3, rel=0.05)


def test_he_alias():
    a = he_init(np.random.default_rng(5))((4, 4, 8, 8))
    b = gaussian_init(np.random.default_rng(5))((4, 4, 8, 8))
    np.testing.assert_array_equal(a, b)


def test_xavier_within_limit():
    init = xavier_init(np.random.default_rng(0))
    weights = init((50, 60))
    limit = np.sqrt(6.0 / 110)
    assert np.abs(weights).max() <= limit


def test_deterministic_given_generator():
    a = gaussian_init(np.random.default_rng(1))((5, 5))
    b = gaussian_init(np.random.default_rng(1))((5, 5))
    np.testing.assert_array_equal(a, b)
