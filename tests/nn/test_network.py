"""Network container tests: ranges, training, weights I/O, introspection."""

import numpy as np
import pytest

from repro.errors import NetworkDefinitionError, TrainingError
from repro.nn.layers import (
    AvgPoolLayer,
    ConvLayer,
    CostLayer,
    MaxPoolLayer,
    SoftmaxLayer,
)
from repro.nn.network import Network
from repro.nn.optimizers import Sgd
from repro.nn.zoo import tiny_testnet


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(NetworkDefinitionError):
            Network((8, 8, 3), [])

    def test_shapes_computed(self, tiny_net):
        shapes = tiny_net.layer_output_shapes()
        assert shapes[0] == (8, 8, 8)      # conv 8
        assert shapes[1] == (4, 4, 8)      # max 2/2
        assert shapes[2] == (4, 4, 4)      # conv 1x1 -> classes
        assert shapes[3] == (4,)           # global avg
        assert shapes[-1] == (4,)

    def test_penultimate_index(self, tiny_net):
        # softmax is layer 4 (0-based); penultimate is the avg layer at 3.
        assert tiny_net.penultimate_index() == 3

    def test_no_softmax_rejected(self):
        net = Network((8, 8, 3), [ConvLayer(2, 3, 1)],
                      rng=np.random.default_rng(0))
        with pytest.raises(NetworkDefinitionError):
            net.penultimate_index()
        with pytest.raises(NetworkDefinitionError):
            net.cost_layer()

    def test_num_params_positive(self, tiny_net):
        assert tiny_net.num_params > 0


class TestForwardBackwardRanges:
    def test_split_forward_equals_full(self, tiny_net, generator):
        x = generator.normal(size=(3, 8, 8, 3)).astype(np.float32)
        full = tiny_net.forward(x)
        ir = tiny_net.forward(x, stop=2)
        resumed = tiny_net.forward(ir, start=2)
        np.testing.assert_allclose(full, resumed, rtol=1e-5)

    def test_split_backward_equals_full(self, rng, generator):
        x = generator.normal(size=(3, 8, 8, 3)).astype(np.float32)
        y = generator.integers(0, 4, size=3)
        net_a = tiny_testnet(rng.child("a").generator)
        net_b = tiny_testnet(rng.child("a").generator)  # identical weights

        probs_a = net_a.forward(x, training=True)
        _, delta = net_a.cost_layer().loss_and_delta(probs_a, y)
        net_a.backward(delta)

        ir = net_b.forward(x, training=True, stop=2)
        probs_b = net_b.forward(ir, training=True, start=2)
        _, delta_b = net_b.cost_layer().loss_and_delta(probs_b, y)
        boundary = net_b.backward(delta_b, stop=2)
        net_b.backward(boundary, start=2, stop=0)

        for la, lb in zip(net_a.layers, net_b.layers):
            for name in la.grads():
                np.testing.assert_allclose(
                    la.grads()[name], lb.grads()[name], rtol=1e-4, atol=1e-6
                )

    def test_invalid_ranges_rejected(self, tiny_net):
        x = np.zeros((1, 8, 8, 3), dtype=np.float32)
        with pytest.raises(TrainingError):
            tiny_net.forward(x, start=3, stop=2)
        with pytest.raises(TrainingError):
            tiny_net.backward(np.zeros((1, 4)), start=2, stop=3)

    def test_forward_collect(self, tiny_net):
        x = np.zeros((2, 8, 8, 3), dtype=np.float32)
        captured = tiny_net.forward_collect(x, [0, 3])
        assert captured[0].shape == (2, 8, 8, 8)
        assert captured[3].shape == (2, 4)

    def test_forward_collect_out_of_range(self, tiny_net):
        with pytest.raises(TrainingError):
            tiny_net.forward_collect(np.zeros((1, 8, 8, 3), dtype=np.float32), [99])


class TestTraining:
    def test_loss_decreases(self, tiny_net, tiny_cifar):
        train, _ = tiny_cifar
        optimizer = Sgd(0.02, momentum=0.9)
        first = last = None
        for _ in range(20):
            loss = tiny_net.train_batch(train.x[:32], train.y[:32], optimizer)
            first = loss if first is None else first
            last = loss
        assert last < first

    def test_predict_batches_consistent(self, tiny_net, generator):
        x = generator.normal(size=(10, 8, 8, 3)).astype(np.float32)
        np.testing.assert_allclose(
            tiny_net.predict(x, batch_size=3), tiny_net.predict(x, batch_size=10),
            rtol=1e-5,
        )

    def test_freeze_layers(self, tiny_net):
        tiny_net.freeze_layers(2)
        assert tiny_net.layers[0].frozen and tiny_net.layers[1].frozen
        assert not tiny_net.layers[2].frozen
        tiny_net.freeze_layers(0)
        assert not any(l.frozen for l in tiny_net.layers)


class TestWeightsIO:
    def test_get_set_roundtrip(self, rng, generator):
        net_a = tiny_testnet(rng.child("one").generator)
        net_b = tiny_testnet(rng.child("two").generator)
        x = generator.normal(size=(2, 8, 8, 3)).astype(np.float32)
        assert not np.allclose(net_a.predict(x), net_b.predict(x))
        net_b.set_weights(net_a.get_weights())
        np.testing.assert_allclose(net_a.predict(x), net_b.predict(x), rtol=1e-6)

    def test_bytes_roundtrip(self, rng, generator):
        net_a = tiny_testnet(rng.child("one").generator)
        net_b = tiny_testnet(rng.child("two").generator)
        net_b.weights_from_bytes(net_a.weights_to_bytes())
        x = generator.normal(size=(2, 8, 8, 3)).astype(np.float32)
        np.testing.assert_allclose(net_a.predict(x), net_b.predict(x), rtol=1e-6)

    def test_mismatched_weights_rejected(self, tiny_net):
        with pytest.raises(NetworkDefinitionError):
            tiny_net.set_weights([{} for _ in range(99)])

    def test_get_weights_is_a_copy(self, tiny_net):
        weights = tiny_net.get_weights()
        weights[0]["weights"][...] = 123.0
        assert not np.all(tiny_net.layers[0].weights == 123.0)


class TestIntrospection:
    def test_flops_per_layer(self, tiny_net):
        flops = tiny_net.flops_per_layer()
        assert len(flops) == len(tiny_net.layers)
        assert flops[0] > 0  # conv has work
        assert flops[4] == 0  # softmax modeled as free

    def test_summary_contains_layers(self, tiny_net):
        text = tiny_net.summary()
        assert "conv" in text and "max" in text and "softmax" in text

    def test_astype(self, tiny_net):
        tiny_net.astype(np.float64)
        assert tiny_net.layers[0].weights.dtype == np.float64
