"""DP accountant tests."""

import pytest

from repro.errors import ConfigurationError
from repro.nn.privacy import RdpAccountant, dp_sgd_epsilon


class TestRdpAccountant:
    def test_zero_steps_zero_epsilon(self):
        accountant = RdpAccountant(noise_multiplier=1.0, sample_rate=0.01)
        assert accountant.epsilon(delta=1e-5) == 0.0

    def test_epsilon_grows_with_steps(self):
        accountant = RdpAccountant(noise_multiplier=1.0, sample_rate=0.01)
        accountant.step(100)
        eps_100 = accountant.epsilon(1e-5)
        accountant.step(900)
        eps_1000 = accountant.epsilon(1e-5)
        assert eps_1000 > eps_100 > 0

    def test_more_noise_less_epsilon(self):
        def eps(sigma):
            accountant = RdpAccountant(noise_multiplier=sigma, sample_rate=0.01)
            accountant.step(1000)
            return accountant.epsilon(1e-5)

        assert eps(4.0) < eps(2.0) < eps(1.0)

    def test_lower_sampling_less_epsilon(self):
        def eps(q):
            accountant = RdpAccountant(noise_multiplier=1.0, sample_rate=q)
            accountant.step(1000)
            return accountant.epsilon(1e-5)

        assert eps(0.001) < eps(0.01)

    def test_smaller_delta_larger_epsilon(self):
        accountant = RdpAccountant(noise_multiplier=1.0, sample_rate=0.01)
        accountant.step(500)
        assert accountant.epsilon(1e-7) > accountant.epsilon(1e-3)

    def test_full_batch_uses_plain_gaussian_rdp(self):
        accountant = RdpAccountant(noise_multiplier=2.0, sample_rate=1.0)
        accountant.step(1)
        assert accountant.epsilon(1e-5) > 0

    def test_invalid_region_refused(self):
        """Tiny noise with large sampling rate falls outside the bound's
        validity region — the accountant refuses rather than under-report."""
        accountant = RdpAccountant(noise_multiplier=0.05, sample_rate=0.5)
        accountant.step(10)
        with pytest.raises(ConfigurationError):
            accountant.epsilon(1e-5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RdpAccountant(noise_multiplier=0.0, sample_rate=0.1)
        with pytest.raises(ConfigurationError):
            RdpAccountant(noise_multiplier=1.0, sample_rate=0.0)
        accountant = RdpAccountant(noise_multiplier=1.0, sample_rate=0.1)
        with pytest.raises(ConfigurationError):
            accountant.epsilon(delta=0.0)
        with pytest.raises(ConfigurationError):
            accountant.step(-1)


class TestDpSgdEpsilon:
    def test_typical_run_is_single_digit(self):
        eps = dp_sgd_epsilon(noise_multiplier=1.0, batch_size=32,
                             dataset_size=50_000, epochs=10, delta=1e-5)
        assert 0 < eps < 10

    def test_epochs_monotone(self):
        short = dp_sgd_epsilon(1.0, 32, 10_000, epochs=1, delta=1e-5)
        long = dp_sgd_epsilon(1.0, 32, 10_000, epochs=20, delta=1e-5)
        assert long > short

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dp_sgd_epsilon(1.0, 0, 100, 1, 1e-5)
