"""Magnitude pruning tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.pruning import apply_masks, prune_by_magnitude, sparsity
from repro.nn.zoo import tiny_testnet


class TestPruneByMagnitude:
    def test_keep_fraction_respected(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        result = prune_by_magnitude(net, keep_fraction=0.3)
        assert result.kept_fraction == pytest.approx(0.3, abs=0.05)
        # At least the masked weights are zero (zero-initialized biases add
        # extra natural zeros on an untrained network).
        assert sparsity(net) >= 1 - result.kept_fraction - 0.01

    def test_keeps_largest_weights(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        weights_before = net.layers[0].weights.copy()
        prune_by_magnitude(net, keep_fraction=0.2)
        surviving = net.layers[0].weights != 0
        if surviving.any() and (~surviving).any():
            assert (
                np.abs(weights_before[surviving]).min()
                >= np.abs(weights_before[~surviving]).max() - 1e-9
            )

    def test_biases_kept_by_default(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        net.layers[0].bias[...] = 1e-9  # tiny but should survive
        prune_by_magnitude(net, keep_fraction=0.1)
        mask = net.layers[0].bias == 1e-9
        assert mask.all()

    def test_keep_all_is_noop(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        before = net.layers[0].weights.copy()
        prune_by_magnitude(net, keep_fraction=1.0)
        np.testing.assert_array_equal(net.layers[0].weights, before)

    def test_invalid_fraction(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        with pytest.raises(ConfigurationError):
            prune_by_magnitude(net, keep_fraction=0.0)

    def test_sparse_bytes_accounting(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        result = prune_by_magnitude(net, keep_fraction=0.25)
        dense_bytes = sum(
            arr.nbytes for l in net.layers for arr in l.params().values()
        )
        assert result.sparse_bytes < dense_bytes

    def test_pruned_model_still_predicts(self, rng, tiny_cifar):
        """Moderate pruning of a trained model keeps most of its accuracy
        (the Han et al. premise)."""
        from repro.data.batching import iterate_minibatches
        from repro.nn.optimizers import Sgd

        train, test = tiny_cifar
        net = tiny_testnet(rng.child("n").generator)
        optimizer = Sgd(0.02, 0.9)
        batch_rng = rng.child("b").generator
        for _ in range(10):
            for xb, yb in iterate_minibatches(train.x, train.y, 16,
                                              rng=batch_rng):
                net.train_batch(xb, yb, optimizer)
        before = float(np.mean(net.predict(test.x).argmax(1) == test.y))
        prune_by_magnitude(net, keep_fraction=0.5)
        after = float(np.mean(net.predict(test.x).argmax(1) == test.y))
        assert after > before - 0.25


class TestApplyMasks:
    def test_rezeroes_after_updates(self, rng, tiny_cifar):
        from repro.nn.optimizers import Sgd

        train, _ = tiny_cifar
        net = tiny_testnet(rng.child("n").generator)
        result = prune_by_magnitude(net, keep_fraction=0.4)
        net.train_batch(train.x[:16], train.y[:16], Sgd(0.05))
        assert sparsity(net) < 1 - result.kept_fraction - 0.01  # revived
        apply_masks(net, result.masks)
        assert sparsity(net) == pytest.approx(1 - result.kept_fraction,
                                              abs=0.01)

    def test_mask_count_mismatch(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        with pytest.raises(ConfigurationError):
            apply_masks(net, [])
