"""Optimizer tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.optimizers import Adam, DpSgd, Sgd
from repro.nn.zoo import tiny_testnet


def _loss_of(net, x, y):
    probs = net.predict(x)
    return float(-np.log(probs[np.arange(y.shape[0]), y] + 1e-12).mean())


@pytest.fixture
def batch(generator):
    x = generator.normal(size=(16, 8, 8, 3)).astype(np.float32) * 0.3 + 0.5
    y = generator.integers(0, 4, size=16)
    return x, y


class TestSgd:
    def test_reduces_loss(self, rng, batch):
        net = tiny_testnet(rng.child("n").generator)
        x, y = batch
        before = _loss_of(net, x, y)
        optimizer = Sgd(0.05, momentum=0.0)
        for _ in range(15):
            net.train_batch(x, y, optimizer)
        assert _loss_of(net, x, y) < before

    def test_momentum_accumulates(self, rng, batch):
        """With constant gradients momentum moves further than plain SGD."""
        net_plain = tiny_testnet(rng.child("p").generator)
        net_momentum = tiny_testnet(rng.child("p").generator)
        x, y = batch
        w0 = net_plain.layers[0].weights.copy()
        for _ in range(5):
            net_plain.train_batch(x, y, Sgd(0.01, momentum=0.0))
        opt_m = Sgd(0.01, momentum=0.9)
        for _ in range(5):
            net_momentum.train_batch(x, y, opt_m)
        move_plain = np.abs(net_plain.layers[0].weights - w0).sum()
        move_momentum = np.abs(net_momentum.layers[0].weights - w0).sum()
        assert move_momentum > move_plain

    def test_weight_decay_shrinks_weights(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        net.zero_grads()  # zero gradients: only decay acts
        w0 = np.abs(net.layers[0].weights).sum()
        optimizer = Sgd(0.1, momentum=0.0, weight_decay=0.1)
        optimizer.step(net)
        assert np.abs(net.layers[0].weights).sum() < w0

    def test_frozen_layers_not_updated(self, rng, batch):
        net = tiny_testnet(rng.child("n").generator)
        net.freeze_layers(1)
        w0 = net.layers[0].weights.copy()
        x, y = batch
        net.train_batch(x, y, Sgd(0.1))
        np.testing.assert_array_equal(net.layers[0].weights, w0)

    def test_grad_clipping_bounds_update(self, rng):
        net = tiny_testnet(rng.child("n").generator)
        # Plant a huge gradient.
        net.layers[0]._grad_w[...] = 1e6
        w0 = net.layers[0].weights.copy()
        Sgd(0.1, momentum=0.0, max_grad_norm=1.0).step(net)
        assert np.abs(net.layers[0].weights - w0).max() <= 0.1 * 1.0 + 1e-6

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            Sgd(-1.0)
        with pytest.raises(ConfigurationError):
            Sgd(0.1, momentum=1.0)


class TestAdam:
    def test_reduces_loss(self, rng, batch):
        net = tiny_testnet(rng.child("n").generator)
        x, y = batch
        before = _loss_of(net, x, y)
        optimizer = Adam(1e-3)
        for _ in range(20):
            net.train_batch(x, y, optimizer)
        assert _loss_of(net, x, y) < before


class TestDpSgd:
    def test_noise_perturbs_updates(self, rng, batch):
        net_a = tiny_testnet(rng.child("same").generator)
        net_b = tiny_testnet(rng.child("same").generator)
        x, y = batch
        net_a.train_batch(x, y, DpSgd(0.01, noise_multiplier=2.0, batch_size=16,
                                      rng=np.random.default_rng(1)))
        net_b.train_batch(x, y, DpSgd(0.01, noise_multiplier=2.0, batch_size=16,
                                      rng=np.random.default_rng(2)))
        assert not np.allclose(net_a.layers[0].weights, net_b.layers[0].weights)

    def test_zero_noise_matches_clipped_sgd(self, rng, batch):
        net_a = tiny_testnet(rng.child("same").generator)
        net_b = tiny_testnet(rng.child("same").generator)
        x, y = batch
        net_a.train_batch(x, y, DpSgd(0.01, momentum=0.0, clip_norm=0.5,
                                      noise_multiplier=0.0, batch_size=16))
        net_b.train_batch(x, y, Sgd(0.01, momentum=0.0, max_grad_norm=0.5))
        np.testing.assert_allclose(
            net_a.layers[0].weights, net_b.layers[0].weights, rtol=1e-5
        )

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            DpSgd(clip_norm=0.0)
        with pytest.raises(ConfigurationError):
            DpSgd(noise_multiplier=-1.0)


class TestStateDicts:
    """Round-trip contract: load_state_dict makes a fresh optimizer
    continue bitwise-identically — the property checkpoint/resume needs."""

    def _run(self, net, optimizer, batch, steps):
        x, y = batch
        for _ in range(steps):
            net.train_batch(x, y, optimizer)

    def _twins(self, rng, batch, make_optimizer, warmup=3):
        """Train one net, then clone (weights + optimizer state) a twin."""
        net_a = tiny_testnet(rng.child("twin").generator)
        opt_a = make_optimizer()
        self._run(net_a, opt_a, batch, warmup)
        net_b = tiny_testnet(rng.child("twin").generator)
        net_b.set_weights(net_a.get_weights())
        opt_b = make_optimizer()
        opt_b.load_state_dict(opt_a.state_dict())
        return net_a, opt_a, net_b, opt_b

    def _assert_same_weights(self, net_a, net_b):
        for layer_a, layer_b in zip(net_a.get_weights(), net_b.get_weights()):
            for name in layer_a:
                np.testing.assert_array_equal(layer_a[name], layer_b[name],
                                              err_msg=name)

    def test_sgd_roundtrip(self, rng, batch):
        net_a, opt_a, net_b, opt_b = self._twins(
            rng, batch, lambda: Sgd(0.05, momentum=0.9))
        self._run(net_a, opt_a, batch, 4)
        self._run(net_b, opt_b, batch, 4)
        self._assert_same_weights(net_a, net_b)

    def test_adam_roundtrip(self, rng, batch):
        net_a, opt_a, net_b, opt_b = self._twins(
            rng, batch, lambda: Adam(1e-3))
        assert opt_b._t == opt_a._t  # bias-correction step counter
        self._run(net_a, opt_a, batch, 4)
        self._run(net_b, opt_b, batch, 4)
        self._assert_same_weights(net_a, net_b)

    def test_dpsgd_roundtrip_replays_noise(self, rng, batch):
        net_a, opt_a, net_b, opt_b = self._twins(
            rng, batch,
            lambda: DpSgd(0.01, noise_multiplier=1.0, batch_size=16,
                          rng=np.random.default_rng(7)))
        self._run(net_a, opt_a, batch, 4)
        self._run(net_b, opt_b, batch, 4)
        self._assert_same_weights(net_a, net_b)

    def test_perexample_dpsgd_roundtrip_replays_noise(self, rng):
        from repro.nn.optimizers import PerExampleDpSgd

        x = rng.child("px").generator.normal(
            size=(4, 8, 8, 3)).astype(np.float32)
        y = rng.child("py").generator.integers(0, 4, size=4)
        make = lambda: PerExampleDpSgd(0.01, noise_multiplier=1.0,
                                       rng=np.random.default_rng(7))
        net_a = tiny_testnet(rng.child("twin").generator)
        opt_a = make()
        opt_a.train_batch(net_a, x, y)
        net_b = tiny_testnet(rng.child("twin").generator)
        net_b.set_weights(net_a.get_weights())
        opt_b = make()
        opt_b.load_state_dict(opt_a.state_dict())
        opt_a.train_batch(net_a, x, y)
        opt_b.train_batch(net_b, x, y)
        for layer_a, layer_b in zip(net_a.get_weights(), net_b.get_weights()):
            for name in layer_a:
                np.testing.assert_array_equal(layer_a[name], layer_b[name])

    def test_state_dict_is_a_snapshot(self, rng, batch):
        """Further training must not mutate a captured state dict."""
        net = tiny_testnet(rng.child("n").generator)
        optimizer = Sgd(0.05, momentum=0.9)
        self._run(net, optimizer, batch, 2)
        state = optimizer.state_dict()
        frozen = {key: arr.copy() for key, arr in state["velocity"].items()}
        self._run(net, optimizer, batch, 2)
        for key in frozen:
            np.testing.assert_array_equal(state["velocity"][key], frozen[key])

    def test_stateless_base_rejects_foreign_state(self):
        from repro.nn.optimizers import Optimizer

        Optimizer().load_state_dict({})  # fine
        with pytest.raises(ConfigurationError):
            Optimizer().load_state_dict({"velocity": {}})
