"""Backpropagation correctness via numerical gradient checking."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradients, max_relative_error
from repro.nn.layers import (
    AvgPoolLayer,
    ConvLayer,
    CostLayer,
    DenseLayer,
    DropoutLayer,
    FlattenLayer,
    MaxPoolLayer,
    SoftmaxLayer,
)
from repro.nn.network import Network
from repro.nn.zoo import tiny_testnet

# Fixed seeds chosen so no sampled coordinate sits on a leaky-ReLU kink or
# max-pool tie (non-smooth points make the numerical check spuriously fail).
_CLEAN_SEED = 3


def _data(shape=(8, 8, 3), n=4, classes=4, seed=_CLEAN_SEED):
    gen = np.random.default_rng(seed)
    x = gen.normal(size=(n,) + shape)
    y = gen.integers(0, classes, size=n)
    return x, y


class TestGradCheck:
    def test_tiny_testnet(self):
        net = tiny_testnet(np.random.default_rng(100))
        x, y = _data()
        errors = check_gradients(net, x, y, samples_per_param=8,
                                 rng=np.random.default_rng(0))
        assert max(errors.values()) < 1e-5, errors

    def test_conv_stack_with_stride(self):
        layers = [
            ConvLayer(6, 3, 2, activation="relu"),
            ConvLayer(4, 1, 1, activation="linear"),
            AvgPoolLayer(),
            SoftmaxLayer(),
            CostLayer(),
        ]
        net = Network((8, 8, 3), layers, rng=np.random.default_rng(7))
        x, y = _data()
        errors = check_gradients(net, x, y, samples_per_param=8,
                                 rng=np.random.default_rng(0))
        assert max(errors.values()) < 1e-5, errors

    def test_dense_head(self):
        layers = [
            ConvLayer(4, 3, 1, activation="tanh"),
            MaxPoolLayer(2, 2),
            FlattenLayer(),
            DenseLayer(8, activation="sigmoid"),
            DenseLayer(3, activation="linear"),
            SoftmaxLayer(),
            CostLayer(),
        ]
        net = Network((6, 6, 3), layers, rng=np.random.default_rng(2))
        x, y = _data(shape=(6, 6, 3), classes=3)
        errors = check_gradients(net, x, y, samples_per_param=8,
                                 rng=np.random.default_rng(0))
        assert max(errors.values()) < 1e-5, errors

    def test_valid_padding_conv(self):
        layers = [
            ConvLayer(4, 3, 1, activation="linear", pad="valid"),
            AvgPoolLayer(),
            SoftmaxLayer(),
            CostLayer(),
        ]
        net = Network((7, 7, 2), layers, rng=np.random.default_rng(5))
        gen = np.random.default_rng(_CLEAN_SEED)
        x = gen.normal(size=(3, 7, 7, 2))
        y = gen.integers(0, 4, size=3)
        errors = check_gradients(net, x, y, samples_per_param=10,
                                 rng=np.random.default_rng(0))
        assert max(errors.values()) < 1e-5, errors


class TestMaxRelativeError:
    def test_zero_for_equal(self):
        a = np.array([1.0, -2.0, 3.0])
        assert max_relative_error(a, a.copy()) == 0.0

    def test_scales_relative(self):
        assert max_relative_error(np.array([100.0]), np.array([101.0])) == pytest.approx(
            1 / 101, rel=1e-6
        )
