"""Loss helper tests."""

import numpy as np
import pytest

from repro.nn.losses import cross_entropy_delta, cross_entropy_loss, softmax_cross_entropy


def test_perfect_prediction_near_zero_loss():
    probs = np.array([[1.0, 0.0], [0.0, 1.0]])
    assert cross_entropy_loss(probs, np.array([0, 1])) == pytest.approx(0.0, abs=1e-9)


def test_uniform_prediction_log_n():
    probs = np.full((4, 10), 0.1)
    assert cross_entropy_loss(probs, np.zeros(4, dtype=int)) == pytest.approx(
        np.log(10), rel=1e-6
    )


def test_delta_rows_sum_to_zero():
    probs = np.array([[0.5, 0.3, 0.2]])
    delta = cross_entropy_delta(probs, np.array([1]))
    assert delta.sum() == pytest.approx(0.0, abs=1e-9)


def test_softmax_cross_entropy_consistent():
    logits = np.random.default_rng(0).normal(size=(3, 5))
    labels = np.array([0, 2, 4])
    loss, delta = softmax_cross_entropy(logits, labels)
    # Numerical check of the combined gradient.
    eps = 1e-6
    for i, j in [(0, 0), (1, 3), (2, 4)]:
        bumped = logits.copy()
        bumped[i, j] += eps
        loss_plus, _ = softmax_cross_entropy(bumped, labels)
        bumped[i, j] -= 2 * eps
        loss_minus, _ = softmax_cross_entropy(bumped, labels)
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert delta[i, j] == pytest.approx(numeric, abs=1e-5)
