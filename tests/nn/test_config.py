"""Darknet-style config parser tests."""

import numpy as np
import pytest

from repro.errors import NetworkDefinitionError
from repro.nn.config import network_from_config, network_to_config, parse_config
from repro.nn.zoo import cifar10_10layer, cifar10_18layer

_SAMPLE = """
[net]
input = 8,8,3

[conv]
filters = 4
size = 3
stride = 1
activation = leaky

[max]
size = 2
stride = 2

[conv]
filters = 2
size = 1
activation = linear

[avg]
[softmax]
[cost]
"""


class TestParser:
    def test_sections_and_options(self):
        sections = parse_config(_SAMPLE)
        assert sections[0][0] == "net"
        assert sections[1] == ("conv", {"filters": "4", "size": "3",
                                        "stride": "1", "activation": "leaky"})

    def test_comments_stripped(self):
        sections = parse_config("[net]\ninput = 4,4,1  # HWC\n[softmax]\n")
        assert sections[0][1]["input"] == "4,4,1"

    def test_option_before_section_rejected(self):
        with pytest.raises(NetworkDefinitionError):
            parse_config("input = 1,1,1\n[net]")

    def test_malformed_option_rejected(self):
        with pytest.raises(NetworkDefinitionError):
            parse_config("[net]\nnot an option line")

    def test_empty_rejected(self):
        with pytest.raises(NetworkDefinitionError):
            parse_config("   \n  # just comments\n")


class TestNetworkFromConfig:
    def test_builds_and_runs(self):
        net = network_from_config(_SAMPLE, rng=np.random.default_rng(0))
        out = net.forward(np.zeros((2, 8, 8, 3), dtype=np.float32))
        assert out.shape == (2, 2)

    def test_layer_kinds(self):
        net = network_from_config(_SAMPLE, rng=np.random.default_rng(0))
        assert [l.kind for l in net.layers] == [
            "conv", "max", "conv", "avg", "softmax", "cost",
        ]

    def test_missing_net_section_rejected(self):
        with pytest.raises(NetworkDefinitionError):
            network_from_config("[conv]\nfilters = 2\n")

    def test_missing_input_rejected(self):
        with pytest.raises(NetworkDefinitionError):
            network_from_config("[net]\n[softmax]")

    def test_unknown_layer_rejected(self):
        with pytest.raises(NetworkDefinitionError):
            network_from_config("[net]\ninput = 4,4,1\n[transformer]")

    def test_no_layers_rejected(self):
        with pytest.raises(NetworkDefinitionError):
            network_from_config("[net]\ninput = 4,4,1\n")


class TestRoundtrip:
    @pytest.mark.parametrize("factory", [cifar10_10layer, cifar10_18layer])
    def test_zoo_roundtrip(self, factory):
        """Rendering a zoo model to config and parsing it back preserves
        the architecture (layer kinds, shapes, parameter counts)."""
        original = factory(np.random.default_rng(0), width_scale=0.1)
        text = network_to_config(original)
        rebuilt = network_from_config(text, rng=np.random.default_rng(1))
        assert [l.kind for l in original.layers] == [l.kind for l in rebuilt.layers]
        assert original.layer_output_shapes() == rebuilt.layer_output_shapes()
        assert original.num_params == rebuilt.num_params

    def test_config_text_is_deterministic(self):
        net = cifar10_10layer(np.random.default_rng(0), width_scale=0.1)
        assert network_to_config(net) == network_to_config(net)
