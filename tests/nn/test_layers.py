"""Per-layer unit tests: shapes, known values, gradients, introspection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError, TrainingError
from repro.nn.initializers import gaussian_init
from repro.nn.layers import (
    AvgPoolLayer,
    ConvLayer,
    CostLayer,
    DenseLayer,
    DropoutLayer,
    FlattenLayer,
    MaxPoolLayer,
    SoftmaxLayer,
)
from repro.nn.layers.activations import ACTIVATIONS, activation_gradient, apply_activation


class TestActivations:
    @pytest.mark.parametrize("name", ACTIVATIONS)
    def test_shape_preserved(self, name):
        z = np.linspace(-2, 2, 12).reshape(3, 4)
        assert apply_activation(name, z).shape == z.shape

    def test_relu_values(self):
        z = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(apply_activation("relu", z), [0.0, 0.0, 2.0])

    def test_leaky_values(self):
        z = np.array([-1.0, 2.0])
        np.testing.assert_allclose(apply_activation("leaky", z), [-0.1, 2.0])

    @pytest.mark.parametrize("name", ACTIVATIONS)
    def test_gradient_matches_numerical(self, name):
        z = np.linspace(-1.7, 1.9, 13)  # avoids the kink at exactly 0
        delta = np.ones_like(z)
        eps = 1e-6
        numeric = (apply_activation(name, z + eps) - apply_activation(name, z - eps)) / (2 * eps)
        np.testing.assert_allclose(
            activation_gradient(name, z, delta), numeric, atol=1e-6
        )

    def test_unknown_activation(self):
        with pytest.raises(ConfigurationError):
            apply_activation("swishy", np.zeros(3))


class TestConvLayer:
    def _build(self, filters=4, size=3, stride=1, in_c=3, pad="same"):
        layer = ConvLayer(filters, size, stride, activation="linear", pad=pad)
        layer.build(in_c, gaussian_init(np.random.default_rng(0)))
        return layer

    def test_same_padding_shape(self):
        layer = self._build()
        out = layer.forward(np.zeros((2, 8, 8, 3), dtype=np.float32))
        assert out.shape == (2, 8, 8, 4)

    def test_valid_padding_shape(self):
        layer = self._build(pad="valid")
        out = layer.forward(np.zeros((2, 8, 8, 3), dtype=np.float32))
        assert out.shape == (2, 6, 6, 4)

    def test_stride_two(self):
        layer = self._build(stride=2)
        out = layer.forward(np.zeros((2, 8, 8, 3), dtype=np.float32))
        assert out.shape == (2, 4, 4, 4)

    def test_identity_kernel(self):
        """A 1x1 identity kernel reproduces the input channel."""
        layer = ConvLayer(1, 1, 1, activation="linear")
        layer.build(1, lambda shape: np.ones(shape))
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        np.testing.assert_allclose(layer.forward(x), x)

    def test_known_3x3_sum_kernel(self):
        """An all-ones 3x3 kernel computes local sums (with zero padding)."""
        layer = ConvLayer(1, 3, 1, activation="linear")
        layer.build(1, lambda shape: np.ones(shape))
        x = np.ones((1, 3, 3, 1), dtype=np.float32)
        out = layer.forward(x)[0, :, :, 0]
        assert out[1, 1] == pytest.approx(9.0)  # full window
        assert out[0, 0] == pytest.approx(4.0)  # corner window

    def test_channel_mismatch_rejected(self):
        layer = self._build(in_c=3)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 8, 8, 5), dtype=np.float32))

    def test_unbuilt_rejected(self):
        with pytest.raises(ShapeError):
            ConvLayer(2).forward(np.zeros((1, 4, 4, 3)))

    def test_backward_without_forward_rejected(self):
        layer = self._build()
        with pytest.raises(TrainingError):
            layer.backward(np.zeros((1, 8, 8, 4)))

    def test_flops_formula(self):
        layer = self._build(filters=4, size=3)
        # 2 * oh*ow*oc*k*k*ic = 2*8*8*4*9*3
        assert layer.flops((8, 8, 3)) == 2 * 8 * 8 * 4 * 9 * 3

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            ConvLayer(0)
        with pytest.raises(ConfigurationError):
            ConvLayer(4, pad="reflect")

    def test_frozen_accumulates_no_grads(self):
        layer = self._build()
        layer.frozen = True
        x = np.random.default_rng(1).normal(size=(2, 8, 8, 3)).astype(np.float32)
        out = layer.forward(x, training=True)
        layer.backward(np.ones_like(out))
        assert np.all(layer.grads()["weights"] == 0)


class TestMaxPool:
    def test_shape(self):
        out = MaxPoolLayer(2, 2).forward(np.zeros((1, 8, 8, 3), dtype=np.float32))
        assert out.shape == (1, 4, 4, 3)

    def test_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = MaxPoolLayer(2, 2).forward(x)[0, :, :, 0]
        np.testing.assert_array_equal(out, [[5, 7], [13, 15]])

    def test_backward_routes_to_argmax(self):
        layer = MaxPoolLayer(2, 2)
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        layer.forward(x, training=True)
        dx = layer.backward(np.ones((1, 2, 2, 1), dtype=np.float32))
        # Gradient lands only on the max positions (5, 7, 13, 15).
        expected = np.zeros((4, 4))
        for pos in [(1, 1), (1, 3), (3, 1), (3, 3)]:
            expected[pos] = 1.0
        np.testing.assert_array_equal(dx[0, :, :, 0], expected)

    def test_too_small_input_rejected(self):
        with pytest.raises(ShapeError):
            MaxPoolLayer(4, 4).forward(np.zeros((1, 2, 2, 1), dtype=np.float32))


class TestAvgPool:
    def test_global_average(self):
        x = np.arange(32, dtype=np.float32).reshape(1, 4, 4, 2)
        out = AvgPoolLayer().forward(x)
        np.testing.assert_allclose(out[0], x[0].mean(axis=(0, 1)))

    def test_backward_spreads_equally(self):
        layer = AvgPoolLayer()
        x = np.zeros((1, 2, 2, 3), dtype=np.float32)
        layer.forward(x, training=True)
        dx = layer.backward(np.ones((1, 3), dtype=np.float32))
        np.testing.assert_allclose(dx, np.full((1, 2, 2, 3), 0.25))


class TestDropout:
    def test_inference_is_identity(self):
        x = np.ones((4, 10), dtype=np.float32)
        np.testing.assert_array_equal(DropoutLayer(0.5).forward(x), x)

    def test_training_zeroes_and_scales(self):
        layer = DropoutLayer(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100), dtype=np.float32)
        out = layer.forward(x, training=True)
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted dropout scaling
        assert 0.3 < (out == 0).mean() < 0.7

    def test_backward_uses_same_mask(self):
        layer = DropoutLayer(0.5, rng=np.random.default_rng(0))
        x = np.ones((10, 10), dtype=np.float32)
        out = layer.forward(x, training=True)
        dx = layer.backward(np.ones_like(out))
        np.testing.assert_array_equal((out == 0), (dx == 0))

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            DropoutLayer(1.0)

    def test_zero_probability_passthrough(self):
        x = np.ones((3, 3), dtype=np.float32)
        layer = DropoutLayer(0.0)
        np.testing.assert_array_equal(layer.forward(x, training=True), x)
        np.testing.assert_array_equal(layer.backward(x), x)


class TestDenseAndFlatten:
    def test_flatten_roundtrip(self):
        layer = FlattenLayer()
        x = np.arange(24, dtype=np.float32).reshape(2, 2, 2, 3)
        out = layer.forward(x, training=True)
        assert out.shape == (2, 12)
        assert layer.backward(out).shape == x.shape

    def test_dense_linear_algebra(self):
        layer = DenseLayer(2, activation="linear")
        layer.build(3, lambda shape: np.ones(shape))
        x = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        np.testing.assert_allclose(layer.forward(x), [[6.0, 6.0]])

    def test_dense_shape_check(self):
        layer = DenseLayer(2)
        layer.build(3, gaussian_init(np.random.default_rng(0)))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 5), dtype=np.float32))

    def test_dense_flops(self):
        layer = DenseLayer(4)
        assert layer.flops((10,)) == 2 * 10 * 4


class TestSoftmaxAndCost:
    def test_softmax_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 7))
        probs = SoftmaxLayer().forward(logits)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-6)

    def test_softmax_stability_large_logits(self):
        probs = SoftmaxLayer().forward(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()

    def test_softmax_needs_2d(self):
        with pytest.raises(ShapeError):
            SoftmaxLayer().forward(np.zeros((2, 3, 4)))

    def test_cost_loss_and_delta(self):
        probs = np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]])
        labels = np.array([0, 1])
        loss, delta = CostLayer.loss_and_delta(probs, labels)
        expected_loss = -(np.log(0.7) + np.log(0.8)) / 2
        assert loss == pytest.approx(expected_loss, rel=1e-6)
        # delta = (probs - onehot) / n
        assert delta[0, 0] == pytest.approx((0.7 - 1.0) / 2)
        assert delta[1, 2] == pytest.approx(0.1 / 2)

    def test_cost_batch_mismatch(self):
        with pytest.raises(ShapeError):
            CostLayer.loss_and_delta(np.ones((2, 3)) / 3, np.array([0]))
