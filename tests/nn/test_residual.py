"""Residual block tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn.config import network_from_config, network_to_config
from repro.nn.gradcheck import check_gradients
from repro.nn.layers import (
    AvgPoolLayer,
    ConvLayer,
    CostLayer,
    MaxPoolLayer,
    ResidualBlockLayer,
    SoftmaxLayer,
)
from repro.nn.network import Network


def _res_net(rng, channels=6):
    layers = [
        ConvLayer(channels, 3, 1),
        ResidualBlockLayer([
            ConvLayer(channels, 3, 1),
            ConvLayer(channels, 3, 1, activation="linear"),
        ]),
        MaxPoolLayer(2, 2),
        ConvLayer(3, 1, 1, activation="linear"),
        AvgPoolLayer(),
        SoftmaxLayer(),
        CostLayer(),
    ]
    return Network((8, 8, 3), layers, rng=rng)


class TestResidualBlock:
    def test_identity_when_inner_is_zero(self):
        block = ResidualBlockLayer([ConvLayer(3, 3, 1, activation="linear")])
        block.build(3, lambda shape: np.zeros(shape))
        x = np.random.default_rng(0).random((2, 6, 6, 3)).astype(np.float32)
        np.testing.assert_allclose(block.forward(x), x)

    def test_adds_inner_output(self, generator):
        block = ResidualBlockLayer([ConvLayer(2, 1, 1, activation="linear")])
        block.build(2, lambda shape: np.full(shape, 0.0))
        # Identity 1x1 kernel: inner output equals the input -> y = 2x.
        block.inner[0].weights[0, 0, 0, 0] = 1.0
        block.inner[0].weights[0, 0, 1, 1] = 1.0
        x = generator.random((1, 4, 4, 2)).astype(np.float32)
        np.testing.assert_allclose(block.forward(x), 2 * x, rtol=1e-6)

    def test_shape_preserved(self, rng):
        net = _res_net(rng.child("n").generator)
        shapes = net.layer_output_shapes()
        assert shapes[1] == shapes[0]  # the block preserves shape

    def test_channel_changing_inner_rejected(self):
        layers = [
            ConvLayer(4, 3, 1),
            ResidualBlockLayer([ConvLayer(8, 3, 1)]),  # 4 -> 8: invalid
            SoftmaxLayer(),
            CostLayer(),
        ]
        with pytest.raises(ShapeError):
            Network((6, 6, 3), layers, rng=np.random.default_rng(0))

    def test_empty_inner_rejected(self):
        with pytest.raises(ConfigurationError):
            ResidualBlockLayer([])

    def test_gradcheck(self):
        net = _res_net(np.random.default_rng(11))
        gen = np.random.default_rng(3)
        x = gen.normal(size=(3, 8, 8, 3))
        y = gen.integers(0, 3, size=3)
        errors = check_gradients(net, x, y, samples_per_param=6,
                                 rng=np.random.default_rng(0))
        # 1e-3 tolerance: the deepest inner-conv coordinates have gradients
        # small enough that central differences hit cancellation noise
        # (verified: the error grows as epsilon shrinks, so it is numeric
        # noise, not a backprop defect).
        assert max(errors.values()) < 1e-3, errors

    def test_trains(self, rng, tiny_cifar):
        from repro.data.batching import iterate_minibatches
        from repro.nn.optimizers import Sgd

        train, _ = tiny_cifar
        # Rebuild with 4 classes to match the fixture.
        layers = [
            ConvLayer(6, 3, 1),
            ResidualBlockLayer([
                ConvLayer(6, 3, 1),
                ConvLayer(6, 3, 1, activation="linear"),
            ]),
            ConvLayer(4, 1, 1, activation="linear"),
            AvgPoolLayer(),
            SoftmaxLayer(),
            CostLayer(),
        ]
        net = Network((8, 8, 3), layers, rng=rng.child("t").generator)
        optimizer = Sgd(0.02, 0.9)
        batch_rng = rng.child("b").generator
        losses = []
        for _ in range(8):
            for xb, yb in iterate_minibatches(train.x, train.y, 16,
                                              rng=batch_rng):
                losses.append(net.train_batch(xb, yb, optimizer))
        assert losses[-1] < losses[0]

    def test_weights_roundtrip(self, rng, generator):
        net_a = _res_net(rng.child("a").fork_generator())
        net_b = _res_net(rng.child("b").fork_generator())
        net_b.set_weights(net_a.get_weights())
        x = generator.random((2, 8, 8, 3)).astype(np.float32)
        np.testing.assert_allclose(net_a.predict(x), net_b.predict(x),
                                   rtol=1e-6)

    def test_config_roundtrip(self):
        text = (
            "[net]\ninput = 8,8,3\n[conv]\nfilters = 4\n"
            "[residual]\nfilters = 4\nconvs = 2\n"
            "[conv]\nfilters = 2\nsize = 1\nactivation = linear\n"
            "[avg]\n[softmax]\n[cost]\n"
        )
        net = network_from_config(text, rng=np.random.default_rng(0))
        assert net.layers[1].kind == "residual"
        rebuilt = network_from_config(network_to_config(net),
                                      rng=np.random.default_rng(1))
        assert [l.kind for l in rebuilt.layers] == [l.kind for l in net.layers]
        assert rebuilt.num_params == net.num_params

    def test_partitioned_training_with_residual(self, rng, platform, tiny_cifar):
        """A residual block inside the FrontNet trains correctly across
        the enclave boundary (the block is atomic under partitioning)."""
        from repro.core.partition import PartitionedNetwork
        from repro.nn.optimizers import Sgd

        train, _ = tiny_cifar
        layers = [
            ConvLayer(6, 3, 1),
            ResidualBlockLayer([ConvLayer(6, 3, 1, activation="linear")]),
            ConvLayer(4, 1, 1, activation="linear"),
            AvgPoolLayer(),
            SoftmaxLayer(),
            CostLayer(),
        ]
        net_a = Network((8, 8, 3), layers, rng=rng.child("same").fork_generator())
        layers_b = [
            ConvLayer(6, 3, 1),
            ResidualBlockLayer([ConvLayer(6, 3, 1, activation="linear")]),
            ConvLayer(4, 1, 1, activation="linear"),
            AvgPoolLayer(),
            SoftmaxLayer(),
            CostLayer(),
        ]
        net_b = Network((8, 8, 3), layers_b, rng=rng.child("same").fork_generator())
        enclave = platform.create_enclave("res")
        enclave.init()
        loss_a = net_a.train_batch(train.x[:16], train.y[:16],
                                   Sgd(0.05, momentum=0.0))
        loss_b = PartitionedNetwork(net_b, 2, enclave).train_batch(
            train.x[:16], train.y[:16], Sgd(0.05, momentum=0.0)
        )
        assert loss_a == pytest.approx(loss_b, rel=1e-6)
