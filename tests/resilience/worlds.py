"""Reproducible training worlds shared by the resilience test suite.

Two identically-seeded worlds train bitwise-identically, which is the
ground truth the crash/resume parity tests compare against.
"""

import numpy as np

from repro.core.caltrain import CalTrain, CalTrainConfig
from repro.core.partition import PartitionedNetwork
from repro.core.partitioned_training import ConfidentialTrainer
from repro.data.datasets import synthetic_cifar
from repro.enclave.platform import SgxPlatform
from repro.federation.participant import TrainingParticipant
from repro.nn.optimizers import Sgd
from repro.nn.zoo import tiny_testnet
from repro.utils.rng import RngStream

EPOCHS = 3
BATCH_SIZE = 16
N_TRAIN = 96
N_TEST = 32


class SupervisedWorld:
    """A bare enclave-backed trainer (no federation layer on top)."""

    def __init__(self, seed: int = 31):
        self.stream = RngStream(seed, "resilience")
        self.platform = SgxPlatform(rng=self.stream.child("platform"))
        self.enclave = self.platform.create_enclave("train")
        self.enclave.init()
        net = tiny_testnet(self.stream.child("net").generator)
        # Dropout draws from the enclave's trusted RNG (as CalTrain wires
        # it), so checkpoints capture and restore every stochastic input.
        net.set_dropout_rng(self.enclave.trusted_rng.generator)
        self.trainer = ConfidentialTrainer(
            PartitionedNetwork(net, 1, self.enclave), Sgd(0.05, 0.9),
            batch_rng=self.enclave.trusted_rng.stream.child("batches").generator,
            batch_size=BATCH_SIZE,
        )
        self.train, self.test = synthetic_cifar(
            self.stream.child("data"), num_train=N_TRAIN, num_test=N_TEST,
            num_classes=4, shape=(8, 8, 3),
        )

    def rebuild_enclave(self):
        """Enclave factory: same name on the same platform reproduces both
        the MRENCLAVE and the trusted-RNG derivation."""
        enclave = self.platform.create_enclave("train")
        enclave.init()
        return enclave

    def weights(self):
        return self.trainer.partitioned.network.get_weights()


def make_caltrain_world(seed: int = 7):
    """A full CalTrain deployment with one registered participant."""
    config = CalTrainConfig(
        seed=seed, epochs=EPOCHS, batch_size=BATCH_SIZE, partition=1,
        augment=True,
        network_factory=lambda gen: tiny_testnet(
            gen, input_shape=(8, 8, 3), num_classes=4),
    )
    rng = RngStream(99, "world")
    train, test = synthetic_cifar(rng.child("data"), num_train=N_TRAIN,
                                  num_test=N_TEST, num_classes=4,
                                  shape=(8, 8, 3))
    system = CalTrain(config)
    participant = TrainingParticipant("p0", train, rng.child("p0"))
    system.register_participant(participant)
    system.submit_data(participant)
    return system, test


def losses(reports):
    return [r.mean_loss for r in reports]


def assert_same_weights(got, expected):
    assert len(got) == len(expected)
    for layer_got, layer_expected in zip(got, expected):
        assert set(layer_got) == set(layer_expected)
        for name in layer_got:
            np.testing.assert_array_equal(layer_got[name],
                                          layer_expected[name], err_msg=name)
