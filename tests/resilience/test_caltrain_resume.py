"""End-to-end resilience through the CalTrain federation layer."""

import pytest

from repro.errors import ConfigurationError, TrainingAborted
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy

from tests.resilience.worlds import (assert_same_weights, losses,
                                     make_caltrain_world)


@pytest.fixture(scope="module")
def baseline():
    """An uninterrupted, uncheckpointed CalTrain run."""
    system, test = make_caltrain_world()
    reports = system.train(test_x=test.x, test_y=test.y)
    return losses(reports), system.model.get_weights()


class TestCheckpointedTraining:
    def test_checkpointing_is_invisible_to_the_model(self, tmp_path,
                                                     baseline):
        base_losses, base_weights = baseline
        system, test = make_caltrain_world()
        reports = system.train(test_x=test.x, test_y=test.y,
                               checkpoint_dir=tmp_path,
                               checkpoint_every_batches=2)
        assert losses(reports) == base_losses
        assert_same_weights(system.model.get_weights(), base_weights)
        assert system.run_telemetry.counter("checkpoints_written") > 0

    def test_faulted_run_matches_baseline(self, tmp_path, baseline):
        """An enclave abort, a corrupted boundary tensor, and a torn
        checkpoint write: the final model is still bitwise the baseline."""
        base_losses, base_weights = baseline
        system, test = make_caltrain_world()
        plan = FaultPlan([
            FaultSpec("enclave-abort", epoch=1, batch=3),
            FaultSpec("ir-corrupt", epoch=2, batch=1),
            FaultSpec("checkpoint-crash", epoch=0, batch=1),
        ])
        reports = system.train(test_x=test.x, test_y=test.y,
                               checkpoint_dir=tmp_path,
                               checkpoint_every_batches=2, fault_plan=plan)
        assert losses(reports) == base_losses
        assert_same_weights(system.model.get_weights(), base_weights)
        counters = system.run_telemetry.snapshot()["counters"]
        assert counters["fault_enclave"] == 1
        assert counters["fault_transfer"] == 1
        assert counters["fault_checkpoint-write"] == 1
        assert counters["enclave_rebuilds"] == 1
        assert system.audit_log.verify_chain()
        kinds = [event.kind for event in system.audit_log.events()]
        assert "training-fault" in kinds
        assert "enclave-rebuilt" in kinds
        assert "recovery-restage" in kinds

    def test_cross_process_resume_matches_baseline(self, tmp_path, baseline):
        """Kill the run (budget exhausted), then resume in a *fresh*
        CalTrain instance: same final weights, same loss history, and the
        checkpointed audit chain is adopted."""
        base_losses, base_weights = baseline
        first, test = make_caltrain_world()
        plan = FaultPlan([FaultSpec("enclave-abort", epoch=2, batch=0)])
        with pytest.raises(TrainingAborted):
            first.train(test_x=test.x, test_y=test.y,
                        checkpoint_dir=tmp_path, fault_plan=plan,
                        retry_policy=RetryPolicy(max_retries=0))

        second, test = make_caltrain_world()
        reports = second.train(test_x=test.x, test_y=test.y,
                               checkpoint_dir=tmp_path, resume=True)
        assert losses(reports) == base_losses
        assert_same_weights(second.model.get_weights(), base_weights)
        kinds = [event.kind for event in second.audit_log.events()]
        assert "training-resumed" in kinds
        assert second.audit_log.verify_chain()

    def test_recovery_restage_supports_fingerprinting(self, tmp_path):
        """After an enclave rebuild the re-onboarded submissions must
        still be available for the accountability fingerprint pass."""
        system, test = make_caltrain_world()
        plan = FaultPlan([FaultSpec("enclave-abort", epoch=1, batch=1)])
        system.train(test_x=test.x, test_y=test.y, checkpoint_dir=tmp_path,
                     fault_plan=plan)
        database = system.fingerprint_stage()
        assert len(database) > 0

    def test_frontnet_sealed_in_every_checkpoint(self, tmp_path, baseline):
        _, base_weights = baseline
        system, test = make_caltrain_world()
        system.train(test_x=test.x, test_y=test.y, checkpoint_dir=tmp_path)
        partition = system.config.partition
        checkpoint_dirs = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert checkpoint_dirs
        # The final boundary checkpoint holds the final weights; their
        # FrontNet half must not appear in plaintext in any file.
        final_front = system.model.get_weights()[:partition]
        for directory in checkpoint_dirs:
            blob = b"".join(f.read_bytes()
                            for f in sorted(directory.iterdir()))
            for layer in final_front:
                for name, arr in layer.items():
                    assert arr.tobytes() not in blob, (
                        f"{name} leaked in {directory.name}")


class TestWiringValidation:
    def test_resume_requires_checkpoint_dir(self):
        system, test = make_caltrain_world()
        with pytest.raises(ConfigurationError):
            system.train(test_x=test.x, test_y=test.y, resume=True)

    def test_fault_plan_requires_checkpoint_dir(self):
        system, test = make_caltrain_world()
        with pytest.raises(ConfigurationError):
            system.train(test_x=test.x, test_y=test.y,
                         fault_plan=FaultPlan([]))
