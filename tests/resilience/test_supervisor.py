"""Supervised retry runtime tests: parity, recovery, budgets, degradation."""

import pytest

from repro.enclave.attestation import AttestationService
from repro.errors import (CheckpointWriteCrash, ConfigurationError,
                          EnclaveAbort, EnclaveLifecycleError,
                          EnclaveMemoryError, EpcPressureError,
                          TrainingAborted, TransferIntegrityError)
from repro.resilience import (CheckpointManager, FaultPlan, FaultSpec,
                              ResilientTrainer, RetryPolicy, classify_fault)

from tests.resilience.worlds import (EPOCHS, SupervisedWorld,
                                     assert_same_weights, losses)


@pytest.fixture(scope="module")
def baseline():
    """Uninterrupted, uncheckpointed training: the parity ground truth."""
    world = SupervisedWorld()
    reports = world.trainer.train(world.train.x, world.train.y, EPOCHS,
                                  test_x=world.test.x, test_y=world.test.y)
    return losses(reports), world.weights()


def _supervised(world, tmp_path, **kwargs):
    return ResilientTrainer(
        world.trainer, CheckpointManager(tmp_path),
        enclave_factory=world.rebuild_enclave, **kwargs,
    )


def _run(resilient, world, **kwargs):
    return resilient.run(world.train.x, world.train.y, EPOCHS,
                         test_x=world.test.x, test_y=world.test.y, **kwargs)


class TestClassification:
    def test_fault_taxonomy(self):
        assert classify_fault(EnclaveAbort("x")) == "enclave"
        assert classify_fault(EpcPressureError("x")) == "epc"
        assert classify_fault(EnclaveMemoryError("x")) == "epc"
        assert classify_fault(TransferIntegrityError("x")) == "transfer"
        assert classify_fault(CheckpointWriteCrash("x")) == "checkpoint-write"
        assert classify_fault(EnclaveLifecycleError("x")) == "enclave"
        assert classify_fault(ValueError("x")) is None

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base_seconds=1.0, backoff_factor=2.0,
                             backoff_max_seconds=5.0)
        assert policy.backoff_seconds(1) == 1.0
        assert policy.backoff_seconds(2) == 2.0
        assert policy.backoff_seconds(3) == 4.0
        assert policy.backoff_seconds(4) == 5.0  # capped


class TestParity:
    def test_supervised_run_matches_unsupervised(self, tmp_path, baseline):
        base_losses, base_weights = baseline
        world = SupervisedWorld()
        reports = _run(_supervised(world, tmp_path), world,
                       checkpoint_every_batches=2)
        assert losses(reports) == base_losses
        assert_same_weights(world.weights(), base_weights)

    def test_faulted_run_matches_baseline(self, tmp_path, baseline):
        """Transfer corruption and a torn checkpoint write leave no trace
        in the trained model."""
        base_losses, base_weights = baseline
        world = SupervisedWorld()
        plan = FaultPlan([
            FaultSpec("ir-corrupt", epoch=0, batch=2),
            FaultSpec("checkpoint-crash", epoch=1, batch=1),
            FaultSpec("delta-corrupt", epoch=2, batch=4),
        ])
        resilient = _supervised(world, tmp_path, fault_plan=plan)
        reports = _run(resilient, world, checkpoint_every_batches=2)
        assert losses(reports) == base_losses
        assert_same_weights(world.weights(), base_weights)
        assert plan.remaining == 0
        counters = resilient.telemetry.snapshot()["counters"]
        assert counters["fault_transfer"] == 2
        assert counters["fault_checkpoint-write"] == 1
        assert counters["restores"] >= 3

    def test_enclave_abort_rebuild_matches_baseline(self, tmp_path, baseline):
        base_losses, base_weights = baseline
        world = SupervisedWorld()
        plan = FaultPlan([FaultSpec("enclave-abort", epoch=1, batch=3)])
        resilient = _supervised(world, tmp_path, fault_plan=plan)
        reports = _run(resilient, world, checkpoint_every_batches=2)
        assert losses(reports) == base_losses
        assert_same_weights(world.weights(), base_weights)
        assert resilient.telemetry.counter("enclave_rebuilds") == 1

    def test_kill_and_resume_matches_baseline(self, tmp_path, baseline):
        """A run aborted mid-epoch resumes in a fresh process bitwise."""
        base_losses, base_weights = baseline
        first = SupervisedWorld()
        plan = FaultPlan([FaultSpec("enclave-abort", epoch=1, batch=3)])
        with pytest.raises(TrainingAborted):
            _run(_supervised(first, tmp_path, fault_plan=plan,
                             policy=RetryPolicy(max_retries=0)),
                 first, checkpoint_every_batches=2)
        second = SupervisedWorld()  # identically-seeded fresh process
        reports = _run(_supervised(second, tmp_path), second, resume=True,
                       checkpoint_every_batches=2)
        assert losses(reports) == base_losses
        assert_same_weights(second.weights(), base_weights)

    @pytest.mark.parametrize("epoch", range(EPOCHS))
    def test_resume_from_every_epoch_boundary(self, tmp_path, baseline,
                                              epoch):
        base_losses, base_weights = baseline
        first = SupervisedWorld()
        plan = FaultPlan([FaultSpec("enclave-abort", epoch=epoch, batch=0)])
        with pytest.raises(TrainingAborted):
            _run(_supervised(first, tmp_path, fault_plan=plan,
                             policy=RetryPolicy(max_retries=0)), first)
        second = SupervisedWorld()
        reports = _run(_supervised(second, tmp_path), second, resume=True)
        assert losses(reports) == base_losses
        assert_same_weights(second.weights(), base_weights)


class TestFailClosed:
    def test_retry_budget_exhaustion_aborts(self, tmp_path):
        world = SupervisedWorld()
        plan = FaultPlan([FaultSpec("ir-corrupt", epoch=0, batch=1)])
        with pytest.raises(TrainingAborted, match="retry budget"):
            _run(_supervised(world, tmp_path, fault_plan=plan,
                             policy=RetryPolicy(max_retries=0)), world)

    def test_non_fault_exceptions_re_raised(self, tmp_path):
        world = SupervisedWorld()
        resilient = _supervised(world, tmp_path)

        def boom(*args, **kwargs):
            raise ValueError("a bug, not a fault")

        world.trainer.run_epoch = boom
        with pytest.raises(ValueError):
            _run(resilient, world)

    def test_enclave_fault_without_factory_aborts(self, tmp_path):
        world = SupervisedWorld()
        plan = FaultPlan([FaultSpec("enclave-abort", epoch=0, batch=1)])
        resilient = ResilientTrainer(
            world.trainer, CheckpointManager(tmp_path), fault_plan=plan,
        )
        with pytest.raises(TrainingAborted, match="factory"):
            _run(resilient, world)

    def test_rebuilt_enclave_measurement_must_match(self, tmp_path):
        world = SupervisedWorld()
        plan = FaultPlan([FaultSpec("enclave-abort", epoch=0, batch=1)])

        def imposter_factory():
            enclave = world.platform.create_enclave("imposter")
            enclave.init()
            return enclave

        resilient = ResilientTrainer(
            world.trainer, CheckpointManager(tmp_path),
            enclave_factory=imposter_factory, fault_plan=plan,
        )
        with pytest.raises(TrainingAborted, match="MRENCLAVE"):
            _run(resilient, world)

    def test_rebuilt_enclave_is_re_attested(self, tmp_path):
        world = SupervisedWorld()
        service = AttestationService()
        service.register_platform(world.platform.platform_id,
                                  world.platform.platform_key)
        plan = FaultPlan([FaultSpec("enclave-abort", epoch=0, batch=1)])

        def imposter_factory():
            enclave = world.platform.create_enclave("imposter")
            enclave.init()
            return enclave

        resilient = ResilientTrainer(
            world.trainer, CheckpointManager(tmp_path),
            enclave_factory=imposter_factory, attestation_service=service,
            fault_plan=plan,
        )
        with pytest.raises(TrainingAborted, match="re-attestation"):
            _run(resilient, world)

    def test_no_usable_checkpoint_aborts(self, tmp_path):
        world = SupervisedWorld()
        resilient = _supervised(world, tmp_path)
        with pytest.raises(TrainingAborted, match="no usable checkpoint"):
            resilient._restore_latest()

    def test_invalid_checkpoint_interval_rejected(self, tmp_path):
        world = SupervisedWorld()
        with pytest.raises(ConfigurationError):
            _run(_supervised(world, tmp_path), world,
                 checkpoint_every_batches=0)


class TestDegradation:
    def test_epc_streak_halves_then_restores_batch_size(self, tmp_path):
        world = SupervisedWorld()
        plan = FaultPlan([FaultSpec("epc-pressure", epoch=1, batch=2)])
        policy = RetryPolicy(degrade_after_epc_faults=1, min_batch_size=8,
                             restore_batch_size_after=1)
        resilient = _supervised(world, tmp_path, fault_plan=plan,
                                policy=policy)
        sizes = []
        original_run_epoch = world.trainer.run_epoch

        def spying_run_epoch(*args, **kwargs):
            sizes.append(world.trainer.batch_size)
            return original_run_epoch(*args, **kwargs)

        world.trainer.run_epoch = spying_run_epoch
        reports = _run(resilient, world)
        assert len(reports) == EPOCHS
        assert 8 in sizes  # degraded under EPC pressure
        assert world.trainer.batch_size == 16  # restored once stable
        counters = resilient.telemetry.snapshot()["counters"]
        assert counters["fault_epc"] == 1
        assert counters["batch_size_degradations"] == 1
        assert counters["batch_size_restorations"] == 1
        assert counters["enclave_rebuilds"] == 1

    def test_backoff_advances_simulated_clock(self, tmp_path):
        world = SupervisedWorld()
        plan = FaultPlan([FaultSpec("ir-corrupt", epoch=0, batch=1)])
        before = world.platform.clock.now
        _run(_supervised(world, tmp_path, fault_plan=plan,
                         policy=RetryPolicy(backoff_base_seconds=7.0)),
             world)
        assert world.platform.clock.now >= before + 7.0
