"""Checkpoint manager tests: round-trip fidelity and fail-closed gates."""

import numpy as np
import pytest

from repro.enclave.platform import SgxPlatform
from repro.errors import CheckpointError
from repro.resilience import CheckpointManager, capture_state, restore_state
from repro.utils.rng import RngStream

from tests.resilience.worlds import SupervisedWorld, assert_same_weights


def _trained_world(epochs=1):
    world = SupervisedWorld()
    world.trainer.train(world.train.x, world.train.y, epochs,
                        test_x=world.test.x, test_y=world.test.y)
    return world


def _checkpoint(world, manager, epoch=1):
    state = capture_state(world.trainer, epoch=epoch, batch=0)
    manager.save(state, world.enclave)
    return state


class TestRoundTrip:
    def test_restores_bitwise_identical_state(self, tmp_path):
        world = _trained_world()
        manager = CheckpointManager(tmp_path)
        _checkpoint(world, manager)

        target = SupervisedWorld()  # fresh, untrained twin
        state = manager.load(manager.latest(), target.enclave)
        restore_state(target.trainer, state)

        assert_same_weights(target.weights(), world.weights())
        got_velocity = target.trainer.optimizer.state_dict()["velocity"]
        want_velocity = world.trainer.optimizer.state_dict()["velocity"]
        assert set(got_velocity) == set(want_velocity)
        for key in want_velocity:
            np.testing.assert_array_equal(got_velocity[key],
                                          want_velocity[key])
        assert target.trainer.reports == world.trainer.reports
        assert target.trainer.best_top1 == world.trainer.best_top1
        assert_same_weights(target.trainer.best_weights,
                            world.trainer.best_weights)
        # Both batch generators must continue with identical draws.
        np.testing.assert_array_equal(
            target.trainer.batch_rng.permutation(32),
            world.trainer.batch_rng.permutation(32),
        )
        np.testing.assert_array_equal(
            target.enclave.trusted_rng.generator.random(8),
            world.enclave.trusted_rng.generator.random(8),
        )

    def test_mid_epoch_capture_requires_epoch_start_rng(self, tmp_path):
        world = _trained_world()
        with pytest.raises(CheckpointError):
            capture_state(world.trainer, epoch=1, batch=3)

    def test_latest_prefers_highest_seq(self, tmp_path):
        world = _trained_world()
        manager = CheckpointManager(tmp_path)
        _checkpoint(world, manager, epoch=1)
        _checkpoint(world, manager, epoch=2)
        infos = manager.checkpoints()
        assert [info.seq for info in infos] == [0, 1]
        assert manager.latest().epoch == 2


class TestFailClosed:
    def test_torn_checkpoint_skipped(self, tmp_path):
        world = _trained_world()
        manager = CheckpointManager(tmp_path)
        _checkpoint(world, manager, epoch=1)
        newest = _checkpoint(world, manager, epoch=2)
        del newest
        (manager.latest().path / "manifest.json").unlink()
        assert [info.epoch for info in manager.checkpoints()] == [1]
        assert manager.latest().epoch == 1

    def test_tampered_state_file_skipped(self, tmp_path):
        world = _trained_world()
        manager = CheckpointManager(tmp_path)
        _checkpoint(world, manager)
        state_path = manager.latest().path / "state.npz"
        blob = bytearray(state_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        state_path.write_bytes(bytes(blob))
        assert manager.checkpoints() == []
        assert manager.latest() is None

    def test_mrenclave_mismatch_refuses_to_unseal(self, tmp_path):
        world = _trained_world()
        manager = CheckpointManager(tmp_path)
        _checkpoint(world, manager)
        other = world.platform.create_enclave("imposter")
        other.init()
        with pytest.raises(CheckpointError, match="MRENCLAVE"):
            manager.load(manager.latest(), other)

    def test_foreign_platform_cannot_unseal(self, tmp_path):
        """Same enclave code on a *different* platform: the MRENCLAVE gate
        passes but the sealing key differs, so the unseal must fail."""
        world = _trained_world()
        manager = CheckpointManager(tmp_path)
        _checkpoint(world, manager)
        foreign = SgxPlatform(rng=RngStream(5151, "foreign").child("platform"))
        twin = foreign.create_enclave("train")
        twin.init()
        assert twin.mrenclave == world.enclave.mrenclave
        with pytest.raises(CheckpointError, match="unseal"):
            manager.load(manager.latest(), twin)

    def test_config_digest_mismatch_rejected(self, tmp_path):
        world = _trained_world()
        CheckpointManager(tmp_path, config_digest=b"a" * 32).save(
            capture_state(world.trainer, epoch=1, batch=0), world.enclave
        )
        other = CheckpointManager(tmp_path, config_digest=b"b" * 32)
        with pytest.raises(CheckpointError, match="config digest"):
            other.load(other.latest(), world.enclave)


class TestConfidentiality:
    def test_frontnet_weights_never_plaintext_on_disk(self, tmp_path):
        world = _trained_world()
        manager = CheckpointManager(tmp_path)
        _checkpoint(world, manager)
        partition = world.trainer.partitioned.partition
        front_layers = world.weights()[:partition]
        back_layers = world.weights()[partition:]
        path = manager.latest().path
        on_disk = b"".join(f.read_bytes() for f in sorted(path.iterdir()))
        secret = list(front_layers)
        if world.trainer.best_weights is not None:
            secret += world.trainer.best_weights[:partition]
        for layer in secret:
            for name, arr in layer.items():
                assert arr.tobytes() not in on_disk, (
                    f"front weight {name} stored in plaintext")
        # Sanity: the back half *is* plain, so the probe itself works.
        assert any(arr.tobytes() in on_disk
                   for layer in back_layers for arr in layer.values())


class TestPrune:
    def test_keeps_newest_and_drops_torn(self, tmp_path):
        world = _trained_world()
        manager = CheckpointManager(tmp_path)
        for epoch in range(1, 5):
            _checkpoint(world, manager, epoch=epoch)
        (manager.checkpoints()[0].path / "manifest.json").unlink()  # torn
        removed = manager.prune(keep_last=2)
        assert removed == 2
        assert [info.epoch for info in manager.checkpoints()] == [3, 4]

    def test_keep_last_must_be_positive(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path).prune(keep_last=0)
