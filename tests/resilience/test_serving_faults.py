"""Serving-side fault plan: determinism, one-shot firing, cluster wiring."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience import (SERVING_FAULT_KINDS, ServingFaultPlan,
                              ServingFaultSpec)


class _RecordingCluster:
    """Stands in for a ServingCluster; records injected specs."""

    def __init__(self):
        self.injected = []

    def inject(self, spec):
        self.injected.append(spec)


class TestServingFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            ServingFaultSpec(kind="meteor-strike", at_query=0)

    def test_rejects_negative_schedule(self):
        with pytest.raises(ConfigurationError):
            ServingFaultSpec(kind="replica-crash", at_query=-1)
        with pytest.raises(ConfigurationError):
            ServingFaultSpec(kind="latency-inject", at_query=0, delay_s=-0.1)

    def test_all_kinds_constructible(self):
        for kind in SERVING_FAULT_KINDS:
            assert ServingFaultSpec(kind=kind, at_query=1).kind == kind

    def test_incremental_index_kinds_present(self):
        # The growth-under-load drill depends on these being schedulable.
        assert "growth-storm" in SERVING_FAULT_KINDS
        assert "compaction-crash" in SERVING_FAULT_KINDS

    def test_rejects_non_positive_records(self):
        with pytest.raises(ConfigurationError):
            ServingFaultSpec(kind="growth-storm", at_query=0, records=0)
        with pytest.raises(ConfigurationError):
            ServingFaultSpec(kind="growth-storm", at_query=0, records=-5)
        spec = ServingFaultSpec(kind="growth-storm", at_query=0, records=64)
        assert spec.records == 64
        # records defaults to None (cluster picks its default burst size).
        assert ServingFaultSpec(kind="growth-storm", at_query=0).records is None


class TestServingFaultPlan:
    def test_seeded_plan_is_reproducible(self):
        a = ServingFaultPlan.seeded(seed=7, queries=200, n_faults=4)
        b = ServingFaultPlan.seeded(seed=7, queries=200, n_faults=4)
        specs_a = sorted(
            (s.at_query, s.kind, s.delay_s) for s in a.scheduled())
        specs_b = sorted(
            (s.at_query, s.kind, s.delay_s) for s in b.scheduled())
        assert specs_a == specs_b
        different = ServingFaultPlan.seeded(seed=8, queries=200, n_faults=4)
        assert specs_a != sorted(
            (s.at_query, s.kind, s.delay_s) for s in different.scheduled())

    def test_each_fault_fires_exactly_once(self):
        plan = ServingFaultPlan([
            ServingFaultSpec(kind="replica-crash", at_query=3),
            ServingFaultSpec(kind="latency-inject", at_query=3, delay_s=0.01),
            ServingFaultSpec(kind="replica-hang", at_query=7),
        ])
        cluster = _RecordingCluster()
        assert plan.remaining == 3
        for ordinal in range(10):
            plan.before_query(ordinal, cluster)
        assert plan.remaining == 0
        assert len(plan.fired) == 3
        assert [s.kind for s in cluster.injected] == [
            "replica-crash", "latency-inject", "replica-hang"]
        # Replaying the same ordinals fires nothing twice.
        for ordinal in range(10):
            plan.before_query(ordinal, cluster)
        assert len(cluster.injected) == 3

    def test_seeded_default_kinds_exclude_shared_store_faults(self):
        plan = ServingFaultPlan.seeded(seed=1, queries=50, n_faults=10)
        for spec in plan.scheduled():
            assert spec.kind not in ("store-corrupt", "torn-manifest")

    def test_seeded_validation(self):
        with pytest.raises(ConfigurationError):
            ServingFaultPlan.seeded(seed=0, queries=0)
        with pytest.raises(ConfigurationError):
            ServingFaultPlan.seeded(seed=0, queries=10, kinds=("bogus",))
