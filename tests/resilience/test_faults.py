"""Fault-plan tests: scheduling, determinism, and each injection point."""

import numpy as np
import pytest

from repro.enclave.enclave import EnclaveState
from repro.errors import (CheckpointWriteCrash, ConfigurationError,
                          EnclaveAbort, EpcPressureError,
                          TransferIntegrityError)
from repro.resilience import (FAULT_KINDS, CheckpointManager, FaultPlan,
                              FaultSpec, capture_state)

from tests.resilience.worlds import SupervisedWorld


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("meteor-strike", epoch=0)

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("enclave-abort", epoch=-1)
        with pytest.raises(ConfigurationError):
            FaultSpec("enclave-abort", epoch=0, batch=-1)


class TestSeededPlans:
    def test_same_seed_same_schedule(self):
        first = FaultPlan.seeded(5, epochs=4, batches_per_epoch=6)
        second = FaultPlan.seeded(5, epochs=4, batches_per_epoch=6)
        assert sorted(first._pending) == sorted(second._pending)
        specs = lambda plan: sorted(
            (s.kind, s.epoch, s.batch)
            for group in plan._pending.values() for s in group
        )
        assert specs(first) == specs(second)

    def test_different_seed_different_schedule(self):
        first = FaultPlan.seeded(5, epochs=10, batches_per_epoch=10,
                                 n_faults=5)
        second = FaultPlan.seeded(6, epochs=10, batches_per_epoch=10,
                                  n_faults=5)
        specs = lambda plan: sorted(
            (s.kind, s.epoch, s.batch)
            for group in plan._pending.values() for s in group
        )
        assert specs(first) != specs(second)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.seeded(1, epochs=0, batches_per_epoch=4)
        with pytest.raises(ConfigurationError):
            FaultPlan.seeded(1, epochs=2, batches_per_epoch=4,
                             kinds=["nonsense"])

    def test_kinds_restricted(self):
        plan = FaultPlan.seeded(3, epochs=8, batches_per_epoch=8, n_faults=6,
                                kinds=["epc-pressure"])
        assert all(s.kind == "epc-pressure"
                   for group in plan._pending.values() for s in group)


class TestInjectionPoints:
    def test_enclave_abort_destroys_enclave_and_fires_once(self):
        world = SupervisedWorld()
        plan = FaultPlan([FaultSpec("enclave-abort", epoch=0, batch=1)])
        plan.attach(world.trainer.partitioned)
        plan.before_batch(0, 0)  # not scheduled: no-op
        assert plan.remaining == 1
        with pytest.raises(EnclaveAbort):
            plan.before_batch(0, 1)
        assert world.enclave.state is EnclaveState.DESTROYED
        assert plan.remaining == 0
        assert [s.kind for s in plan.fired] == ["enclave-abort"]
        plan.before_batch(0, 1)  # already fired: no-op

    def test_epc_pressure_raises(self):
        plan = FaultPlan([FaultSpec("epc-pressure", epoch=2, batch=0)])
        with pytest.raises(EpcPressureError):
            plan.before_batch(2, 0)

    @pytest.mark.parametrize("kind", ["ir-corrupt", "delta-corrupt"])
    def test_boundary_corruption_caught_by_transfer_checksums(self, kind):
        world = SupervisedWorld()
        partitioned = world.trainer.partitioned
        plan = FaultPlan([FaultSpec(kind, epoch=0, batch=0)])
        plan.attach(partitioned)
        plan.before_batch(0, 0)  # arms the tap, does not raise
        x = world.train.x[:4]
        with pytest.raises(TransferIntegrityError):
            probs = partitioned.forward(x, training=True)
            if kind == "delta-corrupt":
                delta = np.zeros_like(probs)
                delta[:, 0] = 1.0
                partitioned.backward(delta)

    def test_corruption_fires_once_then_transfers_recover(self):
        world = SupervisedWorld()
        partitioned = world.trainer.partitioned
        plan = FaultPlan([FaultSpec("ir-corrupt", epoch=0, batch=0)])
        plan.attach(partitioned)
        plan.before_batch(0, 0)
        with pytest.raises(TransferIntegrityError):
            partitioned.forward(world.train.x[:4], training=True)
        # Disarmed after one strike: the retry goes through clean.
        partitioned.forward(world.train.x[:4], training=True)

    def test_checkpoint_crash_leaves_torn_directory(self, tmp_path):
        world = SupervisedWorld()
        world.trainer.train(world.train.x, world.train.y, 1)
        plan = FaultPlan([FaultSpec("checkpoint-crash", epoch=0, batch=0)])
        manager = CheckpointManager(tmp_path,
                                    write_fault_hook=plan.on_checkpoint_write)
        plan.before_batch(0, 0)  # arms the crash
        state = capture_state(world.trainer, epoch=1, batch=0)
        with pytest.raises(CheckpointWriteCrash):
            manager.save(state, world.enclave)
        # Torn directory on disk, but not a valid checkpoint.
        assert len(list(tmp_path.iterdir())) == 1
        assert manager.checkpoints() == []
        # The crash fires once; the retry succeeds under a fresh seq.
        path = manager.save(state, world.enclave)
        assert manager.latest() is not None
        assert path.name.startswith("ckpt-000001")
