"""Self-healing serving: the replicated `repro.serving` cluster under fire.

`serving_at_scale.py` drives one engine; this example runs the
production-shaped *availability* story on top of the same promoted
store: N replicated engines behind a router with per-request deadlines,
bounded retry, p99-triggered hedging, per-replica circuit breakers, and
background health checks — then turns a seeded fault storm loose on it:

1. persist a clustered fingerprint corpus into an on-disk
   :class:`LinkageStore` and start a 3-replica :class:`ServingCluster`,
2. run a fault-free burst to baseline throughput and routing behaviour,
3. replay a :class:`ServingFaultPlan` against live traffic — a replica
   crash, a *corrupted index row pinned to an attractor vector* (so the
   wrong answer would actually surface), and injected latency — and
   watch the router evict fail-closed, fail over, and hedge while every
   query keeps getting a correct answer,
4. crash **every** replica at once: the router degrades to the audited
   exact brute-force path over the sealed store rather than returning
   wrong or stale answers,
5. wait for background revival to heal the cluster, then verify the
   hash-chained audit trail of every eviction, failover, hedge, and
   degraded answer.

Run:  python examples/self_healing_serving.py
"""

import tempfile
import time

import numpy as np

from repro.resilience import ServingFaultPlan, ServingFaultSpec
from repro.serving import (ClusterConfig, EngineConfig, LinkageStore,
                           ServingCluster, ShardedAnnIndex)
from repro.utils.rng import RngStream


def brute_top_k(fingerprints, labels, query, label, k):
    rows = np.flatnonzero(labels == label)
    deltas = fingerprints[rows] - query[None, :]
    distances = np.sqrt((deltas * deltas).sum(axis=1))
    order = np.argsort(distances, kind="stable")[:k]
    return [int(rows[i]) for i in order]


def main() -> None:
    rng = RngStream(seed=31, name="self-healing")
    generator = rng.child("data").generator

    # -- 1. corpus, store, cluster -----------------------------------------
    records, dim, num_labels = 30_000, 32, 8
    centers = generator.standard_normal((16, dim)) * 4.0
    assign = generator.integers(0, 16, size=records)
    fingerprints = (centers[assign] + generator.standard_normal(
        (records, dim)) * 0.5).astype(np.float32)
    labels = (assign % num_labels).astype(np.int64)

    path = tempfile.mkdtemp(prefix="caltrain-cluster-")
    store = LinkageStore.create(path)
    for start in range(0, records, 16_384):
        stop = min(start + 16_384, records)
        store.append(fingerprints[start:stop], labels[start:stop].tolist(),
                     [f"participant-{i % 5}" for i in range(start, stop)],
                     [b"h" * 32 for _ in range(start, stop)])

    cluster = ServingCluster(
        store, replicas=3,
        config=ClusterConfig(deadline_s=2.0, hedge_min_s=0.03,
                             health_interval_s=0.25, breaker_reset_s=0.25,
                             stop_timeout_s=0.5),
        engine_config=EngineConfig(workers=2, max_batch=32, queue_depth=128),
        # Brute-force shards: a corrupted row then *surfaces* in answers
        # instead of being pruned by the clustered probe, so the drill
        # exercises per-answer verification rather than only checksums.
        index_factory=lambda s: ShardedAnnIndex(s, shard_threshold=records,
                                                seed=31),
    ).start()
    print(f"cluster: {len(cluster.replicas)} replicas over "
          f"{len(store)} records at {path}")

    qgen = rng.child("queries").fork_generator()
    sample = qgen.integers(0, records, size=400)
    queries = fingerprints[sample] + qgen.standard_normal(
        (400, dim)).astype(np.float32) * 0.1
    query_labels = labels[sample]

    # -- 2. fault-free baseline --------------------------------------------
    started = time.perf_counter()
    results = cluster.query_many(queries[:200], query_labels[:200], k=5)
    elapsed = time.perf_counter() - started
    print(f"baseline: 200 queries in {elapsed * 1e3:.0f}ms "
          f"({200 / elapsed:,.0f} qps), "
          f"{sum(1 for r in results if r.failed_over)} failovers")

    # -- 3. the fault storm against live traffic ---------------------------
    target_label = int(query_labels[210])
    attractor = tuple(float(v) for v in queries[210])
    # A few queries right after the corruption revisit the attractor, so
    # the poisoned row *surfaces* and per-answer verification (not just
    # the background checksum sweep) gets a chance to catch it.
    queries[281:287] = queries[210] + qgen.standard_normal(
        (6, dim)).astype(np.float32) * 0.01
    query_labels[281:287] = target_label
    plan = ServingFaultPlan([
        ServingFaultSpec(kind="replica-crash", at_query=20,
                         replica="replica-0"),
        ServingFaultSpec(kind="index-corrupt", at_query=80,
                         replica="replica-1", label=target_label, row=0,
                         value=attractor),
        ServingFaultSpec(kind="latency-inject", at_query=140,
                         replica="replica-2", delay_s=0.08),
    ])
    print("storm:", ", ".join(
        f"{spec.kind}@{spec.at_query}" for spec in plan.scheduled()))

    ok = wrong = 0
    for i in range(200, 400):
        for spec in plan.before_query(i - 200, cluster):
            print(f"  injected {spec.kind} on {spec.replica} "
                  f"before query {i - 200}")
        result = cluster.query(queries[i], int(query_labels[i]), k=5)
        expected = brute_top_k(fingerprints, labels, queries[i],
                               int(query_labels[i]), k=5)
        if [hit.index for hit in result.hits] == expected:
            ok += 1
        else:
            wrong += 1
    print(f"storm: {ok}/200 correct answers, {wrong} wrong — "
          "every query answered")

    # -- 4. total failure: the audited degraded path -----------------------
    for replica in list(cluster.replicas):
        if replica.healthy:
            cluster.crash_replica(replica.name)
    result = cluster.query(queries[0], int(query_labels[0]), k=5)
    assert result.degraded and result.replica is None
    assert [hit.index for hit in result.hits] == brute_top_k(
        fingerprints, labels, queries[0], int(query_labels[0]), k=5)
    print("all replicas down: answer served degraded "
          "(audited exact brute force over the sealed store), still correct")

    # -- 5. healing + the accountability trail -----------------------------
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        if all(r.healthy for r in cluster.replicas):
            break
        time.sleep(0.1)
    states = {r.name: r.state for r in cluster.replicas}
    print(f"healed: {states}")

    counters = cluster.telemetry.snapshot()["counters"]
    for name in ("queries", "failovers", "hedges_launched", "evictions",
                 "revivals", "verify_failures", "degraded_answers"):
        print(f"  {name:<18} {counters.get(name, 0)}")
    assert cluster.verify_audit_chain()
    evictions = cluster.audit.events("replica-evicted")
    print(f"audit: {len(cluster.audit)} hash-chained routing events, "
          f"chain verified; evictions: "
          f"{[e.details['reason'] for e in evictions]}")

    cluster.stop()


if __name__ == "__main__":
    main()
