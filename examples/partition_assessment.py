"""Partition assessment: choosing how much of the network to protect.

Walks the security/performance trade-off at the heart of CalTrain's
partitioned training (Sections IV-B, VI-B, VI-C):

1. train a model snapshot per epoch inside an enclave;
2. run the IRGenNet/IRValNet KL-divergence assessment on each snapshot to
   find which layers' IRs still reveal the input;
3. pick the optimal partition (smallest safe FrontNet);
4. show what that choice costs, by sweeping the simulated-time overhead of
   different in-enclave workloads (the Fig. 6 curve).

Run:  python examples/partition_assessment.py   (takes a couple minutes)
"""

import numpy as np

from repro.core.assessment import ExposureAssessor, train_validation_oracle
from repro.core.partition import PartitionedNetwork
from repro.core.partitioned_training import ConfidentialTrainer
from repro.data import synthetic_cifar
from repro.enclave.platform import SgxPlatform
from repro.nn.optimizers import Sgd
from repro.nn.zoo import cifar10_18layer
from repro.utils.rng import RngStream

WIDTH = 0.1
EPOCHS = 6


def main() -> None:
    rng = RngStream(seed=5, name="assessment")
    train, test = synthetic_cifar(rng.child("data"), num_train=500,
                                  num_test=150)

    # The IRValNet oracle: an independent well-trained model whose class
    # space includes a background class for contentless images.
    print("training the IRValNet oracle…")
    oracle = train_validation_oracle(train.x, train.y, rng.child("oracle"),
                                     epochs=8, width_scale=0.15,
                                     learning_rate=0.03)

    # Train the 18-layer model inside an enclave, keeping a snapshot per
    # epoch (the semi-trained models of Fig. 5).
    print("training the 18-layer model with per-epoch snapshots…")
    platform = SgxPlatform(rng=rng.child("platform"))
    enclave = platform.create_enclave("training")
    enclave.init()
    net = cifar10_18layer(rng.child("init").generator, width_scale=WIDTH)
    net.set_dropout_rng(enclave.trusted_rng.generator)
    trainer = ConfidentialTrainer(
        PartitionedNetwork(net, 2, enclave), Sgd(0.02, 0.9),
        batch_rng=enclave.trusted_rng.stream.child("batches").generator,
        batch_size=32,
    )
    trainer.train(train.x, train.y, EPOCHS, test_x=test.x, test_y=test.y,
                  keep_snapshots=True)

    # Assess every snapshot.
    assessor = ExposureAssessor(oracle, max_channels_per_layer=4)
    print("\nper-epoch exposure assessment:")
    votes = []
    for epoch, weights in enumerate(trainer.snapshots, start=1):
        snapshot = cifar10_18layer(rng.child("scratch").fork_generator(),
                                   width_scale=WIDTH)
        snapshot.set_weights(weights)
        result = assessor.assess(snapshot, test.x[:2])
        votes.append(result.optimal_partition)
        leaky = [str(l.layer_index + 1) for l in result.layers
                 if l.leaks(result.uniform_baseline)]
        print(f"  epoch {epoch}: delta_mu {result.uniform_baseline:.2f}; "
              f"leaking layers {{{', '.join(leaky)}}}; "
              f"-> enclose first {result.optimal_partition} layers")
    agreed = max(votes)
    print(f"\nparticipants' consensus (most conservative vote): "
          f"first {agreed} layers in the enclave")

    # What does that protection level cost? Sweep the overhead curve.
    print("\nsimulated one-epoch overhead by partition depth:")
    base = None
    for partition in (0, 2, 4, agreed, 14):
        sweep_platform = SgxPlatform(rng=rng.child(f"sweep{partition}"))
        sweep_enclave = sweep_platform.create_enclave("sweep")
        sweep_enclave.init()
        sweep_net = cifar10_18layer(rng.child("sweep-init").fork_generator(),
                                    width_scale=WIDTH)
        partitioned = PartitionedNetwork(sweep_net, partition, sweep_enclave)
        optimizer = Sgd(0.02, 0.9)
        start = sweep_platform.clock.now
        for b in range(4):
            partitioned.train_batch(train.x[b * 32:(b + 1) * 32],
                                    train.y[b * 32:(b + 1) * 32], optimizer)
        elapsed = sweep_platform.clock.now - start
        if base is None:
            base = elapsed
        marker = "  <- chosen partition" if partition == agreed else ""
        print(f"  {partition:>2} layers in enclave: "
              f"{(elapsed / base - 1) * 100:6.2f}% overhead{marker}")


if __name__ == "__main__":
    main()
