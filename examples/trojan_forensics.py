"""Trojan forensics: the paper's Experiment IV as a runnable story.

A face-recognition model is backdoored with the Trojaning Attack (trigger
synthesis by model inversion + retraining on trigger-stamped substitute
data). CalTrain's fingerprinting then identifies, for every runtime
misprediction, the poisoned and mislabeled training instances responsible
and attributes them to the malicious contributor.

Run:  python examples/trojan_forensics.py
"""

import numpy as np
from scipy.spatial.distance import cdist

from repro.attacks import TrojanAttack, inject_mislabeled
from repro.analysis.lle import locally_linear_embedding
from repro.core.fingerprint import Fingerprinter
from repro.core.linkage import LinkageDatabase, instance_digest
from repro.core.query import QueryService
from repro.data import synthetic_faces
from repro.data.batching import iterate_minibatches
from repro.nn.optimizers import Sgd
from repro.nn.zoo import face_recognition_net
from repro.utils.rng import RngStream


def main() -> None:
    rng = RngStream(seed=11, name="forensics")

    # A face-identification task (the VGG-Face stand-in).
    faces = synthetic_faces(rng.child("faces"), num_identities=10,
                            per_identity=48)
    train, test, substitute = faces.split([0.6, 0.2, 0.2],
                                          rng=rng.child("split").generator)

    model = face_recognition_net(num_classes=10,
                                 rng=rng.child("init").generator)
    optimizer = Sgd(0.01, 0.9)
    batch_rng = rng.child("batches").generator
    for _ in range(20):
        for xb, yb in iterate_minibatches(train.x, train.y, 16, rng=batch_rng):
            model.train_batch(xb, yb, optimizer)
    clean_acc = float(np.mean(model.predict(test.x).argmax(1) == test.y))
    print(f"clean face model: top-1 {clean_acc:.2%}")

    # --- The attack ---------------------------------------------------------
    attack = TrojanAttack(model, target_label=0, patch=4,
                          rng=rng.child("attack").generator)
    outcome = attack.run(substitute, test, trigger_iterations=40,
                         retrain_epochs=4, learning_rate=0.01)
    print(f"trojaning attack: success rate "
          f"{attack.attack_success_rate(outcome):.2%}, post-attack clean "
          f"accuracy "
          f"{float(np.mean(outcome.trojaned_model.predict(test.x).argmax(1) == test.y)):.2%}")

    # Mislabeled data inside the target class (the VGG-Face class-0 noise).
    mislabeled = inject_mislabeled(train, target_label=0, count=14,
                                   rng=rng.child("mislabel").generator)

    # --- Fingerprinting stage ------------------------------------------------
    fingerprinter = Fingerprinter(outcome.trojaned_model)
    database = LinkageDatabase()

    def record(dataset, source, kind_key=None):
        fps = fingerprinter.fingerprint(dataset.x)
        kinds = [
            kind_key if kind_key and dataset.flags[kind_key][i] else "normal"
            for i in range(len(dataset))
        ] if kind_key else ["normal"] * len(dataset)
        database.add_batch(
            fps, dataset.y.tolist(), [source] * len(dataset),
            [instance_digest(dataset.x[i]) for i in range(len(dataset))],
            source_indices=list(range(len(dataset))), kinds=kinds,
        )

    record(train, "honest-pool")
    record(outcome.poisoned_train, "malicious-participant", "poisoned")
    record(mislabeled, "malicious-participant", "mislabeled")
    print(f"linkage database: {len(database)} Omega tuples")

    # --- Fig. 7: the embedding picture ---------------------------------------
    f_normal = fingerprinter.fingerprint(train.of_class(0).x)
    f_poison = fingerprinter.fingerprint(outcome.poisoned_train.x)
    f_trojan = fingerprinter.fingerprint(outcome.trojaned_test.x)
    points = np.concatenate([f_normal, f_poison, f_trojan])
    embedding = locally_linear_embedding(points, n_neighbors=8)
    n0, n1 = len(f_normal), len(f_poison)
    overlap = cdist(embedding[n0 + n1:], embedding[n0:n0 + n1]).min(1).mean()
    separation = cdist(embedding[n0 + n1:], embedding[:n0]).min(1).mean()
    print(f"LLE embedding: trojaned-test -> trojaned-train distance "
          f"{overlap:.4f} vs -> normal-train {separation:.4f} "
          "(overlapping clusters, as in the paper's Fig. 7)")

    # --- Fig. 8: the query ----------------------------------------------------
    service = QueryService(database)
    labels, _, fps = fingerprinter.predict_with_fingerprint(
        outcome.trojaned_test.x[:3]
    )
    for qi in range(3):
        print(f"\nmisprediction #{qi} (classified as class {labels[qi]}); "
              "nine closest training instances:")
        for neighbor in service.query(fps[qi], int(labels[qi]), k=9):
            print(f"  #{neighbor.rank}: L2 {neighbor.distance:.3f}  "
                  f"{neighbor.record.kind:<10} from {neighbor.record.source}")

    # Aggregate attribution across all trojaned mispredictions.
    all_labels, _, all_fps = fingerprinter.predict_with_fingerprint(
        outcome.trojaned_test.x
    )
    counts = {}
    for i in range(len(all_fps)):
        for neighbor in service.query(all_fps[i], int(all_labels[i]), k=9):
            counts[neighbor.record.source] = counts.get(neighbor.record.source, 0) + 1
    print(f"\nsource attribution over all mispredictions: {counts}")
    print("=> the malicious participant is identified; its suspicious "
          "instances can now be demanded and hash-verified against H.")


if __name__ == "__main__":
    main()
