"""Fault-tolerant confidential training: checkpoint, crash, resume.

Demonstrates the `repro.resilience` runtime end to end:

1. train a CalTrain deployment under a chaos schedule — an enclave abort
   mid-epoch, a corrupted boundary tensor, and a crash in the middle of a
   checkpoint write — and watch the supervisor recover from every one;
2. kill a second run outright (retry budget zero), then resume it in a
   *fresh* CalTrain instance from the sealed on-disk checkpoints;
3. verify the headline guarantee: both recovered runs finish with weights
   and loss history **bitwise identical** to an uninterrupted baseline,
   while the FrontNet never touches disk in plaintext and the audit chain
   carries the whole fault/recovery story.

Run:  python examples/resilient_training.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import CalTrain, CalTrainConfig
from repro.data import synthetic_cifar
from repro.errors import TrainingAborted
from repro.federation import TrainingParticipant
from repro.nn.zoo import tiny_testnet
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy
from repro.utils.rng import RngStream

NUM_CLASSES = 4
SHAPE = (8, 8, 3)


def make_world():
    """A reproducible deployment: same seed, same everything."""
    config = CalTrainConfig(
        seed=7, epochs=3, batch_size=16, partition=1, augment=True,
        network_factory=lambda gen: tiny_testnet(
            gen, input_shape=SHAPE, num_classes=NUM_CLASSES),
    )
    rng = RngStream(99, "resilient-example")
    train, test = synthetic_cifar(rng.child("data"), num_train=96,
                                  num_test=32, num_classes=NUM_CLASSES,
                                  shape=SHAPE)
    system = CalTrain(config)
    participant = TrainingParticipant("hospital-0", train, rng.child("p0"))
    system.register_participant(participant)
    system.submit_data(participant)
    return system, test


def weights_equal(a, b) -> bool:
    return all(
        np.array_equal(la[k], lb[k])
        for la, lb in zip(a, b) for k in la
    )


def main() -> None:
    print("=== baseline: uninterrupted training ===")
    base, test = make_world()
    base_reports = base.train(test_x=test.x, test_y=test.y)
    base_weights = base.model.get_weights()
    for r in base_reports:
        print(f"  epoch {r.epoch}: loss {r.mean_loss:.4f} top-1 {r.top1:.2%}")

    print("\n=== chaos run: abort + corruption + torn checkpoint ===")
    chaos_dir = tempfile.mkdtemp(prefix="caltrain-chaos-")
    plan = FaultPlan([
        FaultSpec("enclave-abort", epoch=1, batch=3),
        FaultSpec("ir-corrupt", epoch=2, batch=1),
        FaultSpec("checkpoint-crash", epoch=0, batch=1),
    ])
    chaos, test = make_world()
    chaos_reports = chaos.train(test_x=test.x, test_y=test.y,
                                checkpoint_dir=chaos_dir,
                                checkpoint_every_batches=2, fault_plan=plan)
    print(chaos.run_telemetry.render())
    assert [r.mean_loss for r in chaos_reports] == \
        [r.mean_loss for r in base_reports]
    assert weights_equal(chaos.model.get_weights(), base_weights)
    print("  -> survived all 3 faults, bitwise identical to baseline")

    print("\n=== kill & resume across processes ===")
    resume_dir = tempfile.mkdtemp(prefix="caltrain-resume-")
    doomed, test = make_world()
    try:
        doomed.train(test_x=test.x, test_y=test.y,
                     checkpoint_dir=resume_dir, checkpoint_every_batches=2,
                     fault_plan=FaultPlan(
                         [FaultSpec("enclave-abort", epoch=2, batch=0)]),
                     retry_policy=RetryPolicy(max_retries=0))
    except TrainingAborted as exc:
        print(f"  run killed: {exc}")

    sealed = sorted(Path(resume_dir).glob("ckpt-*/frontnet.sealed"))
    print(f"  {len(sealed)} sealed checkpoints on disk "
          f"(FrontNet bytes never plaintext)")

    revived, test = make_world()  # a brand-new process would do the same
    revived_reports = revived.train(test_x=test.x, test_y=test.y,
                                    checkpoint_dir=resume_dir, resume=True)
    assert [r.mean_loss for r in revived_reports] == \
        [r.mean_loss for r in base_reports]
    assert weights_equal(revived.model.get_weights(), base_weights)
    kinds = [event.kind for event in revived.audit_log.events()]
    assert "training-resumed" in kinds and revived.audit_log.verify_chain()
    print("  -> resumed bitwise identical; audit chain verified "
          f"({len(kinds)} events)")


if __name__ == "__main__":
    main()
