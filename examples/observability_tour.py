"""A tour of the unified observability layer (`repro.observability`).

One shared `MetricsRegistry` + one `Tracer` light up the whole pipeline:

1. train a CalTrain deployment under the resilience runtime and watch
   every layer report into the *same* registry — partition boundary
   traffic, EPC paging, checkpoint I/O, resilience counters;
2. trace the run on the **simulated** platform clock: epochs decompose
   into batches, batches into enclave / boundary-crossing / untrusted
   spans, and the per-kind attribution reproduces the paper's "where
   does a partitioned step spend its time" story (Fig. 6);
3. export the registry as Prometheus text, then parse that text back
   with `parse_prometheus` and check it round-trips — the export is the
   interface a real scrape would consume;
4. point the serving plane's telemetry at a registry of its own and show
   the identical adapter surface on the query side.

Run:  python examples/observability_tour.py
"""

import numpy as np

from repro import CalTrain, CalTrainConfig
from repro.data import synthetic_cifar
from repro.federation import TrainingParticipant
from repro.nn.zoo import tiny_testnet
from repro.observability import (MetricsRegistry, Tracer, parse_prometheus)
from repro.serving import ServingTelemetry
from repro.utils.rng import RngStream

NUM_CLASSES = 4
SHAPE = (8, 8, 3)


def make_world():
    config = CalTrainConfig(
        seed=11, epochs=2, batch_size=16, partition=1, augment=True,
        network_factory=lambda gen: tiny_testnet(
            gen, input_shape=SHAPE, num_classes=NUM_CLASSES),
    )
    rng = RngStream(42, "observability-example")
    train, test = synthetic_cifar(rng.child("data"), num_train=96,
                                  num_test=32, num_classes=NUM_CLASSES,
                                  shape=SHAPE)
    system = CalTrain(config)
    participant = TrainingParticipant("clinic-0", train, rng.child("p0"))
    system.register_participant(participant)
    system.submit_data(participant)
    return system, test


def main() -> None:
    import tempfile

    print("=== 1. one registry, every subsystem ===")
    system, test = make_world()
    tracer = Tracer(clock=lambda: system.platform.clock.now)
    with tempfile.TemporaryDirectory(prefix="caltrain-obs-") as ckpt:
        system.train(test_x=test.x, test_y=test.y, checkpoint_dir=ckpt,
                     tracer=tracer)
    snapshot = system.metrics.snapshot()
    print(f"  {len(snapshot['counters'])} counters, "
          f"{len(snapshot['gauges'])} gauges, "
          f"{len(snapshot['histograms'])} histograms in one registry")
    for name in sorted(snapshot["counters"]):
        print(f"    {name:<44} {snapshot['counters'][name]}")
    assert snapshot["counters"]["repro_partition_ir_bytes_total"] > 0
    assert snapshot["counters"]["repro_checkpoint_writes_total"] >= 2
    assert snapshot["gauges"]["repro_epc_resident_bytes"] > 0

    print("\n=== 2. the simulated-clock trace ===")
    totals = tracer.kind_totals()
    traced = sum(totals.values())
    print(f"  {len(tracer.roots)} epoch spans, "
          f"{traced:.4f} simulated seconds traced")
    for kind, value in sorted(totals.items()):
        if value > 0:
            print(f"    {kind:<20} {value:.4f}s ({value / traced:.1%})")
    # The paper's decomposition: FrontNet (enclave) dominates a low
    # partition point; boundary copies are visible but small.
    assert totals["enclave"] > totals["boundary-crossing"]
    first_batch = tracer.roots[0].children[0]
    assert [c.kind for c in first_batch.children] == [
        "enclave", "boundary-crossing", "untrusted",
        "untrusted", "boundary-crossing", "enclave",
    ]
    print("    span tree: epoch -> batch -> "
          "frontnet / ir-transfer / backnet (asserted)")

    print("\n=== 3. Prometheus export round-trip ===")
    text = system.metrics.render_prometheus()
    parsed = parse_prometheus(text)
    print(f"  exported {len(text.splitlines())} lines, "
          f"parsed {len(parsed)} metric families")
    for name, counter in snapshot["counters"].items():
        assert parsed[name]["samples"][""] == counter, name
    save = parsed["repro_checkpoint_save_seconds"]
    assert save["type"] == "histogram"
    assert save["samples"]["_count"] >= 2
    print("  counter values and histogram counts round-trip exactly")

    print("\n=== 4. the serving side speaks the same language ===")
    registry = MetricsRegistry()
    telemetry = ServingTelemetry(registry=registry)
    generator = np.random.default_rng(0)
    telemetry.count("queries", 128)
    telemetry.count("cache_hits", 32)
    telemetry.count("cache_misses", 96)
    for _ in range(96):
        telemetry.observe("search", float(generator.uniform(1e-4, 3e-3)))
    print(f"  cache hit rate {telemetry.cache_hit_rate:.1%}, "
          f"search p95 {telemetry.stage('search').p95 * 1e3:.3f}ms")
    exported = parse_prometheus(registry.render_prometheus())
    assert exported["repro_serving_queries_total"]["samples"][""] == 128
    print("  repro_serving_* metrics exported from the shared registry")

    print("\nAll observability invariants hold.")


if __name__ == "__main__":
    main()
