"""Collaborative training: CalTrain vs the distributed baselines.

The paper's motivation scenario: hospitals (participants) with private
data want a joint model. This example trains the same task three ways —

1. **CalTrain** — centralized, encrypted data, enclave-partitioned SGD;
   the FrontNet of the released model is encrypted per participant.
2. **Federated Averaging** (McMahan et al.) — the data never move, but a
   poisoned client corrupts the global model *unattributably*.
3. **Distributed selective SGD** (Shokri & Shmatikov) — gradient sharing.

It then demonstrates why CalTrain's accountability matters: the same
BadNets poisoning that silently succeeds under FedAvg is traceable to its
contributor under CalTrain.

Run:  python examples/collaborative_training.py
"""

import numpy as np

from repro import CalTrain, CalTrainConfig
from repro.attacks import BadNetsAttack
from repro.data import synthetic_cifar
from repro.federation import DistributedSelectiveSgd, FedAvgTrainer, TrainingParticipant
from repro.nn.zoo import tiny_testnet
from repro.utils.rng import RngStream

NUM_CLASSES = 4
SHAPE = (8, 8, 3)


def accuracy(model, test) -> float:
    return float(np.mean(model.predict(test.x).argmax(axis=1) == test.y))


def main() -> None:
    rng = RngStream(seed=2026, name="collaborative")
    train, test = synthetic_cifar(rng.child("data"), num_train=400,
                                  num_test=120, num_classes=NUM_CLASSES,
                                  shape=SHAPE)
    shares = train.split([0.25] * 4, rng=rng.child("split").generator)

    # One of the four "hospitals" is compromised: 40% of its share carries
    # a BadNets trigger relabelled to class 0.
    attack = BadNetsAttack(target_label=0, patch=3)
    shares[2] = attack.poison_dataset(shares[2], fraction=0.4,
                                      rng=rng.child("poison").generator)
    stamped_test = attack.stamp_test_set(test)

    factory = lambda: tiny_testnet(rng.child("init").fork_generator(),
                                   input_shape=SHAPE, num_classes=NUM_CLASSES)

    # ---- 1. CalTrain -------------------------------------------------------
    system = CalTrain(CalTrainConfig(
        seed=7, epochs=8, batch_size=16, partition=1, augment=False,
        network_factory=lambda gen: tiny_testnet(gen, input_shape=SHAPE,
                                                 num_classes=NUM_CLASSES),
    ))
    participants = {}
    kinds = {}
    for i, share in enumerate(shares):
        participant = TrainingParticipant(f"hospital-{i}", share,
                                          rng.child(f"h{i}"))
        system.register_participant(participant)
        system.submit_data(participant)
        participants[participant.participant_id] = participant
        flags = share.flags.get("poisoned", np.zeros(len(share), dtype=bool))
        kinds[participant.participant_id] = np.where(flags, "poisoned", "normal")
    system.train()
    caltrain_acc = accuracy(system.model, test)
    backdoor_caltrain = accuracy(system.model, stamped_test)

    # ---- 2. FedAvg ---------------------------------------------------------
    fedavg = FedAvgTrainer(factory, shares, rng.child("fedavg"),
                           batch_size=16, learning_rate=0.02)
    fed_model = fedavg.train(rounds=8)
    fed_acc = accuracy(fed_model, test)
    backdoor_fed = accuracy(fed_model, stamped_test)

    # ---- 3. DSSGD ----------------------------------------------------------
    dssgd = DistributedSelectiveSgd(factory, shares, rng.child("dssgd"),
                                    theta=0.2, batch_size=16,
                                    learning_rate=0.02)
    ds_model = dssgd.train(rounds=8)
    ds_acc = accuracy(ds_model, test)

    print("paradigm comparison (top-1 accuracy / backdoor success):")
    print(f"  CalTrain  : {caltrain_acc:.2%} / backdoor fires {backdoor_caltrain:.2%}")
    print(f"  FedAvg    : {fed_acc:.2%} / backdoor fires {backdoor_fed:.2%}")
    print(f"  DSSGD     : {ds_acc:.2%}")

    # ---- Accountability: only CalTrain can answer "who did this?" ---------
    system.fingerprint_stage(kinds_by_source=kinds)
    investigator = system.investigator()
    mispredicted = stamped_test.subset(range(6))
    result = investigator.investigate(mispredicted.x, participants=participants)
    print("\nCalTrain investigation of the backdoored predictions:")
    print(f"  suspicion per source: {result.source_counts}")
    print(f"  implicated sources:   {result.implicated_sources}")
    db = system.linkage_db
    bad_hits = sum(
        1 for i in result.suspicious_records if db.record(i).kind != "normal"
    )
    print(f"  flagged records that are truly poisoned: "
          f"{bad_hits}/{len(result.suspicious_records)}")
    print("\nFedAvg offers no equivalent: the server only ever saw opaque "
          "weight updates from hospital-2.")

    # ---- Model release: FrontNet encrypted per participant ----------------
    from repro.crypto.aead import AesGcm

    recipient = participants["hospital-0"]
    cipher = AesGcm(recipient.key.material)
    sealed_frontnet = system.partitioned.export_frontnet_encrypted(
        cipher, nonce=b"\x00" * 11 + b"\x01"
    )
    print(f"\nreleased model: FrontNet sealed for hospital-0 "
          f"({len(sealed_frontnet)} bytes, AES-GCM under its provisioned key)")


if __name__ == "__main__":
    main()
