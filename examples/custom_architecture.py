"""Custom architectures: Darknet-style config files in CalTrain.

Shows the workflow a new adopter follows to train their *own* network
confidentially:

1. define the architecture in a Darknet-style config (the same text that
   gets measured into the enclave, so participants attest exactly it);
2. train it through CalTrain with a learning-rate schedule and bottom-up
   FrontNet freezing;
3. compress the released model for edge inference (prune + quantize) and
   check the accountability fingerprints still work on the compressed
   model.

Run:  python examples/custom_architecture.py
"""

import numpy as np

from repro import CalTrain, CalTrainConfig
from repro.data import synthetic_cifar
from repro.federation import TrainingParticipant
from repro.nn.config import network_from_config
from repro.nn.pruning import prune_by_magnitude, sparsity
from repro.nn.quantization import quantize_weights
from repro.utils.rng import RngStream

CUSTOM_CONFIG = """
# A compact VGG-ish block net with batchnorm, defined like a Darknet cfg.
[net]
input = 16,16,3

[conv]
filters = 12
size = 3
stride = 1
activation = leaky

[batchnorm]

[conv]
filters = 12
size = 3
stride = 1

[max]
size = 2
stride = 2

[dropout]
probability = 0.25

[conv]
filters = 24
size = 3
stride = 1

[max]
size = 2
stride = 2

[conv]
filters = 6
size = 1
stride = 1
activation = linear

[avg]
[softmax]
[cost]
"""


def main() -> None:
    rng = RngStream(seed=13, name="custom")
    train, test = synthetic_cifar(rng.child("data"), num_train=360,
                                  num_test=120, num_classes=6,
                                  shape=(16, 16, 3))

    system = CalTrain(CalTrainConfig(
        seed=13, epochs=8, batch_size=16, partition=2, augment=False,
        learning_rate=0.03, freeze_at_epoch=6,
        network_factory=lambda gen: network_from_config(CUSTOM_CONFIG, rng=gen),
    ))
    print("architecture (measured into the enclave):")
    print(system._reference_network.summary())

    for i, share in enumerate(train.split([0.5, 0.5],
                                          rng=rng.child("s").generator)):
        participant = TrainingParticipant(f"org-{i}", share, rng.child(f"o{i}"))
        system.register_participant(participant)
        system.submit_data(participant)

    reports = system.train(test_x=test.x, test_y=test.y)
    for report in reports:
        frozen = "  [frontnet frozen]" if report.frontnet_frozen else ""
        print(f"epoch {report.epoch + 1}: top-1 {report.top1:.2%}{frozen}")

    # Fingerprint before compressing (the linkage DB refers to the model
    # that actually trained).
    database = system.fingerprint_stage()
    print(f"\nlinkage database: {len(database)} records")

    # Compress the released model for edge inference.
    model = system.model
    dense_bytes = sum(a.nbytes for l in model.layers
                      for a in l.params().values())
    acc_dense = float(np.mean(model.predict(test.x).argmax(1) == test.y))
    prune_by_magnitude(model, keep_fraction=0.3)
    quantization = quantize_weights(model, bits=5)
    acc_small = float(np.mean(model.predict(test.x).argmax(1) == test.y))
    print(f"\ncompression: {dense_bytes} B dense -> "
          f"{quantization.quantized_bytes} B "
          f"(sparsity {sparsity(model):.0%}, 5-bit codebooks)")
    print(f"top-1: dense {acc_dense:.2%} -> compressed {acc_small:.2%}")

    # Accountability still works: query the compressed model's predictions
    # against the pre-compression fingerprints.
    service = system.query_service()
    labels, _, fingerprints = system.fingerprinter.predict_with_fingerprint(
        test.x[:1]
    )
    neighbors = service.query(fingerprints[0], int(labels[0]), k=3)
    print(f"\nsample query still answers: nearest distance "
          f"{neighbors[0].distance:.3f} from {neighbors[0].record.source}")


if __name__ == "__main__":
    main()
