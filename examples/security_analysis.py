"""Security analysis: the paper's Section VII attacks, run live.

Trains victims and runs the three training-data inference attacks the
paper analyses, in both the condition where the literature shows them
working and the condition CalTrain creates:

1. **Model Inversion** — recovers class content from a shallow model,
   produces obscure noise against a deep convolutional one.
2. **Input Reconstruction from IRs** — near-perfect with the FrontNet in
   hand, near-chance against a surrogate (the enclave keeps the real one,
   and released models carry an *encrypted* FrontNet).
3. **GAN attack** — fools the released static model with synthetic inputs,
   but without the iterative update channel of distributed training it
   recovers no private content.

Run:  python examples/security_analysis.py
"""

import numpy as np

from repro.attacks.gan_attack import GanAttack
from repro.attacks.inversion import ModelInversionAttack, class_direction_correlation
from repro.attacks.membership import membership_inference_auc
from repro.attacks.reconstruction import InputReconstructionAttack
from repro.data import synthetic_faces
from repro.data.batching import iterate_minibatches
from repro.nn.layers import CostLayer, DenseLayer, FlattenLayer, SoftmaxLayer
from repro.nn.network import Network
from repro.nn.optimizers import Sgd
from repro.nn.zoo import face_recognition_net
from repro.utils.rng import RngStream


def train(net, data, rng, epochs, lr=0.01):
    optimizer = Sgd(lr, 0.9)
    for _ in range(epochs):
        for xb, yb in iterate_minibatches(data.x, data.y, 16, rng=rng):
            net.train_batch(xb, yb, optimizer)
    return net


def main() -> None:
    rng = RngStream(seed=17, name="security")
    faces = synthetic_faces(rng.child("faces"), num_identities=4,
                            per_identity=40)
    global_mean = faces.x.mean(axis=0)
    class_mean = faces.of_class(0).x.mean(axis=0)

    shallow = Network(
        faces.x.shape[1:],
        [FlattenLayer(), DenseLayer(4, activation="linear"),
         SoftmaxLayer(), CostLayer()],
        rng=rng.child("shallow").generator,
    )
    train(shallow, faces, rng.child("sb").generator, epochs=30, lr=0.05)
    deep = face_recognition_net(num_classes=5, rng=rng.child("deep").generator)
    train(deep, faces, rng.child("db").generator, epochs=18)

    print("=== 1. Model Inversion (Fredrikson et al.) ===")
    for name, model in (("shallow softmax-regression", shallow),
                        ("deep convolutional", deep)):
        outcome = ModelInversionAttack(model, 0).invert(iterations=200, lr=0.5)
        corr = class_direction_correlation(outcome.reconstruction,
                                           class_mean, global_mean)
        print(f"  {name}: confidence {outcome.confidence:.2f}, "
              f"class-content correlation {corr:+.3f}")
    print("  => effective on shallow models, obscure on deep ones — the "
          "open problem the paper cites.\n")

    print("=== 2. Input Reconstruction from IRs ===")
    x = faces.x[0]
    ir = deep.forward(x[None], stop=1)
    whitebox = InputReconstructionAttack(deep, 1).reconstruct(
        ir, x, iterations=200, lr=10.0, rng=rng.child("wb").generator)
    surrogate = face_recognition_net(num_classes=5,
                                     rng=rng.child("sur").generator)
    blackbox = InputReconstructionAttack(surrogate, 1).reconstruct(
        ir, x, iterations=200, lr=10.0, rng=rng.child("bb").generator)
    print(f"  with the true FrontNet: input MSE {whitebox.input_mse:.5f}")
    print(f"  with a surrogate:       input MSE {blackbox.input_mse:.5f}")
    print("  => IRs leak only to someone holding the FrontNet — which "
          "exists solely inside the enclave / encrypted in releases.\n")

    print("=== 3. GAN attack (Hitaj et al.) ===")
    gan = GanAttack(deep, target_class=0, rng=rng.child("gan").generator)
    offline = gan.run(rounds=80, batch=16, lr=0.5, online=False,
                      class_mean=class_mean, global_mean=global_mean)
    print(f"  offline (CalTrain): confidence {offline.confidence:.2f}, "
          f"content correlation {offline.class_correlation:+.3f}")
    print("  => high confidence, no content: without distributed training's "
          "iterative updates the generator cannot approach the private "
          "data distribution.\n")

    print("=== 4. Membership Inference (Shokri et al.) ===")
    members = faces.subset(range(48))
    overfit = face_recognition_net(num_classes=5,
                                   rng=rng.child("mi").generator)
    train(overfit, members, rng.child("mib").generator, epochs=40)
    holdout = faces.subset(range(80, 160))
    auc = membership_inference_auc(overfit, members.x, members.y,
                                   holdout.x, holdout.y)
    print(f"  overfit model membership AUC: {auc:.3f}")
    print("  => the attack needs the candidate records themselves, which "
          "CalTrain participants never see for other peers' data.")


if __name__ == "__main__":
    main()
