"""Ingesting encrypted contributions at scale: the full `repro.ingest` plane.

The paper's submission step hands one in-memory encrypted dataset to the
training server. This example runs the production-shaped path instead:

1. contributors provision their data keys into the training enclave over
   attested TLS (no key, no upload — the gateway checks),
2. each contributor *streams* its sealed records in bounded chunks
   through a write-ahead journal (`iter_encrypted_records` never
   materialises the whole dataset),
3. one upload is killed mid-transfer and resumed: the journal reports
   the last acknowledged chunk and the highest spent nonce, the client
   advances its key past it, and the final ledger is byte-identical to
   an uninterrupted upload,
4. tampered and relabelled records are quarantined by the in-enclave
   validation pipeline — never committed, never crashing the pipe,
5. the append-only contribution ledger's manifest digest is sealed to
   the enclave identity, and training consumes the ledger directly.

Run:  python examples/ingestion_at_scale.py
"""

import dataclasses
import tempfile

from repro.data.datasets import synthetic_cifar
from repro.data.encryption import iter_encrypted_records
from repro.enclave.attestation import AttestationService
from repro.enclave.platform import SgxPlatform
from repro.federation.participant import TrainingParticipant
from repro.federation.provisioning import provision_key
from repro.federation.server import TrainingServer
from repro.ingest import (ContributionLedger, GatewayConfig, IngestGateway,
                          ValidationConfig, ValidationPool, chunk_stream)
from repro.utils.rng import RngStream

RECORDS_PER = 160
CHUNK = 32
SHAPE = (8, 8, 3)
CLASSES = 4


def build_world(rng, ledger_path, spool_path):
    platform = SgxPlatform(rng=rng.child("platform"))
    attestation = AttestationService()
    server = TrainingServer(platform, attestation, rng.child("server"))
    server.build_training_enclave("[net]\ninput = 8,8,3\n[softmax]\n[cost]\n")
    ledger = ContributionLedger.create(ledger_path)
    validator = ValidationPool(
        server.enclave,
        ValidationConfig(num_classes=CLASSES, input_shape=SHAPE, workers=2),
        ledger=ledger,
    )
    gateway = IngestGateway(ledger, validator, spool_dir=spool_path,
                            config=GatewayConfig(chunk_records=CHUNK))
    return server, attestation, ledger, validator, gateway


def main() -> None:
    rng = RngStream(seed=31, name="ingest-example")
    ledger_path = tempfile.mkdtemp(prefix="caltrain-ledger-")
    server, attestation, ledger, validator, gateway = build_world(
        rng, ledger_path, ledger_path + ".spool"
    )
    enclave = server.enclave

    # -- 1. attested provisioning (the gate) --------------------------------
    contributors = []
    for i in range(3):
        data, _ = synthetic_cifar(rng.child(f"data-{i}"),
                                  num_train=RECORDS_PER, num_test=1,
                                  num_classes=CLASSES, shape=SHAPE)
        c = TrainingParticipant(f"contributor-{i}", data, rng.child(f"c{i}"))
        provision_key(c, enclave, attestation,
                      expected_mrenclave=enclave.mrenclave)
        contributors.append(c)
    print(f"{len(contributors)} contributors provisioned over attested TLS")

    # -- 2 + 3. a faulted, resumed, streaming upload ------------------------
    victim = contributors[0]
    session = gateway.open_session(victim.participant_id)
    stream = chunk_stream(
        iter_encrypted_records(victim.dataset, victim.key,
                               victim.participant_id),
        CHUNK,
    )
    for seq, chunk in enumerate(stream):
        session.send_chunk(chunk)
        if seq == 1:  # the "crash": client dies, server evicts the slot
            break
    acked = session.acked_records
    gateway.evict_session(victim.participant_id)
    print(f"{victim.participant_id}: crashed after {acked} acked records")

    session = gateway.resume_session(victim.participant_id)
    max_nonce = session.max_nonce()
    victim.key.advance_past(max_nonce)  # never re-spend a journaled nonce
    for chunk in chunk_stream(
        iter_encrypted_records(victim.dataset, victim.key,
                               victim.participant_id,
                               start_index=session.acked_records),
        CHUNK,
    ):
        session.send_chunk(chunk)
    receipt = session.complete()
    print(f"{victim.participant_id}: resumed at chunk {receipt.committed // CHUNK} "
          f"and committed {receipt.committed} records")

    # -- 4. hostile traffic: tampered + relabelled records ------------------
    for attacker in contributors[1:]:
        records = list(iter_encrypted_records(attacker.dataset, attacker.key,
                                              attacker.participant_id))
        bad = records[0]
        records[0] = dataclasses.replace(
            bad, sealed=bytes([bad.sealed[0] ^ 0xFF]) + bad.sealed[1:]
        )
        relabelled = records[1]
        records[1] = dataclasses.replace(
            relabelled, label=(relabelled.label + 1) % CLASSES
        )
        session = gateway.open_session(attacker.participant_id)
        for chunk in chunk_stream(iter(records), CHUNK):
            session.send_chunk(chunk)
        receipt = session.complete()
        print(f"{attacker.participant_id}: committed {receipt.committed}, "
              f"quarantined {receipt.quarantined}")

    print(gateway.telemetry.render())

    # -- 5. the sealing boundary + training from the ledger -----------------
    sealed = ledger.seal_manifest(enclave)
    assert ledger.verify_sealed_manifest(enclave, sealed)
    print(f"ledger manifest digest sealed to MRENCLAVE "
          f"{enclave.mrenclave.hex()[:16]}… and verified")
    assert validator.verify_audit_chain()
    print(f"ingest audit: {len(validator.audit)} hash-chained admission "
          "decisions, chain verified")

    staged = server.from_ledger(ledger)
    summary = server.decrypt_submissions()
    assert summary.rejected_tampered == 0  # quarantine caught them upstream
    print(f"training intake: {staged} ledger records staged, "
          f"{summary.accepted} accepted in-enclave, 0 tampered reached "
          "training")


if __name__ == "__main__":
    main()
