"""Quickstart: the full CalTrain pipeline in ~60 lines.

Three distrusting participants jointly train a classifier without anyone —
including the training-server provider — seeing each other's data, then a
model user traces a runtime prediction back to its most influential
training instances and contributors.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CalTrain, CalTrainConfig
from repro.data import synthetic_cifar
from repro.federation import TrainingParticipant
from repro.nn.zoo import tiny_testnet
from repro.utils.rng import RngStream


def main() -> None:
    rng = RngStream(seed=42, name="quickstart")

    # A small synthetic 4-class image dataset, split across 3 participants.
    train, test = synthetic_cifar(rng.child("data"), num_train=300,
                                  num_test=90, num_classes=4, shape=(8, 8, 3))
    shares = train.split([1 / 3, 1 / 3, 1 / 3], rng=rng.child("split").generator)

    # A CalTrain deployment: SGX platform + training enclave whose
    # measurement covers the agreed network architecture.
    system = CalTrain(CalTrainConfig(
        seed=7, epochs=6, batch_size=16, partition=1, augment=False,
        network_factory=lambda gen: tiny_testnet(gen, input_shape=(8, 8, 3),
                                                 num_classes=4),
    ))
    print(f"training enclave MRENCLAVE: {system.expected_measurement.hex()[:16]}…")

    # Each participant attests the enclave, provisions its key over the
    # attested TLS channel, and submits encrypted training data.
    for i, share in enumerate(shares):
        participant = TrainingParticipant(f"participant-{i}", share,
                                          rng.child(f"p{i}"))
        system.register_participant(participant)
        system.submit_data(participant)

    # Training stage: in-enclave authentication + decryption, then
    # FrontNet/BackNet partitioned SGD.
    reports = system.train(test_x=test.x, test_y=test.y)
    print(f"\naccepted records: {system.decryption_summary.accepted} "
          f"(by source: {system.decryption_summary.accepted_by_source})")
    for report in reports:
        print(f"epoch {report.epoch + 1}: loss {report.mean_loss:.3f}  "
              f"top-1 {report.top1:.2%}  top-2 {report.top2:.2%}  "
              f"(simulated {report.simulated_seconds * 1e3:.1f} ms)")

    # Fingerprinting stage: one Omega = [F, Y, S, H] tuple per instance.
    database = system.fingerprint_stage()
    print(f"\nlinkage database: {len(database)} records, "
          f"fingerprint dimension {database.dimension}")

    # Query stage: trace one test prediction to its closest training data.
    service = system.query_service()
    labels, _, fingerprints = system.fingerprinter.predict_with_fingerprint(
        test.x[:1]
    )
    print(f"\ntest instance predicted as class {labels[0]}; closest training "
          "instances:")
    for neighbor in service.query(fingerprints[0], int(labels[0]), k=5):
        print(f"  #{neighbor.rank}: L2 {neighbor.distance:.3f}  "
              f"source {neighbor.record.source}")

    # Forensics: demand + hash-verify the suspicious instances.
    investigator = system.investigator()
    result = investigator.investigate(test.x[:1],
                                      participants=system.participants)
    verified = sum(result.verified_disclosures.values())
    print(f"\ndisclosed and hash-verified instances: "
          f"{verified}/{len(result.verified_disclosures)}")


if __name__ == "__main__":
    main()
