"""Serving accountability queries at scale: the full `repro.serving` plane.

The paper's query stage answers one misprediction at a time from an
in-memory database. This example runs the production-shaped path instead:

1. persist a clustered fingerprint corpus into an on-disk
   :class:`LinkageStore` (append-only segments, memory-mapped matrices),
2. seal the store's manifest digest to the fingerprinting enclave's
   identity — the attestation boundary between the enclave and the
   out-of-enclave serving plane,
3. build the per-label sharded ANN index (exact mode: provably identical
   top-k to brute force),
4. drive a bursty query workload through the micro-batching engine with
   its LRU cache and bounded-queue backpressure, and
5. verify the hash-chained audit trail the engine kept of every answer.

Run:  python examples/serving_at_scale.py
"""

import tempfile
import time

import numpy as np

from repro.core.linkage import LinkageDatabase, LinkageRecord
from repro.core.query import QueryService
from repro.enclave.platform import SgxPlatform
from repro.errors import QueryRejected
from repro.serving import (EngineConfig, LinkageStore, ServingEngine,
                           ShardedAnnIndex)
from repro.utils.rng import RngStream


def main() -> None:
    rng = RngStream(seed=23, name="serving")
    generator = rng.child("data").generator

    # -- 1. a clustered fingerprint corpus, persisted segment by segment ----
    records, dim, num_labels = 60_000, 32, 10
    centers = generator.standard_normal((num_labels, 8, dim)) * 4.0
    labels = generator.integers(0, num_labels, size=records)
    clusters = generator.integers(0, 8, size=records)
    fingerprints = (
        centers[labels, clusters]
        + generator.standard_normal((records, dim)) * 0.5
    ).astype(np.float32)

    path = tempfile.mkdtemp(prefix="caltrain-serving-")
    store = LinkageStore.create(path)
    for start in range(0, records, 16_384):
        stop = min(start + 16_384, records)
        store.append(fingerprints[start:stop], labels[start:stop].tolist(),
                     [f"participant-{i % 5}" for i in range(start, stop)],
                     [b"h" * 32 for _ in range(start, stop)],
                     source_indices=list(range(start, stop)))
    print(f"store: {len(store)} records / {len(store.segments)} segments "
          f"at {path}")

    # -- 2. the sealing boundary -------------------------------------------
    platform = SgxPlatform(rng=rng.child("platform"))
    enclave = platform.create_enclave("fingerprinting")
    enclave.init()
    sealed_manifest = store.seal_manifest(enclave)
    assert store.verify_sealed_manifest(enclave, sealed_manifest)
    print(f"manifest digest sealed to MRENCLAVE "
          f"{enclave.mrenclave.hex()[:16]}… and verified")

    # -- 3. the sharded ANN index ------------------------------------------
    index = ShardedAnnIndex(store, shard_threshold=2048, seed=23).build()
    stats = index.stats()
    clustered = sum(1 for s in stats["shards"].values()
                    if s["kind"] == "clustered")
    print(f"index: {stats['labels']} shards ({clustered} clustered), "
          f"mode {stats['mode']}")

    # -- 4. bursty traffic through the engine ------------------------------
    num_queries = 1_000
    sample = generator.integers(0, records, size=num_queries)
    queries = fingerprints[sample] + generator.standard_normal(
        (num_queries, dim)).astype(np.float32) * 0.1
    query_labels = labels[sample]

    started = time.perf_counter()
    with ServingEngine(index, EngineConfig(workers=4, max_batch=64,
                                           queue_depth=256)) as engine:
        futures, rejected = [], 0
        for i in range(num_queries):
            while True:
                try:
                    futures.append(
                        engine.submit(queries[i], int(query_labels[i]), k=5)
                    )
                    break
                except QueryRejected:
                    rejected += 1          # typed backpressure, client backs off
                    time.sleep(0.002)
        results = [future.result() for future in futures]
        # The same viral misprediction, queried again: served by the cache.
        for i in range(200):
            engine.query(queries[i], int(query_labels[i]), k=5)
    elapsed = time.perf_counter() - started
    print(f"{num_queries + 200} queries in {elapsed:.2f}s "
          f"({(num_queries + 200) / elapsed:,.0f} qps), "
          f"{rejected} transient rejections")
    print(engine.telemetry.render())

    # -- 5. exactness + the audit trail ------------------------------------
    database = LinkageDatabase()
    for i in range(records):
        database.add(LinkageRecord(fingerprint=fingerprints[i],
                                   label=int(labels[i]),
                                   source=f"participant-{i % 5}",
                                   digest=b"h" * 32, source_index=i))
    brute = QueryService(database, index="brute")
    for i in range(25):
        expected = [n.record_index
                    for n in brute.query(queries[i], int(query_labels[i]), k=5)]
        assert [hit.index for hit in results[i]] == expected
    print("exactness: engine top-5 identical to brute force on 25 samples")

    assert engine.verify_audit_chain()
    print(f"audit: {len(engine.audit)} hash-chained query events, "
          f"chain verified (head {engine.audit.head.hex()[:16]}…)")


if __name__ == "__main__":
    main()
