"""Model accountability end to end: the `repro.governance` control plane.

The paper's accountability claim is that a deployed model's behaviour can
always be traced back to the training data — and the contributors — that
caused it. This example runs that claim as one continuous, *verifiable*
timeline:

1. contributors stream sealed records through the attestation-gated
   ingest plane into an append-only contribution ledger (one record is
   tampered in transit and lands in the quarantine lane),
2. training runs under a bound `GovernanceLog`: intake, train-start,
   checkpoints, and train-complete all chain into one durable timeline,
   keyed by the run's *semantic identity*
   (`run_key = digest(config ⊕ ledger manifest ⊕ code version)`),
3. the `PromotionGate` walks the full lineage — ledger segments,
   checkpoint chain, linkage store, governance log — and signs a
   `PromotionRecord` under a key derived from the enclave identity
   (the untrusted host can read every artifact but cannot mint one),
4. the serving engine refuses to start without a verifying record, and a
   flagged prediction is attributed through the promoted store back to
   the ledger segments and contributors that back it,
5. the tamper drill: ONE byte of a committed ledger segment is flipped
   after promotion, and the same serving engine now fails closed with a
   typed `PromotionError` — the accountability chain is not advisory.

Run:  python examples/accountability_end_to_end.py
"""

import dataclasses
import tempfile
from pathlib import Path

from repro.core.caltrain import CalTrain, CalTrainConfig
from repro.data.datasets import synthetic_cifar
from repro.data.encryption import iter_encrypted_records
from repro.errors import PromotionError
from repro.federation.participant import TrainingParticipant
from repro.governance import Attributor, GovernanceLog, PromotionGate
from repro.ingest import (ContributionLedger, GatewayConfig, IngestGateway,
                          ValidationConfig, ValidationPool, chunk_stream)
from repro.serving import (EngineConfig, LinkageStore, ServingEngine,
                           ShardedAnnIndex)
from repro.utils.rng import RngStream

CONTRIBUTORS = 3
RECORDS_PER = 40
CHUNK = 32
SEED = 11


def ingest_contributions(system, rng, root):
    """Gateway-validated uploads; one record is tampered in transit."""
    ledger = ContributionLedger.create(root / "ledger")
    validator = ValidationPool(
        system.training_enclave,
        ValidationConfig(num_classes=10, input_shape=(28, 28, 3)),
        ledger=ledger,
    )
    gateway = IngestGateway(ledger, validator, spool_dir=root / "spool",
                            config=GatewayConfig(chunk_records=CHUNK))
    for i in range(CONTRIBUTORS):
        data, _ = synthetic_cifar(rng.child(f"data-{i}"),
                                  num_train=RECORDS_PER, num_test=1)
        contributor = TrainingParticipant(f"c{i}", data, rng.child(f"c{i}"))
        system.register_participant(contributor)
        records = list(iter_encrypted_records(
            contributor.dataset, contributor.key,
            contributor.participant_id,
        ))
        if i == 0:  # a man-in-the-middle flips one ciphertext byte
            victim = records[0]
            records[0] = dataclasses.replace(
                victim,
                sealed=bytes([victim.sealed[0] ^ 0xFF]) + victim.sealed[1:],
            )
        session = gateway.open_session(contributor.participant_id)
        for chunk in chunk_stream(iter(records), CHUNK):
            session.send_chunk(chunk)
        receipt = session.complete()
        print(f"  {contributor.participant_id}: committed "
              f"{receipt.committed}, quarantined {receipt.quarantined}")
    return ledger


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="caltrain-accountability-"))
    rng = RngStream(seed=SEED, name="accountability-example")
    system = CalTrain(CalTrainConfig(
        seed=SEED, architecture="cifar10-10layer", width_scale=0.1,
        epochs=2, partition=2, augment=False,
    ))

    print("== 1. ingest: sealed contributions into the ledger ==")
    ledger = ingest_contributions(system, rng, root)

    print("\n== 2. governed training under a semantic run identity ==")
    log = GovernanceLog.create(root / "governance")
    system.bind_governance(log)
    staged = system.intake_ledger(ledger)
    _, test = synthetic_cifar(rng.child("test"), num_train=1, num_test=40)
    reports = system.train(test_x=test.x, test_y=test.y,
                           checkpoint_dir=root / "checkpoints")
    print(f"  staged {staged} ledger records; trained {len(reports)} epochs")
    print(f"  run key: {system.run_key}")
    for event in log.events():
        print(f"  governance[{event['seq']}] {event['kind']}")

    print("\n== 3. promotion: the fail-closed lineage walk ==")
    store = LinkageStore.from_database(root / "store",
                                       system.fingerprint_stage())
    gate = PromotionGate(
        system.training_enclave, log, ledger=ledger,
        checkpoints=system.checkpoint_manager, store=store,
        telemetry=system.governance_telemetry,
    )
    record = gate.promote(system.run_key,
                          config_digest=system.config_digest)
    print(f"  signed promotion record: ledger {record.ledger_digest[:12]}… "
          f"store {record.store_digest[:12]}… "
          f"checkpoint {record.checkpoint_digest[:12]}…")

    print("\n== 4. promoted serving + contributor attribution ==")
    index = ShardedAnnIndex(store, shard_threshold=1024, seed=SEED).build()
    with ServingEngine(index, EngineConfig(workers=2), promotion=record,
                       promotion_verifier=gate.serving_verifier()) as engine:
        attributor = Attributor(engine, store, ledger, log, gate=gate,
                                promotion=record,
                                telemetry=system.governance_telemetry)
        # A model user flags a prediction; its fingerprint comes from the
        # trained model's fingerprint layer.
        labels, _, fingerprints = system.fingerprinter.predict_with_fingerprint(
            test.x[:1]
        )
        report = attributor.attribute(fingerprints[0], int(labels[0]))
        print(f"  report {report.report_digest[:16]}… implicates "
              f"{', '.join(report.implicated)}")
        for hit in report.hits[:3]:
            print(f"    hit: store #{hit['store_index']} → "
                  f"{hit['ledger']['segment']} "
                  f"({hit['ledger']['lane']}) of {hit['source']}")

    print("\n== 5. the tamper drill: one byte, after promotion ==")
    victim = sorted(root.glob("ledger/segment-*.bin"))[0]
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0x01
    victim.write_bytes(bytes(blob))
    print(f"  flipped one bit of {victim.name}")
    try:
        ServingEngine(index, EngineConfig(workers=2), promotion=record,
                      promotion_verifier=gate.serving_verifier()).start()
    except PromotionError as exc:
        print(f"  serving REFUSED (fail-closed): {exc}")
    else:
        raise SystemExit("tamper went undetected — the gate failed open")

    log.verify()
    print(f"\ngovernance timeline: {len(log)} events, chain verified "
          f"(head {log.head.hex()[:16]}…)")
    print(system.governance_telemetry.render())


if __name__ == "__main__":
    main()
