"""Multi-enclave data-parallel training with secure aggregation.

Demonstrates the `repro.distributed` subsystem end to end:

1. a CalTrain deployment shards three hospitals' encrypted submissions
   across **four** enclave workers — each its own SGX platform and
   training enclave, all carrying the agreed MRENCLAVE;
2. every round, each worker trains one local epoch on its shard, then
   ships its shard-weighted FrontNet delta — pairwise-masked — over an
   attested TLS channel into the aggregator enclave; the untrusted
   coordinator only ever relays opaque records;
3. one worker is deliberately made a straggler: the round's deadline cuts
   it out, its orphaned masks are reconstructed from the Shamir shares
   the cohort escrowed, and the round completes by partial aggregation;
4. the aggregator enclave's hash-chained audit trail records exactly who
   contributed to every round's model update — the paper's
   accountability story, extended to the aggregation plane.

Run:  python examples/distributed_training.py
"""

import tempfile

from repro import CalTrain, CalTrainConfig
from repro.data import synthetic_cifar
from repro.distributed import WorkerInjection
from repro.federation import TrainingParticipant
from repro.nn.zoo import tiny_testnet
from repro.utils.rng import RngStream

NUM_CLASSES = 4
SHAPE = (8, 8, 3)
WORKERS = 4
ROUNDS = 3


def make_world():
    config = CalTrainConfig(
        seed=7, epochs=ROUNDS, batch_size=16, partition=1, augment=False,
        network_factory=lambda gen: tiny_testnet(
            gen, input_shape=SHAPE, num_classes=NUM_CLASSES),
    )
    rng = RngStream(99, "distributed-example")
    train, test = synthetic_cifar(rng.child("data"), num_train=128,
                                  num_test=32, num_classes=NUM_CLASSES,
                                  shape=SHAPE)
    system = CalTrain(config)
    for i, share in enumerate(
            train.split([1 / 3] * 3, rng=rng.child("split").generator)):
        hospital = TrainingParticipant(f"hospital-{i}", share,
                                       rng.child(f"p{i}"))
        system.register_participant(hospital)
        system.submit_data(hospital)
    return system, test


def main() -> None:
    system, test = make_world()
    print("=== distributed CalTrain: 4 enclave workers, 1 straggler ===\n")
    print(f"training-enclave MRENCLAVE  {system.expected_measurement.hex()}")

    reports = system.train(
        test_x=test.x, test_y=test.y,
        workers=WORKERS,
        checkpoint_dir=tempfile.mkdtemp(prefix="distributed-example-"),
        # Round 1: worker w2's local epoch runs 6x too long. The deadline
        # drops it; its masks are rebuilt from the escrowed shares.
        injections=(WorkerInjection("straggle", "w2", 1, factor=6.0),),
    )

    coordinator = system.coordinator
    print(f"aggregator-enclave MRENCLAVE {coordinator.aggregator.mrenclave.hex()}")
    print("shards: " + "  ".join(
        f"{w.worker_id}={w.examples}" for w in coordinator.workers))
    print()
    for round_report in coordinator.reports:
        tags = ""
        if round_report.stragglers:
            tags = (f"  <- {','.join(round_report.stragglers)} straggled "
                    f"(deadline {round_report.deadline_seconds * 1e3:.2f}ms), "
                    f"{round_report.recovered_masks} mask(s) reconstructed")
        print(f"round {round_report.round}: loss {round_report.mean_loss:.4f}  "
              f"{len(round_report.participating)}/{WORKERS} workers aggregated"
              f"{tags}")
    final = reports[-1]
    print(f"\nfinal accuracy: top-1 {final.top1:.2%}  top-2 {final.top2:.2%}")

    print("\n=== aggregation audit trail (hash-chained, tamper-evident) ===\n")
    ok = coordinator.audit.verify_chain()
    for event in coordinator.audit.events("aggregation"):
        d = event.details
        print(f"round {d['round']}: participants {','.join(d['participants'])}"
              f"  dropped {','.join(d['dropped']) or '-'}"
              f"  weight_total {d['weight_total']:.0f}"
              f"  update digest {d['digest'][:16]}…")
    print(f"\nchain verification: {'VERIFIED' if ok else 'BROKEN'}")

    print("\n=== what the untrusted coordinator saw ===\n")
    print("masked uploads only — each one differs from the worker's real")
    print("update by a pairwise mask that never leaves enclave memory:")
    print(system.distributed_telemetry.render())


if __name__ == "__main__":
    main()
