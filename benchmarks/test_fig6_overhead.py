"""Fig. 6 — training overhead vs. number of in-enclave conv layers.

Paper claim (Table-II net): enclosing more convolutional layers in the
enclave raises one-epoch training time monotonically, from ~6% overhead
with two conv layers to ~22% with all ten, because enclave code loses
floating-point acceleration; exceeding the EPC adds a paging cliff.

The bench replays the same sweep on the simulated-time cost model: for
each partition that encloses 0, 2, 3, ..., 10 conv layers it runs the same
training batches and reads the simulated clock.
"""

import numpy as np
import pytest

from repro.analysis.reporting import render_overhead_series
from repro.core.partition import PartitionedNetwork
from repro.enclave.platform import SgxPlatform
from repro.nn.optimizers import Sgd
from repro.nn.zoo import cifar10_18layer

W18 = 0.10  # must match benchmarks/conftest.py

#: Conv-layer counts from the paper's x-axis mapped to partition indices
#: (layer list positions) in the Table-II network.
CONV_COUNT_TO_PARTITION = {
    0: 0,
    2: 2,    # conv1-2
    3: 4,    # conv1-3 + max (the IR leaves after the pool)
    4: 6,    # + conv6
    5: 7,
    6: 8,
    7: 10,   # + max + dropout
    8: 11,
    9: 12,
    10: 14,  # all ten conv layers (conv15 is the 1x1 head... see note)
}
# Note: the paper counts ten *weighted* conv layers; partition index 14
# encloses conv layers 1-13 plus dropout, i.e. nine 3x3 convs; the tenth
# (the 1x1 class head at layer 15) cannot be enclosed past the penultimate
# boundary together with avg/softmax, so 14 is the deepest trainable split.


def _epoch_seconds(bench_rng, cifar, partition, batches=4):
    train, _ = cifar
    platform = SgxPlatform(rng=bench_rng.child(f"f6-{partition}"))
    enclave = platform.create_enclave("training")
    enclave.init()
    net = cifar10_18layer(bench_rng.child("f6-init").fork_generator(),
                          width_scale=W18)
    net.set_dropout_rng(enclave.trusted_rng.generator)
    partitioned = PartitionedNetwork(net, partition, enclave)
    optimizer = Sgd(0.02, 0.9)
    start = platform.clock.now
    for b in range(batches):
        xb = train.x[b * 32 : (b + 1) * 32]
        yb = train.y[b * 32 : (b + 1) * 32]
        partitioned.train_batch(xb, yb, optimizer)
    return platform.clock.now - start


def test_fig6(bench_rng, cifar, benchmark):
    seconds = {
        conv_layers: _epoch_seconds(bench_rng, cifar, partition)
        for conv_layers, partition in CONV_COUNT_TO_PARTITION.items()
    }
    base = seconds[0]
    overheads = [
        (conv_layers, seconds[conv_layers] / base - 1.0)
        for conv_layers in sorted(seconds) if conv_layers > 0
    ]

    print("\nFig. 6 - Normalized performance overhead")
    print(render_overhead_series(overheads))

    values = [o for _, o in overheads]
    # Shape claim 1: overhead increases with the number of enclosed conv
    # layers (allowing sub-2% dips where a pooling layer shrinks the IR
    # payload that crosses the boundary).
    assert all(b >= a - 0.02 for a, b in zip(values, values[1:]))
    # Shape claim 2: the range matches the paper's order of magnitude
    # (single-digit % at 2 conv layers, tens of % with everything inside).
    assert 0.005 < values[0] < 0.15
    assert 0.10 < values[-1] < 0.40
    # Shape claim 3: the deepest split costs several times the shallowest.
    assert values[-1] > 2.0 * values[0]

    # Benchmark kernel: a single partitioned training batch at the
    # paper's operating point (optimal partition from Experiment II).
    train, _ = cifar
    platform = SgxPlatform(rng=bench_rng.child("f6-bench"))
    enclave = platform.create_enclave("bench")
    enclave.init()
    net = cifar10_18layer(bench_rng.child("f6-bench-init").fork_generator(),
                          width_scale=W18)
    partitioned = PartitionedNetwork(net, 4, enclave)
    optimizer = Sgd(0.02, 0.9)
    benchmark(partitioned.train_batch, train.x[:32], train.y[:32], optimizer)


def test_fig6_paging_cliff(bench_rng, cifar, benchmark):
    """Companion sweep: the EPC limit. Shrinking the EPC below the
    FrontNet working set triggers paging and a sharp slowdown — the
    second performance limiter the paper describes (Section IV-B)."""
    train, _ = cifar

    def seconds_with_epc(epc_bytes):
        platform = SgxPlatform(rng=bench_rng.child(f"f6p-{epc_bytes}"),
                               epc_bytes=epc_bytes)
        enclave = platform.create_enclave("training")
        enclave.init()
        net = cifar10_18layer(bench_rng.child("f6p-init").fork_generator(),
                              width_scale=W18)
        partitioned = PartitionedNetwork(net, 10, enclave)
        optimizer = Sgd(0.02, 0.9)
        start = platform.clock.now
        partitioned.train_batch(train.x[:32], train.y[:32], optimizer)
        return platform.clock.now - start, enclave.epc.page_faults

    ample, faults_ample = seconds_with_epc(93 * 1024 * 1024)
    tiny, faults_tiny = seconds_with_epc(256 * 1024)
    print(f"\nEPC cliff: ample EPC {ample * 1e3:.3f}ms ({faults_ample} faults) "
          f"vs 256KB EPC {tiny * 1e3:.3f}ms ({faults_tiny} faults)")
    assert faults_ample == 0 and faults_tiny > 0
    assert tiny > 1.5 * ample

    benchmark.pedantic(seconds_with_epc, args=(256 * 1024,), rounds=1,
                       iterations=1)
