"""Fig. 4 — prediction accuracy, 18-layer CIFAR net, CalTrain vs plain.

Paper claim: same as Fig. 3 for the deeper Table-II network (83% / 93% at
paper scale, converging around epoch 5); CalTrain again costs nothing.
"""

import numpy as np

from repro.analysis.reporting import render_epoch_series


def test_fig4(fig4_runs, cifar, benchmark):
    plain = fig4_runs["plain"].reports
    enclave = fig4_runs["enclave"].reports

    print("\n" + render_epoch_series(
        "Fig. 4 - Prediction accuracy, CIFAR 18-layer",
        {
            "cifar_18L_top1": [r.top1 for r in plain],
            "cifar_18L_top2": [r.top2 for r in plain],
            "cifar_enclave_18L_top1": [r.top1 for r in enclave],
            "cifar_enclave_18L_top2": [r.top2 for r in enclave],
        },
    ))

    assert plain[-1].top1 > 0.4
    assert enclave[-1].top1 > 0.4
    assert abs(plain[-1].top1 - enclave[-1].top1) < 0.15
    assert abs(plain[-1].top2 - enclave[-1].top2) < 0.15
    assert all(r.top2 >= r.top1 for r in enclave)
    assert np.mean([r.top1 for r in enclave[-3:]]) > enclave[0].top1

    train, _ = cifar
    trainer = fig4_runs["enclave"]
    xb, yb = train.x[:32], train.y[:32]
    benchmark(trainer.partitioned.train_batch, xb, yb, trainer.optimizer)
