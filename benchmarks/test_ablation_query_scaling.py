"""Ablation A8 — query-stage scalability.

The paper's query stage (implemented with SciPy) must serve one
misprediction query against all same-class training fingerprints. At
VGG-Face scale that is ~2.6M fingerprints of 2622 dims. This bench
measures how brute-force and k-d-tree answers scale with database size,
checks they agree exactly, and benchmarks the operating point.
"""

import time

import numpy as np

from repro.core.linkage import LinkageDatabase, LinkageRecord
from repro.core.query import QueryService


def _database(rng, size, dim=64, labels=10):
    generator = rng.fork_generator()
    db = LinkageDatabase()
    fingerprints = generator.standard_normal((size, dim)).astype(np.float32)
    for i in range(size):
        db.add(LinkageRecord(
            fingerprint=fingerprints[i], label=i % labels,
            source=f"p{i % 4}", digest=b"h" * 32, source_index=i,
        ))
    return db


def _timed_queries(service, queries, label, k=9, repeats=3):
    start = time.perf_counter()
    for _ in range(repeats):
        for q in queries:
            service.query(q, label, k=k)
    return (time.perf_counter() - start) / (repeats * len(queries))


def test_query_scaling(bench_rng, benchmark):
    rng = bench_rng.child("a8")
    generator = rng.fork_generator()
    queries = [generator.standard_normal(64).astype(np.float32)
               for _ in range(5)]

    print("\nA8 - query latency vs database size (per query, label-scoped)")
    print(f"{'records':>9} {'brute (ms)':>12} {'kdtree (ms)':>12}")
    agreement_checked = False
    for size in (1_000, 4_000, 16_000):
        db = _database(rng.child(f"db{size}"), size)
        brute = QueryService(db, index="brute")
        tree = QueryService(db, index="kdtree")
        t_brute = _timed_queries(brute, queries, label=0) * 1e3
        # Build the tree once outside the timing (amortized in practice).
        tree.query(queries[0], 0, k=1)
        t_tree = _timed_queries(tree, queries, label=0) * 1e3
        print(f"{size:>9} {t_brute:>12.3f} {t_tree:>12.3f}")
        if not agreement_checked:
            for q in queries:
                a = brute.query(q, 0, k=9)
                b = tree.query(q, 0, k=9)
                assert [n.record_index for n in a] == [n.record_index for n in b]
            agreement_checked = True

    # Claim: both indexes answer sub-second at 16k records — query cost is
    # no obstacle to the paper's on-demand forensics model.
    assert t_brute < 1000 and t_tree < 1000

    db = _database(rng.child("bench-db"), 16_000)
    service = QueryService(db, index="kdtree")
    service.query(queries[0], 0, k=1)  # warm the tree
    benchmark(service.query, queries[0], 0, 9)
