"""Fig. 5 — KL-divergence exposure analysis per layer, per training epoch.

Paper claim (for the 18-layer net): across all twelve semi-trained models,
the minimum KL divergence of IR images against the original input is near
zero for the shallow layers (their IRs still reveal the input), then rises
to or above the uniform-distribution baseline ``delta_mu`` for deeper
layers — so a fixed prefix of layers must stay inside the enclave, and the
per-epoch re-assessment lets participants adjust the partition.

Measured result: with the texture-frequency synthetic classes and the
background-class oracle, the crossover lands at layer 4 (the first max
pool) in most epochs — the same partition the paper chooses — drifting to
6 in a few mid-training epochs (which is exactly what the dynamic
re-assessment exists to catch; see the A1 ablation). The bench asserts the
robust shape: shallow layers leak every epoch, the deepest layers are
safe, a non-trivial stable partition exists. See EXPERIMENTS.md.
"""

import numpy as np

from repro.analysis.reporting import render_kl_figure
from repro.core.assessment import ExposureAssessor
from repro.nn.zoo import cifar10_18layer

W18 = 0.10  # must match benchmarks/conftest.py


def test_fig5(fig4_runs, oracle, cifar, bench_rng, benchmark):
    _, test = cifar
    snapshots = fig4_runs["enclave"].snapshots
    assert len(snapshots) == 12  # one semi-trained model per epoch

    assessor = ExposureAssessor(oracle, max_channels_per_layer=4)
    inputs = test.x[:3]

    results = []
    for weights in snapshots:
        model = cifar10_18layer(bench_rng.child("f5-model").fork_generator(),
                                width_scale=W18)
        model.set_weights(weights)
        results.append(assessor.assess(model, inputs))

    print("\nFig. 5 - KL divergence of IRs per layer, per epoch")
    print(render_kl_figure(
        per_epoch_ranges=[r.layer_ranges() for r in results],
        uniform_baselines=[r.uniform_baseline for r in results],
        chosen_layers=[r.optimal_partition for r in results],
    ))

    for epoch, result in enumerate(results, start=1):
        baseline = result.uniform_baseline
        # Shape claim 1: the first conv layer's IRs leak in every epoch.
        assert result.layers[0].kl_min < baseline, f"epoch {epoch}"
        # Shape claim 2: the deepest assessed layers are safe — their
        # minimum KL reaches the uniform baseline.
        deep = result.layers[-2:]
        assert any(not l.leaks(baseline) for l in deep), f"epoch {epoch}"
        # Shape claim 3: a non-trivial partition exists (more than one
        # layer must be protected, but not everything).
        assert 2 <= result.optimal_partition <= len(result.layers)

    # Shape claim 4: from mid-training on, the chosen partition stabilises
    # (the paper picks one optimal layer for the whole architecture).
    late = [r.optimal_partition for r in results[len(results) // 2 :]]
    assert max(late) - min(late) <= 4

    # Benchmark kernel: one full assessment of a semi-trained model.
    model = cifar10_18layer(bench_rng.child("f5-bench").fork_generator(),
                            width_scale=W18)
    model.set_weights(snapshots[-1])
    benchmark.pedantic(
        assessor.assess, args=(model, inputs[:1]), rounds=1, iterations=1
    )
