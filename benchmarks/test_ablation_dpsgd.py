"""Ablation A6 — DP-SGD inside CalTrain (Section VII).

Paper sketch: CalTrain is transparent to the training algorithm and can
swap SGD for DP-SGD (Abadi et al.) to blunt model-inversion and membership
attacks. This bench sweeps the noise multiplier with *per-example-clipped*
DP-SGD (the faithful construction) over three member-set seeds and reports
the privacy/utility trade-off.

What is assertable at this scale: the utility cost is crisp (accuracy
falls monotonically with noise), the non-private baseline leaks
membership (AUC > 0.5), and no configuration approaches perfect
membership inference. The AUC *differences* between noise levels are
within sampling error for member sets this small; EXPERIMENTS.md records
the measured values and the caveat.
"""

import numpy as np

from repro.attacks.membership import membership_inference_auc
from repro.data.batching import iterate_minibatches
from repro.nn.optimizers import PerExampleDpSgd, Sgd
from repro.nn.zoo import cifar10_10layer

W10 = 0.12
MEMBERS = 48
EPOCHS = 60
SEEDS = 3
NOISE_LEVELS = (0.0, 1.0, 4.0)


def _train(bench_rng, members, noise, seed):
    net = cifar10_10layer(bench_rng.child(f"a6-init-{seed}").fork_generator(),
                          width_scale=W10)
    batch_rng = bench_rng.child(f"a6-batches-{seed}").fork_generator()
    if noise == 0.0:
        optimizer = Sgd(0.02, 0.9)
        for _ in range(EPOCHS):
            for xb, yb in iterate_minibatches(members.x, members.y, 32,
                                              rng=batch_rng):
                net.train_batch(xb, yb, optimizer)
    else:
        dp = PerExampleDpSgd(
            0.02, momentum=0.9, clip_norm=1.0, noise_multiplier=noise,
            rng=bench_rng.child(f"a6-noise-{noise}-{seed}").fork_generator(),
        )
        for _ in range(EPOCHS):
            for xb, yb in iterate_minibatches(members.x, members.y, 32,
                                              rng=batch_rng):
                dp.train_batch(net, xb, yb)
    return net


def test_ablation_dpsgd(bench_rng, cifar, benchmark):
    train, test = cifar
    rows = []
    for noise in NOISE_LEVELS:
        accuracies, aucs = [], []
        for seed in range(SEEDS):
            members = train.subset(
                range(seed * MEMBERS, (seed + 1) * MEMBERS)
            )
            net = _train(bench_rng, members, noise, seed)
            probs = net.predict(test.x)
            accuracies.append(float(np.mean(probs.argmax(1) == test.y)))
            aucs.append(membership_inference_auc(
                net, members.x, members.y, test.x, test.y
            ))
        rows.append((noise, float(np.mean(accuracies)), float(np.mean(aucs))))

    from repro.nn.privacy import dp_sgd_epsilon

    def epsilon_for(noise):
        if noise == 0.0:
            return float("inf")
        try:
            return dp_sgd_epsilon(noise, batch_size=32, dataset_size=MEMBERS,
                                  epochs=EPOCHS, delta=1e-3)
        except Exception:
            return float("nan")  # outside the accountant's validity region

    print("\nA6 - per-example DP-SGD noise sweep "
          f"(mean over {SEEDS} member-set seeds)")
    print(f"{'noise':>6} {'top-1':>7} {'membership AUC':>15} {'epsilon':>9}")
    for noise, accuracy, auc in rows:
        print(f"{noise:>6.1f} {accuracy:>7.3f} {auc:>15.3f} "
              f"{epsilon_for(noise):>9.2f}")

    accuracies = [acc for _, acc, _ in rows]
    baseline_auc = rows[0][2]
    # Claim 1: the privacy/utility trade-off is real — accuracy falls
    # monotonically as the noise multiplier rises.
    assert accuracies[0] > accuracies[1] > accuracies[2]
    # Claim 2: the non-private baseline leaks membership.
    assert baseline_auc > 0.52
    # Claim 3: membership leakage stays modest across the sweep — no
    # configuration approaches perfect membership inference. (The AUC
    # *differences* between noise levels are within sampling error at this
    # member-set size; EXPERIMENTS.md records the measured values.)
    assert all(0.40 <= auc <= 0.70 for _, _, auc in rows)

    # Benchmark kernel: one per-example-clipped DP-SGD batch.
    net = cifar10_10layer(bench_rng.child("a6-bench-init").fork_generator(),
                          width_scale=W10)
    dp = PerExampleDpSgd(0.02, clip_norm=1.0, noise_multiplier=1.0,
                         rng=bench_rng.child("a6-bench-noise").fork_generator())
    benchmark.pedantic(dp.train_batch, args=(net, train.x[:32], train.y[:32]),
                       rounds=1, iterations=1)
