"""Serving-plane throughput: brute vs. k-d tree vs. sharded-ANN engine.

The ROADMAP north star is a query stage that absorbs heavy traffic. This
bench builds clustered fingerprint corpora at 10k / 100k (and 1M when
``REPRO_BENCH_LARGE=1``), then measures:

* brute single-query throughput through the paper-faithful
  :class:`QueryService` (the baseline every prior experiment used),
* k-d tree single-query throughput (warm trees),
* the :mod:`repro.serving` engine answering the same workload batched
  through the sharded ANN index in exact mode.

Claims checked:

* the engine serves batched queries at >= 5x the brute-force
  single-query throughput on the 100k corpus;
* top-k parity — the engine's answers match the exact brute-force path
  on the same data (recall 1.0 at the default re-rank width);
* after a 1k-query run the engine's hash-chained audit trail has one
  event per answered query and passes chain verification.
"""

import os
import time

import numpy as np

from repro.core.linkage import LinkageDatabase, LinkageRecord
from repro.core.query import QueryService
from repro.serving import (EngineConfig, LinkageStore, ServingEngine,
                           ShardedAnnIndex)

DIM = 32
LABELS = 8
CLUSTERS = 16
K = 5


def _corpus(rng, size):
    generator = rng.fork_generator()
    centers = generator.standard_normal((LABELS, CLUSTERS, DIM)) * 4.0
    labels = generator.integers(0, LABELS, size=size)
    clusters = generator.integers(0, CLUSTERS, size=size)
    fingerprints = (
        centers[labels, clusters]
        + generator.standard_normal((size, DIM)) * 0.5
    ).astype(np.float32)
    return fingerprints, labels


def _store_for(tmp_path_factory, name, fingerprints, labels):
    store = LinkageStore.create(tmp_path_factory.mktemp(name) / "store")
    for start in range(0, fingerprints.shape[0], 65_536):
        stop = min(start + 65_536, fingerprints.shape[0])
        store.append(fingerprints[start:stop], labels[start:stop].tolist(),
                     ["p0"] * (stop - start), [b"h" * 32] * (stop - start))
    return store


def _database_for(fingerprints, labels):
    db = LinkageDatabase()
    for i in range(fingerprints.shape[0]):
        db.add(LinkageRecord(fingerprint=fingerprints[i],
                             label=int(labels[i]), source="p0",
                             digest=b"h" * 32, source_index=i))
    return db


def _single_query_qps(service, queries, query_labels, repeats=1):
    start = time.perf_counter()
    for _ in range(repeats):
        for i in range(queries.shape[0]):
            service.query(queries[i], int(query_labels[i]), k=K)
    elapsed = time.perf_counter() - start
    return repeats * queries.shape[0] / elapsed


def _engine_qps(engine, queries, query_labels, repeats=1):
    start = time.perf_counter()
    for _ in range(repeats):
        engine.query_many(queries, query_labels, k=K)
    elapsed = time.perf_counter() - start
    return repeats * queries.shape[0] / elapsed


def test_serving_throughput(bench_rng, tmp_path_factory, benchmark):
    if os.environ.get("REPRO_BENCH_SMOKE") == "1":
        sizes = [10_000]  # the CI smoke job: shape checks, no 100k claims
    else:
        sizes = [10_000, 100_000]
    if os.environ.get("REPRO_BENCH_LARGE") == "1":
        sizes.append(1_000_000)
    elif os.environ.get("REPRO_BENCH_SMOKE") != "1":
        print("\n(1M corpus skipped — set REPRO_BENCH_LARGE=1 to include it)")

    rng = bench_rng.child("serving")
    qgen = rng.child("queries").fork_generator()

    print("\nserving throughput (qps), clustered corpus, k=5")
    print(f"{'records':>9} {'brute':>10} {'kdtree':>10} {'engine':>10} "
          f"{'speedup':>8} {'scan%':>7}")
    results = {}
    for size in sizes:
        fingerprints, labels = _corpus(rng.child(f"corpus-{size}"), size)
        sample = qgen.integers(0, size, size=192)
        queries = fingerprints[sample] + qgen.standard_normal(
            (192, DIM)).astype(np.float32) * 0.1
        query_labels = labels[sample]

        db = _database_for(fingerprints, labels)
        brute = QueryService(db, index="brute")
        tree = QueryService(db, index="kdtree")
        tree.query(queries[0], int(query_labels[0]), k=1)  # warm the trees
        qps_brute = _single_query_qps(brute, queries[:48], query_labels[:48])
        qps_tree = _single_query_qps(tree, queries[:48], query_labels[:48])

        store = _store_for(tmp_path_factory, f"serving{size}", fingerprints,
                           labels)
        index = ShardedAnnIndex(store, shard_threshold=2048, seed=1).build()
        engine = ServingEngine(
            index, EngineConfig(workers=4, max_batch=64, queue_depth=192,
                                cache_size=0),  # cache off: measure the index
        ).start()
        try:
            _engine_qps(engine, queries, query_labels)  # warm-up pass
            qps_engine = _engine_qps(engine, queries, query_labels, repeats=3)
        finally:
            engine.stop()
        scan = engine.telemetry.scan_fraction
        speedup = qps_engine / qps_brute
        print(f"{size:>9} {qps_brute:>10.0f} {qps_tree:>10.0f} "
              f"{qps_engine:>10.0f} {speedup:>7.1f}x {scan:>7.1%}")
        results[size] = (qps_brute, qps_engine, fingerprints, labels, queries,
                         query_labels, brute, store, index)

    # Claim 1: >= 5x brute single-query throughput at 100k (full runs only;
    # the smoke configuration keeps the parity/audit claims at 10k).
    claim_size = max(sizes)
    if 100_000 in results:
        qps_brute, qps_engine = results[100_000][0], results[100_000][1]
        assert qps_engine >= 5 * qps_brute, (
            f"engine {qps_engine:.0f} qps < 5x brute {qps_brute:.0f} qps"
        )

    # Claim 2: exact parity — recall 1.0 at the default re-rank width.
    _, _, fingerprints, labels, queries, query_labels, brute, store, index = \
        results[claim_size]
    for i in range(32):
        expected = [n.record_index
                    for n in brute.query(queries[i], int(query_labels[i]), k=K)]
        got = [hit.index for hit in index.search(queries[i],
                                                 int(query_labels[i]), k=K)]
        assert got == expected
    print("parity: engine/index top-5 identical to brute force (recall 1.0)")

    # Claim 3: a 1k-query run leaves a verifiable, complete audit chain.
    audit_engine = ServingEngine(
        index, EngineConfig(workers=4, max_batch=64, queue_depth=256)
    ).start()
    try:
        for start in range(0, 1_000, 200):
            sample = qgen.integers(0, fingerprints.shape[0], size=200)
            audit_engine.query_many(
                fingerprints[sample]
                + qgen.standard_normal((200, DIM)).astype(np.float32) * 0.1,
                labels[sample], k=K,
            )
    finally:
        audit_engine.stop()
    assert len(audit_engine.audit) == 1_000
    assert audit_engine.verify_audit_chain()
    print(f"audit: 1000 events, chain verified "
          f"(head {audit_engine.audit.head.hex()[:16]}…)")

    # Operating point for pytest-benchmark: one coalesced 64-query batch.
    bench_engine = ServingEngine(
        index, EngineConfig(workers=4, max_batch=64, queue_depth=256,
                            cache_size=0)
    ).start()
    try:
        benchmark(_engine_qps, bench_engine, queries[:64], query_labels[:64])
    finally:
        bench_engine.stop()
