"""Ablation A4 — bottom-up FrontNet freezing (Section IV-B "Performance").

Paper claim: because networks converge bottom-up, the FrontNet can be
frozen partway through training, "completely eliminating any FrontNet
training costs while only the BackNet is being refined" — without hurting
final accuracy.
"""

import numpy as np

from repro.core.freezing import FreezeSchedule
from repro.core.partition import PartitionedNetwork
from repro.core.partitioned_training import ConfidentialTrainer
from repro.enclave.platform import SgxPlatform
from repro.nn.optimizers import Sgd
from repro.nn.zoo import cifar10_10layer

W10 = 0.12  # must match benchmarks/conftest.py


def _run(bench_rng, cifar, freeze_at):
    train, test = cifar
    platform = SgxPlatform(rng=bench_rng.child(f"a4-{freeze_at}"))
    enclave = platform.create_enclave("training")
    enclave.init()
    net = cifar10_10layer(bench_rng.child("a4-init").fork_generator(),
                          width_scale=W10)
    partitioned = PartitionedNetwork(net, 4, enclave)
    trainer = ConfidentialTrainer(
        partitioned, Sgd(0.02, 0.9),
        batch_rng=bench_rng.child(f"a4-b-{freeze_at}").fork_generator(),
        batch_size=32,
        freeze_schedule=FreezeSchedule(freeze_at) if freeze_at is not None else None,
    )
    trainer.train(train.x, train.y, 10, test_x=test.x, test_y=test.y)
    return trainer


def test_ablation_freezing(bench_rng, cifar, benchmark):
    baseline = _run(bench_rng, cifar, freeze_at=None)
    frozen = _run(bench_rng, cifar, freeze_at=5)

    print("\nA4 - FrontNet freezing after epoch 5 (4 layers in enclave)")
    print(f"{'epoch':>5} {'full (ms)':>10} {'frozen (ms)':>12}")
    for b, f in zip(baseline.reports, frozen.reports):
        print(f"{b.epoch + 1:>5} {b.simulated_seconds * 1e3:>10.2f} "
              f"{f.simulated_seconds * 1e3:>12.2f}"
              + ("  <- frozen" if f.frontnet_frozen else ""))

    # Claim 1: frozen epochs are cheaper than the same epochs unfrozen.
    frozen_epochs = [r.simulated_seconds for r in frozen.reports[5:]]
    matched_baseline = [r.simulated_seconds for r in baseline.reports[5:]]
    assert np.mean(frozen_epochs) < 0.95 * np.mean(matched_baseline)
    # Claim 2: accuracy is preserved within tolerance.
    print(f"  final top-1: full {baseline.reports[-1].top1:.3f}, "
          f"frozen {frozen.reports[-1].top1:.3f}")
    assert frozen.reports[-1].top1 > baseline.reports[-1].top1 - 0.15
    # Claim 3: the frozen FrontNet genuinely stopped moving.
    assert all(r.frontnet_frozen for r in frozen.reports[5:])

    train, _ = cifar
    benchmark(frozen.partitioned.train_batch, train.x[:32], train.y[:32],
              frozen.optimizer)
