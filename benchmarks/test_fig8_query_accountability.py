"""Fig. 8 — nearest-neighbour accountability queries for mispredictions.

Paper claim: querying the linkage database with a trojaned test input's
fingerprint returns closest training neighbours that are dominated by the
poisoned (and mislabeled) training data responsible for the misprediction;
their sources identify the malicious participant; hash digests verify the
disclosed instances. A trojaned image of the target person himself instead
matches his normal training data (the A.J.Buckley case).

The bench regenerates the neighbour tables for representative trojaned
test inputs, prints them with L2 distances, and asserts precision of the
poison/mislabel discovery plus the source attribution.
"""

import numpy as np

from repro.analysis.metrics import precision_recall_f1
from repro.analysis.reporting import render_neighbor_table
from repro.core.query import QueryService

K = 9  # the paper displays the nine closest neighbours


def test_fig8(trojan_world, benchmark):
    db = trojan_world["database"]
    fingerprinter = trojan_world["fingerprinter"]
    service = QueryService(db)
    trojaned_test = trojan_world["outcome"].trojaned_test

    # Query every trojaned test input (all mispredicted into class 0).
    labels, _, fingerprints = fingerprinter.predict_with_fingerprint(
        trojaned_test.x
    )
    assert np.mean(labels == 0) > 0.8  # the backdoor fires

    neighbor_lists = service.query_batch(fingerprints, labels, k=K)

    tables = []
    for qi in range(min(3, len(neighbor_lists))):
        tables.append({
            "name": f"trojaned test input #{qi} (classified as class 0)",
            "neighbors": [
                {"distance": n.distance, "source": n.record.source,
                 "kind": n.record.kind}
                for n in neighbor_lists[qi]
            ],
        })
    print("\nFig. 8 - Closest training neighbours per misprediction")
    print(render_neighbor_table(tables))

    # Shape claim 1: among all returned neighbours, bad training data
    # (poisoned or mislabeled) dominate.
    all_neighbors = [n for lst in neighbor_lists for n in lst]
    bad = [n for n in all_neighbors if n.record.kind != "normal"]
    bad_fraction = len(bad) / len(all_neighbors)
    print(f"  bad-data fraction among neighbours: {bad_fraction:.2%}")
    assert bad_fraction > 0.7

    # Shape claim 2: discovery metrics over the class-0 candidate pool.
    flagged = {n.record_index for n in all_neighbors}
    class0_indices = db.by_label(0)[1]
    predicted = np.array([i in flagged for i in class0_indices])
    actual = np.array([db.record(i).kind != "normal" for i in class0_indices])
    metrics = precision_recall_f1(predicted, actual)
    print(f"  poison discovery: precision={metrics['precision']:.2f} "
          f"recall={metrics['recall']:.2f} f1={metrics['f1']:.2f}")
    assert metrics["precision"] > 0.7

    # Shape claim 3: the malicious participant is the top attributed source.
    source_counts = {}
    for n in all_neighbors:
        source_counts[n.record.source] = source_counts.get(n.record.source, 0) + 1
    top_source = max(source_counts, key=source_counts.get)
    print(f"  source attribution: {source_counts}")
    assert top_source == "attacker"

    # Shape claim 4 (the A.J.Buckley case): a trojaned image of the target
    # identity itself remains close to that identity's *normal* training
    # data, unlike trojaned images of other identities. (At paper scale his
    # normal images are the literal top-9; with this compact embedding the
    # effect shows as a strong relative affinity — see EXPERIMENTS.md.)
    from scipy.spatial.distance import cdist

    from repro.attacks.trojan import stamp_trigger

    outcome = trojan_world["outcome"]
    normal0 = trojan_world["train"].of_class(0)
    f_normal0 = fingerprinter.fingerprint(normal0.x)
    target_faces = trojan_world["test"].of_class(0)
    other_faces = trojan_world["test"].subset(
        np.flatnonzero(trojan_world["test"].y != 0)
    )
    f_target = fingerprinter.fingerprint(
        stamp_trigger(target_faces.x, outcome.trigger, outcome.mask)
    )
    f_other = fingerprinter.fingerprint(
        stamp_trigger(other_faces.x, outcome.trigger, outcome.mask)
    )
    target_to_normal = cdist(f_target, f_normal0).min(axis=1).mean()
    other_to_normal = cdist(f_other, f_normal0).min(axis=1).mean()
    print(f"  A.J.Buckley case: target-stamped -> normal class-0 distance "
          f"{target_to_normal:.3f} vs other-stamped {other_to_normal:.3f}")
    assert target_to_normal < 0.6 * other_to_normal

    # Shape claim 5: every returned record carries a verifiable digest H
    # and is covered by the database's Merkle commitment (full disclosure
    # verification is exercised in the core and integration tests).
    commitment = db.merkle_commitment()
    for n in all_neighbors[:5]:
        record = db.record(n.record_index)
        assert len(record.digest) == 32
        proof = db.prove_record(commitment, n.record_index)
        assert db.verify_record_inclusion(commitment.root, n.record_index, proof)

    # Benchmark kernel: one fingerprint query against the full database.
    benchmark(service.query, fingerprints[0], int(labels[0]), K)
