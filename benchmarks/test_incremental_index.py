"""Incremental index under ingest growth: evictions, p99, and parity.

The incremental rewrite (LSM-style index segments with snapshot-isolated
search) makes three claims this bench pins down and records:

* **growth costs zero availability** — a 3-replica cluster under a
  scheduled growth storm (benign append bursts landing mid-stream)
  answers 100% of queries, evicts *nobody*, repairs staleness with
  staggered refreshes only, and no replica ever falls back to a
  from-scratch rebuild;
* **compaction stays out of the way** — with the background compactor
  merging segments while queries run, the p99 search latency stays
  within 2x the quiescent (no-churn) p99: merges are built outside the
  mutate lock and adopted atomically, so a query never waits on one;
* **incremental == monolithic** — an index grown by refresh (and then
  compacted) returns bitwise the same answers, in the same order, as an
  index built from scratch over the final store: recall 1.0 and exact
  tie-break parity, not statistical closeness.

Results land in the ``incremental_*`` sections of ``BENCH_serving.json``.
Set ``REPRO_BENCH_SMOKE=1`` for the reduced CI configuration; the
integrity bars (zero evictions, zero wrong answers, exact parity) stay
strict, the p99 ratio bar becomes advisory because tiny runs on shared
CI hosts are scheduling-noise dominated.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.resilience import ServingFaultPlan, ServingFaultSpec
from repro.serving import (ClusterConfig, EngineConfig, LinkageStore,
                           ServingCluster, ShardedAnnIndex)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

DIM = 32
LABELS = 8
CLUSTERS = 16
K = 5
RECORDS = 4_000 if SMOKE else 24_000
QUERIES = 180 if SMOKE else 600

TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"


def _corpus(rng, size):
    generator = rng.fork_generator()
    centers = generator.standard_normal((LABELS, CLUSTERS, DIM)) * 4.0
    labels = generator.integers(0, LABELS, size=size)
    clusters = generator.integers(0, CLUSTERS, size=size)
    fingerprints = (
        centers[labels, clusters]
        + generator.standard_normal((size, DIM)) * 0.5
    ).astype(np.float32)
    return fingerprints, labels


def _store_for(tmp_path_factory, name, fingerprints, labels,
               segment_records=None):
    store = LinkageStore.create(tmp_path_factory.mktemp(name) / "store")
    step = segment_records or fingerprints.shape[0]
    for start in range(0, fingerprints.shape[0], step):
        stop = min(start + step, fingerprints.shape[0])
        store.append(fingerprints[start:stop], labels[start:stop].tolist(),
                     ["p0"] * (stop - start), [b"h" * 32] * (stop - start))
    return store


def _update_trajectory(section, payload):
    """Merge one section into BENCH_serving.json (shared with the
    availability bench, so the file keys on the same benchmark name)."""
    data = {}
    if TRAJECTORY_PATH.exists():
        try:
            data = json.loads(TRAJECTORY_PATH.read_text())
        except ValueError:
            data = {}
    if data.get("benchmark") != "serving_availability":
        data = {"benchmark": "serving_availability"}
    data["smoke"] = SMOKE
    data[section] = payload
    TRAJECTORY_PATH.write_text(json.dumps(data, indent=2) + "\n")


# -- claim 1: a growth storm costs zero evictions and zero availability ---------


def test_growth_storm_zero_evictions(bench_rng, tmp_path_factory):
    rng = bench_rng.child("incremental-growth")
    fingerprints, labels = _corpus(rng.child("corpus"), RECORDS)
    store = _store_for(tmp_path_factory, "inc-growth", fingerprints, labels,
                       segment_records=max(1, RECORDS // 4))
    qgen = rng.child("queries").fork_generator()
    sample = qgen.integers(0, RECORDS, size=QUERIES)
    queries = fingerprints[sample] + qgen.standard_normal(
        (QUERIES, DIM)).astype(np.float32) * 0.1
    query_labels = labels[sample].astype(np.int64)

    burst = 200 if SMOKE else 800
    storm_at = [int(QUERIES * f) for f in (0.2, 0.45, 0.7)]
    plan = ServingFaultPlan([
        ServingFaultSpec(kind="growth-storm", at_query=at, records=burst)
        for at in storm_at
    ])

    cluster = ServingCluster(
        store, replicas=3,
        config=ClusterConfig(deadline_s=5.0, health_interval_s=0.05,
                             breaker_reset_s=0.25, stop_timeout_s=0.5,
                             auto_refresh=True, refresh_stagger=1),
        engine_config=EngineConfig(workers=2, max_batch=32, queue_depth=128,
                                   poll_interval=0.005),
        index_factory=lambda s: ShardedAnnIndex(
            s, shard_threshold=1024, seed=1, max_segments=4,
            compaction_interval_s=0.02),
    ).start()

    ok = failed = 0
    try:
        for ordinal in range(QUERIES):
            plan.before_query(ordinal, cluster)
            try:
                result = cluster.query(queries[ordinal],
                                       int(query_labels[ordinal]), k=K)
            except Exception:  # noqa: BLE001 — counted as unavailability
                failed += 1
                continue
            ok += 1
            assert not result.degraded
        # Let the staggered sweeps drain the remaining catch-up work.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if all(r.index.built_version == store.version
                   for r in cluster.replicas):
                break
            time.sleep(0.05)
        counters = cluster.telemetry.snapshot()["counters"]
        evictions = int(counters.get("evictions", 0))
        refreshes = int(counters.get("replica_refreshes", 0))
        full_builds = [r.index.inner.full_builds for r in cluster.replicas]
        caught_up = all(r.index.built_version == store.version
                        for r in cluster.replicas)
        audit_ok = cluster.verify_audit_chain()
    finally:
        cluster.stop()

    availability = ok / QUERIES
    print(f"\ngrowth storm, {RECORDS}+{len(storm_at) * burst} records, "
          f"{QUERIES} queries, 3 replicas")
    print(f"  availability  {availability:>8.2%}  (bar: 100%)")
    print(f"  evictions     {evictions:>8}  (bar: 0)")
    print(f"  refreshes     {refreshes:>8}  (bar: > 0)")
    print(f"  full builds   {full_builds}  (bar: 1 per replica)")

    _update_trajectory("incremental_growth", {
        "config": {"records": RECORDS, "queries": QUERIES, "k": K,
                   "replicas": 3, "growth_bursts": len(storm_at),
                   "burst_records": burst},
        "availability": round(availability, 4),
        "evictions": evictions,
        "replica_refreshes": refreshes,
        "full_builds_per_replica": full_builds,
        "all_replicas_caught_up": bool(caught_up),
        "audit_chain_verified": bool(audit_ok),
        "bars": {"availability": "== 1.0", "evictions": "== 0",
                 "full_builds_per_replica": "== 1"},
    })

    assert availability == 1.0, f"{failed} queries failed under benign growth"
    assert evictions == 0, f"{evictions} evictions for growth-only staleness"
    assert refreshes > 0
    assert full_builds == [1, 1, 1], (
        f"replicas rebuilt from scratch to catch up: {full_builds}")
    assert caught_up and audit_ok


# -- claim 2: compaction churn keeps p99 within 2x quiescent --------------------


def _p99(samples):
    return float(np.percentile(np.asarray(samples, dtype=np.float64), 99))


def test_compaction_keeps_p99_bounded(bench_rng, tmp_path_factory):
    rng = bench_rng.child("incremental-p99")
    fingerprints, labels = _corpus(rng.child("corpus"), RECORDS)
    store = _store_for(tmp_path_factory, "inc-p99", fingerprints, labels,
                       segment_records=max(1, RECORDS // 4))
    qgen = rng.child("queries").fork_generator()
    rounds = 300 if SMOKE else 800
    sample = qgen.integers(0, RECORDS, size=rounds)
    queries = fingerprints[sample] + qgen.standard_normal(
        (rounds, DIM)).astype(np.float32) * 0.1
    query_labels = labels[sample].astype(np.int64)

    index = ShardedAnnIndex(store, shard_threshold=1024, seed=1,
                            max_segments=2,
                            compaction_interval_s=0.005).build()

    def measure():
        latencies = []
        for i in range(rounds):
            started = time.perf_counter()
            index.search_batch(queries[i:i + 1], int(query_labels[i]), k=K)
            latencies.append(time.perf_counter() - started)
        return latencies

    measure()  # warm-up
    quiescent = _p99(measure())

    # Churn: append + refresh between query stretches with the background
    # compactor running, so merges overlap the measured searches.
    ggen = rng.child("growth").fork_generator()
    index.start_compaction()
    try:
        latencies = []
        chunk = max(1, rounds // 6)
        for start in range(0, rounds, chunk):
            extra = ggen.standard_normal(
                (120, DIM)).astype(np.float32)
            extra_labels = ggen.integers(0, LABELS, size=120).tolist()
            store.append(extra, extra_labels, ["storm"] * 120,
                         [b"s" * 32] * 120)
            index.refresh()
            for i in range(start, min(start + chunk, rounds)):
                started = time.perf_counter()
                index.search_batch(queries[i:i + 1],
                                   int(query_labels[i]), k=K)
                latencies.append(time.perf_counter() - started)
        churn = _p99(latencies)
    finally:
        index.stop_compaction()
    ratio = churn / quiescent if quiescent else float("inf")

    print(f"\ncompaction churn p99, {RECORDS} records, {rounds} queries")
    print(f"  quiescent p99  {quiescent * 1e3:>8.2f}ms")
    print(f"  churn p99      {churn * 1e3:>8.2f}ms")
    print(f"  ratio          {ratio:>8.2f}x  (bar: <= 2x"
          f"{', advisory in smoke' if SMOKE else ''})")
    print(f"  compactions    {index.compactions:>8}")

    _update_trajectory("incremental_compaction_p99", {
        "config": {"records": RECORDS, "rounds": rounds, "k": K,
                   "max_segments": 2},
        "quiescent_p99_ms": round(quiescent * 1e3, 3),
        "churn_p99_ms": round(churn * 1e3, 3),
        "ratio": round(ratio, 3),
        "compactions": int(index.compactions),
        "compaction_crashes": int(index.compaction_crashes),
        "bar": "<= 2.0 (advisory in smoke)",
    })

    assert index.compactions > 0, "the churn phase never compacted"
    # Timing bars are advisory on noise-dominated smoke hosts.
    if SMOKE:
        if ratio > 2.0:
            print(f"  WARNING: smoke churn ratio {ratio:.2f}x over the 2x "
                  "bar (advisory only)")
    else:
        assert ratio <= 2.0, (
            f"compaction churn p99 {churn * 1e3:.2f}ms is {ratio:.2f}x the "
            f"quiescent {quiescent * 1e3:.2f}ms")


# -- claim 3: incremental build == from-scratch build, bitwise ------------------


def test_incremental_matches_scratch_bitwise(bench_rng, tmp_path_factory):
    rng = bench_rng.child("incremental-parity")
    fingerprints, labels = _corpus(rng.child("corpus"), RECORDS)
    store = _store_for(tmp_path_factory, "inc-parity", fingerprints, labels,
                       segment_records=max(1, RECORDS // 3))

    incremental = ShardedAnnIndex(store, shard_threshold=1024, seed=1,
                                  max_segments=3).build()
    ggen = rng.child("growth").fork_generator()
    for _ in range(3):
        extra = ggen.standard_normal((RECORDS // 10, DIM)).astype(np.float32)
        extra_labels = ggen.integers(0, LABELS,
                                     size=RECORDS // 10).tolist()
        store.append(extra, extra_labels, ["p1"] * (RECORDS // 10),
                     [b"g" * 32] * (RECORDS // 10))
        incremental.refresh()
    incremental.compact_now()
    scratch = ShardedAnnIndex(store, shard_threshold=1024, seed=1).build()

    qgen = rng.child("queries").fork_generator()
    sample = qgen.integers(0, RECORDS, size=QUERIES)
    queries = fingerprints[sample] + qgen.standard_normal(
        (QUERIES, DIM)).astype(np.float32) * 0.1
    query_labels = labels[sample].astype(np.int64)

    mismatches = 0
    overlap = total = 0
    for i in range(QUERIES):
        got = incremental.search(queries[i], int(query_labels[i]), k=K)
        want = scratch.search(queries[i], int(query_labels[i]), k=K)
        got_ids = [h.index for h in got]
        want_ids = [h.index for h in want]
        overlap += len(set(got_ids) & set(want_ids))
        total += len(want_ids)
        if got != want:  # index AND distance AND order
            mismatches += 1
    recall = overlap / total if total else 1.0

    print(f"\nincremental-vs-scratch parity, {len(store)} records, "
          f"{QUERIES} queries, k={K}")
    print(f"  recall        {recall:>8.4f}  (bar: == 1.0)")
    print(f"  mismatches    {mismatches:>8}  (bar: 0, bitwise + order)")
    print(f"  segments      {incremental.stats()['segments']:>8} "
          f"(after compaction)")

    _update_trajectory("incremental_parity", {
        "config": {"records": int(len(store)), "queries": QUERIES, "k": K,
                   "refreshes": 3},
        "recall_vs_scratch": round(recall, 6),
        "ordering_mismatches": mismatches,
        "segments_after_compaction": int(incremental.stats()["segments"]),
        "bars": {"recall_vs_scratch": "== 1.0",
                 "ordering_mismatches": "== 0"},
    })

    assert recall == 1.0
    assert mismatches == 0, (
        f"{mismatches}/{QUERIES} answers differ from the from-scratch build")
