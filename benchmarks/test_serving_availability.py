"""Serving availability under a seeded fault storm + routing overhead.

The self-healing cluster (PR 9) claims two things the ROADMAP cares
about:

* **availability with integrity** — under a seeded fault storm (one
  replica crash, one attractor-style index corruption, injected latency
  on a third replica) a 3-replica cluster keeps answering: >= 99% of
  queries succeed, *zero* answers are wrong or stale (every answer —
  routed, hedged, failed-over, or degraded — equals the exact
  brute-force truth over the sealed store), and the p99 latency stays
  bounded well inside the per-query deadline;
* **cheap when healthy** — fault-free, routing a batched workload
  through the full cluster stack (deadlines, shedding bound, breakers,
  per-answer store verification) costs < 5% throughput vs. a bare
  :class:`ServingEngine` on the same corpus — the router is not a tax
  worth a bypass path. Measured at replication factor 1 so the router
  cost is isolated; the 3-replica figure is also recorded, but on a
  single-core CI host it folds in the cache-locality cost of three
  independent index copies (on real multi-core serving hardware the
  replicas run on their own cores and that term disappears).

The storm is scheduled through :class:`ServingFaultPlan` — the same
mechanism the test suite and the ``serve-cluster --inject`` CLI drill
replay — so the trace here is reproducible bit-for-bit. The corrupted
index row is pinned to an *attractor* value (a live query fingerprint)
chosen OUTSIDE every query's true top-k: the corruption must surface in
an answer and be caught by per-answer verification, never silently sink.

Results land in ``BENCH_serving.json`` at the repo root. Set
``REPRO_BENCH_SMOKE=1`` for the reduced CI configuration: smaller
corpus and fewer queries; the integrity bars (>= 99% success, zero
wrong answers) stay strict, the overhead bar becomes advisory (a
printed warning, never a build failure) because tiny runs on shared CI
hosts are noise-dominated.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.errors import (DeadlineExceeded, NoHealthyReplica, QueryRejected,
                          ServingError)
from repro.resilience import ServingFaultPlan, ServingFaultSpec
from repro.serving import (ClusterConfig, EngineConfig, LinkageStore,
                           ServingCluster, ServingEngine, ShardedAnnIndex)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

DIM = 32
LABELS = 8
CLUSTERS = 16
K = 5
RECORDS = 6_000 if SMOKE else 40_000
QUERIES = 240 if SMOKE else 1_000

TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"


def _corpus(rng, size):
    generator = rng.fork_generator()
    centers = generator.standard_normal((LABELS, CLUSTERS, DIM)) * 4.0
    labels = generator.integers(0, LABELS, size=size)
    clusters = generator.integers(0, CLUSTERS, size=size)
    fingerprints = (
        centers[labels, clusters]
        + generator.standard_normal((size, DIM)) * 0.5
    ).astype(np.float32)
    return fingerprints, labels


def _store_for(tmp_path_factory, name, fingerprints, labels):
    store = LinkageStore.create(tmp_path_factory.mktemp(name) / "store")
    for start in range(0, fingerprints.shape[0], 65_536):
        stop = min(start + 65_536, fingerprints.shape[0])
        store.append(fingerprints[start:stop], labels[start:stop].tolist(),
                     ["p0"] * (stop - start), [b"h" * 32] * (stop - start))
    return store


def _brute_truth(fingerprints, labels, query, label, k):
    rows = np.flatnonzero(labels == label)
    deltas = fingerprints[rows] - query[None, :]
    distances = np.sqrt((deltas * deltas).sum(axis=1))
    order = np.argsort(distances, kind="stable")[:k]
    return [int(rows[i]) for i in order]


def _update_trajectory(section, payload):
    """Merge one section into BENCH_serving.json (both benches write it)."""
    data = {}
    if TRAJECTORY_PATH.exists():
        try:
            data = json.loads(TRAJECTORY_PATH.read_text())
        except ValueError:
            data = {}
    if data.get("benchmark") != "serving_availability":
        data = {"benchmark": "serving_availability"}
    data["smoke"] = SMOKE
    data[section] = payload
    TRAJECTORY_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _wait_until(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# -- claim 1: fault-free routing overhead < 5% ----------------------------------


def _one_run(query_many, queries, query_labels, passes=3):
    # Several passes per round: single ~80ms runs are scheduling-noise
    # bound on the shared 1-core CI host.
    start = time.perf_counter()
    for _ in range(passes):
        query_many(queries, query_labels, k=K)
    return passes * queries.shape[0] / (time.perf_counter() - start)


def test_fault_free_routing_overhead(bench_rng, tmp_path_factory, benchmark):
    rng = bench_rng.child("availability-overhead")
    fingerprints, labels = _corpus(rng.child("corpus"), RECORDS)
    store = _store_for(tmp_path_factory, "avail-overhead", fingerprints,
                       labels)
    qgen = rng.child("queries").fork_generator()
    sample = qgen.integers(0, RECORDS, size=192)
    queries = fingerprints[sample] + qgen.standard_normal(
        (192, DIM)).astype(np.float32) * 0.1
    query_labels = labels[sample]

    # workers=1 and cache off: the claim under test is *router* overhead
    # (deadlines, breakers, verification, audit), not worker scaling —
    # and on the 1-core CI host extra workers only add GIL scheduling
    # noise that swamps a <5% signal.
    engine_config = EngineConfig(workers=1, max_batch=64, queue_depth=256,
                                 cache_size=0)
    index = ShardedAnnIndex(store, shard_threshold=2048, seed=1).build()
    engine = ServingEngine(index, engine_config).start()

    def _cluster(replicas):
        return ServingCluster(
            store, replicas=replicas,
            # Health sweeps parked during measurement: a checksum sweep
            # landing mid-round is sampling noise, not routing cost.
            config=ClusterConfig(deadline_s=30.0, health_interval_s=60.0),
            engine_config=engine_config,
            index_factory=lambda s: ShardedAnnIndex(s, shard_threshold=2048,
                                                    seed=1),
        ).start()

    cluster1 = _cluster(1)   # router cost, replication factor isolated
    cluster3 = _cluster(3)   # + the N-index locality cost on one core
    try:
        # Paired rounds, median ratio: single runs on a shared 1-core CI
        # host swing +-20%, and measuring the paths minutes apart folds
        # host drift (page cache, CPU clocks, noisy neighbours) into the
        # overhead number. Back-to-back rounds cancel the drift; the
        # median discards the outlier rounds.
        for target in (engine, cluster1, cluster3):
            _one_run(target.query_many, queries, query_labels)   # warm-up
        rounds = []
        for _ in range(5 if SMOKE else 15):
            qps_e = _one_run(engine.query_many, queries, query_labels)
            qps_1 = _one_run(cluster1.query_many, queries, query_labels)
            qps_3 = _one_run(cluster3.query_many, queries, query_labels)
            rounds.append((qps_1 / qps_e, qps_e, qps_1, qps_3 / qps_e))
        rounds.sort()
        ratio, qps_engine, qps_cluster, ratio3 = rounds[len(rounds) // 2]
        overhead = 1.0 - ratio
        replicated_overhead = 1.0 - ratio3
        for cluster in (cluster1, cluster3):
            snapshot = cluster.telemetry.snapshot()
            assert snapshot["counters"].get("queries_failed", 0) == 0
            assert snapshot["counters"].get("degraded_answers", 0) == 0
        benchmark(_one_run, cluster3.query_many, queries[:64],
                  query_labels[:64], 1)
    finally:
        cluster3.stop()
        cluster1.stop()
        engine.stop()

    print(f"\nrouting overhead, {RECORDS} records, 192-query batches, k={K}")
    print(f"  bare engine   {qps_engine:>10.0f} qps (median round)")
    print(f"  cluster x1    {qps_cluster:>10.0f} qps (median round)")
    print(f"  overhead      {overhead:>10.1%}  (bar: < 5%"
          f"{', advisory in smoke' if SMOKE else ''})")
    print(f"  x3 on 1 core  {replicated_overhead:>10.1%}  "
          "(informational: adds 3-index cache-locality cost)")

    _update_trajectory("routing_overhead", {
        "config": {"records": RECORDS, "batch": 192, "k": K, "workers": 1},
        "qps_bare_engine": round(qps_engine, 1),
        "qps_cluster_1_replica": round(qps_cluster, 1),
        "overhead_fraction": round(overhead, 4),
        "overhead_3_replicas_1_core": round(replicated_overhead, 4),
        "bar": "< 0.05 (advisory in smoke)",
    })

    # Smoke runs on shared CI hosts are noise-dominated: warn, don't fail.
    if SMOKE:
        if overhead >= 0.05:
            print(f"  WARNING: smoke overhead {overhead:.1%} over the 5% bar "
                  "(advisory only)")
    else:
        assert overhead < 0.05, (
            f"cluster routing overhead {overhead:.1%} >= 5% "
            f"({qps_cluster:.0f} vs {qps_engine:.0f} qps)"
        )


# -- claim 2: >= 99% availability, zero wrong answers, under a fault storm ------


def test_fault_storm_availability(bench_rng, tmp_path_factory):
    rng = bench_rng.child("availability-storm")
    fingerprints, labels = _corpus(rng.child("corpus"), RECORDS)
    store = _store_for(tmp_path_factory, "avail-storm", fingerprints, labels)
    qgen = rng.child("queries").fork_generator()

    sample = qgen.integers(0, RECORDS, size=QUERIES)
    queries = (fingerprints[sample] + qgen.standard_normal(
        (QUERIES, DIM)).astype(np.float32) * 0.1)
    query_labels = labels[sample].astype(np.int64)

    crash_at = int(QUERIES * 0.15)
    corrupt_at = int(QUERIES * 0.45)
    latency_at = int(QUERIES * 0.70)

    # The corruption window: the queries right after the injection are
    # near-duplicates of the attractor query, so whichever replica holds
    # the corrupted row serves one of them (round-robin) and surfaces the
    # planted row — per-answer verification catches it before the slower
    # checksum sweep would.
    target_label = int(query_labels[corrupt_at])
    for i in range(corrupt_at + 1, min(corrupt_at + 6, QUERIES)):
        queries[i] = queries[corrupt_at] + qgen.standard_normal(
            DIM).astype(np.float32) * 0.01
        query_labels[i] = target_label

    truth = [_brute_truth(fingerprints, labels, queries[i],
                          int(query_labels[i]), K)
             for i in range(QUERIES)]

    # Corruption target: a row of the target label that is in NO query's
    # true top-k, pinned to an attractor value (the live query right
    # after the injection) so it *surfaces* in an answer — per-answer
    # verification must catch it; it can never silently displace truth.
    in_truth = set()
    for hits in truth:
        in_truth.update(hits)
    label_rows = np.flatnonzero(labels == target_label)
    corrupt_row = next(pos for pos, idx in enumerate(label_rows)
                       if int(idx) not in in_truth)
    attractor = tuple(float(v) for v in queries[corrupt_at])

    plan = ServingFaultPlan([
        ServingFaultSpec(kind="replica-crash", at_query=crash_at),
        ServingFaultSpec(kind="index-corrupt", at_query=corrupt_at,
                         label=target_label, row=corrupt_row,
                         value=attractor),
        ServingFaultSpec(kind="latency-inject", at_query=latency_at,
                         delay_s=0.05),
    ])

    cluster = ServingCluster(
        store, replicas=3,
        config=ClusterConfig(deadline_s=2.0, hedge_min_s=0.03,
                             health_interval_s=0.5, breaker_reset_s=0.25,
                             stop_timeout_s=0.5),
        engine_config=EngineConfig(workers=2, max_batch=32, queue_depth=128,
                                   poll_interval=0.005),
        # Brute shards: the planted attractor row must *surface* in an
        # answer (a clustered probe could prune the corrupted row's
        # far-away cluster and leave it to the slower checksum sweep).
        index_factory=lambda s: ShardedAnnIndex(s, shard_threshold=RECORDS,
                                                seed=1),
    ).start()

    ok = wrong = degraded = failed = 0
    latencies = []
    try:
        for ordinal in range(QUERIES):
            plan.before_query(ordinal, cluster)
            started = time.perf_counter()
            try:
                result = cluster.query(queries[ordinal],
                                       int(query_labels[ordinal]), k=K)
            except (QueryRejected, DeadlineExceeded, NoHealthyReplica,
                    ServingError):
                failed += 1
                continue
            latencies.append(time.perf_counter() - started)
            ok += 1
            degraded += int(result.degraded)
            if [h.index for h in result.hits] != truth[ordinal]:
                wrong += 1
        # Let the monitor finish healing: every replica back and serving.
        healed = _wait_until(
            lambda: all(r.healthy for r in cluster.replicas))
        telemetry = cluster.telemetry
        snapshot = telemetry.snapshot()
        counters = snapshot["counters"]
        audit_ok = cluster.verify_audit_chain()
        replica_chains_ok = all(r.engine.verify_audit_chain()
                                for r in cluster.replicas)
        evict_reasons = sorted(
            e.details.get("reason", "") for e in
            cluster.audit.events("replica-evicted"))
        hedge_events = len(cluster.audit.events("hedged-query"))
        degraded_events = len(cluster.audit.events("degraded-query"))
        failover_events = len(cluster.audit.events("failover-query"))
    finally:
        cluster.stop()

    availability = ok / QUERIES
    p99 = float(np.percentile(latencies, 99)) if latencies else float("inf")
    print(f"\nfault storm, {RECORDS} records, {QUERIES} queries, 3 replicas")
    print(f"  crash@{crash_at} index-corrupt@{corrupt_at} "
          f"latency-inject@{latency_at}")
    print(f"  availability  {availability:>8.2%}  (bar: >= 99%)")
    print(f"  wrong/stale   {wrong:>8}  (bar: 0)")
    print(f"  degraded      {degraded:>8}")
    print(f"  p99 latency   {p99 * 1e3:>8.1f}ms  (bar: <= 1000ms)")
    print(f"  evictions     {counters.get('evictions', 0):>8} "
          f"({', '.join(evict_reasons) or 'none'})")
    print(f"  revivals      {counters.get('revivals', 0):>8} "
          f"(all healed: {healed})")
    print(f"  hedges        {counters.get('hedges_launched', 0):>8} "
          f"(won {counters.get('hedges_won', 0)})")

    _update_trajectory("fault_storm", {
        "config": {"records": RECORDS, "queries": QUERIES, "k": K,
                   "replicas": 3, "deadline_s": 2.0,
                   "faults": {"replica-crash": crash_at,
                              "index-corrupt": corrupt_at,
                              "latency-inject": latency_at}},
        "availability": round(availability, 4),
        "wrong_answers": wrong,
        "degraded_answers": degraded,
        "failed_queries": failed,
        "p99_latency_ms": round(p99 * 1e3, 2),
        "evictions": int(counters.get("evictions", 0)),
        "eviction_reasons": evict_reasons,
        "revivals": int(counters.get("revivals", 0)),
        "all_replicas_healed": bool(healed),
        "hedges_launched": int(counters.get("hedges_launched", 0)),
        "verify_failures": int(counters.get("verify_failures", 0)),
        "audit_chain_verified": bool(audit_ok and replica_chains_ok),
        "bars": {"availability": ">= 0.99", "wrong_answers": "== 0",
                 "p99_latency_ms": "<= 1000"},
    })

    # Integrity bars stay strict even in smoke: availability with wrong
    # answers would be worse than downtime.
    assert availability >= 0.99, (
        f"availability {availability:.2%} < 99% ({failed} failures)")
    assert wrong == 0, f"{wrong} wrong or stale answers under the storm"
    assert p99 <= 1.0, f"p99 latency {p99 * 1e3:.0f}ms over the 1s bound"

    # The storm left the marks it should have: the crash and the caught
    # corruption both evicted a replica, healing brought them back, and
    # every notable routing decision is metered AND in the audit chain.
    assert counters.get("evictions", 0) >= 2
    assert "crash" in evict_reasons
    assert "index-integrity" in evict_reasons
    assert counters.get("verify_failures", 0) >= 1
    assert counters.get("revivals", 0) >= 1 and healed
    assert audit_ok and replica_chains_ok
    assert counters.get("hedges_launched", 0) == hedge_events
    assert counters.get("degraded_answers", 0) == degraded_events
    assert counters.get("failovers", 0) == failover_events
    assert degraded == counters.get("degraded_answers", 0)
