"""Table I — the 10-layer CIFAR-10 architecture.

Regenerates the paper's Table I rows (layer, filter, size, input, output)
at full width and benchmarks construction + one forward pass.
"""

import numpy as np

from repro.nn.zoo import cifar10_10layer

EXPECTED_ROWS = [
    ("conv", "128", "3x3/1", "28x28x3", "28x28x128"),
    ("conv", "128", "3x3/1", "28x28x128", "28x28x128"),
    ("max", "", "2x2/2", "28x28x128", "14x14x128"),
    ("conv", "64", "3x3/1", "14x14x128", "14x14x64"),
    ("max", "", "2x2/2", "14x14x64", "7x7x64"),
    ("conv", "128", "3x3/1", "7x7x64", "7x7x128"),
    ("conv", "10", "1x1/1", "7x7x128", "7x7x10"),
    ("avg", "", "", "7x7x10", "10"),
    ("softmax", "", "", "10", "10"),
    ("cost", "", "", "10", "10"),
]


def test_table1(benchmark):
    net = cifar10_10layer(np.random.default_rng(0), width_scale=1.0)
    print("\n" + net.summary())

    shapes = net.layer_output_shapes()
    shape = net.input_shape
    fmt = lambda s: "x".join(str(d) for d in s)
    for i, (kind, filters, size, in_s, out_s) in enumerate(EXPECTED_ROWS):
        layer = net.layers[i]
        assert layer.kind == kind
        if filters:
            assert str(layer.filters) == filters
        if size:
            assert f"{layer.size}x{layer.size}/{layer.stride}" == size
        assert fmt(shape) == in_s, f"layer {i + 1} input"
        assert fmt(shapes[i]) == out_s, f"layer {i + 1} output"
        shape = shapes[i]

    # Benchmark: a forward pass through the full-width Table-I network.
    x = np.random.default_rng(1).random((4, 28, 28, 3)).astype(np.float32)
    benchmark(net.forward, x)
