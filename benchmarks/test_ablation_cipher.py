"""Ablation A9 — AEAD cipher choice for bulk training data.

DESIGN.md documents the one crypto substitution in this reproduction: the
paper's hardware-accelerated AES-GCM handles bulk training data, while a
pure-Python AES-GCM cannot. This bench quantifies the substitution: the
from-scratch AES-GCM (bit-exact, used for control messages) vs the
HMAC-CTR bulk AEAD (used for tensor payloads), measured on realistic
training-record sizes, plus the check that both reject the same forgeries.
"""

import dataclasses
import time

import numpy as np

from repro.crypto.aead import AesGcm, HmacCtrAead
from repro.errors import AuthenticationError


def _throughput(cipher, payload, repeats=3):
    nonce = b"\x01" * 12
    start = time.perf_counter()
    for _ in range(repeats):
        sealed = cipher.seal(nonce, payload)
        cipher.open(nonce, sealed)
    elapsed = (time.perf_counter() - start) / repeats
    return len(payload) * 2 / elapsed  # seal + open


def test_cipher_throughput(benchmark):
    key = bytes(range(16))
    record = np.random.default_rng(0).random((28, 28, 3)).astype(
        np.float32
    ).tobytes()  # one CIFAR-sized training record (~9.4 KB)

    gcm = AesGcm(key)
    bulk = HmacCtrAead(key)
    gcm_bps = _throughput(gcm, record, repeats=2)
    bulk_bps = _throughput(bulk, record, repeats=10)

    print("\nA9 - AEAD throughput on one 28x28x3 training record")
    print(f"  AES-128-GCM (from scratch): {gcm_bps / 1e3:8.1f} KB/s")
    print(f"  HMAC-CTR bulk AEAD:         {bulk_bps / 1e6:8.2f} MB/s")
    print(f"  speedup: {bulk_bps / gcm_bps:.0f}x")

    # Claim 1: the bulk path is orders of magnitude faster — the reason the
    # substitution exists.
    assert bulk_bps > 50 * gcm_bps

    # Claim 2: identical authenticate-then-decrypt semantics — the same
    # forgeries fail under both ciphers.
    nonce = b"\x02" * 12
    for cipher in (gcm, bulk):
        sealed = bytearray(cipher.seal(nonce, record[:256], b"source=p0"))
        sealed[10] ^= 0xFF
        try:
            cipher.open(nonce, bytes(sealed), b"source=p0")
            raise AssertionError("forgery accepted")
        except AuthenticationError:
            pass
        good = cipher.seal(nonce, record[:256], b"source=p0")
        try:
            cipher.open(nonce, good, b"source=p1")  # spoofed source
            raise AssertionError("source spoof accepted")
        except AuthenticationError:
            pass

    benchmark(bulk.seal, b"\x03" * 12, record)
