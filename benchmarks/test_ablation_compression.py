"""Ablation A7 — model compression vs model partitioning.

Related-work claim (Section VIII): compression can shrink a *pre-trained*
model into the EPC for inference, but "they can only prune models for
pre-trained DNNs", so it does not help confidential *training* — CalTrain's
partitioning does. The bench quantifies both halves:

1. A trained Table-I model pruned to 10% fits a small EPC where the dense
   model pages, at a modest accuracy cost (compression works for inference).
2. Training, however, needs the full dense model from epoch 0: pruning an
   *untrained* model to the same sparsity and training it under a frozen
   mask converges far worse than partitioned dense training — and the
   dense in-enclave training footprint exceeds what compression fits.
"""

import numpy as np

from repro.core.partition import PartitionedNetwork
from repro.data.batching import iterate_minibatches
from repro.enclave.platform import SgxPlatform
from repro.nn.optimizers import Sgd
from repro.nn.pruning import apply_masks, prune_by_magnitude, sparsity
from repro.nn.zoo import cifar10_10layer

W10 = 0.12
KEEP = 0.10
EPOCHS = 10


def _accuracy(net, test):
    return float(np.mean(net.predict(test.x).argmax(1) == test.y))


def _train(net, train, rng, epochs, masks=None):
    optimizer = Sgd(0.02, 0.9)
    batch_rng = rng
    for _ in range(epochs):
        for xb, yb in iterate_minibatches(train.x, train.y, 32, rng=batch_rng):
            net.train_batch(xb, yb, optimizer)
            if masks is not None:
                apply_masks(net, masks)
    return net


def test_ablation_compression(bench_rng, cifar, benchmark):
    train, test = cifar

    # -- 1. compression works for inference -------------------------------
    dense = cifar10_10layer(bench_rng.child("a7-init").fork_generator(),
                            width_scale=W10)
    _train(dense, train, bench_rng.child("a7-b").fork_generator(), EPOCHS)
    dense_acc = _accuracy(dense, test)
    result = prune_by_magnitude(dense, keep_fraction=KEEP)
    # Han et al. always fine-tune after pruning (which requires the full
    # training data again — fine for offline inference deployment).
    _train(dense, train, bench_rng.child("a7-ft").fork_generator(), 3,
           masks=result.masks)
    pruned_acc = _accuracy(dense, test)
    dense_bytes = sum(
        arr.nbytes for l in dense.layers for arr in l.params().values()
    )
    print("\nA7 - compression vs partitioning")
    print(f"  inference: dense top-1 {dense_acc:.3f} ({dense_bytes} B) -> "
          f"pruned-to-{KEEP:.0%}+fine-tuned top-1 {pruned_acc:.3f} "
          f"({result.sparse_bytes} B sparse)")
    assert result.sparse_bytes < 0.3 * dense_bytes
    assert pruned_acc > dense_acc - 0.2  # compression works for inference

    # -- 2. compression does not give confidential training ----------------
    sparse_from_scratch = cifar10_10layer(
        bench_rng.child("a7-init").fork_generator(), width_scale=W10
    )
    masks = prune_by_magnitude(sparse_from_scratch, keep_fraction=KEEP).masks
    _train(sparse_from_scratch, train,
           bench_rng.child("a7-b2").fork_generator(), EPOCHS, masks=masks)
    scratch_acc = _accuracy(sparse_from_scratch, test)

    platform = SgxPlatform(rng=bench_rng.child("a7-part"))
    enclave = platform.create_enclave("training")
    enclave.init()
    partitioned_net = cifar10_10layer(
        bench_rng.child("a7-init").fork_generator(), width_scale=W10
    )
    partitioned = PartitionedNetwork(partitioned_net, 4, enclave)
    optimizer = Sgd(0.02, 0.9)
    batch_rng = bench_rng.child("a7-b3").fork_generator()
    for _ in range(EPOCHS):
        for xb, yb in iterate_minibatches(train.x, train.y, 32, rng=batch_rng):
            partitioned.train_batch(xb, yb, optimizer)
    partitioned_acc = _accuracy(partitioned_net, test)

    print(f"  training:  mask-constrained sparse-from-scratch top-1 "
          f"{scratch_acc:.3f} vs partitioned dense top-1 {partitioned_acc:.3f}")
    # Partitioned dense training clearly beats pruning-before-training.
    assert partitioned_acc > scratch_acc + 0.1
    # And pruning-before-training is what compression-in-the-enclave would
    # force, since the pre-training magnitudes are meaningless.
    assert sparsity(sparse_from_scratch) > 0.8

    benchmark.pedantic(prune_by_magnitude, args=(dense, KEEP),
                       rounds=1, iterations=1)
