"""Ablation A1 — dynamic vs static partition re-assessment.

The paper's delta over prior partitioned-inference work [18] is that the
optimal partition is re-assessed after every epoch, because semi-trained
weights change what each layer exposes. This ablation compares the
information exposure of (a) a partition fixed from the epoch-1 assessment
against (b) the per-epoch re-assessed partition, across all epochs.

Metric: the *exposure margin* of the IR that actually leaves the enclave —
``uniform_baseline - kl_min(exposed layer)``, positive when the exposed IR
still leaks. The dynamic policy should never do worse than the static one.
"""

import numpy as np

from repro.core.assessment import ExposureAssessor
from repro.nn.zoo import cifar10_18layer

W18 = 0.10  # must match benchmarks/conftest.py


def _exposure_margin(result, partition):
    """How far below the safety baseline the exposed IR sits (>0 leaks)."""
    exposed_layer = result.layers[min(partition, len(result.layers)) - 1]
    return result.uniform_baseline - exposed_layer.kl_min


def test_ablation_dynamic_partition(fig4_runs, oracle, cifar, bench_rng, benchmark):
    _, test = cifar
    snapshots = fig4_runs["enclave"].snapshots
    assessor = ExposureAssessor(oracle, max_channels_per_layer=4)
    inputs = test.x[:2]

    results = []
    for weights in snapshots:
        model = cifar10_18layer(bench_rng.child("a1").fork_generator(),
                                width_scale=W18)
        model.set_weights(weights)
        results.append(assessor.assess(model, inputs))

    static_partition = results[0].optimal_partition
    print(f"\nA1 - static partition (from epoch 1): {static_partition} layers")
    print(f"{'epoch':>5} {'dynamic k':>10} {'static margin':>14} {'dynamic margin':>15}")
    static_margins, dynamic_margins = [], []
    for epoch, result in enumerate(results, start=1):
        static_margin = _exposure_margin(result, static_partition)
        dynamic_margin = _exposure_margin(result, result.optimal_partition)
        static_margins.append(static_margin)
        dynamic_margins.append(dynamic_margin)
        print(f"{epoch:>5} {result.optimal_partition:>10} "
              f"{static_margin:>14.3f} {dynamic_margin:>15.3f}")

    # Claim 1: the dynamic policy's exposed IR never leaks (margin <= 0).
    assert all(m <= 1e-9 for m in dynamic_margins)
    # Claim 2: dynamic is never worse than static, epoch by epoch.
    assert all(d <= s + 1e-9 for d, s in zip(dynamic_margins, static_margins))
    # Claim 3: re-assessment is meaningful — the optimal partition is not
    # constant across the whole run, or static leaks at least once.
    partitions = [r.optimal_partition for r in results]
    assert len(set(partitions)) > 1 or any(m > 0 for m in static_margins)

    model = cifar10_18layer(bench_rng.child("a1b").fork_generator(),
                            width_scale=W18)
    model.set_weights(snapshots[0])
    benchmark.pedantic(assessor.assess, args=(model, inputs[:1]),
                       rounds=1, iterations=1)
