"""Ablation A2 — fingerprint layer choice.

The paper fingerprints at the penultimate layer because it "contains the
most important features extracted through all previous layers". This
ablation measures poison-discovery precision when fingerprints instead
come from an earlier layer of the same trojaned model.
"""

import numpy as np
from scipy.spatial.distance import cdist

from repro.core.fingerprint import normalize_fingerprints

K = 9


def _layer_fingerprints(model, x, layer_index, batch=64):
    chunks = []
    for start in range(0, x.shape[0], batch):
        captured = model.forward_collect(x[start : start + batch], [layer_index])
        chunks.append(captured[layer_index].reshape(-1 if False else captured[layer_index].shape[0], -1))
    return normalize_fingerprints(np.concatenate(chunks))


def _precision_at_k(query_fps, pool_fps, pool_is_bad, k=K):
    distances = cdist(query_fps, pool_fps)
    hits = 0
    for row in distances:
        order = np.argsort(row)[:k]
        hits += int(pool_is_bad[order].sum())
    return hits / (len(query_fps) * k)


def test_ablation_fingerprint_layer(trojan_world, benchmark):
    model = trojan_world["model"]
    db = trojan_world["database"]
    trojaned_test = trojan_world["outcome"].trojaned_test

    # Candidate pool: all class-0 linkage records, reconstructed per layer.
    class0_fps, class0_indices = db.by_label(0)
    is_bad = np.array([db.record(i).kind != "normal" for i in class0_indices])

    # Rebuild the class-0 pool inputs from the experiment's datasets so we
    # can fingerprint them at arbitrary layers.
    train0 = trojan_world["train"].of_class(0)
    poisoned = trojan_world["outcome"].poisoned_train
    mislabeled = trojan_world["mislabeled"]
    pool_x = np.concatenate([train0.x, poisoned.x, mislabeled.x])
    pool_bad = np.concatenate([
        np.zeros(len(train0), dtype=bool),
        np.ones(len(poisoned), dtype=bool),
        np.ones(len(mislabeled), dtype=bool),
    ])

    penultimate = model.penultimate_index()
    # Earlier comparison points: the first conv layer and the embedding
    # dense layer (indices depend on the face net topology).
    candidate_layers = [0, penultimate - 1, penultimate]

    print("\nA2 - poison-discovery precision@9 by fingerprint layer")
    precisions = {}
    for layer in candidate_layers:
        query_fps = _layer_fingerprints(model, trojaned_test.x, layer)
        pool_fps = _layer_fingerprints(model, pool_x, layer)
        precision = _precision_at_k(query_fps, pool_fps, pool_bad)
        precisions[layer] = precision
        tag = "penultimate" if layer == penultimate else f"layer {layer}"
        print(f"  {tag:>12}: precision@9 = {precision:.3f}")

    # Claim: the penultimate layer is at least as discriminative as the
    # shallow layer, and achieves high precision in absolute terms.
    assert precisions[penultimate] >= precisions[0] - 0.05
    assert precisions[penultimate] > 0.7

    benchmark.pedantic(
        _layer_fingerprints, args=(model, trojaned_test.x[:8], penultimate),
        rounds=1, iterations=1,
    )
