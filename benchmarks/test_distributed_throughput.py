"""Distributed training throughput: N enclave workers vs one.

The scaling claim behind ``repro.distributed``: data-parallel rounds cost
the *slowest worker* (plus secure aggregation), not the sum of workers,
because each worker trains its shard on its own SGX platform
concurrently. On the simulated clock — the same
:class:`~repro.enclave.platform.CostModel` arithmetic the paper's
overhead figures run on — a 4-worker deployment must push at least **2x**
the epoch throughput of the single-worker baseline on the same data, same
seed, same architecture (sub-linear vs 4x because aggregation,
attestation, and the masking protocol are serial round overhead).

Each run's trajectory lands in ``BENCH_distributed.json`` at the repo
root: per-N examples/simulated-second, per-round wall-clock, and the
measured speedups, so regressions in the aggregation path show up as a
shrinking ratio.

Set ``REPRO_BENCH_SMOKE=1`` for the reduced CI configuration.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.data.datasets import synthetic_cifar
from repro.distributed import DistributedCoordinator
from repro.enclave.attestation import AttestationService
from repro.federation.participant import TrainingParticipant
from repro.federation.provisioning import provision_key
from repro.nn.config import network_to_config
from repro.nn.zoo import tiny_testnet
from repro.utils.rng import RngStream
from repro.utils.serialization import stable_hash

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
N_TRAIN = 128 if SMOKE else 256
ROUNDS = 1 if SMOKE else 2
BATCH = 16
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_distributed.json"


def _factory(generator):
    return tiny_testnet(generator, input_shape=(8, 8, 3), num_classes=4)


def _run(tmp_path, num_workers, seed=4242):
    """One distributed run; returns its trajectory entry."""
    rng = RngStream(seed, "distributed-bench")
    network_config = network_to_config(
        _factory(rng.child("reference-init").generator)
    )
    hyper = {"epochs": ROUNDS, "batch_size": BATCH,
             "learning_rate": 0.05, "momentum": 0.9}
    service = AttestationService()
    train, _ = synthetic_cifar(rng.child("data"), num_train=N_TRAIN,
                               num_test=16, num_classes=4, shape=(8, 8, 3))
    people = [TrainingParticipant("p0", train, rng.child("p0"))]
    datasets = [p.encrypt_dataset() for p in people]

    def provisioner(enclave):
        for person in people:
            provision_key(person, enclave, service,
                          expected_mrenclave=enclave.mrenclave)

    coordinator = DistributedCoordinator(
        num_workers=num_workers,
        network_factory=_factory,
        network_config=network_config,
        hyperparameters=hyper,
        partition=1,
        batch_size=BATCH,
        learning_rate=0.05,
        momentum=0.9,
        rng=rng.child("distributed"),
        attestation_service=service,
        provisioner=provisioner,
        init_generator_factory=lambda: rng.child("model-init").generator,
        checkpoint_root=tmp_path / f"n{num_workers}",
        config_digest=stable_hash(network_config, hyper),
    )
    coordinator.distribute(datasets)
    wall_started = time.perf_counter()
    reports = coordinator.run(ROUNDS)
    wall_seconds = time.perf_counter() - wall_started
    simulated = coordinator.clock.now
    # One round trains every shard once = N_TRAIN examples per round.
    throughput = (N_TRAIN * ROUNDS) / simulated
    return {
        "workers": num_workers,
        "rounds": ROUNDS,
        "examples": N_TRAIN,
        "simulated_seconds": round(simulated, 6),
        "simulated_seconds_per_round": round(simulated / ROUNDS, 6),
        "aggregation_seconds": round(
            sum(r.aggregation_seconds for r in reports), 6
        ),
        "examples_per_simulated_second": round(throughput, 2),
        "wall_seconds": round(wall_seconds, 3),
        "final_loss": round(reports[-1].mean_loss, 6),
    }


class TestDistributedThroughput:
    def test_four_workers_double_epoch_throughput(self, tmp_path):
        runs = {n: _run(tmp_path, n) for n in (1, 2, 4)}
        t1 = runs[1]["examples_per_simulated_second"]
        t2 = runs[2]["examples_per_simulated_second"]
        t4 = runs[4]["examples_per_simulated_second"]
        speedup4 = t4 / t1
        speedup2 = t2 / t1
        print(f"\nthroughput (examples/simulated-second): "
              f"N=1 {t1:.1f}  N=2 {t2:.1f}  N=4 {t4:.1f}")
        print(f"speedup: N=2 {speedup2:.2f}x  N=4 {speedup4:.2f}x")

        trajectory = {
            "benchmark": "distributed_throughput",
            "smoke": SMOKE,
            "config": {
                "network": "tiny_testnet(8x8x3, 4 classes)",
                "partition": 1,
                "batch_size": BATCH,
                "train_examples": N_TRAIN,
                "rounds": ROUNDS,
            },
            "runs": [runs[n] for n in sorted(runs)],
            "speedup_n2_over_n1": round(speedup2, 3),
            "speedup_n4_over_n1": round(speedup4, 3),
        }
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")

        # The tentpole's scaling acceptance bar.
        assert speedup4 >= 2.0, (
            f"4-worker speedup {speedup4:.2f}x below the 2x bar"
        )
        # Scaling must be monotone, and sub-linear (serial aggregation
        # overhead exists; a super-linear result means the simulated
        # clock accounting broke).
        assert t1 < t2 < t4
        assert speedup4 <= 4.5

    def test_losses_comparable_across_scales(self, tmp_path):
        """Throughput must not come from training less: per-round losses
        at N=4 stay within a band of the N=1 trajectory."""
        single = _run(tmp_path / "s", 1)
        quad = _run(tmp_path / "q", 4)
        assert abs(single["final_loss"] - quad["final_loss"]) < 0.6
