"""Ablation A3 — source authentication.

The mechanism that makes illegitimate-channel injection fail: every record
is AEAD-authenticated with the contributor's provisioned key. This bench
measures rejection completeness for the three attack channels (forged
payloads, relabelled records, unregistered sources) and the throughput of
in-enclave authenticated decryption.
"""

import dataclasses

import numpy as np

from repro.data.datasets import synthetic_cifar
from repro.enclave.attestation import AttestationService
from repro.enclave.platform import SgxPlatform
from repro.federation.participant import TrainingParticipant
from repro.federation.provisioning import provision_key
from repro.federation.server import TrainingServer


def _world(bench_rng):
    rng = bench_rng.child("a3")
    platform = SgxPlatform(rng=rng.child("platform"))
    service = AttestationService()
    server = TrainingServer(platform, service, rng.child("server"))
    server.build_training_enclave("[net]\ninput = 8,8,3\n[softmax]\n[cost]\n")
    train, _ = synthetic_cifar(rng.child("data"), num_train=120, num_test=10,
                               num_classes=4, shape=(8, 8, 3))
    shares = train.split([1 / 3, 1 / 3, 1 / 3], rng=rng.child("sp").generator)
    participants = []
    for i, share in enumerate(shares):
        participant = TrainingParticipant(f"p{i}", share, rng.child(f"p{i}"))
        provision_key(participant, server.enclave, service,
                      expected_mrenclave=server.enclave.mrenclave)
        participants.append(participant)
    return rng, server, participants


def test_ablation_authentication(bench_rng, benchmark):
    rng, server, participants = _world(bench_rng)

    # Channel 1: honest submissions.
    for participant in participants[:2]:
        server.submit(participant.encrypt_dataset())
    # Channel 2: forged payloads + relabelled records from a compromised
    # network path.
    tampered = participants[2].encrypt_dataset()
    for i in range(0, 20, 2):
        rec = tampered.records[i]
        tampered.records[i] = dataclasses.replace(
            rec, sealed=bytes([rec.sealed[0] ^ 0xFF]) + rec.sealed[1:]
        )
    for i in range(1, 20, 2):
        rec = tampered.records[i]
        tampered.records[i] = dataclasses.replace(rec, label=(rec.label + 1) % 4)
    server.submit(tampered)
    # Channel 3: an unregistered injector with its own key.
    from repro.data.datasets import Dataset

    gen = rng.child("intruder-data").generator
    intruder = TrainingParticipant(
        "intruder",
        Dataset(x=gen.random((15, 8, 8, 3)).astype(np.float32),
                y=gen.integers(0, 4, size=15)),
        rng.child("intruder"),
    )
    server.submit(intruder.encrypt_dataset())

    summary = server.decrypt_submissions()
    print("\nA3 - authentication outcomes")
    print(f"  accepted: {summary.accepted}")
    print(f"  rejected (tampered/relabelled): {summary.rejected_tampered}")
    print(f"  rejected (unregistered source): {summary.rejected_unregistered}")

    assert summary.accepted == 80 + 20  # 2 honest shares + untampered half
    assert summary.rejected_tampered == 20
    assert summary.rejected_unregistered == 15
    # No tampered or injected record reaches the training set.
    x, y, sources, _ = server.staged_training_data()
    assert set(sources) == {"p0", "p1", "p2"}
    assert x.shape[0] == summary.accepted

    # Benchmark kernel: in-enclave authenticated decryption of one share.
    def decrypt_one_share():
        rng2, server2, participants2 = _world(bench_rng)
        server2.submit(participants2[0].encrypt_dataset())
        return server2.decrypt_submissions()

    result = benchmark.pedantic(decrypt_one_share, rounds=1, iterations=1)
    assert result.accepted == 40
