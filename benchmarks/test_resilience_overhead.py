"""Resilience runtime overhead: checkpointing cost and recovery latency.

The ROADMAP's robustness goal is that fault tolerance must be affordable:
sealed checkpoints ride along with training without distorting it. This
bench measures

* **checkpoint overhead** — wall-time cost of running the supervised
  loop with epoch-boundary + mid-epoch checkpoints versus the bare
  trainer, on identical seeds (the model output is bitwise identical, so
  any delta is pure runtime overhead);
* **recovery latency** — how long a restore (enclave rebuild included)
  takes when a chaos schedule aborts the enclave mid-run;
* **checkpoint footprint** — bytes on disk per checkpoint stay bounded.

Set ``REPRO_BENCH_SMOKE=1`` for the reduced CI configuration.
"""

import os
import time

import numpy as np
import pytest

from repro.core.partition import PartitionedNetwork
from repro.core.partitioned_training import ConfidentialTrainer
from repro.data.datasets import synthetic_cifar
from repro.enclave.platform import SgxPlatform
from repro.nn.optimizers import Sgd
from repro.nn.zoo import tiny_testnet
from repro.resilience import (CheckpointManager, FaultPlan, FaultSpec,
                              ResilientTrainer)
from repro.utils.rng import RngStream

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
EPOCHS = 2 if SMOKE else 4
N_TRAIN = 96 if SMOKE else 256
BATCH = 16


def _build(seed=4242):
    stream = RngStream(seed, "resilience-bench")
    platform = SgxPlatform(rng=stream.child("platform"))
    enclave = platform.create_enclave("train")
    enclave.init()
    net = tiny_testnet(stream.child("net").generator)
    net.set_dropout_rng(enclave.trusted_rng.generator)
    trainer = ConfidentialTrainer(
        PartitionedNetwork(net, 1, enclave), Sgd(0.05, 0.9),
        batch_rng=enclave.trusted_rng.stream.child("batches").generator,
        batch_size=BATCH,
    )
    train, _ = synthetic_cifar(stream.child("data"), num_train=N_TRAIN,
                               num_test=32, num_classes=4, shape=(8, 8, 3))
    return trainer, enclave, platform, train


class TestResilienceOverhead:
    def test_checkpointing_overhead_is_bounded(self, tmp_path):
        trainer_bare, _, _, train = _build()
        started = time.perf_counter()
        bare_reports = trainer_bare.train(train.x, train.y, EPOCHS)
        bare_seconds = time.perf_counter() - started

        trainer_ck, _, _, train = _build()
        resilient = ResilientTrainer(trainer_ck, CheckpointManager(tmp_path))
        started = time.perf_counter()
        ck_reports = resilient.run(train.x, train.y, EPOCHS,
                                   checkpoint_every_batches=2)
        ck_seconds = time.perf_counter() - started

        # Same model, so the comparison is apples to apples.
        assert [r.mean_loss for r in ck_reports] == \
            [r.mean_loss for r in bare_reports]
        # Checkpointing every 2 batches is the aggressive end; even there
        # the supervised run must stay within 3x of the bare loop.
        assert ck_seconds < max(3.0 * bare_seconds, bare_seconds + 2.0), (
            f"checkpointing overhead too high: bare {bare_seconds:.3f}s "
            f"vs supervised {ck_seconds:.3f}s"
        )
        counters = resilient.telemetry.snapshot()["counters"]
        assert counters["checkpoints_written"] >= EPOCHS + 1

    def test_recovery_latency_and_footprint(self, tmp_path):
        trainer, _, platform, train = _build()
        plan = FaultPlan([FaultSpec("enclave-abort", epoch=1, batch=1)])

        def rebuild():
            enclave = platform.create_enclave("train")
            enclave.init()
            return enclave

        resilient = ResilientTrainer(trainer, CheckpointManager(tmp_path),
                                     enclave_factory=rebuild,
                                     fault_plan=plan)
        resilient.run(train.x, train.y, EPOCHS, checkpoint_every_batches=2)
        snapshot = resilient.telemetry.snapshot()
        assert snapshot["counters"]["enclave_rebuilds"] == 1
        restore = snapshot["stages"]["checkpoint_restore"]
        assert restore["count"] >= 1
        assert restore["max"] < 5.0, "restore latency above 5s"
        per_checkpoint = (snapshot["counters"]["checkpoint_bytes"]
                          / snapshot["counters"]["checkpoints_written"])
        # tiny_testnet weights are ~60KB; sealed + plain + manifest must
        # stay in the same order of magnitude, not blow up.
        assert per_checkpoint < 512 * 1024
