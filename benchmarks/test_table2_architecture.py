"""Table II — the 18-layer CIFAR-10 architecture.

Regenerates the paper's Table II rows at full width and benchmarks one
forward pass.
"""

import numpy as np

from repro.nn.layers import DropoutLayer
from repro.nn.zoo import cifar10_18layer

EXPECTED = [
    ("conv", 128, (28, 28, 128)),
    ("conv", 128, (28, 28, 128)),
    ("conv", 128, (28, 28, 128)),
    ("max", None, (14, 14, 128)),
    ("dropout", None, (14, 14, 128)),
    ("conv", 256, (14, 14, 256)),
    ("conv", 256, (14, 14, 256)),
    ("conv", 256, (14, 14, 256)),
    ("max", None, (7, 7, 256)),
    ("dropout", None, (7, 7, 256)),
    ("conv", 512, (7, 7, 512)),
    ("conv", 512, (7, 7, 512)),
    ("conv", 512, (7, 7, 512)),
    ("dropout", None, (7, 7, 512)),
    ("conv", 10, (7, 7, 10)),
    ("avg", None, (10,)),
    ("softmax", None, (10,)),
    ("cost", None, (10,)),
]


def test_table2(benchmark):
    net = cifar10_18layer(np.random.default_rng(0), width_scale=1.0)
    print("\n" + net.summary())

    shapes = net.layer_output_shapes()
    for i, (kind, filters, out_shape) in enumerate(EXPECTED):
        assert net.layers[i].kind == kind, f"layer {i + 1}"
        if filters is not None:
            assert net.layers[i].filters == filters, f"layer {i + 1}"
        assert shapes[i] == out_shape, f"layer {i + 1}"
    dropouts = [l for l in net.layers if isinstance(l, DropoutLayer)]
    assert [l.probability for l in dropouts] == [0.5, 0.5, 0.5]

    x = np.random.default_rng(1).random((2, 28, 28, 3)).astype(np.float32)
    benchmark(net.forward, x)
