"""Ingestion-plane throughput: concurrent contributors, durable resume.

The ROADMAP north star is a submission path that absorbs heavy traffic.
This bench drives the full `repro.ingest` pipeline — attested
provisioning, chunked journaled transfer, in-enclave validation, ledger
commit — and checks:

* **sustained concurrent throughput** — four contributors streaming
  simultaneously commit records end-to-end at >= 300 records/s (the
  floor is deliberately conservative for CI hardware; typical machines
  run an order of magnitude above it);
* **fault-injection resume** — an upload killed after N chunks and
  resumed from the journal produces a ledger whose manifest digest is
  byte-identical to an uninterrupted upload of the same data;
* **quarantine discipline** — tampered and relabelled records land in
  the quarantine lane with audit-chain entries and never reach the
  committed lane training reads.

Set ``REPRO_BENCH_SMOKE=1`` to run a reduced-size smoke configuration
(used by the CI benchmark job to catch throughput regressions fast).
"""

import dataclasses
import os
import threading
import time

from repro.data.datasets import synthetic_cifar
from repro.data.encryption import iter_encrypted_records
from repro.enclave.attestation import AttestationService
from repro.enclave.platform import SgxPlatform
from repro.federation.participant import TrainingParticipant
from repro.federation.provisioning import provision_key
from repro.federation.server import TrainingServer
from repro.ingest import (ContributionLedger, GatewayConfig, IngestGateway,
                          ValidationConfig, ValidationPool, chunk_stream)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CONTRIBUTORS = 4
RECORDS_PER = 400 if SMOKE else 2_000
CHUNK = 128
SHAPE = (8, 8, 3)
CLASSES = 4
MIN_RECORDS_PER_S = 300


def _world(rng, ledger_path, spool_path, num_contributors=CONTRIBUTORS,
           records_per=RECORDS_PER):
    platform = SgxPlatform(rng=rng.child("platform"))
    attestation = AttestationService()
    server = TrainingServer(platform, attestation, rng.child("server"))
    server.build_training_enclave("[net]\ninput = 8,8,3\n[softmax]\n[cost]\n")
    ledger = ContributionLedger.create(ledger_path)
    validator = ValidationPool(
        server.enclave,
        ValidationConfig(num_classes=CLASSES, input_shape=SHAPE, workers=4),
        ledger=ledger,
    )
    gateway = IngestGateway(
        ledger, validator, spool_dir=spool_path,
        config=GatewayConfig(chunk_records=CHUNK,
                             rate_capacity=records_per * num_contributors,
                             rate_refill_per_s=records_per * num_contributors),
    )
    contributors = []
    for i in range(num_contributors):
        data, _ = synthetic_cifar(rng.child(f"data-{i}"),
                                  num_train=records_per, num_test=1,
                                  num_classes=CLASSES, shape=SHAPE)
        c = TrainingParticipant(f"c{i}", data, rng.child(f"p{i}"))
        provision_key(c, server.enclave, attestation,
                      expected_mrenclave=server.enclave.mrenclave)
        contributors.append(c)
    return server, ledger, validator, gateway, contributors


def _encrypted(contributor):
    return list(iter_encrypted_records(contributor.dataset, contributor.key,
                                       contributor.participant_id))


def test_ingest_throughput(bench_rng, tmp_path_factory, benchmark):
    rng = bench_rng.child("ingest")
    root = tmp_path_factory.mktemp("ingest")
    server, ledger, validator, gateway, contributors = _world(
        rng, root / "ledger", root / "spool"
    )

    # Client-side sealing happens on contributor hardware; pre-encrypt so
    # the measured window is the server-side plane (journal + validate +
    # commit), which is what has to survive heavy traffic.
    payloads = {c.participant_id: _encrypted(c) for c in contributors}

    receipts = {}

    def upload(contributor):
        session = gateway.open_session(contributor.participant_id)
        for chunk in chunk_stream(iter(payloads[contributor.participant_id]),
                                  CHUNK):
            session.send_chunk(chunk)
        receipts[contributor.participant_id] = session.complete()

    started = time.perf_counter()
    threads = [threading.Thread(target=upload, args=(c,))
               for c in contributors]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    total = CONTRIBUTORS * RECORDS_PER
    rate = total / elapsed

    print(f"\ningest throughput: {total} records from {CONTRIBUTORS} "
          f"concurrent contributors in {elapsed:.2f}s ({rate:,.0f} rec/s)")
    print(gateway.telemetry.render())

    # Claim 1: sustained concurrent throughput above the floor.
    assert len(ledger) == total
    assert all(r.committed == RECORDS_PER for r in receipts.values())
    assert rate >= MIN_RECORDS_PER_S, (
        f"ingest ran at {rate:.0f} rec/s < {MIN_RECORDS_PER_S} rec/s floor"
    )

    # Claim 2: fault-injection resume reproduces the uninterrupted ledger
    # bit for bit (manifest digests equal).
    digests = []
    for variant in ("uninterrupted", "faulted"):
        vrng = bench_rng.child("ingest-resume")  # same seed both times
        vroot = tmp_path_factory.mktemp(f"resume-{variant}")
        _, vledger, _, vgateway, (victim,) = _world(
            vrng, vroot / "ledger", vroot / "spool",
            num_contributors=1, records_per=RECORDS_PER,
        )
        records = _encrypted(victim)
        chunks = list(chunk_stream(iter(records), CHUNK))
        session = vgateway.open_session(victim.participant_id)
        if variant == "faulted":
            crash_after = len(chunks) // 2
            for chunk in chunks[:crash_after]:
                session.send_chunk(chunk)
            vgateway.evict_session(victim.participant_id)  # client died
            session = vgateway.resume_session(victim.participant_id)
            assert session.next_seq == crash_after  # resumes at chunk N+1
            assert session.acked_records == crash_after * CHUNK
            remaining = chunks[crash_after:]
        else:
            remaining = chunks
        for chunk in remaining:
            session.send_chunk(chunk)
        receipt = session.complete()
        assert receipt.committed == RECORDS_PER
        digests.append(vledger.manifest_digest())
    assert digests[0] == digests[1], (
        "resumed ledger is not byte-identical to the uninterrupted one"
    )
    print(f"resume parity: interrupted and uninterrupted ledgers share "
          f"manifest digest {digests[0].hex()[:16]}…")

    # Claim 3: tampered + relabelled records are quarantined with audit
    # entries and never reach the lane training reads.
    hrng = bench_rng.child("ingest-hostile")
    hroot = tmp_path_factory.mktemp("hostile")
    hserver, hledger, hvalidator, hgateway, (attacker,) = _world(
        hrng, hroot / "ledger", hroot / "spool",
        num_contributors=1, records_per=CHUNK,
    )
    records = _encrypted(attacker)
    tampered = records[0]
    records[0] = dataclasses.replace(
        tampered, sealed=bytes([tampered.sealed[0] ^ 0xFF]) + tampered.sealed[1:]
    )
    relabelled = records[1]
    records[1] = dataclasses.replace(
        relabelled, label=(relabelled.label + 1) % CLASSES
    )
    session = hgateway.open_session(attacker.participant_id)
    for chunk in chunk_stream(iter(records), CHUNK):
        session.send_chunk(chunk)
    receipt = session.complete()
    assert receipt.quarantined == 2 and receipt.committed == CHUNK - 2
    assert hledger.quarantined_records == 2
    verdicts = [e.details["verdict"]
                for e in hvalidator.audit.events("ingest-validate")]
    assert verdicts.count("tampered") == 2  # relabelling breaks the AAD tag
    assert hvalidator.verify_audit_chain()
    committed_digests = {r.nonce for r in hledger.iter_records()}
    assert records[0].nonce not in committed_digests
    assert records[1].nonce not in committed_digests
    hserver.from_ledger(hledger)
    summary = hserver.decrypt_submissions()
    assert summary.accepted == CHUNK - 2 and summary.rejected_tampered == 0
    print("quarantine: 2 hostile records audited + quarantined, 0 reached "
          "training")

    # Operating point for pytest-benchmark: validating one 128-record
    # batch through the in-enclave AEAD + gating pipeline.
    batch = _encrypted(contributors[0])[:CHUNK]
    bench_pool = ValidationPool(
        server.enclave,
        ValidationConfig(num_classes=CLASSES, input_shape=SHAPE, workers=4),
    )
    benchmark(bench_pool.validate, contributors[0].participant_id, batch)
