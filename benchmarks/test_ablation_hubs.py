"""Ablation A5 — hierarchical learning hubs (Section IV-B "Performance").

Paper sketch: to exploit SGD parallelism, multiple enclave-backed hubs can
each train a sub-model on their participant subgroup, with a root server
periodically merging updates Federated-Learning style. This bench compares
two hubs against one single-enclave run on the same pooled data: accuracy
should be comparable while each hub's enclave handles half the data (so
per-platform simulated time drops).
"""

import numpy as np

from repro.core.partition import PartitionedNetwork
from repro.core.partitioned_training import ConfidentialTrainer
from repro.enclave.platform import SgxPlatform
from repro.federation.hubs import HubAggregator, LearningHub
from repro.nn.optimizers import Sgd
from repro.nn.zoo import cifar10_10layer

W10 = 0.12
EPOCHS = 8
PARTITION = 2


def test_ablation_hubs(bench_rng, cifar, benchmark):
    train, test = cifar
    factory = lambda: cifar10_10layer(bench_rng.child("a5-init").fork_generator(),
                                      width_scale=W10)

    # Single-enclave baseline.
    platform_single = SgxPlatform(rng=bench_rng.child("a5-single"))
    enclave = platform_single.create_enclave("training")
    enclave.init()
    single = ConfidentialTrainer(
        PartitionedNetwork(factory(), PARTITION, enclave), Sgd(0.02, 0.9),
        batch_rng=bench_rng.child("a5-sb").fork_generator(), batch_size=32,
    )
    single.train(train.x, train.y, EPOCHS)
    single_probs = single.partitioned.network.predict(test.x)
    single_acc = float(np.mean(single_probs.argmax(1) == test.y))
    single_time = platform_single.clock.now

    # Two hubs, each with half the participants' data, merged per round.
    groups = None
    from repro.data.datasets import Dataset

    order = bench_rng.child("a5-split").generator.permutation(len(train.x))
    half = len(order) // 2
    groups = [
        Dataset(x=train.x[order[:half]], y=train.y[order[:half]]),
        Dataset(x=train.x[order[half:]], y=train.y[order[half:]]),
    ]
    platforms = [SgxPlatform(rng=bench_rng.child(f"a5-hub{i}")) for i in range(2)]
    hubs = [
        LearningHub(f"hub{i}", platforms[i], factory, PARTITION, [groups[i]],
                    bench_rng.child(f"a5-h{i}"), batch_size=32,
                    learning_rate=0.02)
        for i in range(2)
    ]
    aggregator = HubAggregator(hubs, global_model=factory())
    aggregator.train(rounds=EPOCHS, epochs_per_round=1)
    hub_probs = aggregator.global_model.predict(test.x)
    hub_acc = float(np.mean(hub_probs.argmax(1) == test.y))
    hub_times = [p.clock.now for p in platforms]

    print("\nA5 - hierarchical hubs vs single enclave")
    print(f"  single enclave: top-1 {single_acc:.3f}, simulated {single_time:.3f}s")
    print(f"  two hubs:       top-1 {hub_acc:.3f}, simulated per hub "
          f"{hub_times[0]:.3f}s / {hub_times[1]:.3f}s (parallel)")

    # Claim 1: both learn (well above the 0.1 chance level).
    assert single_acc > 0.4 and hub_acc > 0.4
    # Claim 2: hub accuracy is in the same band as the single enclave
    # (model averaging converges more slowly per unit of data, so a
    # moderate gap at equal round counts is expected).
    assert hub_acc > single_acc - 0.3
    # Claim 3: each hub's enclave platform does roughly half the work, so
    # wall-clock (hubs run in parallel) improves.
    assert max(hub_times) < 0.75 * single_time

    benchmark.pedantic(hubs[0].train_epoch, args=(EPOCHS,), rounds=1,
                       iterations=1)
