"""Fig. 7 — LLE visualization of trojaned face-data fingerprints.

Paper claim: projecting the fingerprints of all class-0 (target) data to
2-D via locally linear embedding shows the trojaned *training* data and
trojaned *testing* data overlapping each other while both sit apart from
the normal training data — even though the trojaned model assigns all of
them the same class.

The bench regenerates the embedding, prints an ASCII scatter, and asserts
the cluster geometry quantitatively (in both the native fingerprint space
and the 2-D embedding).
"""

import numpy as np
from scipy.spatial.distance import cdist

from repro.analysis.lle import locally_linear_embedding


def _ascii_scatter(points, labels, width=64, height=20):
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.maximum(hi - lo, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    glyphs = {"normal": "+", "poisoned": "x", "test": "o"}
    for point, label in zip(points, labels):
        u = int((point[0] - lo[0]) / span[0] * (width - 1))
        v = int((point[1] - lo[1]) / span[1] * (height - 1))
        grid[height - 1 - v][u] = glyphs[label]
    legend = "  legend: + normal train   x trojaned train   o trojaned test"
    return "\n".join("".join(row) for row in grid) + "\n" + legend


def test_fig7(trojan_world, benchmark):
    fingerprinter = trojan_world["fingerprinter"]
    normal = trojan_world["train"].of_class(0)
    poisoned = trojan_world["outcome"].poisoned_train
    trojaned_test = trojan_world["outcome"].trojaned_test

    f_normal = fingerprinter.fingerprint(normal.x)
    f_poisoned = fingerprinter.fingerprint(poisoned.x)
    f_test = fingerprinter.fingerprint(trojaned_test.x)

    points = np.concatenate([f_normal, f_poisoned, f_test])
    labels = (["normal"] * len(f_normal) + ["poisoned"] * len(f_poisoned)
              + ["test"] * len(f_test))
    embedding = locally_linear_embedding(points, n_neighbors=8, n_components=2)

    print("\nFig. 7 - LLE of class-0 fingerprints (trojaned face model)")
    print(_ascii_scatter(embedding, labels))

    # Shape claim 1 (native space): trojaned test data cluster with the
    # poisoned training data, not the normal training data.
    to_poisoned = cdist(f_test, f_poisoned).min(axis=1).mean()
    to_normal = cdist(f_test, f_normal).min(axis=1).mean()
    print(f"  mean nearest distance: test->poisoned {to_poisoned:.4f}, "
          f"test->normal {to_normal:.4f}")
    assert to_poisoned < 0.5 * to_normal

    # Shape claim 2 (embedded space): the same overlap/separation survives
    # the 2-D projection, which is what the figure displays.
    e_normal = embedding[: len(f_normal)]
    e_poisoned = embedding[len(f_normal) : len(f_normal) + len(f_poisoned)]
    e_test = embedding[len(f_normal) + len(f_poisoned) :]
    overlap = cdist(e_test, e_poisoned).min(axis=1).mean()
    separation = cdist(e_test, e_normal).min(axis=1).mean()
    assert overlap < separation

    # Benchmark kernel: the LLE projection itself.
    benchmark.pedantic(
        locally_linear_embedding, args=(points,),
        kwargs={"n_neighbors": 8, "n_components": 2}, rounds=1, iterations=1,
    )
