"""Section VII — the security analysis, measured.

Not a table or figure, but the paper devotes a section to three training
data inference attacks and why CalTrain resists them. This bench runs each
attack in the condition where the literature shows it working AND in the
CalTrain condition, and asserts the contrast:

* **Model Inversion** (Fredrikson et al.) — works on shallow models,
  yields obscure outputs on deep convolutional models (the paper's open
  problem), independent of CalTrain.
* **Input Reconstruction from IRs** — works with white-box FrontNet
  access, fails against a surrogate (the enclave keeps the real one).
* **GAN attack** (Hitaj et al.) — needs the iterative update channel of
  distributed training; against CalTrain's single released model the
  generator fools the classifier without recovering private content.
"""

import numpy as np

from repro.attacks.gan_attack import GanAttack
from repro.attacks.inversion import (
    ModelInversionAttack,
    class_direction_correlation,
)
from repro.attacks.reconstruction import InputReconstructionAttack
from repro.data.batching import iterate_minibatches
from repro.data.datasets import synthetic_faces
from repro.nn.layers import CostLayer, DenseLayer, FlattenLayer, SoftmaxLayer
from repro.nn.network import Network
from repro.nn.optimizers import Sgd
from repro.nn.zoo import face_recognition_net


def _train(net, data, rng, epochs=18, lr=0.01):
    optimizer = Sgd(lr, 0.9)
    for _ in range(epochs):
        for xb, yb in iterate_minibatches(data.x, data.y, 16, rng=rng):
            net.train_batch(xb, yb, optimizer)
    return net


def test_security_analysis(bench_rng, benchmark):
    rng = bench_rng.child("sec")
    faces = synthetic_faces(rng.child("faces"), num_identities=4,
                            per_identity=40)
    global_mean = faces.x.mean(axis=0)
    class_mean = faces.of_class(0).x.mean(axis=0)

    # Victims: a shallow softmax-regression and a deep conv model.
    shallow = Network(
        faces.x.shape[1:],
        [FlattenLayer(), DenseLayer(4, activation="linear"),
         SoftmaxLayer(), CostLayer()],
        rng=rng.child("shallow-init").generator,
    )
    _train(shallow, faces, rng.child("shallow-b").generator, epochs=30,
           lr=0.05)
    deep = face_recognition_net(num_classes=5,
                                rng=rng.child("deep-init").generator)
    _train(deep, faces, rng.child("deep-b").generator)

    print("\nSection VII - security analysis")

    # -- Model Inversion ----------------------------------------------------
    shallow_inv = ModelInversionAttack(shallow, 0).invert(iterations=200,
                                                          lr=0.5)
    deep_inv = ModelInversionAttack(deep, 0).invert(iterations=200, lr=0.5)
    shallow_corr = class_direction_correlation(
        shallow_inv.reconstruction, class_mean, global_mean)
    deep_corr = class_direction_correlation(
        deep_inv.reconstruction, class_mean, global_mean)
    print(f"  model inversion: shallow corr {shallow_corr:.3f} "
          f"(conf {shallow_inv.confidence:.2f}) vs deep corr "
          f"{deep_corr:.3f} (conf {deep_inv.confidence:.2f})")
    assert shallow_corr > 0.4
    assert abs(deep_corr) < 0.5 * shallow_corr

    # -- Input reconstruction from IRs ---------------------------------------
    x = faces.x[0]
    ir = deep.forward(x[None], stop=1)
    whitebox = InputReconstructionAttack(deep, 1).reconstruct(
        ir, x, iterations=200, lr=10.0, rng=rng.child("wb").generator)
    surrogate_net = face_recognition_net(
        num_classes=5, rng=rng.child("surrogate").generator)
    blackbox = InputReconstructionAttack(surrogate_net, 1).reconstruct(
        ir, x, iterations=200, lr=10.0, rng=rng.child("bb").generator)
    print(f"  IR reconstruction: with FrontNet MSE {whitebox.input_mse:.4f} "
          f"vs surrogate MSE {blackbox.input_mse:.4f}")
    assert whitebox.input_mse < 0.2 * blackbox.input_mse

    # -- GAN attack ------------------------------------------------------------
    gan = GanAttack(deep, target_class=0, rng=rng.child("gan").generator)
    offline = gan.run(rounds=80, batch=16, lr=0.5, online=False,
                      class_mean=class_mean, global_mean=global_mean)
    print(f"  GAN (offline, the CalTrain condition): confidence "
          f"{offline.confidence:.2f}, content correlation "
          f"{offline.class_correlation:.3f}")
    assert offline.confidence > 0.9
    assert abs(offline.class_correlation) < 0.5

    # Benchmark kernel: one inversion run against the deep model.
    benchmark.pedantic(
        ModelInversionAttack(deep, 0).invert,
        kwargs={"iterations": 50, "lr": 0.5}, rounds=1, iterations=1,
    )
