"""Observability overhead: instrumented training must cost (almost) nothing.

The observability layer sits on the training hot path — spans around
every FrontNet/BackNet phase, counters on every boundary crossing, a
gauge behind every EPC alloc. The whole design rests on that being
affordable, so this bench runs the paper's Table-I network for one
epoch twice on identical seeds — bare versus fully instrumented
(tracer + shared registry) — and asserts

* **identical training** — per-epoch losses are bitwise equal, so the
  instruments observe the run without perturbing it;
* **bounded overhead** — the instrumented epoch stays within 5% of the
  bare one (plus a small absolute allowance for timer noise on very
  short smoke runs), best-of-N wall time on both sides.

Set ``REPRO_BENCH_SMOKE=1`` for the reduced CI configuration.
"""

import os
import time

import pytest

from repro.core.partition import PartitionedNetwork
from repro.core.partitioned_training import ConfidentialTrainer
from repro.data.datasets import synthetic_cifar
from repro.enclave.platform import SgxPlatform
from repro.nn.optimizers import Sgd
from repro.nn.zoo import cifar10_10layer
from repro.observability import MetricsRegistry, Tracer
from repro.utils.rng import RngStream

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
WIDTH = 0.1 if SMOKE else 0.25
N_TRAIN = 64 if SMOKE else 256
BATCH = 32
REPEATS = 3


def _build(seed=1717):
    """One-epoch Table-I (10-layer CIFAR-10) setup, enclave-backed."""
    stream = RngStream(seed, "observability-bench")
    platform = SgxPlatform(rng=stream.child("platform"))
    enclave = platform.create_enclave("train")
    enclave.init()
    net = cifar10_10layer(stream.child("net").generator, width_scale=WIDTH)
    net.set_dropout_rng(enclave.trusted_rng.generator)
    trainer = ConfidentialTrainer(
        PartitionedNetwork(net, 2, enclave), Sgd(0.05, 0.9),
        batch_rng=enclave.trusted_rng.stream.child("batches").generator,
        batch_size=BATCH,
    )
    train, _ = synthetic_cifar(stream.child("data"), num_train=N_TRAIN,
                               num_test=16)
    return trainer, train


def _run_epoch(instrumented: bool):
    """Best-of-N one-epoch wall time; returns (seconds, losses, trainer)."""
    best = float("inf")
    losses = None
    trainer = None
    for _ in range(REPEATS):
        trainer, train = _build()
        if instrumented:
            trainer.bind_observability(tracer=Tracer(),
                                       metrics=MetricsRegistry())
        started = time.perf_counter()
        trainer.train(train.x, train.y, 1)
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        run_losses = [r.mean_loss for r in trainer.reports]
        assert losses is None or run_losses == losses, \
            "training is not deterministic across repeats"
        losses = run_losses
    return best, losses, trainer


class TestObservabilityOverhead:
    def test_instrumentation_overhead_under_five_percent(self):
        bare_seconds, bare_losses, _ = _run_epoch(instrumented=False)
        instr_seconds, instr_losses, trainer = _run_epoch(instrumented=True)

        # The instruments only observe: identical seeds => identical run.
        assert instr_losses == bare_losses

        # The whole point of the layer: <5% on the Table-I epoch (plus a
        # 50ms absolute allowance so timer noise cannot fail a smoke run
        # whose epoch itself only takes tens of milliseconds).
        budget = bare_seconds * 1.05 + 0.05
        assert instr_seconds <= budget, (
            f"instrumentation overhead too high: bare {bare_seconds:.3f}s "
            f"vs instrumented {instr_seconds:.3f}s "
            f"({(instr_seconds / bare_seconds - 1.0):+.1%})"
        )

        # And the instruments actually saw the run.
        n_batches = -(-N_TRAIN // BATCH)
        tracer = trainer.tracer
        assert len(tracer.roots) == 1  # one epoch span
        assert len(tracer.roots[0].children) == n_batches
        totals = tracer.kind_totals()
        assert totals["enclave"] > 0 and totals["boundary-crossing"] > 0
        counters = trainer.partitioned.metrics.snapshot()["counters"]
        assert counters["repro_partition_boundary_crossings_total"] == \
            2 * n_batches
        assert counters["repro_partition_ir_bytes_total"] > 0

    def test_unbound_hot_path_pays_only_a_none_check(self):
        # No tracer, no metrics: the partition hot path must not allocate
        # span machinery at all (the _NullSpan fast path).
        trainer, train = _build()
        assert trainer.tracer is None
        assert trainer.partitioned.tracer is None
        assert trainer.partitioned.metrics is None
        trainer.train(train.x, train.y, 1)
        assert trainer.partitioned.enclave.epc.metrics is None
