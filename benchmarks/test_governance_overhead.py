"""Governance-plane overhead: gate verification and promoted serving.

The accountability control plane is only deployable if its fail-closed
checks stay cheap at production scale. This bench pins two claims:

* **gate verification is bounded** — a full promotion-gate lineage walk
  (governance log + every ledger segment re-hashed from disk bytes +
  every linkage-store segment re-hashed) over a 100k-record ledger
  completes within a hard wall-clock budget;
* **promotion costs serving almost nothing** — a `ServingEngine` that
  runs the full promoted-lineage walk at `start()` comes up within 5%
  of (or 250ms over, whichever is larger) a bare engine on the same
  index. The guard is pure verification: no artifact is re-read after
  start, so steady-state throughput is untouched by construction.

Set ``REPRO_BENCH_SMOKE=1`` to run a reduced-size smoke configuration
(used by the CI governance job to catch overhead regressions fast).
"""

import os
import time

import numpy as np

from repro.data.encryption import EncryptedRecord
from repro.enclave.platform import SgxPlatform
from repro.governance import GovernanceLog, PromotionGate, compute_run_key
from repro.ingest import ContributionLedger
from repro.serving import (EngineConfig, LinkageStore, ServingEngine,
                           ShardedAnnIndex)
from repro.utils.rng import RngStream
from repro.utils.serialization import canonical_digest

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
LEDGER_RECORDS = 10_000 if SMOKE else 100_000
SEGMENT_RECORDS = 2_000
SEALED_BYTES = 256
STORE_RECORDS = 2_000 if SMOKE else 5_000
DIM = 32
LABELS = 8
# The hard budget for one full lineage walk at LEDGER_RECORDS scale.
# Generous for CI hardware: typical machines verify 100k records in
# well under a second (the walk is sequential SHA-256 over segment
# bytes).
MAX_VERIFY_SECONDS = 5.0 if SMOKE else 10.0
STARTUP_RATIO = 1.05
STARTUP_FLOOR_SECONDS = 0.25


def _bulk_ledger(path, records, generator):
    """A committed ledger of synthetic sealed records (no crypto cost:
    the gate verifies digests over bytes, not plaintexts)."""
    ledger = ContributionLedger.create(path)
    sealed = generator.integers(0, 256, size=(records, SEALED_BYTES),
                                dtype=np.uint8)
    nonces = generator.integers(0, 256, size=(records, 12), dtype=np.uint8)
    batch = []
    for i in range(records):
        batch.append(EncryptedRecord(
            source_id=f"c{i % 4}", index=i, label=int(i % LABELS),
            nonce=nonces[i].tobytes(), sealed=sealed[i].tobytes(),
        ))
        if len(batch) == SEGMENT_RECORDS:
            ledger.append(batch, contributor=f"c{i % 4}")
            batch = []
    if batch:
        ledger.append(batch, contributor="c0")
    return ledger


def _bulk_store(path, records, generator):
    store = LinkageStore.create(path)
    fingerprints = generator.standard_normal(
        (records, DIM)
    ).astype(np.float32)
    labels = generator.integers(0, LABELS, size=records)
    store.append(
        fingerprints, labels.tolist(),
        [f"c{i % 4}" for i in range(records)],
        [b"h" * 32 for _ in range(records)],
        source_indices=list(range(records)),
    )
    return store


def _world(rng, root, ledger_records, store_records):
    platform = SgxPlatform(rng=rng.child("platform"))
    enclave = platform.create_enclave("governance-bench")
    enclave.init()
    generator = rng.child("bulk").generator
    ledger = _bulk_ledger(root / "ledger", ledger_records, generator)
    store = _bulk_store(root / "store", store_records, generator)
    log = GovernanceLog.create(root / "governance")
    gate = PromotionGate(enclave, log, ledger=ledger, store=store)
    run_key = compute_run_key(canonical_digest({"bench": "governance"}),
                              ledger.manifest_digest())
    return gate, log, ledger, store, run_key


def test_gate_verification_bounded(bench_rng, tmp_path_factory, benchmark):
    root = tmp_path_factory.mktemp("governance-gate")
    gate, log, ledger, store, run_key = _world(
        bench_rng.child("gate"), root, LEDGER_RECORDS, STORE_RECORDS
    )
    assert len(ledger) == LEDGER_RECORDS

    log.append("train-start", run_key=run_key)
    log.append("train-complete", run_key=run_key)

    # Warm the page cache once, then take the best of three timed walks
    # (the bound is about the work, not a cold-cache outlier).
    gate.verify(run_key)
    elapsed = min(
        _timed(gate.verify, run_key) for _ in range(3)
    )
    print(f"\ngate verify over {LEDGER_RECORDS:,}-record ledger + "
          f"{STORE_RECORDS:,}-record store: {elapsed * 1000:.1f}ms")
    assert elapsed <= MAX_VERIFY_SECONDS, (
        f"lineage walk took {elapsed:.2f}s > {MAX_VERIFY_SECONDS}s budget "
        f"at {LEDGER_RECORDS:,} ledger records"
    )

    # A promotion signs what the walk verified; re-verification against
    # the signed record is the serving-load path — same budget applies.
    record = gate.promote(run_key)
    started = time.perf_counter()
    gate.verify_record(record)
    revalidate = time.perf_counter() - started
    assert revalidate <= MAX_VERIFY_SECONDS
    print(f"promoted-record re-verification: {revalidate * 1000:.1f}ms")

    # Operating point for pytest-benchmark: one full lineage walk.
    benchmark(gate.verify, run_key)


def _timed(fn, *args):
    started = time.perf_counter()
    fn(*args)
    return time.perf_counter() - started


def _startup_time(index, record=None, verifier=None):
    engine = ServingEngine(index, EngineConfig(workers=2),
                           promotion=record, promotion_verifier=verifier)
    started = time.perf_counter()
    engine.start()
    elapsed = time.perf_counter() - started
    engine.stop()
    return elapsed


def test_promotion_serving_startup_overhead(bench_rng, tmp_path_factory):
    root = tmp_path_factory.mktemp("governance-startup")
    # Startup overhead is measured at the *small* ledger scale a single
    # serving replica actually fronts; the scale claim is covered above.
    gate, log, ledger, store, run_key = _world(
        bench_rng.child("startup"), root,
        ledger_records=SEGMENT_RECORDS, store_records=STORE_RECORDS,
    )
    record = gate.promote(run_key)
    index = ShardedAnnIndex(store, shard_threshold=1024, seed=3).build()

    verifier = gate.serving_verifier()
    bare = min(_startup_time(index) for _ in range(3))
    guarded = min(_startup_time(index, record, verifier) for _ in range(3))
    budget = max(STARTUP_RATIO * bare, bare + STARTUP_FLOOR_SECONDS)
    print(f"\nserving startup: bare {bare * 1000:.1f}ms, promoted "
          f"{guarded * 1000:.1f}ms (budget {budget * 1000:.1f}ms)")
    assert guarded <= budget, (
        f"promotion gating added {guarded - bare:.3f}s to serving startup "
        f"(bare {bare:.3f}s, budget {budget:.3f}s)"
    )

    # The guard is fail-closed, not advisory: the same engine refuses a
    # lineage whose ledger lost a byte after promotion.
    victim = sorted((root / "ledger").glob("segment-*.bin"))[0]
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0x01
    victim.write_bytes(bytes(blob))
    import pytest

    from repro.errors import PromotionError

    with pytest.raises(PromotionError):
        ServingEngine(index, EngineConfig(workers=2), promotion=record,
                      promotion_verifier=verifier).start()
