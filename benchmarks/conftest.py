"""Session-scoped fixtures for the benchmark harness.

The expensive experiment artifacts (trained models, trojaned models,
linkage databases) are built once per session and shared by every bench
that needs them; each bench then measures a representative kernel with
pytest-benchmark and asserts the paper's shape claims on the shared
artifacts.

Scale note: the paper trains full-width networks on CIFAR-10 (50k images)
for 12 epochs on an i7-6700. These benches run the same architectures at
``width_scale`` 0.1-0.12 on the synthetic dataset (600 train / 200 test) so
a full regeneration takes minutes, not days. DESIGN.md documents why the
shape claims survive this scaling.
"""

import numpy as np
import pytest

from repro.core.assessment import ExposureAssessor, train_validation_oracle
from repro.core.freezing import FreezeSchedule
from repro.core.partition import PartitionedNetwork
from repro.core.partitioned_training import ConfidentialTrainer
from repro.data.datasets import synthetic_cifar, synthetic_faces
from repro.enclave.platform import SgxPlatform
from repro.nn.optimizers import Sgd
from repro.nn.zoo import cifar10_10layer, cifar10_18layer, face_recognition_net
from repro.utils.rng import RngStream

EPOCHS = 12
BATCH = 32
LR = 0.02
W10 = 0.12   # width scale for the 10-layer net
W18 = 0.10   # width scale for the 18-layer net
PARTITION = 2  # the paper loads the first two layers into the enclave


@pytest.fixture(scope="session")
def bench_rng():
    return RngStream(20260707, name="bench")


@pytest.fixture(scope="session")
def cifar(bench_rng):
    return synthetic_cifar(bench_rng.child("cifar"), num_train=600, num_test=200)


def _train_run(factory, width, partition, rng, cifar, epochs=EPOCHS,
               keep_snapshots=False, freeze_at=None, epc_bytes=None):
    """Train one configuration; returns (trainer, platform)."""
    train, test = cifar
    enclave = None
    platform = None
    if partition is not None:
        kwargs = {"rng": rng.child("platform")}
        if epc_bytes is not None:
            kwargs["epc_bytes"] = epc_bytes
        platform = SgxPlatform(**kwargs)
        enclave = platform.create_enclave("training")
        enclave.init()
    net = factory(rng.child("init").generator, width_scale=width)
    if enclave is not None:
        net.set_dropout_rng(enclave.trusted_rng.generator)
    else:
        net.set_dropout_rng(rng.child("dropout").generator)
    partitioned = PartitionedNetwork(net, partition or 0, enclave=enclave)
    trainer = ConfidentialTrainer(
        partitioned, Sgd(LR, 0.9),
        batch_rng=rng.child("batches").generator,
        batch_size=BATCH,
        freeze_schedule=FreezeSchedule(freeze_at) if freeze_at is not None else None,
    )
    trainer.train(train.x, train.y, epochs, test_x=test.x, test_y=test.y,
                  keep_snapshots=keep_snapshots)
    return trainer, platform


@pytest.fixture(scope="session")
def fig3_runs(bench_rng, cifar):
    """10-layer net trained plain vs. in CalTrain (Fig. 3)."""
    plain, _ = _train_run(cifar10_10layer, W10, None, bench_rng.child("f3-plain"),
                          cifar)
    enclave, _ = _train_run(cifar10_10layer, W10, PARTITION,
                            bench_rng.child("f3-enclave"), cifar)
    return {"plain": plain, "enclave": enclave}


@pytest.fixture(scope="session")
def fig4_runs(bench_rng, cifar):
    """18-layer net trained plain vs. in CalTrain (Fig. 4); the enclave
    run keeps per-epoch snapshots for the Fig. 5 assessment."""
    plain, _ = _train_run(cifar10_18layer, W18, None, bench_rng.child("f4-plain"),
                          cifar)
    enclave, _ = _train_run(cifar10_18layer, W18, PARTITION,
                            bench_rng.child("f4-enclave"), cifar,
                            keep_snapshots=True)
    return {"plain": plain, "enclave": enclave}


@pytest.fixture(scope="session")
def oracle(bench_rng, cifar):
    """The IRValNet content oracle (independent well-trained model)."""
    train, _ = cifar
    return train_validation_oracle(
        train.x, train.y, bench_rng.child("oracle"),
        epochs=8, width_scale=0.15, learning_rate=0.03,
    )


@pytest.fixture(scope="session")
def trojan_world(bench_rng):
    """The Experiment-IV world: a trained face model, the Trojaning
    attack run against it, mislabeled injections, and the merged linkage
    database over three participants (one malicious)."""
    from repro.attacks.mislabel import inject_mislabeled
    from repro.attacks.trojan import TrojanAttack
    from repro.core.fingerprint import Fingerprinter
    from repro.core.linkage import LinkageDatabase, instance_digest
    from repro.data.batching import iterate_minibatches
    from repro.data.datasets import Dataset

    rng = bench_rng.child("trojan")
    # 16 identities: the fingerprint space is one-dimension-per-class (as
    # VGG-Face's fc8), so more identities = richer residual identity signal
    # alongside the trigger's class-0 direction.
    faces = synthetic_faces(rng.child("faces"), num_identities=16,
                            per_identity=40)
    train, test, substitute = faces.split(
        [0.6, 0.2, 0.2], rng=rng.child("split").generator
    )
    model = face_recognition_net(num_classes=16, rng=rng.child("init").generator)
    optimizer = Sgd(0.01, 0.9)
    batch_rng = rng.child("batches").generator
    for _ in range(20):
        for xb, yb in iterate_minibatches(train.x, train.y, 16, rng=batch_rng):
            model.train_batch(xb, yb, optimizer)

    attack = TrojanAttack(model, target_label=0, patch=4,
                          rng=rng.child("attack").generator)
    outcome = attack.run(substitute, test, trigger_iterations=40,
                         retrain_epochs=4, learning_rate=0.01)

    # Mislabeled data inside the target class, mirroring the paper's
    # VGG-Face class-0 statistic (~24.3% mislabeled vs 49.7% correct).
    normal0 = train.of_class(0)
    n_mislabeled = int(round(len(normal0) * 0.243 / 0.497))
    mislabeled = inject_mislabeled(train, target_label=0, count=n_mislabeled,
                                   rng=rng.child("mislabel").generator)

    # Linkage database: normal train data from honest participants p0/p1,
    # poisoned + mislabeled data submitted by the malicious participant.
    fingerprinter = Fingerprinter(outcome.trojaned_model)
    db = LinkageDatabase()

    def add(dataset, source, kind_flag=None):
        fps = fingerprinter.fingerprint(dataset.x)
        kinds = []
        for i in range(len(dataset)):
            kind = "normal"
            if kind_flag and dataset.flags.get(kind_flag, np.zeros(len(dataset), bool))[i]:
                kind = kind_flag
            kinds.append(kind)
        db.add_batch(
            fps, dataset.y.tolist(), [source] * len(dataset),
            [instance_digest(dataset.x[i]) for i in range(len(dataset))],
            source_indices=list(range(len(dataset))), kinds=kinds,
        )

    halves = train.split([0.5, 0.5], rng=rng.child("halves").generator)
    add(halves[0], "p0")
    add(halves[1], "p1")
    add(outcome.poisoned_train, "attacker", kind_flag="poisoned")
    add(mislabeled, "attacker", kind_flag="mislabeled")

    return {
        "rng": rng,
        "model": outcome.trojaned_model,
        "attack": attack,
        "outcome": outcome,
        "train": train,
        "test": test,
        "mislabeled": mislabeled,
        "fingerprinter": fingerprinter,
        "database": db,
    }
