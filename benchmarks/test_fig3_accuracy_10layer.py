"""Fig. 3 — prediction accuracy, 10-layer CIFAR net, CalTrain vs plain.

Paper claim: the accuracy curves of the model trained inside CalTrain (two
layers in the enclave) and the model trained in a non-protected environment
coincide — same convergence behaviour, same final top-1/top-2 accuracy
(77% / 90% at paper scale after stabilising around epoch 7).

This bench regenerates the four per-epoch series, prints them, and asserts
the *shape*: both runs converge, improve substantially over epoch 1, and
end within a small gap of each other.
"""

import numpy as np

from repro.analysis.reporting import render_epoch_series


def _series(trainer):
    return (
        [r.top1 for r in trainer.reports],
        [r.top2 for r in trainer.reports],
    )


def test_fig3(fig3_runs, cifar, benchmark):
    plain_top1, plain_top2 = _series(fig3_runs["plain"])
    enclave_top1, enclave_top2 = _series(fig3_runs["enclave"])

    print("\n" + render_epoch_series(
        "Fig. 3 - Prediction accuracy, CIFAR 10-layer",
        {
            "cifar_10L_top1": plain_top1,
            "cifar_10L_top2": plain_top2,
            "cifar_enclave_10L_top1": enclave_top1,
            "cifar_enclave_10L_top2": enclave_top2,
        },
    ))

    # Shape claim 1: both environments converge well above chance (0.1).
    assert plain_top1[-1] > 0.5
    assert enclave_top1[-1] > 0.5
    # Shape claim 2: CalTrain costs no accuracy — final top-1/top-2 match
    # within a small tolerance.
    assert abs(plain_top1[-1] - enclave_top1[-1]) < 0.15
    assert abs(plain_top2[-1] - enclave_top2[-1]) < 0.15
    # Shape claim 3: top-2 dominates top-1 everywhere.
    assert all(t2 >= t1 for t1, t2 in zip(enclave_top1, enclave_top2))
    # Shape claim 4: late epochs beat the first epoch (the curves rise).
    assert np.mean(enclave_top1[-3:]) > enclave_top1[0]
    assert np.mean(plain_top1[-3:]) > plain_top1[0]

    # Benchmark kernel: one training batch of the enclave-partitioned net.
    train, _ = cifar
    trainer = fig3_runs["enclave"]
    xb, yb = train.x[:32], train.y[:32]
    benchmark(trainer.partitioned.train_batch, xb, yb, trainer.optimizer)
