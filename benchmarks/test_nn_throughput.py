"""NN compute-backend throughput: ``optimized`` vs ``reference``.

The tentpole claim behind ``repro.nn.backends``: the optimized backend
(pooled im2col/col2im scratch, fused bias+activation kernels, transposed-
convolution input gradients, vectorised max-pool scatter, in-place
optimizer updates) delivers at least **3x** the epoch throughput of the
reference backend on the paper's Table I 10-layer CIFAR-10 architecture —
the workload every accuracy and overhead figure trains.

Both backends run the *same* ``Network.train_batch`` loop on the same
data, weights, and optimizer; only the backend differs, so the ratio
isolates the compute kernels. Results land in ``BENCH_nn.json`` at the
repo root: samples/second per backend and the measured speedup, so a
regression in either backend shows up as a moving ratio.

Set ``REPRO_BENCH_SMOKE=1`` for the reduced CI configuration: fewer
batches, and the speedup bar becomes *advisory* (a warning plus the
``BENCH_nn.json`` record, never a build failure) because the tiny run on
a shared runner is timer-noise and noisy-neighbor dominated. The strict
3x bar only gates full (non-smoke) benchmark runs.
"""

import json
import os
import time
import warnings
from pathlib import Path

from repro.nn.backends import OptimizedBackend
from repro.nn.optimizers import Sgd
from repro.nn.zoo import cifar10_10layer

import numpy as np

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
WIDTH = 0.12        # same laptop-scale Table I width the figure benches use
BATCH = 32
WARMUP_BATCHES = 2
TIMED_BATCHES = 3 if SMOKE else 18
SPEEDUP_BAR = 2.0 if SMOKE else 3.0   # advisory-only under SMOKE
TRAJECTORY_PATH = Path(__file__).resolve().parents[1] / "BENCH_nn.json"


def _workload():
    gen = np.random.default_rng(7)
    x = gen.normal(size=(96, 32, 32, 3)).astype(np.float32)
    y = gen.integers(0, 10, size=96)
    return x, y


def _run(backend):
    """Train the Table I net for TIMED_BATCHES; returns the run entry."""
    x, y = _workload()
    net = cifar10_10layer(np.random.default_rng(0), width_scale=WIDTH)
    net.set_backend(backend)
    optimizer = Sgd(0.02, momentum=0.9)
    losses = []
    for i in range(WARMUP_BATCHES):
        s = (i % 3) * BATCH
        net.train_batch(x[s:s + BATCH], y[s:s + BATCH], optimizer)
    started = time.perf_counter()
    for i in range(TIMED_BATCHES):
        s = (i % 3) * BATCH
        losses.append(net.train_batch(x[s:s + BATCH], y[s:s + BATCH],
                                      optimizer))
    seconds = time.perf_counter() - started
    samples = TIMED_BATCHES * BATCH
    return {
        "backend": backend,
        "batches": TIMED_BATCHES,
        "samples": samples,
        "wall_seconds": round(seconds, 4),
        "samples_per_second": round(samples / seconds, 1),
        "final_loss": round(losses[-1], 6),
    }


class TestNnThroughput:
    def test_optimized_backend_meets_speedup_bar(self):
        reference = _run("reference")
        optimized = _run("optimized")
        speedup = (optimized["samples_per_second"]
                   / reference["samples_per_second"])
        print(f"\nsamples/second: reference "
              f"{reference['samples_per_second']:.0f}  optimized "
              f"{optimized['samples_per_second']:.0f}  "
              f"speedup {speedup:.2f}x")

        trajectory = {
            "benchmark": "nn_backend_throughput",
            "smoke": SMOKE,
            "config": {
                "network": f"cifar10_10layer(width_scale={WIDTH})",
                "input": "32x32x3",
                "batch_size": BATCH,
                "timed_batches": TIMED_BATCHES,
                "optimizer": "sgd(lr=0.02, momentum=0.9)",
                "nn_threads": OptimizedBackend().threads,
            },
            "runs": [reference, optimized],
            "speedup_optimized_over_reference": round(speedup, 3),
            "speedup_bar": SPEEDUP_BAR,
        }
        TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")

        if SMOKE:
            # Shared CI runners are too noisy for a hard wall-clock gate:
            # record the ratio, warn when it slips, never fail the build.
            if speedup < SPEEDUP_BAR:
                warnings.warn(
                    f"smoke-mode speedup {speedup:.2f}x below the advisory "
                    f"{SPEEDUP_BAR}x bar (see BENCH_nn.json); not failing "
                    f"the build on shared-runner timing"
                )
            return
        assert speedup >= SPEEDUP_BAR, (
            f"optimized backend speedup {speedup:.2f}x below the "
            f"{SPEEDUP_BAR}x bar"
        )

    def test_backends_train_to_comparable_loss(self):
        """Throughput must not come from computing something else: the
        two backends' short-run losses stay within float drift of each
        other (the reference backward promotes to float64)."""
        reference = _run("reference")
        optimized = _run("optimized")
        assert abs(reference["final_loss"] - optimized["final_loss"]) < 1e-3
