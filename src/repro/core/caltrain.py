"""The CalTrain system facade: training, fingerprinting, and query stages.

Wires the whole pipeline of Fig. 2:

1. **Setup** — an SGX platform, an attestation service, a training server
   that builds the training enclave with the agreed architecture measured
   into MRENCLAVE.
2. **Registration** — each participant verifies the enclave measurement via
   remote attestation and provisions its data key over attested TLS, then
   submits its encrypted training data.
3. **Training stage** — in-enclave authentication/decryption/augmentation,
   FrontNet/BackNet partitioned SGD with optional per-epoch exposure
   re-assessment.
4. **Fingerprinting stage** — a dedicated enclave holds the whole trained
   model, extracts fingerprints of all accepted training instances, and
   records the Omega linkage tuples.
5. **Query stage** — the query service and investigator answer runtime
   misprediction queries and attribute them to contributors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.accountability import Investigator
from repro.core.assessment import ExposureAssessor
from repro.core.audit import AuditLog
from repro.core.fingerprint import Fingerprinter
from repro.core.freezing import FreezeSchedule
from repro.core.linkage import LinkageDatabase, instance_digest
from repro.core.partition import PartitionedNetwork
from repro.core.partitioned_training import ConfidentialTrainer, EpochReport
from repro.core.query import QueryService
from repro.data.augmentation import Augmenter
from repro.enclave.attestation import AttestationService
from repro.enclave.enclave import Enclave
from repro.enclave.memory import EPC_USABLE_BYTES
from repro.enclave.platform import SgxPlatform
from repro.errors import ConfigurationError, TrainingError
from repro.federation.participant import TrainingParticipant
from repro.federation.provisioning import provision_key
from repro.federation.server import DecryptionSummary, TrainingServer
from repro.nn.config import network_to_config
from repro.nn.network import Network
from repro.nn.optimizers import Sgd
from repro.nn.zoo import cifar10_10layer, cifar10_18layer, face_recognition_net
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Tracer
from repro.resilience.checkpoint import CheckpointManager, TrainingState
from repro.resilience.faults import FaultPlan
from repro.resilience.supervisor import ResilientTrainer, RetryPolicy
from repro.resilience.telemetry import RunTelemetry
from repro.utils.logging import get_logger
from repro.utils.rng import RngStream
from repro.utils.serialization import canonical_digest

__all__ = ["CalTrainConfig", "CalTrain"]

_LOG = get_logger("core.caltrain")

_ARCHITECTURES: Dict[str, Callable] = {
    "cifar10-10layer": cifar10_10layer,
    "cifar10-18layer": cifar10_18layer,
}


@dataclass
class CalTrainConfig:
    """Configuration for a CalTrain deployment.

    Attributes:
        seed: Master seed; everything derives from it deterministically.
        architecture: ``"cifar10-10layer"``, ``"cifar10-18layer"``, or a
            zero-argument network factory via :attr:`network_factory`.
        width_scale: Filter-count scale for laptop-size runs (1.0 = paper).
        partition: Initial number of FrontNet layers inside the enclave
            (the paper starts with the first two layers).
        reassess_every_epoch: Dynamic exposure re-assessment; needs
            :attr:`CalTrain.set_assessor` before training.
        freeze_at_epoch: Optional bottom-up FrontNet freezing epoch.
        cipher: AEAD used for bulk training data.
        backend: NN compute backend (``"reference"``/``"optimized"``) pinned
            on every network this deployment builds — including distributed
            worker replicas. ``None`` follows the process default
            (``REPRO_NN_BACKEND``). An execution detail: it is not part of
            the measured architecture or hyperparameters.
    """

    seed: int = 7
    architecture: str = "cifar10-18layer"
    width_scale: float = 0.25
    epochs: int = 12
    batch_size: int = 32
    learning_rate: float = 0.05
    momentum: float = 0.9
    partition: int = 2
    epc_bytes: int = EPC_USABLE_BYTES
    cipher: str = "hmac-ctr"
    augment: bool = True
    reassess_every_epoch: bool = False
    assess_samples: int = 2
    freeze_at_epoch: Optional[int] = None
    neighbors_per_query: int = 9
    network_factory: Optional[Callable[[np.random.Generator], Network]] = None
    backend: Optional[str] = None


class CalTrain:
    """One CalTrain deployment (see module docstring for the stages)."""

    def __init__(self, config: CalTrainConfig) -> None:
        self.config = config
        self.rng = RngStream(config.seed, name="caltrain")
        self.platform = SgxPlatform(
            rng=self.rng.child("platform"), epc_bytes=config.epc_bytes
        )
        self.attestation_service = AttestationService()
        self.server = TrainingServer(
            self.platform, self.attestation_service, self.rng.child("server")
        )
        self._network_factory = self._resolve_factory()
        # A reference network defines the agreed architecture config text.
        self._reference_network = self._network_factory(
            self.rng.child("reference-init").generator
        )
        self.network_config = network_to_config(self._reference_network)
        self.training_enclave: Enclave = self.server.build_training_enclave(
            self.network_config,
            hyperparameters=self._hyperparameters(),
        )
        #: The deployment's training agreement, digested once — the
        #: single definition every checkpoint, coordinator, and run key
        #: derives from (they can never drift apart).
        self.config_digest = canonical_digest(
            self.network_config, self._hyperparameters()
        )
        self.participants: Dict[str, TrainingParticipant] = {}
        #: Hash-chained record of every pipeline event (sealable).
        self.audit_log = AuditLog()
        self.audit_log.append(
            "setup",
            platform=self.platform.platform_id,
            mrenclave=self.training_enclave.mrenclave.hex(),
            architecture=config.architecture if config.network_factory is None
            else "custom",
        )
        self.model: Optional[Network] = None
        self.partitioned: Optional[PartitionedNetwork] = None
        self.trainer: Optional[ConfidentialTrainer] = None
        self.linkage_db: Optional[LinkageDatabase] = None
        self.fingerprinter: Optional[Fingerprinter] = None
        self._assessor: Optional[ExposureAssessor] = None
        self.decryption_summary: Optional[DecryptionSummary] = None
        #: Fault/retry/checkpoint counters of the last supervised run.
        self.run_telemetry: Optional[RunTelemetry] = None
        #: Distributed-run state (populated by ``train(workers=N)``).
        self.coordinator = None
        self.distributed_telemetry = None
        self.round_reports: list = []
        #: Deployment-wide metrics registry. Training binds the partition
        #: hot path, EPC paging, checkpoint I/O, and the resilience
        #: telemetry into it, so one Prometheus export covers the run.
        self.metrics = MetricsRegistry()
        #: Governance control plane (optional; see :meth:`bind_governance`).
        self.governance = None
        self.governance_telemetry = None
        #: The committed contribution ledger training consumed, when the
        #: production intake path (:meth:`intake_ledger`) was used.
        self.ledger = None
        #: Semantic identity of the last/current training run.
        self.run_key: Optional[str] = None
        #: The supervised run's checkpoint manager (promotion-gate input).
        self.checkpoint_manager: Optional[CheckpointManager] = None

    def _hyperparameters(self) -> Dict[str, float]:
        return {
            "epochs": self.config.epochs,
            "batch_size": self.config.batch_size,
            "learning_rate": self.config.learning_rate,
            "momentum": self.config.momentum,
        }

    def _resolve_factory(self) -> Callable[[np.random.Generator], Network]:
        if self.config.network_factory is not None:
            base = self.config.network_factory
        else:
            factory = _ARCHITECTURES.get(self.config.architecture)
            if factory is None:
                raise ConfigurationError(
                    f"unknown architecture {self.config.architecture!r}; pick "
                    f"one of {sorted(_ARCHITECTURES)} or pass network_factory"
                )
            width = self.config.width_scale
            base = lambda gen: factory(gen, width_scale=width)
        backend = self.config.backend
        if backend is None:
            return base
        from repro.nn.backends import get_backend

        get_backend(backend)  # fail fast on unknown names

        def with_backend(gen: np.random.Generator) -> Network:
            net = base(gen)
            net.set_backend(backend)
            return net

        return with_backend

    # -- stage 2: registration and submission ------------------------------------

    @property
    def expected_measurement(self) -> bytes:
        """The MRENCLAVE participants agree on (they can recompute it from
        the published enclave code and the agreed config/hyperparameters)."""
        return self.training_enclave.mrenclave

    def register_participant(self, participant: TrainingParticipant) -> None:
        """Attested-TLS key provisioning for one participant."""
        provision_key(
            participant,
            self.training_enclave,
            self.attestation_service,
            expected_mrenclave=self.expected_measurement,
        )
        self.participants[participant.participant_id] = participant
        self.audit_log.append("participant-registered",
                              participant=participant.participant_id)
        _LOG.info("registered participant %s", participant.participant_id)

    def submit_data(self, participant: TrainingParticipant) -> None:
        """Encrypt the participant's dataset and submit it to the server."""
        encrypted = participant.encrypt_dataset(cipher=self.config.cipher)
        self.server.submit(encrypted)
        self.audit_log.append("data-submitted",
                              source=participant.participant_id,
                              records=len(encrypted))

    # -- governance --------------------------------------------------------------

    def bind_governance(self, log) -> None:
        """Attach a :class:`~repro.governance.log.GovernanceLog`.

        From here on, ledger intake, training starts/resumes/completions,
        and checkpoints are chained into the governance timeline (with
        cross-references into this deployment's audit chain).
        """
        from repro.governance.telemetry import GovernanceTelemetry

        self.governance = log
        self.governance_telemetry = GovernanceTelemetry(registry=self.metrics)

    def _govern(self, kind: str, **details) -> None:
        if self.governance is not None:
            self.governance.append(kind, **details)
            self.governance_telemetry.count("events")

    def intake_ledger(self, ledger) -> int:
        """Stage a committed contribution ledger for training.

        The production intake path: the ledger's segments are re-verified
        fail-closed, its committed lane becomes the submission set, and —
        with governance bound — an ``ingest-commit`` event chains the
        ledger manifest digest into the governance timeline. Returns the
        number of records staged.
        """
        staged = self.server.from_ledger(ledger)
        self.ledger = ledger
        self.audit_log.append(
            "ledger-intake", records=staged,
            manifest_digest=ledger.manifest_digest().hex(),
        )
        self._govern(
            "ingest-commit",
            ledger_digest=ledger.manifest_digest().hex(),
            records=staged,
            contributors=ledger.contributors(),
            audit_head=self.audit_log.head.hex(),
        )
        return staged

    def compute_run_key(self) -> str:
        """The semantic identity of the run :meth:`train` would start now.

        ``digest(config ⊕ data ⊕ code)``: the deployment's config digest,
        the ledger manifest digest (or, for in-memory submissions, the
        sorted record digests), and the library version. Identical inputs
        always yield the identical key — across processes and hosts.
        """
        from repro.governance.identity import (compute_run_key,
                                               submissions_digest)

        data_digest = (self.ledger.manifest_digest()
                       if self.ledger is not None
                       else submissions_digest(self.server.submissions))
        return compute_run_key(self.config_digest, data_digest)

    # -- stage 3: training ------------------------------------------------------------

    def set_assessor(self, assessor: ExposureAssessor) -> None:
        """Install the IRValNet-backed assessor used for re-assessment."""
        self._assessor = assessor

    def _reassess(self, epoch: int, trainer: ConfidentialTrainer) -> None:
        """Participants assess the semi-trained model and vote a partition."""
        if self._assessor is None:
            return
        votes = []
        for participant in self.participants.values():
            result = participant.assess_exposure(
                trainer.partitioned.network, self._assessor,
                sample_size=self.config.assess_samples,
            )
            votes.append(result.optimal_partition)
        if not votes:
            return
        # Consensus: the most conservative (largest) requested partition.
        agreed = max(votes)
        limit = trainer.partitioned.network.penultimate_index()
        agreed = min(agreed, limit)
        if agreed != trainer.partitioned.partition:
            _LOG.info("epoch %d: re-partitioning %d -> %d layers in enclave",
                      epoch, trainer.partitioned.partition, agreed)
            self.audit_log.append("partition-changed", epoch=epoch,
                                  old=trainer.partitioned.partition, new=agreed)
            trainer.partitioned.set_partition(agreed)

    def _rebuild_training_enclave(self) -> Enclave:
        """Recreate the training enclave after an abort (same MRENCLAVE).

        The architecture config and hyperparameters are measured back in
        exactly as during setup, so the replacement carries the agreed
        measurement and re-attestation (plus unsealing) can succeed.
        """
        return self.server.build_training_enclave(
            self.network_config, hyperparameters=self._hyperparameters()
        )

    def _adopt_enclave(self, enclave: Enclave) -> None:
        """Recovery re-onboarding after an enclave rebuild.

        The provisioned data keys and the staged plaintext were enclave
        secrets and died with the aborted enclave. Every registered
        participant re-provisions its key over attested TLS (the rebuilt
        enclave carries the agreed MRENCLAVE, so the same checks pass),
        and the still-encrypted submissions are re-authenticated and
        re-staged — the fingerprint stage later reads them from the live
        enclave. Provisioning only consumes per-purpose child RNG
        streams, so re-running it cannot perturb training determinism.
        """
        self.training_enclave = enclave
        for participant in self.participants.values():
            provision_key(
                participant, enclave, self.attestation_service,
                expected_mrenclave=self.expected_measurement,
            )
        summary = self.server.decrypt_submissions(cipher=self.config.cipher)
        self.audit_log.append("recovery-restage",
                              participants=len(self.participants),
                              accepted=summary.accepted)

    def train(self, test_x: Optional[np.ndarray] = None,
              test_y: Optional[np.ndarray] = None,
              keep_snapshots: bool = False,
              checkpoint_dir: Optional[str] = None,
              resume: bool = False,
              checkpoint_every_batches: Optional[int] = None,
              fault_plan: Optional[FaultPlan] = None,
              retry_policy: Optional[RetryPolicy] = None,
              tracer: Optional[Tracer] = None,
              workers: Optional[int] = None,
              straggler_factor: float = 2.5,
              blacklist_after: int = 2,
              injections: tuple = (),
              ) -> List[EpochReport]:
        """Run the full training stage on everything submitted so far.

        With ``checkpoint_dir`` set, training runs under the resilience
        runtime: sealed checkpoints at every epoch boundary (and every
        ``checkpoint_every_batches`` batches mid-epoch), supervised
        recovery from enclave/transfer/checkpoint faults (optionally
        injected via ``fault_plan``), and ``resume=True`` continuing a
        previous run bitwise-identically from its newest valid
        checkpoint — including the checkpointed audit-log history.

        With ``workers=N`` the training stage runs data-parallel across
        N enclave workers under :mod:`repro.distributed`: the encrypted
        submissions are sharded, each epoch becomes one round of local
        training plus secure FrontNet aggregation, and
        ``straggler_factor`` / ``blacklist_after`` / ``injections``
        govern the straggler and fault machinery. The distributed path
        carries its own per-round sealed checkpoints, so the
        single-enclave resilience options (``resume``, ``fault_plan``,
        ``checkpoint_every_batches``, ``retry_policy``,
        ``keep_snapshots``) are rejected alongside it.

        ``tracer`` (optional) records the run as nested spans — epochs
        over batches over enclave/boundary-crossing/untrusted phases.
        Metrics always land in :attr:`metrics`, tracer or not.
        """
        if workers is not None:
            incompatible = {
                "resume": resume,
                "fault_plan": fault_plan is not None,
                "checkpoint_every_batches": checkpoint_every_batches is not None,
                "retry_policy": retry_policy is not None,
                "keep_snapshots": keep_snapshots,
            }
            offending = sorted(k for k, v in incompatible.items() if v)
            if offending:
                raise ConfigurationError(
                    f"workers={workers} is incompatible with {offending}; "
                    "distributed training has its own checkpoint/recovery "
                    "machinery"
                )
            if self.config.reassess_every_epoch:
                raise ConfigurationError(
                    "reassess_every_epoch is not supported with workers=N "
                    "(partition votes would diverge across replicas)"
                )
            self._begin_run(resume=False, workers=workers)
            reports = self._train_distributed(
                test_x, test_y, workers=workers,
                straggler_factor=straggler_factor,
                blacklist_after=blacklist_after,
                injections=injections,
                checkpoint_dir=checkpoint_dir,
                tracer=tracer,
            )
            self._complete_run(reports)
            return reports
        self._begin_run(resume=resume, workers=None)
        self.decryption_summary = self.server.decrypt_submissions(
            cipher=self.config.cipher
        )
        self.audit_log.append(
            "decryption",
            accepted=self.decryption_summary.accepted,
            rejected_tampered=self.decryption_summary.rejected_tampered,
            rejected_unregistered=self.decryption_summary.rejected_unregistered,
        )
        if self.decryption_summary.accepted == 0:
            raise TrainingError("no training records survived authentication")
        x, y, _, _ = self.server.staged_training_data()

        self.model = self._network_factory(self.rng.child("model-init").generator)
        self.model.set_dropout_rng(self.training_enclave.trusted_rng.generator)
        self.partitioned = PartitionedNetwork(
            self.model, self.config.partition, enclave=self.training_enclave
        )
        augmenter = (
            Augmenter(rng=self.training_enclave.trusted_rng.generator)
            if self.config.augment else None
        )
        freeze = (
            FreezeSchedule(self.config.freeze_at_epoch)
            if self.config.freeze_at_epoch is not None else None
        )
        self.trainer = ConfidentialTrainer(
            self.partitioned,
            Sgd(self.config.learning_rate, self.config.momentum),
            batch_rng=self.training_enclave.trusted_rng.stream.child("batches").generator,
            augmenter=augmenter,
            batch_size=self.config.batch_size,
            freeze_schedule=freeze,
            on_epoch_end=self._reassess if self.config.reassess_every_epoch else None,
        )
        self.trainer.bind_observability(tracer=tracer, metrics=self.metrics)
        if checkpoint_dir is None:
            if resume or fault_plan is not None:
                raise ConfigurationError(
                    "resume/fault injection need checkpoint_dir set"
                )
            reports = self.trainer.train(
                x, y, self.config.epochs, test_x=test_x, test_y=test_y,
                keep_snapshots=keep_snapshots,
            )
        else:
            reports = self._train_supervised(
                x, y, test_x, test_y, keep_snapshots, checkpoint_dir,
                resume, checkpoint_every_batches, fault_plan, retry_policy,
            )
        self.audit_log.append(
            "training-complete",
            epochs=len(reports),
            final_loss=reports[-1].mean_loss,
            final_partition=self.partitioned.partition,
        )
        self._complete_run(reports)
        return reports

    def _begin_run(self, resume: bool, workers: Optional[int]) -> None:
        """Fix the run identity and chain the train-start/resume event."""
        from repro.governance.identity import code_version

        self.run_key = self.compute_run_key()
        if self.governance is not None:
            previous = self.governance.find_run(self.run_key)
            if previous is not None and not resume:
                _LOG.warning(
                    "run %s already completed at governance seq %d — an "
                    "identical config/data/code run is being repeated "
                    "(dedup candidates can be served from its artifacts)",
                    self.run_key[:16], previous["seq"],
                )
        self._govern(
            "train-resume" if resume else "train-start",
            run_key=self.run_key,
            config_digest=self.config_digest.hex(),
            code_version=code_version(),
            mrenclave=self.training_enclave.mrenclave.hex(),
            workers=workers,
            audit_head=self.audit_log.head.hex(),
        )

    def _complete_run(self, reports: List[EpochReport]) -> None:
        self._govern(
            "train-complete",
            run_key=self.run_key,
            epochs=len(reports),
            final_loss=reports[-1].mean_loss if reports else None,
            audit_head=self.audit_log.head.hex(),
        )

    def _train_supervised(self, x, y, test_x, test_y, keep_snapshots,
                          checkpoint_dir, resume, checkpoint_every_batches,
                          fault_plan, retry_policy) -> List[EpochReport]:
        manager = CheckpointManager(
            checkpoint_dir,
            config_digest=self.config_digest,
            run_key=self.run_key,
        )
        self.checkpoint_manager = manager
        adopted_audit = not resume

        def _on_restore(state: TrainingState) -> None:
            # Cross-process resume adopts the checkpointed audit chain as
            # the authoritative timeline; in-run recoveries keep the live
            # log (faults are history, not something to rewind).
            nonlocal adopted_audit
            if adopted_audit:
                return
            adopted_audit = True
            if state.audit_bytes:
                self.audit_log = AuditLog.from_bytes(state.audit_bytes)

        resilient = ResilientTrainer(
            self.trainer,
            manager,
            enclave_factory=self._rebuild_training_enclave,
            expected_mrenclave=self.expected_measurement,
            attestation_service=self.attestation_service,
            policy=retry_policy,
            fault_plan=fault_plan,
            telemetry=RunTelemetry(registry=self.metrics),
            audit_provider=lambda: self.audit_log,
            on_enclave_rebuilt=self._adopt_enclave,
            on_restore=_on_restore,
        )
        self.run_telemetry = resilient.telemetry
        reports = resilient.run(
            x, y, self.config.epochs, test_x=test_x, test_y=test_y,
            keep_snapshots=keep_snapshots, resume=resume,
            checkpoint_every_batches=checkpoint_every_batches,
        )
        digest = manager.latest_manifest_digest()
        if digest is not None:
            self._govern("checkpoint", run_key=self.run_key,
                         manifest_digest=digest.hex(),
                         audit_head=self.audit_log.head.hex())
        return reports

    def _provision_enclave(self, enclave: Enclave) -> None:
        """Provision every registered participant's key into ``enclave``.

        Worker enclaves are built from the same published code, agreed
        architecture config, and hyperparameters as the main training
        enclave, so they carry the deployment's expected measurement —
        the participants' attestation checks pass unchanged.
        """
        for participant in self.participants.values():
            provision_key(
                participant, enclave, self.attestation_service,
                expected_mrenclave=self.expected_measurement,
            )

    def _train_distributed(self, test_x, test_y, *, workers: int,
                           straggler_factor: float, blacklist_after: int,
                           injections, checkpoint_dir: Optional[str],
                           tracer: Optional[Tracer]) -> List[EpochReport]:
        """Data-parallel training across ``workers`` enclave workers.

        The main training enclave still authenticates and stages the full
        submission set first (the decryption audit event and the later
        fingerprint stage read from it); the coordinator then re-shards
        the *encrypted* submissions across the workers, which decrypt
        only their own shard inside their own enclaves.
        """
        import tempfile

        from repro.distributed import DistributedCoordinator

        self.decryption_summary = self.server.decrypt_submissions(
            cipher=self.config.cipher
        )
        self.audit_log.append(
            "decryption",
            accepted=self.decryption_summary.accepted,
            rejected_tampered=self.decryption_summary.rejected_tampered,
            rejected_unregistered=self.decryption_summary.rejected_unregistered,
        )
        if self.decryption_summary.accepted == 0:
            raise TrainingError("no training records survived authentication")
        submissions = list(self.server.submissions)

        root = checkpoint_dir or tempfile.mkdtemp(prefix="caltrain-dist-")
        self.coordinator = DistributedCoordinator(
            num_workers=workers,
            network_factory=self._network_factory,
            network_config=self.network_config,
            hyperparameters=self._hyperparameters(),
            partition=self.config.partition,
            batch_size=self.config.batch_size,
            learning_rate=self.config.learning_rate,
            momentum=self.config.momentum,
            cipher=self.config.cipher,
            augment=self.config.augment,
            rng=self.rng.child("distributed"),
            attestation_service=self.attestation_service,
            provisioner=self._provision_enclave,
            init_generator_factory=lambda: self.rng.child(
                "model-init").generator,
            checkpoint_root=root,
            config_digest=self.config_digest,
            straggler_factor=straggler_factor,
            blacklist_after=blacklist_after,
            injections=injections,
            metrics=self.metrics,
            tracer=tracer,
            epc_bytes=self.config.epc_bytes,
        )
        self.distributed_telemetry = self.coordinator.telemetry
        self.coordinator.distribute(submissions)
        self.audit_log.append(
            "distributed-setup", workers=workers,
            aggregator_mrenclave=self.coordinator.aggregator.mrenclave.hex(),
            shards={w.worker_id: w.examples
                    for w in self.coordinator.workers},
        )
        self.round_reports = self.coordinator.run(self.config.epochs)

        # Adopt the converged replica as *the* trained model, hosted by
        # the main training enclave (fingerprint/query stages continue
        # exactly as in the single-enclave pipeline).
        self.model = self._network_factory(
            self.rng.child("model-init").generator
        )
        self.model.set_weights(self.coordinator.final_weights())
        self.model.set_dropout_rng(self.training_enclave.trusted_rng.generator)
        self.partitioned = PartitionedNetwork(
            self.model, self.config.partition, enclave=self.training_enclave
        )
        self.trainer = ConfidentialTrainer(
            self.partitioned,
            Sgd(self.config.learning_rate, self.config.momentum),
            batch_rng=self.training_enclave.trusted_rng.stream.child(
                "batches").generator,
            batch_size=self.config.batch_size,
        )
        accuracy = (
            self.trainer.evaluate(test_x, test_y)
            if test_x is not None and test_y is not None
            else {"top1": None, "top2": None}
        )
        reports: List[EpochReport] = []
        for report in self.round_reports:
            last = report is self.round_reports[-1]
            reports.append(EpochReport(
                epoch=report.round,
                mean_loss=report.mean_loss,
                top1=accuracy["top1"] if last else None,
                top2=accuracy["top2"] if last else None,
                partition=self.config.partition,
                simulated_seconds=report.round_seconds,
            ))
            self.audit_log.append(
                "distributed-round",
                round=report.round,
                participating=report.participating,
                stragglers=report.stragglers,
                faulted=report.faulted,
                recovered_masks=report.recovered_masks,
            )
        self.audit_log.append(
            "training-complete",
            epochs=len(reports),
            final_loss=reports[-1].mean_loss,
            final_partition=self.partitioned.partition,
        )
        return reports

    def evaluate(self, test_x: np.ndarray, test_y: np.ndarray):
        """Full classification report of the trained model."""
        if self.model is None:
            raise TrainingError("train() must complete before evaluation")
        from repro.analysis.evaluation import evaluate_classifier

        return evaluate_classifier(self.model, test_x, test_y)

    # -- model release --------------------------------------------------------------

    def release_model(self, participant_id: str) -> Dict[str, bytes]:
        """Release the trained model to one participant (Section IV-B).

        The BackNet travels in the clear; the FrontNet is sealed under the
        participant's provisioned key, so the server provider (and anyone
        else) never holds the complete model — which is also what makes
        fingerprints non-invertible to outsiders.
        """
        if self.partitioned is None:
            raise TrainingError("train() must complete before model release")
        participant = self.participants.get(participant_id)
        if participant is None:
            raise ConfigurationError(f"unknown participant {participant_id!r}")
        from repro.crypto.aead import AesGcm

        cipher = AesGcm(participant.key.material)
        nonce = self.training_enclave.trusted_rng.random_bytes(12)
        sealed_frontnet = self.partitioned.export_frontnet_encrypted(
            cipher, nonce
        )
        # The BackNet: plain weights of layers [partition, n).
        import io

        backnet_arrays = {}
        for i, layer in enumerate(self.partitioned.backnet_layers):
            for name, arr in layer.params().items():
                backnet_arrays[f"layer{i}/{name}"] = arr
        buffer = io.BytesIO()
        np.savez(buffer, **backnet_arrays)
        return {
            "frontnet_nonce": nonce,
            "frontnet_sealed": sealed_frontnet,
            "backnet": buffer.getvalue(),
            "network_config": self.network_config.encode("utf-8"),
        }

    # -- stage 4: fingerprinting ------------------------------------------------------

    def fingerprint_stage(self, kinds_by_source: Optional[Dict[str, np.ndarray]] = None,
                          ) -> LinkageDatabase:
        """Fingerprint every accepted training instance into the linkage DB.

        Args:
            kinds_by_source: Optional ground-truth instance kinds per source
                (evaluation only), indexed by the instance's local index.
        """
        if self.model is None:
            raise TrainingError("train() must complete before fingerprinting")
        x, y, sources, indices = self.server.staged_training_data()
        fingerprint_enclave = self.platform.create_enclave("fingerprint-enclave")
        fingerprint_enclave.init()
        self.fingerprinter = Fingerprinter(self.model, enclave=fingerprint_enclave)
        fingerprints = self.fingerprinter.fingerprint(x)
        # Label Y is the instance's class label under the trained model's
        # label space (the provided training label).
        digests = [instance_digest(x[i]) for i in range(x.shape[0])]
        kinds = None
        if kinds_by_source is not None:
            kinds = [
                str(kinds_by_source[sources[i]][int(indices[i])])
                if sources[i] in kinds_by_source else "normal"
                for i in range(x.shape[0])
            ]
        database = LinkageDatabase()
        database.add_batch(
            fingerprints, y.tolist(), sources, digests,
            source_indices=indices.tolist(), kinds=kinds,
        )
        self.linkage_db = database
        self.audit_log.append(
            "fingerprint-stage",
            records=len(database),
            dimension=database.dimension,
            commitment=database.merkle_commitment().root.hex(),
        )
        return database

    # -- stage 5: query ------------------------------------------------------------------

    def query_service(self) -> QueryService:
        if self.linkage_db is None:
            raise TrainingError("fingerprint_stage() must run before queries")
        return QueryService(self.linkage_db)

    def investigator(self) -> Investigator:
        if self.fingerprinter is None:
            raise TrainingError("fingerprint_stage() must run first")
        return Investigator(
            self.fingerprinter, self.query_service(),
            neighbors_per_query=self.config.neighbors_per_query,
        )
