"""One-way fingerprinting of training instances (paper, Section IV-C).

A fingerprint is the L2-normalized feature embedding at the penultimate
layer (the layer before softmax) — the most discriminative features a deep
network extracts. Fingerprints support nearest-neighbour causality queries
but cannot be inverted to training inputs without the complete model, whose
FrontNet is only ever released encrypted.

Fingerprinting is a one-time pass after training, so the *entire* trained
network fits in a dedicated fingerprinting enclave (no partitioning); the
enclave cost model is charged accordingly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.enclave.enclave import Enclave
from repro.errors import ConfigurationError
from repro.nn.network import Network

__all__ = ["Fingerprinter", "normalize_fingerprints"]


def normalize_fingerprints(embeddings: np.ndarray) -> np.ndarray:
    """L2-normalize rows (zero rows are left at zero)."""
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
    return embeddings / np.maximum(norms, 1e-12)


class Fingerprinter:
    """Extracts penultimate-layer fingerprints, optionally inside an enclave."""

    def __init__(self, network: Network, enclave: Optional[Enclave] = None,
                 batch_size: int = 128) -> None:
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        self.network = network
        self.enclave = enclave
        self.batch_size = batch_size
        self._penultimate = network.penultimate_index()
        if enclave is not None:
            # The whole model lives in the fingerprinting enclave's EPC.
            total_param_bytes = sum(
                layer.param_bytes() for layer in network.layers
            )
            if not enclave.epc.usage_report().get("data/fingerprint-model"):
                enclave.epc.alloc("data/fingerprint-model", total_param_bytes)

    @property
    def dimension(self) -> int:
        """Fingerprint dimensionality (2622 for VGG-Face in the paper)."""
        shape = self.network.layer_output_shapes()[self._penultimate]
        return int(np.prod(shape))

    def fingerprint(self, x: np.ndarray) -> np.ndarray:
        """Fingerprints for a batch of inputs: (N, dimension), unit norm."""
        chunks = []
        flops = sum(self.network.flops_per_layer()[: self._penultimate + 1])
        for start in range(0, x.shape[0], self.batch_size):
            batch = x[start : start + self.batch_size]
            if self.enclave is not None:
                platform = self.enclave.platform
                platform.clock.advance(
                    platform.cost_model.compute_seconds(
                        flops * batch.shape[0], in_enclave=True
                    )
                )
                self.enclave.epc.touch(batch.nbytes)
            captured = self.network.forward_collect(batch, [self._penultimate])
            embedding = captured[self._penultimate].reshape(batch.shape[0], -1)
            chunks.append(embedding)
        return normalize_fingerprints(np.concatenate(chunks, axis=0))

    def predict_with_fingerprint(self, x: np.ndarray):
        """(predicted labels, probabilities, fingerprints) for a batch.

        This is the model user's runtime path: every inference yields the
        prediction plus the fingerprint needed for a later accountability
        query if the prediction turns out wrong.
        """
        captured = self.network.forward_collect(
            x, [self._penultimate, len(self.network.layers) - 1]
        )
        embedding = captured[self._penultimate].reshape(x.shape[0], -1)
        probs = captured[len(self.network.layers) - 1]
        labels = probs.argmax(axis=1)
        return labels, probs, normalize_fingerprints(embedding)
