"""The shared hash-chain primitive behind every audit surface.

Three subsystems keep tamper-evident event histories — the serving
plane's query audit, the ingest plane's validation audit, and the
distributed plane's per-round aggregation audit (all via
:class:`~repro.core.audit.AuditLog`) — and the governance log adds a
fourth. They all need the same math: a genesis-labelled SHA-256 chain
where each entry commits to the canonical JSON of its payload *and* to
the hash of everything before it, so any retroactive edit, reorder, or
truncation-and-regrow is detectable from the head alone.

:class:`HashChain` is that math, extracted once. Domain separation comes
from the genesis label: two chains over identical payloads but different
labels share no hashes, so an attacker cannot splice a verified prefix
of one log into another.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple

from repro.crypto.hashing import constant_time_equal, sha256
from repro.utils.serialization import canonical_json

__all__ = ["HashChain"]


class HashChain:
    """Stateless hash-chain math for a given genesis label.

    The chain over payloads ``p0, p1, ...`` is
    ``h0 = sha256(genesis, canonical_json(p0))``,
    ``h{i} = sha256(h{i-1}, canonical_json(p{i}))`` with
    ``genesis = sha256(label)``. Instances are cheap and immutable;
    logs keep one and thread their own head through :meth:`entry_hash`.
    """

    __slots__ = ("_genesis",)

    def __init__(self, label: bytes) -> None:
        self._genesis = sha256(label)

    @property
    def genesis(self) -> bytes:
        """The head of an empty chain (commits to the domain label)."""
        return self._genesis

    def entry_hash(self, previous: bytes, payload: Any) -> bytes:
        """The chain hash of one entry given the previous head."""
        return sha256(previous, canonical_json(payload))

    def verify(self, entries: Iterable[Tuple[Any, bytes]]) -> bool:
        """Recompute the chain over ``(payload, chain_hash)`` pairs.

        Returns False on the first entry whose recorded hash does not
        match the recomputation — an altered payload, a spliced entry,
        or a re-rooted chain.
        """
        previous = self._genesis
        for payload, chain_hash in entries:
            expected = self.entry_hash(previous, payload)
            if not constant_time_equal(expected, chain_hash):
                return False
            previous = chain_hash
        return True
