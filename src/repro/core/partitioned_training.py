"""The confidential training loop (the paper's training stage).

Drives partitioned mini-batch SGD over the decrypted (in-enclave) training
data: trusted-RNG-driven shuffling and augmentation, FrontNet in the
enclave, BackNet outside, per-epoch accuracy evaluation, per-epoch model
snapshots for the dynamic exposure re-assessment, and simulated-time
accounting for the performance experiments.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import top_k_accuracy
from repro.core.freezing import FreezeSchedule
from repro.core.partition import PartitionedNetwork
from repro.data.augmentation import Augmenter
from repro.data.batching import iterate_minibatches
from repro.nn.optimizers import Optimizer
from repro.observability.tracing import Tracer
from repro.utils.logging import get_logger

__all__ = ["EpochReport", "ConfidentialTrainer"]

_LOG = get_logger("core.training")

#: Reusable no-op context for the untraced path (nullcontext is stateless).
_NO_TRACE = nullcontext()


@dataclass
class EpochReport:
    """Per-epoch training statistics."""

    epoch: int
    mean_loss: float
    top1: Optional[float]
    top2: Optional[float]
    partition: int
    simulated_seconds: float
    frontnet_frozen: bool = False
    #: Compute backend that ran the epoch (``reference``/``optimized``).
    backend: str = "reference"


class ConfidentialTrainer:
    """Epoch loop over a :class:`PartitionedNetwork`.

    Args:
        partitioned: The (possibly enclave-backed) partitioned network.
        optimizer: Applied to both halves each batch.
        augmenter: In-enclave augmentation; ``None`` disables it.
        batch_size: Mini-batch size.
        freeze_schedule: Optional bottom-up FrontNet freezing.
        on_epoch_end: Hook ``(epoch, trainer) -> None`` — CalTrain's dynamic
            partition re-assessment runs here.
    """

    def __init__(self, partitioned: PartitionedNetwork, optimizer: Optimizer,
                 batch_rng: np.random.Generator,
                 augmenter: Optional[Augmenter] = None, batch_size: int = 32,
                 freeze_schedule: Optional[FreezeSchedule] = None,
                 lr_schedule=None,
                 on_epoch_end: Optional[Callable[[int, "ConfidentialTrainer"], None]] = None,
                 early_stop_patience: Optional[int] = None,
                 ) -> None:
        self.partitioned = partitioned
        self.optimizer = optimizer
        self.batch_rng = batch_rng
        self.augmenter = augmenter
        self.batch_size = batch_size
        self.freeze_schedule = freeze_schedule
        self.lr_schedule = lr_schedule
        self._base_learning_rate = getattr(optimizer, "learning_rate", None)
        self.on_epoch_end = on_epoch_end
        #: Stop after this many epochs without test-top-1 improvement
        #: (needs test data at train() time); None disables.
        self.early_stop_patience = early_stop_patience
        self.best_weights = None
        self.best_top1: Optional[float] = None
        #: Epochs since the last test-top-1 improvement (checkpointable).
        self.stale_epochs = 0
        #: Set once the early-stop patience is exhausted; :meth:`train`
        #: (and the resilience runtime) stop at the next epoch boundary.
        self.stop_training = False
        self.reports: List[EpochReport] = []
        #: Per-epoch weight snapshots (semi-trained models) for assessment.
        self.snapshots: List[List[Dict[str, np.ndarray]]] = []
        #: Optional tracer; set via :meth:`bind_observability`. Epochs and
        #: batches become parent spans over the partitioned network's
        #: enclave/boundary/untrusted spans.
        self.tracer: Optional[Tracer] = None

    def bind_observability(self, tracer: Optional[Tracer] = None,
                           metrics=None) -> None:
        """Trace this trainer (and its partitioned network's hot path)."""
        self.tracer = tracer
        self.partitioned.bind_observability(tracer=tracer, metrics=metrics)

    def _simulated_now(self) -> float:
        if self.partitioned.enclave is None:
            return 0.0
        return self.partitioned.enclave.platform.clock.now

    def train_epoch(self, x: np.ndarray, y: np.ndarray, epoch: int,
                    start_batch: int = 0,
                    carried_losses: Optional[Sequence[float]] = None,
                    batch_callback: Optional[
                        Callable[[str, int, int, List[float]], None]] = None,
                    ) -> Tuple[float, bool]:
        """One epoch of partitioned mini-batch SGD.

        Returns ``(mean_loss, frontnet_frozen)`` — the frozen flag that
        actually governed the epoch, so the report can never disagree with
        what ran.

        ``start_batch``/``carried_losses`` resume an interrupted epoch:
        the caller must first restore :attr:`batch_rng` to the state it had
        when the epoch originally started, so the shuffle permutation
        replays and the remaining batches are bitwise-identical to the
        uninterrupted run. ``carried_losses`` are the per-batch losses the
        interrupted attempt already banked; they count toward the mean.

        ``batch_callback(phase, epoch, batch, losses)`` fires with phase
        ``"start"`` before and ``"end"`` after every batch — the resilience
        runtime's fault-injection and mid-epoch checkpoint hook.
        """
        frozen = False
        if self.freeze_schedule is not None:
            frozen = self.freeze_schedule.apply(self.partitioned, epoch)
        if self.lr_schedule is not None and self._base_learning_rate is not None:
            self.lr_schedule.apply(self.optimizer, self._base_learning_rate, epoch)
        losses = list(carried_losses) if carried_losses else []
        batch = start_batch
        epoch_span = (
            self.tracer.span(f"epoch-{epoch}", kind="internal",
                             start_batch=start_batch)
            if self.tracer is not None else _NO_TRACE
        )
        with epoch_span:
            for xb, yb in iterate_minibatches(x, y, self.batch_size,
                                              rng=self.batch_rng,
                                              start_batch=start_batch):
                if batch_callback is not None:
                    batch_callback("start", epoch, batch, losses)
                batch_span = (
                    self.tracer.span(f"batch-{batch}", kind="internal")
                    if self.tracer is not None else _NO_TRACE
                )
                with batch_span:
                    if self.augmenter is not None:
                        xb = self.augmenter.augment_batch(xb)
                    losses.append(
                        self.partitioned.train_batch(xb, yb, self.optimizer)
                    )
                if batch_callback is not None:
                    batch_callback("end", epoch, batch, losses)
                batch += 1
        mean_loss = float(np.mean(losses)) if losses else 0.0
        _LOG.info("epoch %d: loss %.4f%s", epoch, mean_loss,
                  " (frontnet frozen)" if frozen else "")
        return mean_loss, frozen

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> Dict[str, float]:
        probs = self.partitioned.network.predict(x)
        return {
            "top1": top_k_accuracy(probs, y, k=1),
            "top2": top_k_accuracy(probs, y, k=2),
        }

    def run_epoch(self, x: np.ndarray, y: np.ndarray, epoch: int,
                  test_x: Optional[np.ndarray] = None,
                  test_y: Optional[np.ndarray] = None,
                  keep_snapshots: bool = False,
                  start_batch: int = 0,
                  carried_losses: Optional[Sequence[float]] = None,
                  batch_callback: Optional[
                      Callable[[str, int, int, List[float]], None]] = None,
                  ) -> EpochReport:
        """One complete epoch: train, evaluate, report, bookkeep.

        Encapsulates everything :meth:`train` does per iteration so that a
        resumable/supervised runtime can drive epochs one at a time and
        re-enter mid-epoch. Appends to :attr:`reports`, maintains the
        early-stop state (:attr:`best_top1`, :attr:`stale_epochs`,
        :attr:`stop_training`), and returns the epoch's report. The
        frozen flag in the report is the one :meth:`train_epoch` actually
        applied — a single source of truth.
        """
        clock_start = self._simulated_now()
        mean_loss, frozen = self.train_epoch(
            x, y, epoch, start_batch=start_batch,
            carried_losses=carried_losses, batch_callback=batch_callback,
        )
        accuracy = (
            self.evaluate(test_x, test_y)
            if test_x is not None and test_y is not None
            else {"top1": None, "top2": None}
        )
        report = EpochReport(
            epoch=epoch,
            mean_loss=mean_loss,
            top1=accuracy["top1"],
            top2=accuracy["top2"],
            partition=self.partitioned.partition,
            simulated_seconds=self._simulated_now() - clock_start,
            frontnet_frozen=frozen,
            backend=self.partitioned.network.backend_name,
        )
        self.reports.append(report)
        if keep_snapshots:
            self.snapshots.append(self.partitioned.network.get_weights())
        if self.on_epoch_end is not None:
            self.on_epoch_end(epoch, self)
        top1 = accuracy["top1"]
        if top1 is not None:
            if self.best_top1 is None or top1 > self.best_top1:
                self.best_top1 = top1
                self.best_weights = self.partitioned.network.get_weights()
                self.stale_epochs = 0
            else:
                self.stale_epochs += 1
            if (self.early_stop_patience is not None
                    and self.stale_epochs >= self.early_stop_patience):
                _LOG.info("early stop at epoch %d (best top-1 %.3f)",
                          epoch, self.best_top1)
                self.stop_training = True
        return report

    def train(self, x: np.ndarray, y: np.ndarray, epochs: int,
              test_x: Optional[np.ndarray] = None,
              test_y: Optional[np.ndarray] = None,
              keep_snapshots: bool = False,
              start_epoch: int = 0) -> List[EpochReport]:
        """The full training stage; returns the per-epoch reports.

        With ``early_stop_patience`` set (and test data given), training
        stops once test top-1 has not improved for that many epochs, and
        the best-seen weights are tracked in :attr:`best_weights`.
        ``start_epoch`` resumes a restored trainer at a later epoch.
        """
        for epoch in range(start_epoch, epochs):
            self.run_epoch(x, y, epoch, test_x=test_x, test_y=test_y,
                           keep_snapshots=keep_snapshots)
            if self.stop_training:
                break
        return self.reports
