"""The confidential training loop (the paper's training stage).

Drives partitioned mini-batch SGD over the decrypted (in-enclave) training
data: trusted-RNG-driven shuffling and augmentation, FrontNet in the
enclave, BackNet outside, per-epoch accuracy evaluation, per-epoch model
snapshots for the dynamic exposure re-assessment, and simulated-time
accounting for the performance experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.analysis.metrics import top_k_accuracy
from repro.core.freezing import FreezeSchedule
from repro.core.partition import PartitionedNetwork
from repro.data.augmentation import Augmenter
from repro.data.batching import iterate_minibatches
from repro.nn.optimizers import Optimizer
from repro.utils.logging import get_logger

__all__ = ["EpochReport", "ConfidentialTrainer"]

_LOG = get_logger("core.training")


@dataclass
class EpochReport:
    """Per-epoch training statistics."""

    epoch: int
    mean_loss: float
    top1: Optional[float]
    top2: Optional[float]
    partition: int
    simulated_seconds: float
    frontnet_frozen: bool = False


class ConfidentialTrainer:
    """Epoch loop over a :class:`PartitionedNetwork`.

    Args:
        partitioned: The (possibly enclave-backed) partitioned network.
        optimizer: Applied to both halves each batch.
        augmenter: In-enclave augmentation; ``None`` disables it.
        batch_size: Mini-batch size.
        freeze_schedule: Optional bottom-up FrontNet freezing.
        on_epoch_end: Hook ``(epoch, trainer) -> None`` — CalTrain's dynamic
            partition re-assessment runs here.
    """

    def __init__(self, partitioned: PartitionedNetwork, optimizer: Optimizer,
                 batch_rng: np.random.Generator,
                 augmenter: Optional[Augmenter] = None, batch_size: int = 32,
                 freeze_schedule: Optional[FreezeSchedule] = None,
                 lr_schedule=None,
                 on_epoch_end: Optional[Callable[[int, "ConfidentialTrainer"], None]] = None,
                 early_stop_patience: Optional[int] = None,
                 ) -> None:
        self.partitioned = partitioned
        self.optimizer = optimizer
        self.batch_rng = batch_rng
        self.augmenter = augmenter
        self.batch_size = batch_size
        self.freeze_schedule = freeze_schedule
        self.lr_schedule = lr_schedule
        self._base_learning_rate = getattr(optimizer, "learning_rate", None)
        self.on_epoch_end = on_epoch_end
        #: Stop after this many epochs without test-top-1 improvement
        #: (needs test data at train() time); None disables.
        self.early_stop_patience = early_stop_patience
        self.best_weights = None
        self.best_top1: Optional[float] = None
        self.reports: List[EpochReport] = []
        #: Per-epoch weight snapshots (semi-trained models) for assessment.
        self.snapshots: List[List[Dict[str, np.ndarray]]] = []

    def _simulated_now(self) -> float:
        if self.partitioned.enclave is None:
            return 0.0
        return self.partitioned.enclave.platform.clock.now

    def train_epoch(self, x: np.ndarray, y: np.ndarray, epoch: int) -> float:
        """One epoch of partitioned mini-batch SGD; returns the mean loss."""
        frozen = False
        if self.freeze_schedule is not None:
            frozen = self.freeze_schedule.apply(self.partitioned, epoch)
        if self.lr_schedule is not None and self._base_learning_rate is not None:
            self.lr_schedule.apply(self.optimizer, self._base_learning_rate, epoch)
        losses = []
        for xb, yb in iterate_minibatches(x, y, self.batch_size, rng=self.batch_rng):
            if self.augmenter is not None:
                xb = self.augmenter.augment_batch(xb)
            losses.append(self.partitioned.train_batch(xb, yb, self.optimizer))
        mean_loss = float(np.mean(losses)) if losses else 0.0
        _LOG.info("epoch %d: loss %.4f%s", epoch, mean_loss,
                  " (frontnet frozen)" if frozen else "")
        return mean_loss

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> Dict[str, float]:
        probs = self.partitioned.network.predict(x)
        return {
            "top1": top_k_accuracy(probs, y, k=1),
            "top2": top_k_accuracy(probs, y, k=2),
        }

    def train(self, x: np.ndarray, y: np.ndarray, epochs: int,
              test_x: Optional[np.ndarray] = None,
              test_y: Optional[np.ndarray] = None,
              keep_snapshots: bool = False) -> List[EpochReport]:
        """The full training stage; returns the per-epoch reports.

        With ``early_stop_patience`` set (and test data given), training
        stops once test top-1 has not improved for that many epochs, and
        the best-seen weights are tracked in :attr:`best_weights`.
        """
        stale_epochs = 0
        for epoch in range(epochs):
            clock_start = self._simulated_now()
            frozen = (
                self.freeze_schedule is not None
                and epoch >= self.freeze_schedule.freeze_at_epoch
            )
            mean_loss = self.train_epoch(x, y, epoch)
            accuracy = (
                self.evaluate(test_x, test_y)
                if test_x is not None and test_y is not None
                else {"top1": None, "top2": None}
            )
            self.reports.append(
                EpochReport(
                    epoch=epoch,
                    mean_loss=mean_loss,
                    top1=accuracy["top1"],
                    top2=accuracy["top2"],
                    partition=self.partitioned.partition,
                    simulated_seconds=self._simulated_now() - clock_start,
                    frontnet_frozen=frozen,
                )
            )
            if keep_snapshots:
                self.snapshots.append(self.partitioned.network.get_weights())
            if self.on_epoch_end is not None:
                self.on_epoch_end(epoch, self)
            top1 = accuracy["top1"]
            if top1 is not None:
                if self.best_top1 is None or top1 > self.best_top1:
                    self.best_top1 = top1
                    self.best_weights = self.partitioned.network.get_weights()
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                if (self.early_stop_patience is not None
                        and stale_epochs >= self.early_stop_patience):
                    _LOG.info("early stop at epoch %d (best top-1 %.3f)",
                              epoch, self.best_top1)
                    break
        return self.reports
