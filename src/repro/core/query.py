"""The misprediction query stage (paper, Sections IV-C and VI-D).

A model user who hits an erroneous prediction passes the problematic input
through the model, obtains its label ``Y`` and fingerprint ``F``, and asks
the query service for the closest training fingerprints *within class Y*
(L2 distance). The resulting candidates' sources point at the participants
to summon for the forensic stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.spatial import cKDTree
from scipy.spatial.distance import cdist

from repro.core.linkage import LinkageDatabase, LinkageRecord
from repro.errors import ConfigurationError, QueryError

__all__ = ["Neighbor", "QueryService"]


@dataclass(frozen=True)
class Neighbor:
    """One nearest-neighbour hit."""

    rank: int
    distance: float
    record_index: int
    record: LinkageRecord


class QueryService:
    """Nearest-fingerprint queries over the linkage database.

    Args:
        database: The Omega-tuple store.
        index: ``"brute"`` computes exact distances against the whole class
            (the paper's SciPy implementation); ``"kdtree"`` builds one
            k-d tree per class label for sublinear queries on large
            databases (exact results, different asymptotics).
    """

    def __init__(self, database: LinkageDatabase, index: str = "brute") -> None:
        if index not in ("brute", "kdtree"):
            raise ConfigurationError(f"unknown query index {index!r}")
        self.database = database
        self.index = index
        self._trees: Dict[int, Tuple[cKDTree, List[int]]] = {}

    def _tree_for(self, label: int) -> Tuple[cKDTree, List[int]]:
        if label not in self._trees:
            matrix, indices = self.database.by_label(label)
            if matrix.shape[0] == 0:
                raise QueryError(
                    f"no training fingerprints recorded for label {label}"
                )
            self._trees[label] = (cKDTree(matrix), indices)
        return self._trees[label]

    def _query_kdtree(self, fingerprint: np.ndarray, label: int,
                      k: int) -> List[Neighbor]:
        tree, indices = self._tree_for(label)
        count = min(k, len(indices))
        distances, positions = tree.query(fingerprint[0], k=count)
        distances = np.atleast_1d(distances)
        positions = np.atleast_1d(positions)
        return [
            Neighbor(
                rank=rank + 1,
                distance=float(distances[rank]),
                record_index=indices[int(positions[rank])],
                record=self.database.record(indices[int(positions[rank])]),
            )
            for rank in range(count)
        ]

    def query(self, fingerprint: np.ndarray, label: int, k: int = 9) -> List[Neighbor]:
        """The ``k`` closest same-label training instances, nearest first."""
        if k < 1:
            raise QueryError("k must be >= 1")
        matrix, indices = self.database.by_label(label)
        if matrix.shape[0] == 0:
            raise QueryError(f"no training fingerprints recorded for label {label}")
        fingerprint = np.asarray(fingerprint, dtype=np.float32).reshape(1, -1)
        if fingerprint.shape[1] != matrix.shape[1]:
            raise QueryError(
                f"fingerprint dimension {fingerprint.shape[1]} does not match "
                f"database dimension {matrix.shape[1]}"
            )
        if self.index == "kdtree":
            return self._query_kdtree(fingerprint, label, k)
        distances = cdist(fingerprint, matrix)[0]
        order = np.argsort(distances)[:k]
        return [
            Neighbor(
                rank=rank + 1,
                distance=float(distances[i]),
                record_index=indices[i],
                record=self.database.record(indices[i]),
            )
            for rank, i in enumerate(order)
        ]

    def query_batch(self, fingerprints: np.ndarray, labels: Sequence[int],
                    k: int = 9) -> List[List[Neighbor]]:
        """Query several mispredictions at once."""
        return [
            self.query(fingerprints[i], int(labels[i]), k=k)
            for i in range(fingerprints.shape[0])
        ]
