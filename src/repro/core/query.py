"""The misprediction query stage (paper, Sections IV-C and VI-D).

A model user who hits an erroneous prediction passes the problematic input
through the model, obtains its label ``Y`` and fingerprint ``F``, and asks
the query service for the closest training fingerprints *within class Y*
(L2 distance). The resulting candidates' sources point at the participants
to summon for the forensic stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.spatial import cKDTree
from scipy.spatial.distance import cdist

from repro.core.audit import AuditLog
from repro.core.linkage import LinkageDatabase, LinkageRecord
from repro.errors import ConfigurationError, QueryError
from repro.utils.serialization import stable_hash

__all__ = ["Neighbor", "QueryService"]


@dataclass(frozen=True)
class Neighbor:
    """One nearest-neighbour hit."""

    rank: int
    distance: float
    record_index: int
    record: LinkageRecord


class QueryService:
    """Nearest-fingerprint queries over the linkage database.

    Args:
        database: The Omega-tuple store.
        index: ``"brute"`` computes exact distances against the whole class
            (the paper's SciPy implementation); ``"kdtree"`` builds one
            k-d tree per class label for sublinear queries on large
            databases (exact results, different asymptotics).
    """

    def __init__(self, database: LinkageDatabase, index: str = "brute",
                 audit: Optional[AuditLog] = None,
                 run_key: Optional[str] = None) -> None:
        if index not in ("brute", "kdtree"):
            raise ConfigurationError(f"unknown query index {index!r}")
        self.database = database
        self.index = index
        #: Optional hash-chained audit of answered queries. With
        #: ``run_key`` set (a promoted deployment), every event names the
        #: training run the answers are attributable to.
        self.audit = audit
        self.run_key = run_key
        self._trees: Dict[int, Tuple[cKDTree, List[int], int]] = {}

    def _audit_query(self, fingerprint: np.ndarray, label: int, k: int,
                     neighbors: List[Neighbor]) -> None:
        if self.audit is None:
            return
        details = dict(
            query_digest=stable_hash(fingerprint).hex(),
            label=int(label),
            k=int(k),
            results=stable_hash(
                [[n.record_index, n.distance] for n in neighbors]
            ).hex(),
        )
        if self.run_key is not None:
            details["run_key"] = self.run_key
        self.audit.append("query", **details)

    def _tree_for(self, label: int) -> Tuple[cKDTree, List[int]]:
        count = self.database.count(label)
        if count == 0:
            raise QueryError(
                f"no training fingerprints recorded for label {label}"
            )
        cached = self._trees.get(label)
        if cached is None or cached[2] != count:
            # The database is append-only, so a changed per-label count is
            # the complete invalidation signal for this label's tree.
            matrix, indices = self.database.by_label(label)
            cached = (cKDTree(matrix), indices, count)
            self._trees[label] = cached
        return cached[0], cached[1]

    def _query_kdtree(self, fingerprint: np.ndarray, label: int,
                      k: int) -> List[Neighbor]:
        tree, indices = self._tree_for(label)
        count = min(k, len(indices))
        # The tree only bounds the k-th distance; its own ordering of
        # equal-distance points follows tree topology, not insertion order,
        # so it can disagree with brute mode on ties. Collect every point
        # within (just past) the k-th distance and re-rank with the same
        # distance computation and stable sort the brute path uses —
        # identical math, identical tie-breaking.
        kth_distance = np.atleast_1d(tree.query(fingerprint[0], k=count)[0])[-1]
        radius = kth_distance * (1.0 + 1e-6) + 1e-12
        candidates = np.asarray(
            sorted(tree.query_ball_point(fingerprint[0], radius)), dtype=int
        )
        distances = cdist(fingerprint, tree.data[candidates])[0]
        sort = np.argsort(distances, kind="stable")[:count]
        order = candidates[sort]
        ranked = distances[sort]
        return [
            Neighbor(
                rank=rank + 1,
                distance=float(ranked[rank]),
                record_index=indices[int(position)],
                record=self.database.record(indices[int(position)]),
            )
            for rank, position in enumerate(order)
        ]

    def query(self, fingerprint: np.ndarray, label: int, k: int = 9) -> List[Neighbor]:
        """The ``k`` closest same-label training instances, nearest first."""
        if k < 1:
            raise QueryError("k must be >= 1")
        matrix, indices = self.database.by_label(label)
        if matrix.shape[0] == 0:
            raise QueryError(f"no training fingerprints recorded for label {label}")
        fingerprint = np.asarray(fingerprint, dtype=np.float32).reshape(1, -1)
        if fingerprint.shape[1] != matrix.shape[1]:
            raise QueryError(
                f"fingerprint dimension {fingerprint.shape[1]} does not match "
                f"database dimension {matrix.shape[1]}"
            )
        if self.index == "kdtree":
            neighbors = self._query_kdtree(fingerprint, label, k)
            self._audit_query(fingerprint, label, k, neighbors)
            return neighbors
        distances = cdist(fingerprint, matrix)[0]
        # Stable sort: equal-distance neighbours rank in insertion order, so
        # forensics reports are reproducible run to run.
        order = np.argsort(distances, kind="stable")[:k]
        neighbors = [
            Neighbor(
                rank=rank + 1,
                distance=float(distances[i]),
                record_index=indices[i],
                record=self.database.record(indices[i]),
            )
            for rank, i in enumerate(order)
        ]
        self._audit_query(fingerprint, label, k, neighbors)
        return neighbors

    def query_batch(self, fingerprints: np.ndarray, labels: Sequence[int],
                    k: int = 9) -> List[List[Neighbor]]:
        """Query several mispredictions at once.

        Queries are grouped by label and answered with one vectorized
        distance computation per group; output order, ranking, and
        tie-breaking are identical to querying one at a time.
        """
        if k < 1:
            raise QueryError("k must be >= 1")
        fingerprints = np.asarray(fingerprints, dtype=np.float32)
        n = fingerprints.shape[0]
        fingerprints = fingerprints.reshape(n, -1)
        if len(labels) != n:
            raise QueryError(
                f"{n} fingerprints but {len(labels)} labels in batch"
            )
        groups: Dict[int, List[int]] = {}
        for position, label in enumerate(labels):
            groups.setdefault(int(label), []).append(position)
        results: List[Optional[List[Neighbor]]] = [None] * n
        for label, positions in groups.items():
            batch = fingerprints[positions]
            matrix, indices = self.database.by_label(label)
            if matrix.shape[0] == 0:
                raise QueryError(
                    f"no training fingerprints recorded for label {label}"
                )
            if batch.shape[1] != matrix.shape[1]:
                raise QueryError(
                    f"fingerprint dimension {batch.shape[1]} does not match "
                    f"database dimension {matrix.shape[1]}"
                )
            if self.index == "kdtree":
                for row, position in enumerate(positions):
                    results[position] = self._query_kdtree(
                        batch[row].reshape(1, -1), label, k
                    )
                continue
            distances = cdist(batch, matrix)
            order = np.argsort(distances, axis=1, kind="stable")[:, :k]
            for row, position in enumerate(positions):
                results[position] = [
                    Neighbor(
                        rank=rank + 1,
                        distance=float(distances[row, i]),
                        record_index=indices[i],
                        record=self.database.record(indices[i]),
                    )
                    for rank, i in enumerate(order[row])
                ]
        return results  # type: ignore[return-value]
