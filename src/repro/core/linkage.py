"""The 4-tuple linkage structure Omega = [F, Y, S, H] and its database.

For every training instance CalTrain records:

* ``F`` — the one-way fingerprint (penultimate-layer embedding),
* ``Y`` — the class label under the trained model,
* ``S`` — the data source (contributing participant),
* ``H`` — the hash digest of the instance, for later integrity checks.

Y narrows queries to one class, S attributes instances to contributors, H
verifies that an instance a participant later turns in is bit-identical to
what was trained on. The database serializes to bytes so the fingerprinting
enclave can seal it between the fingerprinting and query stages.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import LinkageError
from repro.utils.serialization import stable_hash

__all__ = ["LinkageRecord", "LinkageDatabase", "instance_digest"]


def instance_digest(image: np.ndarray) -> bytes:
    """The canonical hash digest ``H`` of one training instance."""
    return stable_hash(image)


@dataclass(frozen=True)
class LinkageRecord:
    """One Omega tuple plus bookkeeping for evaluation.

    ``source_index`` is the instance's index within its contributor's local
    dataset (what the investigator asks the participant to disclose);
    ``kind`` is ground-truth metadata used only by the evaluation harness
    (``"normal"``, ``"poisoned"``, ``"mislabeled"``) — a deployment would
    not have it.
    """

    fingerprint: np.ndarray
    label: int
    source: str
    digest: bytes
    source_index: int = -1
    kind: str = "normal"


class LinkageDatabase:
    """Stores Omega tuples, indexed by class label for fast queries."""

    def __init__(self) -> None:
        self._records: List[LinkageRecord] = []
        self._by_label: Dict[int, List[int]] = {}
        self._dimension: Optional[int] = None

    def __len__(self) -> int:
        return len(self._records)

    @property
    def dimension(self) -> Optional[int]:
        return self._dimension

    def add(self, record: LinkageRecord) -> None:
        fingerprint = np.asarray(record.fingerprint, dtype=np.float32).ravel()
        if self._dimension is None:
            self._dimension = fingerprint.shape[0]
        elif fingerprint.shape[0] != self._dimension:
            raise LinkageError(
                f"fingerprint dimension {fingerprint.shape[0]} does not match "
                f"database dimension {self._dimension}"
            )
        index = len(self._records)
        self._records.append(record)
        self._by_label.setdefault(int(record.label), []).append(index)

    def add_batch(self, fingerprints: np.ndarray, labels: Sequence[int],
                  sources: Sequence[str], digests: Sequence[bytes],
                  source_indices: Optional[Sequence[int]] = None,
                  kinds: Optional[Sequence[str]] = None) -> None:
        n = fingerprints.shape[0]
        if not (len(labels) == len(sources) == len(digests) == n):
            raise LinkageError("batch columns have mismatched lengths")
        for i in range(n):
            self.add(
                LinkageRecord(
                    fingerprint=fingerprints[i],
                    label=int(labels[i]),
                    source=sources[i],
                    digest=digests[i],
                    source_index=(
                        int(source_indices[i]) if source_indices is not None else -1
                    ),
                    kind=kinds[i] if kinds is not None else "normal",
                )
            )

    def record(self, index: int) -> LinkageRecord:
        return self._records[index]

    def records(self) -> List[LinkageRecord]:
        return list(self._records)

    def labels(self) -> List[int]:
        return sorted(self._by_label)

    def count(self, label: int) -> int:
        """Number of records for one class label (O(1), no matrix copy)."""
        return len(self._by_label.get(int(label), []))

    def by_label(self, label: int) -> Tuple[np.ndarray, List[int]]:
        """(fingerprint matrix, record indices) for one class label."""
        indices = self._by_label.get(int(label), [])
        if not indices:
            return np.zeros((0, self._dimension or 0), dtype=np.float32), []
        matrix = np.stack([self._records[i].fingerprint for i in indices]).astype(
            np.float32
        )
        return matrix, indices

    def verify_instance(self, index: int, image: np.ndarray) -> bool:
        """Check a disclosed instance against the recorded digest ``H``."""
        return instance_digest(image) == self._records[index].digest

    # -- verifiable commitment ---------------------------------------------------

    def _record_leaf(self, record: LinkageRecord) -> bytes:
        return stable_hash(
            np.asarray(record.fingerprint, dtype=np.float32),
            int(record.label), record.source, record.digest,
        )

    def merkle_commitment(self):
        """A Merkle tree over all Omega tuples (in insertion order).

        The fingerprinting enclave can publish the root (e.g. inside its
        attestation quote's report data) so model users can verify that
        query answers come from the committed database.
        """
        from repro.crypto.merkle import MerkleTree

        if not self._records:
            raise LinkageError("cannot commit to an empty database")
        return MerkleTree([self._record_leaf(r) for r in self._records])

    def prove_record(self, tree, index: int):
        """An inclusion proof for record ``index`` against ``tree``."""
        return tree.prove(index)

    def verify_record_inclusion(self, tree_root: bytes, index: int,
                                proof) -> bool:
        """Model-user-side check of a query answer against the root."""
        return proof.verify(self._record_leaf(self._records[index]), tree_root)

    # -- serialization (for enclave sealing / persistence) ---------------------

    def to_bytes(self) -> bytes:
        fingerprints = (
            np.stack([r.fingerprint for r in self._records]).astype(np.float32)
            if self._records else np.zeros((0, 0), dtype=np.float32)
        )
        meta = [
            {
                "label": int(r.label),
                "source": r.source,
                "digest": r.digest.hex(),
                "source_index": r.source_index,
                "kind": r.kind,
            }
            for r in self._records
        ]
        buffer = io.BytesIO()
        np.savez(
            buffer,
            fingerprints=fingerprints,
            meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        )
        return buffer.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "LinkageDatabase":
        db = cls()
        with np.load(io.BytesIO(blob)) as data:
            fingerprints = data["fingerprints"]
            meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        for fp, m in zip(fingerprints, meta):
            db.add(
                LinkageRecord(
                    fingerprint=fp,
                    label=m["label"],
                    source=m["source"],
                    digest=bytes.fromhex(m["digest"]),
                    source_index=m["source_index"],
                    kind=m["kind"],
                )
            )
        return db
