"""The forensic accountability pipeline (paper, Sections IV-C and VI-D).

Ties the pieces together: fingerprint the mispredicted inputs, query the
linkage database for nearest same-class training instances, summon the
responsible contributors to disclose those instances, verify the disclosed
data against the recorded hash digests, and aggregate suspicion per source.
Only the small set of suspicious instances is ever disclosed — the paper's
"minimum data exposure" property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.metrics import precision_recall_f1
from repro.core.fingerprint import Fingerprinter
from repro.core.query import Neighbor, QueryService
from repro.errors import QueryError
from repro.federation.participant import TrainingParticipant
from repro.utils.logging import get_logger

__all__ = ["InvestigationResult", "Investigator"]

_LOG = get_logger("core.accountability")


@dataclass
class InvestigationResult:
    """Everything an investigation produced."""

    #: Per mispredicted input: its neighbour list.
    neighbor_lists: List[List[Neighbor]]
    #: Record indices flagged as suspicious training instances.
    suspicious_records: List[int]
    #: Suspicion hit count per contributing source.
    source_counts: Dict[str, int] = field(default_factory=dict)
    #: Sources whose share of suspicious hits crosses the threshold.
    implicated_sources: List[str] = field(default_factory=list)
    #: Disclosed-and-verified instances (record index -> verified flag).
    verified_disclosures: Dict[int, bool] = field(default_factory=dict)

    def detection_metrics(self, kinds: Sequence[str]) -> Dict[str, float]:
        """Precision/recall of suspicious-record discovery vs ground truth.

        ``kinds`` is the per-record ground-truth kind list from the linkage
        database; any non-"normal" kind counts as a true bad instance among
        the *candidate pool* (records appearing in any neighbour list).
        """
        candidate_pool = sorted(
            {n.record_index for lst in self.neighbor_lists for n in lst}
        )
        actual = np.array([kinds[i] != "normal" for i in candidate_pool])
        predicted = np.array(
            [i in set(self.suspicious_records) for i in candidate_pool]
        )
        return precision_recall_f1(predicted, actual)


class Investigator:
    """Runs accountability investigations for runtime mispredictions."""

    def __init__(self, fingerprinter: Fingerprinter, query_service: QueryService,
                 neighbors_per_query: int = 9) -> None:
        self.fingerprinter = fingerprinter
        self.query_service = query_service
        self.neighbors_per_query = neighbors_per_query

    def investigate(self, mispredicted_x: np.ndarray,
                    participants: Optional[Mapping[str, TrainingParticipant]] = None,
                    distance_threshold: Optional[float] = None,
                    source_share_threshold: float = 0.25) -> InvestigationResult:
        """Full pipeline for a batch of mispredicted inputs.

        Args:
            mispredicted_x: The inputs the model user flagged as wrong.
            participants: When given, the investigator demands disclosure of
                every suspicious instance and hash-verifies it.
            distance_threshold: Neighbours farther than this are not treated
                as suspicious (``None``: every returned neighbour counts).
            source_share_threshold: A source is implicated when it owns at
                least this share of all suspicious hits.
        """
        labels, _, fingerprints = self.fingerprinter.predict_with_fingerprint(
            mispredicted_x
        )
        neighbor_lists = self.query_service.query_batch(
            fingerprints, labels, k=self.neighbors_per_query
        )

        suspicious: List[int] = []
        source_counts: Dict[str, int] = {}
        for neighbors in neighbor_lists:
            for neighbor in neighbors:
                if distance_threshold is not None and neighbor.distance > distance_threshold:
                    continue
                suspicious.append(neighbor.record_index)
                source = neighbor.record.source
                source_counts[source] = source_counts.get(source, 0) + 1
        suspicious = sorted(set(suspicious))

        total_hits = sum(source_counts.values())
        implicated = [
            source
            for source, count in sorted(source_counts.items())
            if total_hits and count / total_hits >= source_share_threshold
        ]

        result = InvestigationResult(
            neighbor_lists=neighbor_lists,
            suspicious_records=suspicious,
            source_counts=source_counts,
            implicated_sources=implicated,
        )
        if participants is not None:
            self._demand_disclosures(result, participants)
        return result

    def _demand_disclosures(self, result: InvestigationResult,
                            participants: Mapping[str, TrainingParticipant]) -> None:
        """Summon contributors and hash-verify every disclosed instance."""
        database = self.query_service.database
        for record_index in result.suspicious_records:
            record = database.record(record_index)
            participant = participants.get(record.source)
            if participant is None:
                _LOG.warning("source %r is unavailable for disclosure", record.source)
                result.verified_disclosures[record_index] = False
                continue
            try:
                disclosed = participant.disclose_instance(record.source_index)
            except QueryError:
                result.verified_disclosures[record_index] = False
                continue
            result.verified_disclosures[record_index] = database.verify_instance(
                record_index, disclosed
            )
