"""The paper's primary contribution: confidential + accountable training."""

from repro.core.accountability import InvestigationResult, Investigator
from repro.core.audit import AuditEvent, AuditLog
from repro.core.assessment import AssessmentResult, ExposureAssessor, LayerExposure
from repro.core.chain import HashChain
from repro.core.caltrain import CalTrain, CalTrainConfig
from repro.core.fingerprint import Fingerprinter, normalize_fingerprints
from repro.core.freezing import FreezeSchedule
from repro.core.linkage import LinkageDatabase, LinkageRecord, instance_digest
from repro.core.partition import PartitionedNetwork
from repro.core.partitioned_training import ConfidentialTrainer, EpochReport
from repro.core.query import Neighbor, QueryService

__all__ = [
    "CalTrain",
    "CalTrainConfig",
    "PartitionedNetwork",
    "ConfidentialTrainer",
    "EpochReport",
    "ExposureAssessor",
    "AssessmentResult",
    "LayerExposure",
    "Fingerprinter",
    "normalize_fingerprints",
    "FreezeSchedule",
    "LinkageDatabase",
    "LinkageRecord",
    "instance_digest",
    "QueryService",
    "Neighbor",
    "Investigator",
    "InvestigationResult",
    "AuditLog",
    "AuditEvent",
    "HashChain",
]
