"""Bottom-up layer freezing (paper, Section IV-B "Performance").

Neural networks converge from the bottom up (Raghu et al., SVCCA), so the
FrontNet can be frozen partway through training — reducing, then completely
eliminating, in-enclave training cost while the BackNet keeps refining.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import PartitionedNetwork
from repro.errors import ConfigurationError

__all__ = ["FreezeSchedule"]


@dataclass
class FreezeSchedule:
    """Freeze the FrontNet once training reaches ``freeze_at_epoch``.

    Args:
        freeze_at_epoch: First epoch (0-based) at which the FrontNet is
            frozen. ``None``-like behaviour: use a large value.
    """

    freeze_at_epoch: int

    def __post_init__(self) -> None:
        if self.freeze_at_epoch < 0:
            raise ConfigurationError("freeze_at_epoch must be >= 0")

    def apply(self, partitioned: PartitionedNetwork, epoch: int) -> bool:
        """Apply the schedule before ``epoch``; returns True when frozen."""
        frozen = epoch >= self.freeze_at_epoch
        partitioned.network.freeze_layers(partitioned.partition if frozen else 0)
        return frozen
