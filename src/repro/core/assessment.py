"""Information-exposure assessment of intermediate representations.

Implements the paper's dual-network framework (Section IV-B): an
*IRGenNet* (the model under assessment — possibly semi-trained) produces
intermediate representations for each layer; each IR feature map is
projected to an IR image and classified by an independent, well-trained
*IRValNet* oracle. The KL divergence between the oracle's distribution on
the original input and on each IR image measures how much input content the
IR still reveals. An IR whose KL reaches the uniform-distribution baseline
``delta_mu = D_KL(P(x) || U)`` no longer helps an adversary.

The *optimal partition* is the smallest FrontNet size K such that the IR
leaving the enclave (the output of layer K) — and every deeper IR — stays at
or above the baseline. Because model weights change every epoch, CalTrain
re-runs this assessment on each semi-trained model (dynamic re-assessment)
and participants re-agree on the partition for the next epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.images import to_ir_image
from repro.analysis.kl import kl_divergence, kl_to_uniform
from repro.errors import ConfigurationError
from repro.nn.network import Network

__all__ = ["LayerExposure", "AssessmentResult", "ExposureAssessor"]


@dataclass(frozen=True)
class LayerExposure:
    """KL statistics for one IRGenNet layer."""

    layer_index: int  # 0-based index into the network's layer list
    kl_min: float
    kl_max: float

    def leaks(self, baseline: float) -> bool:
        """True if some IR image at this layer still reveals input content."""
        return self.kl_min < baseline


@dataclass
class AssessmentResult:
    """Outcome of one exposure assessment run."""

    layers: List[LayerExposure]
    uniform_baseline: float
    #: Number of leading layers to enclose so that no exposed IR leaks.
    optimal_partition: int

    def layer_ranges(self) -> List[Tuple[float, float]]:
        return [(l.kl_min, l.kl_max) for l in self.layers]


class ExposureAssessor:
    """Runs the IRGenNet/IRValNet assessment.

    Args:
        val_net: The oracle model (a different well-trained network).
        max_channels_per_layer: IR images per layer are capped at this many
            (evenly spaced channels) to bound cost; the paper assesses all
            ``d_i`` feature maps.
    """

    def __init__(self, val_net: Network, max_channels_per_layer: int = 8) -> None:
        if max_channels_per_layer < 1:
            raise ConfigurationError("max_channels_per_layer must be >= 1")
        self.val_net = val_net
        self.max_channels = max_channels_per_layer
        self._val_h, self._val_w, self._val_c = val_net.input_shape

    # -- helpers ------------------------------------------------------------

    def _assessable_indices(self, gen_net: Network) -> List[int]:
        """All layers up to (excluding) softmax — Fig. 5's 16 layers."""
        return list(range(gen_net.penultimate_index() + 1))

    def _feature_maps(self, output: np.ndarray) -> List[np.ndarray]:
        """Split one example's layer output into 2-D feature maps."""
        if output.ndim == 3:  # (H, W, C)
            channels = output.shape[-1]
            take = np.linspace(0, channels - 1, min(self.max_channels, channels))
            return [output[..., int(c)] for c in take]
        # 1-D outputs (global pooling, logits): one 1xD "feature map".
        return [output.reshape(1, -1)]

    # -- main entry points -------------------------------------------------------

    def assess(self, gen_net: Network, inputs: np.ndarray) -> AssessmentResult:
        """Assess exposure of ``gen_net`` on a batch of original inputs."""
        if inputs.ndim != 4:
            raise ConfigurationError("inputs must be NHWC")
        indices = self._assessable_indices(gen_net)
        original_probs = self.val_net.predict(inputs)
        baselines = [kl_to_uniform(p) for p in original_probs]
        baseline = float(np.mean(baselines))

        layer_stats: List[LayerExposure] = []
        for layer_index in indices:
            ir_images: List[np.ndarray] = []
            owners: List[int] = []
            for example in range(inputs.shape[0]):
                captured = gen_net.forward_collect(
                    inputs[example : example + 1], [layer_index]
                )[layer_index][0]
                for fmap in self._feature_maps(captured):
                    ir_images.append(
                        to_ir_image(fmap, self._val_h, self._val_w, self._val_c)
                    )
                    owners.append(example)
            ir_probs = self.val_net.predict(np.stack(ir_images))
            kls = [
                kl_divergence(original_probs[owner], ir_prob)
                for owner, ir_prob in zip(owners, ir_probs)
            ]
            layer_stats.append(
                LayerExposure(
                    layer_index=layer_index,
                    kl_min=float(np.min(kls)),
                    kl_max=float(np.max(kls)),
                )
            )

        optimal = self._optimal_partition(layer_stats, baseline)
        return AssessmentResult(
            layers=layer_stats, uniform_baseline=baseline, optimal_partition=optimal
        )

    @staticmethod
    def _optimal_partition(layers: Sequence[LayerExposure], baseline: float) -> int:
        """Smallest K so the output of layer K and everything deeper is safe."""
        last_leaking = 0
        for position, stats in enumerate(layers, start=1):
            if stats.leaks(baseline):
                last_leaking = position
        # Enclose through the last leaking layer plus the first safe layer
        # whose output becomes the exposed IR.
        return min(last_leaking + 1, len(layers))

    def assess_training(self, models_by_epoch: Sequence[Network],
                        inputs: np.ndarray) -> List[AssessmentResult]:
        """Dynamic re-assessment: assess every epoch's semi-trained model."""
        return [self.assess(model, inputs) for model in models_by_epoch]


def train_validation_oracle(train_x: np.ndarray, train_y: np.ndarray,
                            rng, epochs: int = 8, batch_size: int = 32,
                            learning_rate: float = 0.02,
                            width_scale: float = 0.15,
                            background_fraction: float = 0.3) -> Network:
    """Train an IRValNet oracle suited to IR-image inspection.

    The paper's IRValNet is "a different well-trained deep learning model"
    acting as a content oracle — its class space need not match the
    IRGenNet's. This builder trains a 10-layer network over the original
    classes *plus one background class* of smooth contentless fields.
    Without it, an oracle forced to pick among content classes maps
    degenerate deep-layer IR images onto whichever class looks smoothest,
    producing false "leak" verdicts for inputs of that class.

    Args:
        train_x/train_y: The oracle's training data (original classes).
        background_fraction: Background images added, as a fraction of N.
    """
    from repro.data.batching import iterate_minibatches
    from repro.nn.optimizers import Sgd
    from repro.nn.zoo import cifar10_10layer

    if hasattr(rng, "child"):
        data_gen = rng.child("oracle-background").generator
        init_gen = rng.child("oracle-init").generator
        batch_gen = rng.child("oracle-batches").generator
    else:  # a bare numpy Generator
        data_gen = init_gen = batch_gen = rng

    n_classes = int(train_y.max()) + 1
    n_background = max(1, int(round(background_fraction * train_x.shape[0])))
    h, w, c = train_x.shape[1:]
    # Smooth random fields: bilinearly upsampled coarse noise, the texture
    # degenerate IR images actually exhibit.
    from repro.analysis.images import bilinear_resize

    backgrounds = np.empty((n_background, h, w, c), dtype=np.float32)
    for i in range(n_background):
        coarse = data_gen.random((data_gen.integers(2, 8), data_gen.integers(2, 8)))
        field = bilinear_resize(coarse, h, w)
        backgrounds[i] = np.repeat(field[..., None], c, axis=-1)
    x = np.concatenate([train_x, backgrounds])
    y = np.concatenate([train_y, np.full(n_background, n_classes, dtype=np.int64)])

    oracle = _oracle_network(cifar10_10layer, init_gen, width_scale, n_classes + 1,
                             input_shape=(h, w, c))
    optimizer = Sgd(learning_rate, momentum=0.9)
    for _ in range(epochs):
        for xb, yb in iterate_minibatches(x, y, batch_size, rng=batch_gen):
            oracle.train_batch(xb, yb, optimizer)
    return oracle


def _oracle_network(base_factory, rng, width_scale: float, num_classes: int,
                    input_shape) -> Network:
    """A Table-I-shaped network with an adjustable class count and input."""
    from repro.nn.initializers import gaussian_init
    from repro.nn.layers import (
        AvgPoolLayer,
        ConvLayer,
        CostLayer,
        MaxPoolLayer,
        SoftmaxLayer,
    )

    w = lambda f: max(4, int(round(f * width_scale)))
    layers = [
        ConvLayer(w(128), 3, 1),
        ConvLayer(w(128), 3, 1),
        MaxPoolLayer(2, 2),
        ConvLayer(w(64), 3, 1),
        MaxPoolLayer(2, 2),
        ConvLayer(w(128), 3, 1),
        ConvLayer(num_classes, 1, 1, activation="linear"),
        AvgPoolLayer(),
        SoftmaxLayer(),
        CostLayer(),
    ]
    return Network(input_shape, layers, initializer=gaussian_init(rng))
