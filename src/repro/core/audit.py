"""A tamper-evident audit log of pipeline events.

Model accountability is only as strong as the record of what the pipeline
did: which participants registered, how many records each stage accepted
or rejected, which partition was active when. :class:`AuditLog` is a
hash-chained, append-only event log the training enclave maintains and can
seal to its identity; any retroactive edit breaks the chain.

The chain math itself lives in :class:`repro.core.chain.HashChain` and is
shared with the governance event log; this class keeps the in-memory
event model and the canonical-JSON persistence format (unchanged on disk
since the serving plane first sealed one).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.chain import HashChain
from repro.errors import LinkageError
from repro.utils.serialization import canonical_json

__all__ = ["AuditEvent", "AuditLog"]


@dataclass(frozen=True)
class AuditEvent:
    """One event: a sequence number, a kind, details, and the chain hash."""

    sequence: int
    kind: str
    details: Dict[str, Any]
    chain_hash: bytes

    @property
    def payload(self) -> Dict[str, Any]:
        """The chained portion (everything except the hash itself)."""
        return {"seq": self.sequence, "kind": self.kind,
                "details": self.details}


class AuditLog:
    """Append-only, hash-chained event log."""

    _CHAIN = HashChain(b"caltrain-audit-genesis")

    def __init__(self) -> None:
        self._events: List[AuditEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    @property
    def head(self) -> bytes:
        """The chain head (commits to every event so far)."""
        return self._events[-1].chain_hash if self._events else \
            self._CHAIN.genesis

    def append(self, kind: str, **details: Any) -> AuditEvent:
        """Record one event; returns it with its chain hash."""
        sequence = len(self._events)
        chain_hash = self._CHAIN.entry_hash(
            self.head, {"seq": sequence, "kind": kind, "details": details}
        )
        event = AuditEvent(sequence=sequence, kind=kind, details=details,
                           chain_hash=chain_hash)
        self._events.append(event)
        return event

    def events(self, kind: Optional[str] = None) -> List[AuditEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def verify_chain(self) -> bool:
        """Recompute the chain; False if any event was altered."""
        return self._CHAIN.verify(
            (e.payload, e.chain_hash) for e in self._events
        )

    def verify_from(self, sequence: int, head: bytes) -> bool:
        """Incrementally verify events appended after a trusted mark.

        ``head`` must be the chain hash observed at ``sequence`` events
        (``genesis`` for 0). Recomputes only the suffix, so a health
        checker can re-verify a long-lived serving audit trail at every
        sweep without O(total-events) work: verify the suffix, then
        advance its mark to ``(len(log), log.head)``. Returns False if
        the suffix does not chain from ``head`` — including when the log
        shrank below ``sequence`` (a truncation is tampering too)."""
        if sequence < 0 or sequence > len(self._events):
            return False
        if sequence > 0 and self._events[sequence - 1].chain_hash != head:
            return False
        if sequence == 0 and head != self._CHAIN.genesis:
            return False
        running = head
        for event in self._events[sequence:]:
            expected = self._CHAIN.entry_hash(running, event.payload)
            if event.chain_hash != expected:
                return False
            running = expected
        return True

    # -- persistence -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        return canonical_json([
            {"seq": e.sequence, "kind": e.kind, "details": e.details,
             "chain": e.chain_hash.hex()}
            for e in self._events
        ])

    @classmethod
    def from_bytes(cls, blob: bytes) -> "AuditLog":
        log = cls()
        for entry in json.loads(blob.decode("utf-8")):
            event = AuditEvent(
                sequence=entry["seq"], kind=entry["kind"],
                details=entry["details"],
                chain_hash=bytes.fromhex(entry["chain"]),
            )
            log._events.append(event)
        if not log.verify_chain():
            raise LinkageError("audit log failed chain verification on load")
        return log
