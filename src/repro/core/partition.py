"""FrontNet/BackNet partitioned execution (paper, Section IV-B).

A :class:`PartitionedNetwork` splits a network at layer ``partition``: the
FrontNet (layers ``[0, partition)``) runs inside a training enclave together
with the decrypted training data; the BackNet (layers ``[partition, n)``)
runs outside and can use ML acceleration. Intermediate representations (IRs)
cross the boundary outward during feedforward; deltas cross back inward
during backpropagation; weight updates happen on both sides independently.

All performance effects are charged to the enclave platform's simulated
clock: in-enclave FLOPs at the slowdown factor, one OCALL per batch carrying
the IR, one ECALL per batch carrying the delta, and EPC paging whenever the
FrontNet working set exceeds the EPC.
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional, TYPE_CHECKING

import numpy as np

from repro.crypto.aead import Aead
from repro.enclave.enclave import Enclave
from repro.errors import PartitionError, TransferIntegrityError
from repro.nn.network import Network

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.tracing import Tracer

__all__ = ["PartitionedNetwork"]


class _NullSpan:
    """Zero-cost stand-in when no tracer is bound."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Backward passes cost roughly twice the forward FLOPs (dX and dW GEMMs).
_BACKWARD_FLOP_FACTOR = 2.0
#: Params + gradients + momentum buffers resident per weight.
_PARAM_STATE_FACTOR = 3


class PartitionedNetwork:
    """A network split into an in-enclave FrontNet and an outside BackNet.

    Args:
        network: The full network (both halves share its weights).
        partition: Number of leading layers inside the enclave. ``0`` means
            fully outside (the non-protected baseline); it may not exceed
            the penultimate layer, since softmax/cost produce the public
            predictions.
        enclave: The training enclave; ``None`` disables cost accounting
            and models a non-protected environment.
    """

    def __init__(self, network: Network, partition: int,
                 enclave: Optional[Enclave] = None) -> None:
        self.network = network
        self.enclave = enclave
        #: Verify a CRC over every IR/delta tensor crossing the boundary;
        #: a mismatch raises :class:`TransferIntegrityError` fail-closed.
        self.transfer_checksums = True
        #: Fault-injection tap ``(site, tensor) -> tensor`` applied while a
        #: tensor is "in flight" between the checksum and its verification
        #: (models corruption in the untrusted ECALL/OCALL copy path).
        self.boundary_tap: Optional[Callable[[str, np.ndarray], np.ndarray]] = None
        #: Optional observability sinks; see :meth:`bind_observability`.
        self.tracer: Optional["Tracer"] = None
        self.metrics: Optional["MetricsRegistry"] = None
        self._partition = -1
        self.set_partition(partition)

    def bind_observability(self, tracer: Optional["Tracer"] = None,
                           metrics: Optional["MetricsRegistry"] = None) -> None:
        """Attach a tracer and/or metrics registry to the hot path.

        Traced, every forward/backward emits ``enclave`` /
        ``boundary-crossing`` / ``untrusted`` spans so a training step
        decomposes into FrontNet, IR/delta transfer, and BackNet time.
        With metrics bound, boundary traffic lands in
        ``repro_partition_*`` counters/histograms and the enclave's EPC
        mirrors paging into the same registry. Unbound networks pay only
        a ``None`` check per phase.
        """
        self.tracer = tracer
        self.metrics = metrics
        if metrics is not None and self.enclave is not None:
            self.enclave.epc.bind_metrics(metrics)

    def _span(self, name: str, kind: str, **attributes):
        if self.tracer is None:
            return _NULL_SPAN
        return self.tracer.span(name, kind=kind, **attributes)

    # -- partition management -------------------------------------------------

    @property
    def partition(self) -> int:
        return self._partition

    def set_partition(self, partition: int) -> None:
        """(Re)split the network; reallocates the FrontNet's EPC footprint.

        Dynamic re-assessment between epochs calls this with the newly
        agreed partition layer (paper, Section IV-B).
        """
        limit = self.network.penultimate_index()
        if not 0 <= partition <= limit:
            raise PartitionError(
                f"partition must be in [0, {limit}] for this network, got {partition}"
            )
        if self.enclave is not None:
            if self.enclave.epc.usage_report().get("data/frontnet") is not None:
                self.enclave.epc.free("data/frontnet")
            self.enclave.epc.alloc("data/frontnet", self._frontnet_bytes(partition))
        self._partition = partition

    def rebind_enclave(self, enclave: Optional[Enclave]) -> None:
        """Point this partitioned network at a freshly built enclave.

        The recovery path after an enclave abort: the replacement enclave
        (same MRENCLAVE, re-attested by the caller) takes over the
        FrontNet's EPC footprint at the current partition.
        """
        self.enclave = enclave
        self.set_partition(self._partition)
        if self.metrics is not None and enclave is not None:
            enclave.epc.bind_metrics(self.metrics)

    def _frontnet_bytes(self, partition: int, batch_size: int = 0) -> int:
        params = sum(
            layer.param_bytes() for layer in self.network.layers[:partition]
        ) * _PARAM_STATE_FACTOR
        activations = 0
        if batch_size:
            for i in range(partition):
                activations += self.network.layers[i].activation_bytes(
                    self.network.layer_input_shape(i), batch_size
                )
        return params + activations

    @property
    def frontnet_layers(self):
        return self.network.layers[: self._partition]

    @property
    def backnet_layers(self):
        return self.network.layers[self._partition :]

    # -- cost accounting --------------------------------------------------------

    def _charge_compute(self, flops: float, in_enclave: bool) -> None:
        if self.enclave is None:
            return
        platform = self.enclave.platform
        platform.clock.advance(
            platform.cost_model.compute_seconds(flops, in_enclave=in_enclave)
        )

    def _charge_paging(self, batch_size: int) -> None:
        if self.enclave is None or self._partition == 0:
            return
        working_set = self._frontnet_bytes(self._partition, batch_size)
        self.enclave.epc.resize("data/frontnet", working_set)
        paged = self.enclave.epc.touch(working_set)
        if paged:
            platform = self.enclave.platform
            platform.clock.advance(platform.cost_model.paging_cost(paged))

    def _range_flops(self, start: int, stop: int, batch_size: int) -> float:
        per_example = self.network.flops_per_layer()
        return sum(per_example[start:stop]) * batch_size

    # -- execution -----------------------------------------------------------------

    def _cross_boundary(self, site: str, tensor: np.ndarray) -> np.ndarray:
        """Checksum one boundary transfer; detect in-flight corruption.

        The sending side computes a CRC before the tensor leaves, the
        receiving side re-verifies after the copy (where ``boundary_tap``
        may have corrupted it). SGX itself authenticates EPC memory but
        the untrusted marshalling buffers are fair game — a flipped bit
        there must fail closed, not silently poison training.
        """
        if not self.transfer_checksums and self.boundary_tap is None:
            return tensor
        checksum = None
        if self.transfer_checksums:
            checksum = zlib.crc32(np.ascontiguousarray(tensor).tobytes())
        if self.boundary_tap is not None:
            tensor = self.boundary_tap(site, tensor)
        if checksum is not None and checksum != zlib.crc32(
            np.ascontiguousarray(tensor).tobytes()
        ):
            raise TransferIntegrityError(
                f"{site} tensor failed its transfer checksum crossing the "
                "enclave boundary"
            )
        return tensor

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Full forward pass: FrontNet in-enclave, IR out, BackNet outside."""
        n = x.shape[0]
        k = self._partition
        with self._span("frontnet.forward", "enclave", batch=n):
            if k > 0:
                self._charge_paging(n)
                self._charge_compute(self._range_flops(0, k, n), in_enclave=True)
            ir = self.network.forward(x, training=training, start=0, stop=k)
        if self.enclave is not None and k > 0:
            with self._span("ir-transfer", "boundary-crossing",
                            bytes=ir.nbytes):
                self.enclave.ocall_cost(payload_bytes=ir.nbytes)
                ir = self._cross_boundary("ir", ir)
            if self.metrics is not None:
                self.metrics.inc("repro_partition_ir_bytes_total", ir.nbytes)
                self.metrics.inc("repro_partition_boundary_crossings_total")
        with self._span("backnet.forward", "untrusted", batch=n):
            self._charge_compute(
                self._range_flops(k, len(self.network.layers), n),
                in_enclave=False,
            )
            return self.network.forward(ir, training=training, start=k)

    def backward(self, delta: np.ndarray,
                 need_input_grad: bool = True) -> np.ndarray:
        """Full backward pass: BackNet outside, delta in, FrontNet inside.

        ``need_input_grad=False`` lets the bottom layer skip computing
        d(loss)/d(input) — the training loop never consumes it.
        """
        n = delta.shape[0]
        k = self._partition
        with self._span("backnet.backward", "untrusted", batch=n):
            self._charge_compute(
                self._range_flops(k, len(self.network.layers), n)
                * _BACKWARD_FLOP_FACTOR,
                in_enclave=False,
            )
            boundary_delta = self.network.backward(
                delta, start=None, stop=k,
                need_input_grad=need_input_grad or k > 0,
            )
        if k == 0:
            return boundary_delta
        if self.enclave is not None:
            with self._span("delta-transfer", "boundary-crossing",
                            bytes=boundary_delta.nbytes):
                # The delta tensor is copied into the enclave (modelled as
                # part of an ECALL transition).
                self.enclave.platform.clock.advance(
                    self.enclave.platform.cost_model.transition_cost(
                        boundary_delta.nbytes
                    )
                )
                boundary_delta = self._cross_boundary("delta", boundary_delta)
            if self.metrics is not None:
                self.metrics.inc("repro_partition_delta_bytes_total",
                                 boundary_delta.nbytes)
                self.metrics.inc("repro_partition_boundary_crossings_total")
        frontnet_frozen = all(layer.frozen for layer in self.frontnet_layers)
        if frontnet_frozen:
            # Bottom-up convergence freezing (paper, "Performance"): no
            # FrontNet backward work at all once it is frozen.
            return boundary_delta
        with self._span("frontnet.backward", "enclave", batch=n):
            self._charge_compute(
                self._range_flops(0, k, n) * _BACKWARD_FLOP_FACTOR,
                in_enclave=True,
            )
            return self.network.backward(boundary_delta, start=k, stop=0,
                                         need_input_grad=need_input_grad)

    def train_batch(self, x: np.ndarray, labels: np.ndarray, optimizer) -> float:
        """One partitioned SGD step; returns the batch loss."""
        probs = self.forward(x, training=True)
        loss, delta = self.network.cost_layer().batch_loss(probs, labels)
        self.backward(delta, need_input_grad=False)
        optimizer.step(self.network)
        self.network.zero_grads()
        return loss

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        outputs = [
            self.forward(x[i : i + batch_size])
            for i in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    # -- model release -----------------------------------------------------------------

    def export_frontnet_encrypted(self, aead: Aead, nonce: bytes) -> bytes:
        """Serialize the FrontNet weights sealed under a participant's key.

        After training, the model is released to each participant with the
        FrontNet encrypted under that participant's provisioned key, so the
        server provider never sees the complete model (Section IV-B).
        """
        import io

        import numpy as _np

        arrays = {}
        for i, layer in enumerate(self.frontnet_layers):
            for name, arr in layer.params().items():
                arrays[f"layer{i}/{name}"] = arr
        buffer = io.BytesIO()
        _np.savez(buffer, **arrays)
        return aead.seal(nonce, buffer.getvalue(), aad=b"caltrain-frontnet")

    def import_frontnet_encrypted(self, aead: Aead, nonce: bytes, sealed: bytes) -> None:
        """Decrypt and load FrontNet weights (participant side)."""
        import io

        import numpy as _np

        blob = aead.open(nonce, sealed, aad=b"caltrain-frontnet")
        with _np.load(io.BytesIO(blob)) as data:
            for key in data.files:
                layer_part, name = key.split("/", 1)
                layer = self.network.layers[int(layer_part[len("layer"):])]
                layer.params()[name][...] = data[key]
