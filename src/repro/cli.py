"""Command-line interface.

Run ``python -m repro <command>``:

* ``info`` — version, architectures, and the Table I/II summaries.
* ``train`` — confidential collaborative training on synthetic data.
* ``train-distributed`` — data-parallel training across N enclave
  workers with per-round secure FrontNet aggregation; understands
  ``--kill``/``--straggle``/``--corrupt`` fault drills and prints the
  aggregator enclave's hash-chained audit trail.
* ``assess`` — information-exposure assessment of a freshly trained model.
* ``forensics`` — the Trojaning-attack accountability pipeline.
* ``build-index`` — persist a linkage store and build the sharded ANN index.
* ``serve-queries`` — run the batched/cached/audited query engine.
* ``ingest`` — multi-contributor chunked ingest through the gateway,
  validation pipeline, and contribution ledger (with optional
  fault-injection to demo crash/resume).
* ``ingest-status`` — inspect and verify an on-disk contribution ledger.
* ``checkpoints`` — inspect the sealed checkpoints of a training run.
* ``metrics`` — run a small training scenario and export the unified
  metrics registry (Prometheus text or JSON).
* ``govern`` — the end-to-end accountability drill: ledger ingest →
  governed training → fail-closed promotion → flagged-query contributor
  attribution, all chained into one governance timeline.
  ``--tamper ledger|checkpoint|store|log`` flips one artifact byte
  *after* promotion; the deployment must refuse to serve (exit 2).
* ``promote`` — re-verify a ``govern`` deployment's lineage from disk
  and (re-)issue its signed promotion record.
* ``attribute`` — walk one flagged prediction back through the promoted
  serving plane to the contributors whose ledger records back it.

``train`` additionally understands ``--checkpoint-dir``/``--resume``/
``--checkpoint-every``/``--inject`` for fault-tolerant training: sealed
epoch-boundary (and mid-epoch) checkpoints, supervised recovery from
injected enclave faults, and bitwise-identical resume.

``train`` and ``serve-queries`` accept ``--trace PATH`` to record the
run as a span tree (``.json`` for structured output, anything else for
the rendered tree). Training traces use the *simulated* platform clock,
so they are deterministic given the seed.

Every command is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CalTrain: confidential and accountable collaborative learning",
    )
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and architecture tables")

    train = sub.add_parser("train", help="confidential collaborative training")
    train.add_argument("--architecture", default="cifar10-10layer",
                       choices=["cifar10-10layer", "cifar10-18layer"])
    train.add_argument("--epochs", type=int, default=4)
    train.add_argument("--width-scale", type=float, default=0.1)
    train.add_argument("--partition", type=int, default=2)
    train.add_argument("--participants", type=int, default=3)
    train.add_argument("--train-size", type=int, default=300)
    train.add_argument("--test-size", type=int, default=100)
    train.add_argument("--checkpoint-dir", default=None,
                       help="run under the resilience runtime, checkpointing "
                            "into this directory")
    train.add_argument("--resume", action="store_true",
                       help="continue from the newest valid checkpoint")
    train.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="BATCHES",
                       help="also checkpoint mid-epoch every N batches")
    train.add_argument("--inject", action="append", default=[],
                       metavar="KIND@EPOCH[:BATCH]",
                       help="inject a fault, e.g. enclave-abort@1:3 "
                            "(repeatable); kinds: enclave-abort, "
                            "epc-pressure, ir-corrupt, delta-corrupt, "
                            "checkpoint-crash")
    train.add_argument("--backend", default=None,
                       choices=["reference", "optimized"],
                       help="nn compute backend (default: REPRO_NN_BACKEND "
                            "or reference)")
    train.add_argument("--trace", default=None, metavar="PATH",
                       help="record the run as a span tree on the simulated "
                            "clock (.json = structured, else rendered text)")

    dist = sub.add_parser(
        "train-distributed",
        help="multi-enclave data-parallel training with secure aggregation",
    )
    dist.add_argument("--workers", type=int, default=2,
                      help="number of enclave workers (ids w0..wN-1)")
    dist.add_argument("--rounds", type=int, default=3,
                      help="data-parallel rounds (one local epoch each)")
    dist.add_argument("--architecture", default="cifar10-10layer",
                      choices=["cifar10-10layer", "cifar10-18layer"])
    dist.add_argument("--width-scale", type=float, default=0.1)
    dist.add_argument("--partition", type=int, default=2)
    dist.add_argument("--participants", type=int, default=3)
    dist.add_argument("--train-size", type=int, default=300)
    dist.add_argument("--test-size", type=int, default=100)
    dist.add_argument("--checkpoint-dir", default=None,
                      help="root for the per-worker sealed checkpoints "
                           "(default: a temp directory)")
    dist.add_argument("--straggler-factor", type=float, default=2.5,
                      help="deadline = factor x fastest local epoch")
    dist.add_argument("--blacklist-after", type=int, default=2,
                      help="consecutive bad rounds before a worker is "
                           "blacklisted and its shard reassigned")
    dist.add_argument("--kill", action="append", default=[],
                      metavar="WORKER@ROUND[:BATCH]",
                      help="crash a worker's enclave mid-round, e.g. w1@1:2 "
                           "(repeatable); it recovers from its sealed "
                           "checkpoint")
    dist.add_argument("--straggle", action="append", default=[],
                      metavar="WORKER@ROUND[:FACTOR]",
                      help="stretch a worker's round, e.g. w1@0:4.0 "
                           "(repeatable)")
    dist.add_argument("--corrupt", action="append", default=[],
                      metavar="WORKER@ROUND",
                      help="flip one byte of a worker's masked upload in "
                           "the coordinator relay (repeatable)")
    dist.add_argument("--backend", default=None,
                      choices=["reference", "optimized"],
                      help="nn compute backend (default: REPRO_NN_BACKEND "
                           "or reference)")
    dist.add_argument("--trace", default=None, metavar="PATH",
                      help="record the run as a span tree (.json = "
                           "structured, else rendered text)")

    assess = sub.add_parser("assess", help="exposure assessment")
    assess.add_argument("--epochs", type=int, default=3)
    assess.add_argument("--width-scale", type=float, default=0.1)
    assess.add_argument("--inputs", type=int, default=2)

    forensics = sub.add_parser("forensics", help="trojan accountability demo")
    forensics.add_argument("--identities", type=int, default=8)
    forensics.add_argument("--queries", type=int, default=3)

    build = sub.add_parser(
        "build-index",
        help="persist a linkage store and build the sharded ANN index",
    )
    build.add_argument("--path", default=None,
                       help="store directory (default: a temp directory)")
    build.add_argument("--records", type=int, default=20000)
    build.add_argument("--dim", type=int, default=32)
    build.add_argument("--labels", type=int, default=8)
    build.add_argument("--segment-size", type=int, default=8192)
    build.add_argument("--shard-threshold", type=int, default=1024)

    serve = sub.add_parser(
        "serve-queries",
        help="serve misprediction queries through the batched engine",
    )
    serve.add_argument("--path", default=None,
                       help="existing store directory (default: build one)")
    serve.add_argument("--records", type=int, default=20000)
    serve.add_argument("--dim", type=int, default=32)
    serve.add_argument("--labels", type=int, default=8)
    serve.add_argument("--queries", type=int, default=512)
    serve.add_argument("--k", type=int, default=5)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--probes", type=int, default=None,
                       help="ANN probe count (default: exact mode)")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="record the serving run as a wall-clock span "
                            "tree (.json = structured, else rendered text)")

    cluster = sub.add_parser(
        "serve-cluster",
        help="replicated self-healing serving with deadlines, hedging, "
             "circuit breakers, and optional fault injection",
    )
    cluster.add_argument("--path", default=None,
                         help="existing store directory (default: build one)")
    cluster.add_argument("--records", type=int, default=6000)
    cluster.add_argument("--dim", type=int, default=16)
    cluster.add_argument("--labels", type=int, default=4)
    cluster.add_argument("--replicas", type=int, default=3)
    cluster.add_argument("--queries", type=int, default=256)
    cluster.add_argument("--k", type=int, default=5)
    cluster.add_argument("--workers", type=int, default=2)
    cluster.add_argument("--deadline", type=float, default=2.0,
                         help="per-query end-to-end deadline (seconds)")
    cluster.add_argument(
        "--inject", action="append", default=[],
        metavar="KIND@QUERY[:REPLICA]",
        help="schedule a serving fault, e.g. replica-crash@40, "
             "index-corrupt@80:replica-1, or growth-storm@30 "
             "(benign ingest burst; repeatable)",
    )
    cluster.add_argument("--seeded-faults", type=int, default=0,
                         help="additionally schedule N seeded random faults")
    cluster.add_argument("--growth-records", type=int, default=200,
                         help="records per growth-storm injection "
                              "(benign ingest burst; default 200)")
    cluster.add_argument("--expect-no-evictions", action="store_true",
                         help="fail (exit 1) if any replica was evicted — "
                              "the growth-storm drill's contract")
    cluster.add_argument("--trace", default=None, metavar="PATH",
                         help="record the run as a wall-clock span tree")

    metrics = sub.add_parser(
        "metrics",
        help="run a small training scenario and export the unified "
             "metrics registry",
    )
    metrics.add_argument("--format", default="prom", choices=["prom", "json"],
                         help="Prometheus text exposition or a JSON snapshot")
    metrics.add_argument("--output", default=None, metavar="PATH",
                         help="write the export here instead of stdout")
    metrics.add_argument("--epochs", type=int, default=2)
    metrics.add_argument("--width-scale", type=float, default=0.1)
    metrics.add_argument("--participants", type=int, default=2)
    metrics.add_argument("--train-size", type=int, default=120)
    metrics.add_argument("--test-size", type=int, default=40)

    ingest = sub.add_parser(
        "ingest",
        help="chunked, attestation-gated multi-contributor data ingestion",
    )
    ingest.add_argument("--path", default=None,
                        help="ledger directory (default: a temp directory)")
    ingest.add_argument("--contributors", type=int, default=3)
    ingest.add_argument("--records-per", type=int, default=120)
    ingest.add_argument("--chunk-records", type=int, default=32)
    ingest.add_argument("--tamper", type=int, default=2,
                        help="records per contributor to tamper in transit")
    ingest.add_argument("--fault", action="store_true",
                        help="kill one upload mid-transfer and resume it")

    status = sub.add_parser(
        "ingest-status",
        help="inspect and verify an on-disk contribution ledger",
    )
    status.add_argument("--path", required=True, help="ledger directory")

    checkpoints = sub.add_parser(
        "checkpoints",
        help="inspect the sealed checkpoints of a training run",
    )
    checkpoints.add_argument("--path", required=True,
                             help="checkpoint directory")

    def _governance_args(command):
        # The training-agreement knobs: `promote`/`attribute` rebuild the
        # deployment's config digest (and so its run key) from these, so
        # they must match the `govern` run that wrote the artifacts.
        command.add_argument("--epochs", type=int, default=2)
        command.add_argument("--width-scale", type=float, default=0.1)

    govern = sub.add_parser(
        "govern",
        help="end-to-end accountability drill: ingest, governed training, "
             "promotion, attribution",
    )
    govern.add_argument("--path", default=None,
                        help="deployment root (default: a temp directory)")
    _governance_args(govern)
    govern.add_argument("--train-size", type=int, default=40,
                        help="records per contributor")
    govern.add_argument("--contributors", type=int, default=3)
    govern.add_argument("--tamper", default=None,
                        choices=["ledger", "checkpoint", "store", "log"],
                        help="flip one byte of this artifact after "
                             "promotion; the deployment must refuse to "
                             "serve (exit code 2)")

    promote = sub.add_parser(
        "promote",
        help="re-verify a deployment's lineage and sign its promotion",
    )
    promote.add_argument("--path", required=True,
                         help="deployment root written by `repro govern`")
    _governance_args(promote)

    attribute = sub.add_parser(
        "attribute",
        help="attribute one flagged prediction to its contributors",
    )
    attribute.add_argument("--path", required=True,
                           help="deployment root written by `repro govern`")
    _governance_args(attribute)
    attribute.add_argument("--record-index", type=int, default=None,
                           help="store record to flag a prediction near "
                                "(default: seed-chosen)")
    attribute.add_argument("--k", type=int, default=9)
    attribute.add_argument("--output", default=None, metavar="PATH",
                           help="write the canonical-JSON report here")
    return parser


def _cmd_info(args) -> int:
    import repro
    from repro.ingest import LEDGER_FORMAT
    from repro.nn.zoo import cifar10_10layer, cifar10_18layer

    import os

    from repro.nn.backends import ENV_VAR, available_backends, default_backend

    print(f"repro-caltrain {repro.__version__}")
    print(f"backends: {', '.join(available_backends())} "
          f"(default: {default_backend().name}; "
          f"{ENV_VAR}={os.environ.get(ENV_VAR, '') or 'unset'})")
    print("\nTable I — 10-layer CIFAR-10 network:")
    print(cifar10_10layer(np.random.default_rng(0), width_scale=1.0).summary())
    print("\nTable II — 18-layer CIFAR-10 network:")
    print(cifar10_18layer(np.random.default_rng(0), width_scale=1.0).summary())
    print("\nIngestion plane (repro.ingest):")
    print(f"  ledger segment format    v{LEDGER_FORMAT} "
          "(append-only, content-addressed, sealable manifest)")
    print("  repro ingest             chunked attestation-gated multi-"
          "contributor ingest")
    print("  repro ingest-status      inspect/verify an on-disk "
          "contribution ledger")
    print("\nGovernance plane (repro.governance):")
    print("  repro govern             end-to-end accountability drill "
          "(ingest, train, promote, attribute)")
    print("  repro promote            re-verify a run's lineage, sign its "
          "promotion record")
    print("  repro attribute          walk a flagged prediction back to "
          "its contributors")
    print("\nResilience runtime (repro.resilience):")
    print("  repro train --checkpoint-dir DIR "
          "sealed checkpoint/resume + supervised retries")
    print("  repro train --inject KIND@EPOCH[:BATCH] "
          "deterministic fault injection")
    print("  repro checkpoints        inspect a checkpoint directory")
    return 0


def _write_trace(tracer, path: str, time_unit: str = "s") -> None:
    """Write a finished trace: structured for ``.json``, rendered otherwise."""
    import json
    from pathlib import Path

    if path.endswith(".json"):
        Path(path).write_text(json.dumps(tracer.to_dict(), indent=1))
    else:
        Path(path).write_text(tracer.render(time_unit=time_unit) + "\n")
    totals = tracer.kind_totals()
    attribution = "  ".join(
        f"{kind} {totals[kind]:.4f}{time_unit}"
        for kind in sorted(totals) if totals[kind] > 0.0
    )
    print(f"trace written to {path} ({len(tracer.roots)} root spans; "
          f"{attribution})")


def _parse_fault_specs(specs):
    from repro.errors import ConfigurationError
    from repro.resilience import FaultPlan, FaultSpec

    if not specs:
        return None
    faults = []
    for text in specs:
        try:
            kind, _, where = text.partition("@")
            epoch, _, batch = where.partition(":")
            faults.append(FaultSpec(kind=kind, epoch=int(epoch),
                                    batch=int(batch) if batch else 0))
        except ValueError as exc:
            raise ConfigurationError(
                f"bad --inject spec {text!r}; expected KIND@EPOCH[:BATCH]"
            ) from exc
    return FaultPlan(faults)


def _cmd_train(args) -> int:
    from repro.core.caltrain import CalTrain, CalTrainConfig
    from repro.data.datasets import synthetic_cifar
    from repro.federation.participant import TrainingParticipant
    from repro.utils.rng import RngStream

    rng = RngStream(args.seed, name="cli-train")
    train, test = synthetic_cifar(rng.child("data"), num_train=args.train_size,
                                  num_test=args.test_size)
    system = CalTrain(CalTrainConfig(
        seed=args.seed, architecture=args.architecture,
        width_scale=args.width_scale, epochs=args.epochs,
        partition=args.partition, augment=False,
        backend=args.backend,
    ))
    print(f"enclave MRENCLAVE: {system.expected_measurement.hex()}")
    fractions = [1.0 / args.participants] * args.participants
    for i, share in enumerate(train.split(fractions,
                                          rng=rng.child("split").generator)):
        participant = TrainingParticipant(f"p{i}", share, rng.child(f"p{i}"))
        system.register_participant(participant)
        system.submit_data(participant)
    tracer = None
    if args.trace:
        from repro.observability import Tracer

        # Simulated platform seconds, not wall time: the trace is part of
        # the deterministic run, identical for identical seeds.
        tracer = Tracer(clock=lambda: system.platform.clock.now)
    reports = system.train(
        test_x=test.x, test_y=test.y,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        checkpoint_every_batches=args.checkpoint_every,
        fault_plan=_parse_fault_specs(args.inject),
        tracer=tracer,
    )
    summary = system.decryption_summary
    print(f"accepted {summary.accepted} records "
          f"({summary.rejected_tampered} tampered, "
          f"{summary.rejected_unregistered} unregistered rejected)")
    for report in reports:
        print(f"epoch {report.epoch + 1:>2}: loss {report.mean_loss:.4f}  "
              f"top-1 {report.top1:.2%}  top-2 {report.top2:.2%}  "
              f"simulated {report.simulated_seconds:.3f}s")
    if system.run_telemetry is not None:
        print(system.run_telemetry.render())
        print(f"audit chain: {len(system.audit_log)} events, "
              f"{'VERIFIED' if system.audit_log.verify_chain() else 'BROKEN'}")
    if tracer is not None:
        _write_trace(tracer, args.trace, time_unit="s")
    database = system.fingerprint_stage()
    print(f"linkage database: {len(database)} records "
          f"(dimension {database.dimension})")
    return 0


def _parse_injections(args):
    from repro.distributed import WorkerInjection
    from repro.errors import ConfigurationError

    injections = []

    def parse(text, kind, arg_name, arg_cast):
        try:
            worker, _, where = text.partition("@")
            round_text, _, extra = where.partition(":")
            spec = {"kind": kind, "worker": worker, "round": int(round_text)}
            if extra:
                spec[arg_name] = arg_cast(extra)
            return WorkerInjection(**spec)
        except ValueError as exc:
            raise ConfigurationError(
                f"bad --{kind if kind != 'crash' else 'kill'} spec "
                f"{text!r}; expected WORKER@ROUND[:{arg_name.upper()}]"
            ) from exc

    for text in args.kill:
        injections.append(parse(text, "crash", "batch", int))
    for text in args.straggle:
        injections.append(parse(text, "straggle", "factor", float))
    for text in args.corrupt:
        injections.append(parse(text, "corrupt", "batch", int))
    return tuple(injections)


def _cmd_train_distributed(args) -> int:
    from repro.core.caltrain import CalTrain, CalTrainConfig
    from repro.data.datasets import synthetic_cifar
    from repro.federation.participant import TrainingParticipant
    from repro.utils.rng import RngStream

    rng = RngStream(args.seed, name="cli-train-distributed")
    train, test = synthetic_cifar(rng.child("data"),
                                  num_train=args.train_size,
                                  num_test=args.test_size)
    system = CalTrain(CalTrainConfig(
        seed=args.seed, architecture=args.architecture,
        width_scale=args.width_scale, epochs=args.rounds,
        partition=args.partition, augment=False,
        backend=args.backend,
    ))
    print(f"training enclave MRENCLAVE: {system.expected_measurement.hex()}")
    fractions = [1.0 / args.participants] * args.participants
    for i, share in enumerate(train.split(fractions,
                                          rng=rng.child("split").generator)):
        participant = TrainingParticipant(f"p{i}", share, rng.child(f"p{i}"))
        system.register_participant(participant)
        system.submit_data(participant)
    tracer = None
    if args.trace:
        from repro.observability import Tracer

        tracer = Tracer(clock=lambda: system.coordinator.clock.now
                        if system.coordinator is not None else 0.0)
    reports = system.train(
        test_x=test.x, test_y=test.y,
        workers=args.workers,
        straggler_factor=args.straggler_factor,
        blacklist_after=args.blacklist_after,
        injections=_parse_injections(args),
        checkpoint_dir=args.checkpoint_dir,
        tracer=tracer,
    )
    coordinator = system.coordinator
    print(f"aggregator MRENCLAVE: {coordinator.aggregator.mrenclave.hex()}")
    print(f"shards: " + "  ".join(
        f"{w.worker_id}={w.examples}" for w in coordinator.workers))
    for report, round_report in zip(reports, coordinator.reports):
        extras = []
        if round_report.stragglers:
            extras.append(f"stragglers {','.join(round_report.stragglers)}")
        if round_report.faulted:
            extras.append(f"faulted {','.join(round_report.faulted)}")
        if round_report.recovered:
            extras.append(f"recovered {','.join(round_report.recovered)}")
        if round_report.corrupted:
            extras.append(f"corrupted {','.join(round_report.corrupted)}")
        if round_report.blacklisted:
            extras.append(f"blacklisted {','.join(round_report.blacklisted)}")
        suffix = f"  [{'; '.join(extras)}]" if extras else ""
        print(f"round {report.epoch:>2}: loss {report.mean_loss:.4f}  "
              f"{len(round_report.participating)}/{args.workers} aggregated  "
              f"simulated {report.simulated_seconds:.3f}s{suffix}")
    final = reports[-1]
    if final.top1 is not None:
        print(f"final accuracy: top-1 {final.top1:.2%}  top-2 {final.top2:.2%}")
    print("\naggregation audit trail "
          f"({'VERIFIED' if coordinator.audit.verify_chain() else 'BROKEN'}):")
    for event in coordinator.audit.events("aggregation"):
        details = event.details
        print(f"  round {details['round']}: participants "
              f"{','.join(details['participants']) or '-'}  dropped "
              f"{','.join(details['dropped']) or '-'}  "
              f"digest {details['digest'][:16]}…")
    print()
    print(system.distributed_telemetry.render())
    if tracer is not None:
        _write_trace(tracer, args.trace, time_unit="s")
    return 0


def _cmd_checkpoints(args) -> int:
    from repro.resilience import CheckpointManager

    manager = CheckpointManager(args.path)
    infos = manager.checkpoints()
    torn = sum(
        1 for entry in sorted(manager.directory.iterdir())
        if entry.is_dir() and entry.name.startswith("ckpt-")
    ) - len(infos)
    print(f"checkpoint directory {args.path}")
    print(f"  valid checkpoints        {len(infos)}")
    print(f"  torn/invalid directories {torn}")
    for info in infos:
        size = sum(f.stat().st_size for f in info.path.iterdir() if f.is_file())
        point = (f"epoch {info.epoch} boundary" if info.batch == 0
                 else f"epoch {info.epoch}, batch {info.batch}")
        print(f"  seq {info.seq:>4}: {point:<24} batch_size {info.batch_size:>4} "
              f"partition {info.partition}  {size:>8} bytes  "
              f"mrenclave {info.manifest['mrenclave'][:16]}…")
    latest = manager.latest()
    if latest is not None:
        print(f"  resume target: {latest.path.name}")
    return 0


def _cmd_assess(args) -> int:
    from repro.core.assessment import ExposureAssessor, train_validation_oracle
    from repro.data.batching import iterate_minibatches
    from repro.data.datasets import synthetic_cifar
    from repro.nn.optimizers import Sgd
    from repro.nn.zoo import cifar10_18layer
    from repro.utils.rng import RngStream

    rng = RngStream(args.seed, name="cli-assess")
    train, test = synthetic_cifar(rng.child("data"), num_train=400, num_test=100)
    print("training the IRValNet oracle…")
    oracle = train_validation_oracle(train.x, train.y, rng.child("oracle"),
                                     epochs=6, width_scale=0.15,
                                     learning_rate=0.03)
    print("training the IRGenNet model…")
    model = cifar10_18layer(rng.child("init").generator,
                            width_scale=args.width_scale)
    optimizer = Sgd(0.02, 0.9)
    batch_rng = rng.child("batches").generator
    for _ in range(args.epochs):
        for xb, yb in iterate_minibatches(train.x, train.y, 32, rng=batch_rng):
            model.train_batch(xb, yb, optimizer)
    result = ExposureAssessor(oracle, max_channels_per_layer=4).assess(
        model, test.x[: args.inputs]
    )
    print(f"uniform baseline delta_mu = {result.uniform_baseline:.3f}")
    for exposure in result.layers:
        verdict = "LEAK" if exposure.leaks(result.uniform_baseline) else "safe"
        print(f"  layer {exposure.layer_index + 1:>2}: "
              f"KL in [{exposure.kl_min:7.3f}, {exposure.kl_max:7.3f}]  {verdict}")
    print(f"=> enclose the first {result.optimal_partition} layers")
    return 0


def _cmd_forensics(args) -> int:
    from repro.attacks.trojan import TrojanAttack
    from repro.core.fingerprint import Fingerprinter
    from repro.core.linkage import LinkageDatabase, instance_digest
    from repro.core.query import QueryService
    from repro.data.batching import iterate_minibatches
    from repro.data.datasets import synthetic_faces
    from repro.nn.optimizers import Sgd
    from repro.nn.zoo import face_recognition_net
    from repro.utils.rng import RngStream

    rng = RngStream(args.seed, name="cli-forensics")
    faces = synthetic_faces(rng.child("faces"), num_identities=args.identities,
                            per_identity=40)
    train, test, substitute = faces.split([0.6, 0.2, 0.2],
                                          rng=rng.child("split").generator)
    model = face_recognition_net(num_classes=args.identities,
                                 rng=rng.child("init").generator)
    optimizer = Sgd(0.01, 0.9)
    batch_rng = rng.child("batches").generator
    for _ in range(18):
        for xb, yb in iterate_minibatches(train.x, train.y, 16, rng=batch_rng):
            model.train_batch(xb, yb, optimizer)
    attack = TrojanAttack(model, target_label=0, patch=4,
                          rng=rng.child("attack").generator)
    outcome = attack.run(substitute, test, trigger_iterations=40,
                         retrain_epochs=4, learning_rate=0.01)
    print(f"attack success rate: {attack.attack_success_rate(outcome):.2%}")

    fingerprinter = Fingerprinter(outcome.trojaned_model)
    database = LinkageDatabase()
    for dataset, source, kind_key in ((train, "honest", None),
                                      (outcome.poisoned_train, "attacker",
                                       "poisoned")):
        fingerprints = fingerprinter.fingerprint(dataset.x)
        kinds = [
            "poisoned" if kind_key and dataset.flags[kind_key][i] else "normal"
            for i in range(len(dataset))
        ]
        database.add_batch(
            fingerprints, dataset.y.tolist(), [source] * len(dataset),
            [instance_digest(dataset.x[i]) for i in range(len(dataset))],
            source_indices=list(range(len(dataset))), kinds=kinds,
        )
    service = QueryService(database)
    labels, _, fingerprints = fingerprinter.predict_with_fingerprint(
        outcome.trojaned_test.x[: args.queries]
    )
    for qi in range(args.queries):
        print(f"misprediction #{qi}: closest training instances")
        for neighbor in service.query(fingerprints[qi], int(labels[qi]), k=5):
            print(f"  #{neighbor.rank}: L2 {neighbor.distance:.3f}  "
                  f"{neighbor.record.kind} / {neighbor.record.source}")
    return 0


def _synthetic_store(path, records, dim, labels, segment_size, seed):
    """Build a clustered synthetic fingerprint store on disk."""
    from repro.serving import LinkageStore

    generator = np.random.default_rng(seed)
    clusters_per_label = 8
    centers = generator.standard_normal((labels, clusters_per_label, dim)) * 4.0
    label_column = generator.integers(0, labels, size=records)
    cluster_column = generator.integers(0, clusters_per_label, size=records)
    fingerprints = (
        centers[label_column, cluster_column]
        + generator.standard_normal((records, dim)) * 0.5
    ).astype(np.float32)
    store = LinkageStore.create(path)
    for start in range(0, records, segment_size):
        stop = min(start + segment_size, records)
        store.append(
            fingerprints[start:stop],
            label_column[start:stop].tolist(),
            [f"p{i % 4}" for i in range(start, stop)],
            [b"h" * 32 for _ in range(start, stop)],
            source_indices=list(range(start, stop)),
        )
    return store, fingerprints, label_column


def _cmd_build_index(args) -> int:
    import tempfile

    from repro.enclave.platform import SgxPlatform
    from repro.serving import ShardedAnnIndex
    from repro.utils.rng import RngStream

    path = args.path or tempfile.mkdtemp(prefix="caltrain-store-")
    store, _, _ = _synthetic_store(path, args.records, args.dim, args.labels,
                                   args.segment_size, args.seed)
    print(f"store: {len(store)} records in {len(store.segments)} segments "
          f"at {path} (version {store.version})")
    print(f"manifest digest: {store.manifest_digest().hex()}")
    store.verify()
    print("segment digests: verified")

    index = ShardedAnnIndex(store, shard_threshold=args.shard_threshold,
                            seed=args.seed).build()
    stats = index.stats()
    print(f"index: {stats['labels']} label shards, mode {stats['mode']}")
    for label, shard in stats["shards"].items():
        detail = (f"{shard['buckets']} buckets, mean radius "
                  f"{shard['mean_radius']:.2f}"
                  if shard["kind"] == "clustered" else "exact scan")
        print(f"  label {label}: {shard['rows']} rows, {shard['kind']} ({detail})")

    # The enclave sealing boundary: attest what the serving plane holds.
    platform = SgxPlatform(rng=RngStream(args.seed, name="cli-serving"))
    enclave = platform.create_enclave("fingerprinting")
    enclave.init()
    sealed = store.seal_manifest(enclave)
    print(f"manifest sealed to MRENCLAVE {enclave.mrenclave.hex()[:16]}…: "
          f"{'valid' if store.verify_sealed_manifest(enclave, sealed) else 'INVALID'}")
    return 0


def _cmd_serve_queries(args) -> int:
    import tempfile

    from repro.serving import (EngineConfig, LinkageStore, ServingEngine,
                               ShardedAnnIndex)

    generator = np.random.default_rng(args.seed + 1)
    if args.path:
        store = LinkageStore.open(args.path)
    else:
        path = tempfile.mkdtemp(prefix="caltrain-store-")
        store, _, _ = _synthetic_store(
            path, args.records, args.dim, args.labels, 8192, args.seed
        )
    print(f"serving {len(store)} fingerprints "
          f"(dimension {store.dimension}, version {store.version})")
    index = ShardedAnnIndex(store, shard_threshold=1024,
                            probes=args.probes, seed=args.seed).build()
    # Mispredictions land near training fingerprints, so draw queries as
    # perturbed stored records (this is also what lets the ANN bounds prune).
    sample = generator.integers(0, len(store), size=args.queries)
    records = [store.record(int(i)) for i in sample]
    queries = np.stack([r.fingerprint for r in records]).astype(np.float32)
    queries += generator.standard_normal(queries.shape).astype(np.float32) * 0.1
    query_labels = [r.label for r in records]

    def submit_with_backoff(engine, batch, batch_labels):
        import time as _time

        from repro.errors import QueryRejected

        futures = []
        for i in range(batch.shape[0]):
            while True:
                try:
                    futures.append(
                        engine.submit(batch[i], batch_labels[i], args.k)
                    )
                    break
                except QueryRejected:
                    _time.sleep(0.002)
        return [future.result() for future in futures]

    tracer = None
    if args.trace:
        from repro.observability import Tracer

        tracer = Tracer()  # wall clock: serving is real concurrency

    from contextlib import nullcontext

    def _span(name, **attrs):
        if tracer is None:
            return nullcontext()
        return tracer.span(name, kind="untrusted", **attrs)

    config = EngineConfig(workers=args.workers)
    with ServingEngine(index, config) as engine:
        with _span("serve-queries", queries=args.queries, k=args.k):
            with _span("wave-initial", queries=args.queries):
                results = submit_with_backoff(engine, queries, query_labels)
            # A second wave over a slice of the same traffic: the viral-
            # misprediction pattern the LRU cache absorbs.
            repeats = max(1, args.queries // 4)
            with _span("wave-repeat", queries=repeats):
                submit_with_backoff(engine, queries[:repeats],
                                    query_labels[:repeats])
    print(f"answered {len(results)} queries "
          f"(sample top hit: record {results[0][0].index} "
          f"at L2 {results[0][0].distance:.3f})")
    print(engine.telemetry.render())
    chain_ok = engine.verify_audit_chain()
    print(f"audit trail: {len(engine.audit)} events, chain "
          f"{'VERIFIED' if chain_ok else 'BROKEN'} "
          f"(head {engine.audit.head.hex()[:16]}…)")
    if tracer is not None:
        _write_trace(tracer, args.trace, time_unit="s")
    return 0 if chain_ok else 1


def _parse_injections(specs, queries, dim, growth_records=200):
    """Parse ``KIND@QUERY[:REPLICA]`` CLI fault specs."""
    from repro.resilience import ServingFaultSpec

    parsed = []
    for raw in specs:
        if "@" not in raw:
            raise SystemExit(
                f"--inject {raw!r}: expected KIND@QUERY[:REPLICA]")
        kind, _, rest = raw.partition("@")
        at_query, _, replica = rest.partition(":")
        try:
            ordinal = int(at_query)
        except ValueError:
            raise SystemExit(f"--inject {raw!r}: query ordinal must be an int")
        if ordinal >= queries:
            raise SystemExit(
                f"--inject {raw!r}: ordinal {ordinal} is past "
                f"--queries {queries}")
        parsed.append(ServingFaultSpec(
            kind=kind, at_query=ordinal, replica=replica or None,
            # growth-storm spreads across labels round-robin (label=None)
            label=None if kind == "growth-storm" else 0, row=0,
            records=growth_records if kind == "growth-storm" else None,
        ))
    return parsed


def _cmd_serve_cluster(args) -> int:
    import tempfile
    import time as _time

    from repro.errors import (CalTrainError, DeadlineExceeded,
                              NoHealthyReplica, QueryRejected)
    from repro.resilience import ServingFaultPlan
    from repro.serving import (ClusterConfig, EngineConfig, LinkageStore,
                               ServingCluster, ShardedAnnIndex)

    generator = np.random.default_rng(args.seed + 2)
    if args.path:
        store = LinkageStore.open(args.path)
    else:
        path = tempfile.mkdtemp(prefix="caltrain-cluster-")
        store, _, _ = _synthetic_store(
            path, args.records, args.dim, args.labels, 4096, args.seed
        )
    print(f"cluster over {len(store)} fingerprints "
          f"(dimension {store.dimension}, version {store.version}), "
          f"{args.replicas} replicas")

    specs = _parse_injections(args.inject, args.queries, store.dimension,
                              growth_records=args.growth_records)
    plan = ServingFaultPlan(specs)
    if args.seeded_faults:
        seeded = ServingFaultPlan.seeded(
            seed=args.seed, queries=args.queries,
            n_faults=args.seeded_faults)
        plan = ServingFaultPlan(specs + seeded.scheduled())
    if plan.remaining:
        for spec in plan.scheduled():
            target = spec.replica or "first-healthy"
            print(f"  scheduled fault: {spec.kind} before query "
                  f"{spec.at_query} ({target})")

    tracer = None
    if args.trace:
        from repro.observability import Tracer

        tracer = Tracer()

    sample = generator.integers(0, len(store), size=args.queries)
    queries = np.stack(
        [store.fingerprint_at(int(i)) for i in sample]
    ).astype(np.float32)
    queries += generator.standard_normal(queries.shape).astype(np.float32) * 0.1
    query_labels = [store.record(int(i)).label for i in sample]

    cluster = ServingCluster(
        store, replicas=args.replicas,
        config=ClusterConfig(deadline_s=args.deadline,
                             health_interval_s=0.05,
                             breaker_reset_s=0.25, hedge_min_s=0.03),
        engine_config=EngineConfig(workers=args.workers,
                                   poll_interval=0.005),
        index_factory=lambda s: ShardedAnnIndex(
            s, shard_threshold=1024, seed=args.seed),
        tracer=tracer,
    )
    ok = degraded = hedged = failed_over = failed = 0
    with cluster:
        for qi in range(args.queries):
            fired = plan.before_query(qi, cluster)
            for spec in fired:
                print(f"  !! injected {spec.kind} before query {qi}")
            try:
                result = cluster.query(queries[qi], int(query_labels[qi]),
                                       k=args.k)
            except QueryRejected as exc:
                _time.sleep(exc.retry_after_s or 0.01)
                failed += 1
                continue
            except (DeadlineExceeded, NoHealthyReplica) as exc:
                print(f"  query {qi} failed: {type(exc).__name__}")
                failed += 1
                continue
            ok += 1
            degraded += result.degraded
            hedged += result.hedged
            failed_over += result.failed_over
        # Give background revival a moment, then report the end state.
        _time.sleep(0.4)
        states = cluster.health_check_now()
        print(f"answered {ok}/{args.queries} "
              f"({degraded} degraded, {hedged} hedged, "
              f"{failed_over} failed over, {failed} failed)")
        print("replica states: " + ", ".join(
            f"{name}={state}" for name, state in sorted(states.items())))
        print(cluster.telemetry.render())
        chain_ok = cluster.verify_audit_chain()
        notable = [e.kind for e in cluster.audit.events()]
        print(f"cluster audit: {len(notable)} events, chain "
              f"{'VERIFIED' if chain_ok else 'BROKEN'}")
        for kind in ("fault-injected", "replica-evicted", "replica-revived",
                     "replica-refreshed", "degraded-query", "hedged-query",
                     "failover-query"):
            count = notable.count(kind)
            if count:
                print(f"  {kind}: {count}")
        evictions = int(cluster.telemetry.counter("evictions"))
        refreshes = int(cluster.telemetry.counter("replica_refreshes"))
        print(f"growth handling: {refreshes} refreshes, "
              f"{evictions} evictions, store version {store.version}")
    if tracer is not None:
        _write_trace(tracer, args.trace, time_unit="s")
    success_rate = ok / args.queries if args.queries else 1.0
    print(f"availability: {success_rate:.2%}")
    if args.expect_no_evictions and evictions:
        print(f"FAIL: expected zero evictions, saw {evictions}")
        return 1
    return 0 if chain_ok and success_rate >= 0.99 else 1


def _cmd_ingest(args) -> int:
    import dataclasses
    import tempfile

    from repro.data.datasets import synthetic_cifar
    from repro.data.encryption import iter_encrypted_records
    from repro.enclave.platform import SgxPlatform
    from repro.enclave.attestation import AttestationService
    from repro.federation.participant import TrainingParticipant
    from repro.federation.provisioning import provision_key
    from repro.federation.server import TrainingServer
    from repro.ingest import (ContributionLedger, GatewayConfig,
                              IngestGateway, ValidationConfig,
                              ValidationPool, chunk_stream)
    from repro.utils.rng import RngStream

    rng = RngStream(args.seed, name="cli-ingest")
    path = args.path or tempfile.mkdtemp(prefix="caltrain-ledger-")

    platform = SgxPlatform(rng=rng.child("platform"))
    attestation = AttestationService()
    server = TrainingServer(platform, attestation, rng.child("server"))
    server.build_training_enclave("[net]\ninput = 8,8,3\n[softmax]\n[cost]\n")
    enclave = server.enclave
    print(f"training enclave MRENCLAVE: {enclave.mrenclave.hex()[:16]}…")

    contributors = []
    for i in range(args.contributors):
        data, _ = synthetic_cifar(rng.child(f"data-{i}"),
                                  num_train=args.records_per, num_test=1,
                                  num_classes=4, shape=(8, 8, 3))
        participant = TrainingParticipant(f"c{i}", data, rng.child(f"c{i}"))
        provision_key(participant, enclave, attestation,
                      expected_mrenclave=enclave.mrenclave)
        contributors.append(participant)
    print(f"{len(contributors)} contributors provisioned over attested TLS")

    ledger = ContributionLedger.create(path)
    validator = ValidationPool(
        enclave, ValidationConfig(num_classes=4, input_shape=(8, 8, 3)),
        ledger=ledger,
    )
    gateway = IngestGateway(
        ledger, validator, spool_dir=path + ".spool",
        config=GatewayConfig(chunk_records=args.chunk_records),
    )

    def upload(participant, fault=False):
        chunks = list(chunk_stream(
            iter_encrypted_records(participant.dataset, participant.key,
                                   participant.participant_id),
            args.chunk_records,
        ))
        # Tamper a few records in transit: they must land in quarantine.
        for t in range(min(args.tamper, len(chunks[0]))):
            record = chunks[0][t]
            chunks[0][t] = dataclasses.replace(
                record,
                sealed=bytes([record.sealed[0] ^ 0xFF]) + record.sealed[1:],
            )
        session = gateway.open_session(participant.participant_id)
        if fault and len(chunks) > 1:
            crash_after = len(chunks) // 2
            for chunk in chunks[:crash_after]:
                session.send_chunk(chunk)
            print(f"  {participant.participant_id}: CRASH after "
                  f"{crash_after} chunks ({session.acked_records} records "
                  "acked)")
            gateway.evict_session(participant.participant_id)
            session = gateway.resume_session(participant.participant_id)
            print(f"  {participant.participant_id}: resumed at chunk "
                  f"{session.next_seq}")
            for chunk in chunks[crash_after:]:
                session.send_chunk(chunk)
        else:
            for chunk in chunks:
                session.send_chunk(chunk)
        return session.complete()

    for i, participant in enumerate(contributors):
        receipt = upload(participant, fault=args.fault and i == 0)
        print(f"  {participant.participant_id}: committed "
              f"{receipt.committed}, quarantined {receipt.quarantined}")

    print(gateway.telemetry.render())
    print(f"ledger: {len(ledger)} records in {len(ledger.segments)} "
          f"segments (+{ledger.quarantined_records} quarantined)")
    sealed = ledger.seal_manifest(enclave)
    print(f"manifest sealed to enclave identity: "
          f"{'valid' if ledger.verify_sealed_manifest(enclave, sealed) else 'INVALID'}")
    chain_ok = validator.verify_audit_chain()
    print(f"ingest audit trail: {len(validator.audit)} events, chain "
          f"{'VERIFIED' if chain_ok else 'BROKEN'}")

    staged = server.from_ledger(ledger)
    summary = server.decrypt_submissions()
    print(f"training intake: staged {staged} ledger records, enclave "
          f"accepted {summary.accepted} "
          f"({summary.rejected_tampered} tampered slipped through)")
    return 0 if chain_ok and summary.rejected_tampered == 0 else 1


def _cmd_metrics(args) -> int:
    """Run a small supervised training scenario, export the registry."""
    import json
    import tempfile
    from pathlib import Path

    from repro.core.caltrain import CalTrain, CalTrainConfig
    from repro.data.datasets import synthetic_cifar
    from repro.federation.participant import TrainingParticipant
    from repro.utils.rng import RngStream

    rng = RngStream(args.seed, name="cli-metrics")
    train, test = synthetic_cifar(rng.child("data"),
                                  num_train=args.train_size,
                                  num_test=args.test_size)
    system = CalTrain(CalTrainConfig(
        seed=args.seed, architecture="cifar10-10layer",
        width_scale=args.width_scale, epochs=args.epochs, augment=False,
    ))
    fractions = [1.0 / args.participants] * args.participants
    for i, share in enumerate(train.split(fractions,
                                          rng=rng.child("split").generator)):
        participant = TrainingParticipant(f"p{i}", share, rng.child(f"p{i}"))
        system.register_participant(participant)
        system.submit_data(participant)
    # A supervised run exercises the full metric surface: partition
    # boundary traffic, EPC paging, checkpoint I/O, resilience counters.
    with tempfile.TemporaryDirectory(prefix="caltrain-metrics-") as ckpt:
        system.train(test_x=test.x, test_y=test.y, checkpoint_dir=ckpt)
    if args.format == "json":
        text = json.dumps(system.metrics.snapshot(), indent=1, sort_keys=True)
    else:
        text = system.metrics.render_prometheus()
    if args.output:
        Path(args.output).write_text(text + "\n")
        snapshot = system.metrics.snapshot()
        print(f"metrics written to {args.output} "
              f"({len(snapshot['counters'])} counters, "
              f"{len(snapshot['gauges'])} gauges, "
              f"{len(snapshot['histograms'])} histograms)")
    else:
        print(text)
    return 0


def _governance_system(args):
    """The deployment `govern`/`promote`/`attribute` agree on."""
    from repro.core.caltrain import CalTrain, CalTrainConfig

    return CalTrain(CalTrainConfig(
        seed=args.seed, architecture="cifar10-10layer",
        width_scale=args.width_scale, epochs=args.epochs,
        partition=2, augment=False,
    ))


def _governance_ingest(system, rng, root, contributors, records_per):
    """Upload every contributor through the gateway into a fresh ledger.

    One record of the first contributor is tampered in transit, so the
    quarantine lane is populated and attribution has a refused record to
    steer clear of. Returns the committed ledger.
    """
    import dataclasses

    from repro.data.datasets import synthetic_cifar
    from repro.data.encryption import iter_encrypted_records
    from repro.federation.participant import TrainingParticipant
    from repro.ingest import (ContributionLedger, GatewayConfig,
                              IngestGateway, ValidationConfig,
                              ValidationPool, chunk_stream)

    ledger = ContributionLedger.create(root / "ledger")
    validator = ValidationPool(
        system.training_enclave,
        ValidationConfig(num_classes=10, input_shape=(28, 28, 3)),
        ledger=ledger,
    )
    gateway = IngestGateway(
        ledger, validator, spool_dir=root / "spool",
        config=GatewayConfig(chunk_records=32),
    )
    for i in range(contributors):
        data, _ = synthetic_cifar(rng.child(f"data-{i}"),
                                  num_train=records_per, num_test=1)
        participant = TrainingParticipant(f"c{i}", data, rng.child(f"c{i}"))
        system.register_participant(participant)
        records = list(iter_encrypted_records(
            participant.dataset, participant.key,
            participant.participant_id,
        ))
        if i == 0:
            victim = records[0]
            records[0] = dataclasses.replace(
                victim,
                sealed=bytes([victim.sealed[0] ^ 0xFF]) + victim.sealed[1:],
            )
        session = gateway.open_session(participant.participant_id)
        for chunk in chunk_stream(iter(records), 32):
            session.send_chunk(chunk)
        receipt = session.complete()
        print(f"  {participant.participant_id}: committed "
              f"{receipt.committed}, quarantined {receipt.quarantined}")
    return ledger


def _flip_byte(path, offset) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


def _governance_tamper(root, target) -> None:
    """The drill: flip ONE byte of one promoted artifact."""
    if target == "ledger":
        victim = sorted(root.glob("ledger/segment-*.bin"))[0]
        offset = victim.stat().st_size // 2
    elif target == "checkpoint":
        newest = sorted(root.glob("checkpoints/ckpt-*"))[-1]
        victim = newest / "state.npz"
        offset = victim.stat().st_size // 2
    elif target == "store":
        # Offset past the .npy header, into the fingerprint matrix.
        victim = sorted(root.glob("store/segment-*.npy"))[0]
        offset = victim.stat().st_size // 2
    else:  # log
        victim = root / "governance" / "events.jsonl"
        offset = 50  # mid first entry: corruption, not a torn tail
    _flip_byte(victim, offset)
    print(f"\nTAMPER DRILL: flipped byte {offset} of "
          f"{victim.relative_to(root)}")


def _flagged_query(store, generator, record_index=None):
    """Synthesize a flagged prediction near a stored fingerprint."""
    index = (record_index if record_index is not None
             else int(generator.integers(0, len(store))))
    record = store.record(index)
    fingerprint = record.fingerprint + generator.standard_normal(
        record.fingerprint.shape
    ).astype(np.float32) * 0.05
    return index, fingerprint, record.label


def _print_attribution(report) -> None:
    print(f"attribution report {report.report_digest[:16]}… "
          f"(governance seq {report.governance_entry['seq']})")
    print(f"  query digest  {report.query_digest[:16]}…  label {report.label}")
    for entry in report.contributors:
        mark = " <== implicated" if entry["contributor"] in report.implicated \
            else ""
        print(f"  {entry['contributor']}: {entry['hits']} of "
              f"{len(report.hits)} evidence hits "
              f"({entry['share']:.0%}){mark}")
    segments = sorted({h["ledger"]["segment"] for h in report.hits})
    print(f"  ledger evidence: {len(report.hits)} hits across "
          f"segments {', '.join(segments)}")
    print(f"  governance events referenced: "
          f"{len(report.governance_events)}")


def _cmd_govern(args) -> int:
    import tempfile
    from pathlib import Path

    from repro.data.datasets import synthetic_cifar
    from repro.errors import GovernanceLogError, PromotionError
    from repro.governance import Attributor, GovernanceLog, PromotionGate
    from repro.serving import (EngineConfig, LinkageStore, ServingEngine,
                               ShardedAnnIndex)
    from repro.utils.rng import RngStream

    root = Path(args.path or tempfile.mkdtemp(prefix="caltrain-governed-"))
    rng = RngStream(args.seed, name="cli-govern")
    system = _governance_system(args)
    print(f"training enclave MRENCLAVE: {system.expected_measurement.hex()}")
    print(f"config digest: {system.config_digest.hex()[:16]}…")

    print(f"\ningest ({args.contributors} contributors via the gateway):")
    ledger = _governance_ingest(system, rng, root, args.contributors,
                                args.train_size)

    log = GovernanceLog.create(root / "governance")
    system.bind_governance(log)
    staged = system.intake_ledger(ledger)
    print(f"governed intake: {staged} committed ledger records staged "
          f"(ledger {ledger.manifest_digest().hex()[:16]}…)")

    _, test = synthetic_cifar(rng.child("test"), num_train=1, num_test=40)
    reports = system.train(test_x=test.x, test_y=test.y,
                           checkpoint_dir=root / "checkpoints")
    print(f"trained {len(reports)} epochs under run key "
          f"{system.run_key[:16]}… (final loss "
          f"{reports[-1].mean_loss:.4f})")

    database = system.fingerprint_stage()
    store = LinkageStore.from_database(root / "store", database)
    print(f"linkage store: {len(store)} fingerprints "
          f"({store.manifest_digest().hex()[:16]}…)")

    gate = PromotionGate(
        system.training_enclave, log, ledger=ledger,
        checkpoints=system.checkpoint_manager, store=store,
        telemetry=system.governance_telemetry,
    )
    record = gate.promote(system.run_key, config_digest=system.config_digest)
    (root / "promotion.json").write_bytes(record.to_json())
    print(f"PROMOTED: record signed under the enclave identity "
          f"({record.signature[:16]}…)")

    if args.tamper:
        _governance_tamper(root, args.tamper)

    index = ShardedAnnIndex(store, shard_threshold=1024, seed=args.seed)
    engine = ServingEngine(index.build(), EngineConfig(workers=2),
                           promotion=record,
                           promotion_verifier=gate.serving_verifier())
    try:
        if args.tamper == "log":
            # A reopening deployment re-verifies the whole timeline.
            log.close()
            GovernanceLog.open(root / "governance")
        engine.start()
    except (GovernanceLogError, PromotionError) as exc:
        print(f"REFUSED (fail-closed): {type(exc).__name__}: {exc}")
        return 2 if args.tamper else 1
    if args.tamper:
        print("tamper went UNDETECTED — the gate failed open")
        return 1

    try:
        attributor = Attributor(
            engine, store, ledger, log, gate=gate, promotion=record,
            telemetry=system.governance_telemetry,
        )
        flagged, fingerprint, label = _flagged_query(
            store, rng.child("flagged").generator
        )
        print(f"\nflagged prediction near store record {flagged}:")
        _print_attribution(attributor.attribute(fingerprint, label))
    finally:
        engine.stop()

    log.verify()
    print(f"\ngovernance timeline: {len(log)} events, chain VERIFIED "
          f"(head {log.head.hex()[:16]}…)")
    print(system.governance_telemetry.render())
    print(f"artifacts kept at {root}")
    return 0


def _cmd_promote(args) -> int:
    from pathlib import Path

    from repro.errors import (GovernanceLogError, LedgerError,
                              PromotionError, StoreError)
    from repro.governance import GovernanceLog, PromotionGate
    from repro.ingest import ContributionLedger
    from repro.resilience import CheckpointManager
    from repro.serving import LinkageStore

    root = Path(args.path)
    system = _governance_system(args)
    try:
        ledger = ContributionLedger.open(root / "ledger")
        log = GovernanceLog.open(root / "governance")
        store = LinkageStore.open(root / "store")
    except (LedgerError, GovernanceLogError, StoreError) as exc:
        print(f"promotion REFUSED: {type(exc).__name__}: {exc}")
        return 1
    system.intake_ledger(ledger)
    run_key = system.compute_run_key()
    print(f"run key: {run_key}")
    gate = PromotionGate(
        system.training_enclave, log, ledger=ledger,
        checkpoints=CheckpointManager(root / "checkpoints",
                                      config_digest=system.config_digest),
        store=store,
    )
    try:
        record = gate.promote(run_key, config_digest=system.config_digest)
    except PromotionError as exc:
        print(f"promotion REFUSED: {exc}")
        return 1
    (root / "promotion.json").write_bytes(record.to_json())
    print(f"PROMOTED: ledger {record.ledger_digest[:16]}…  store "
          f"{record.store_digest[:16]}…  checkpoint "
          f"{(record.checkpoint_digest or '-')[:16]}…")
    print(f"record written to {root / 'promotion.json'}")
    return 0


def _cmd_attribute(args) -> int:
    from pathlib import Path

    from repro.errors import (AttributionError, GovernanceLogError,
                              LedgerError, PromotionError, StoreError)
    from repro.governance import (Attributor, GovernanceLog, PromotionGate,
                                  PromotionRecord)
    from repro.ingest import ContributionLedger
    from repro.resilience import CheckpointManager
    from repro.serving import (EngineConfig, LinkageStore, ServingEngine,
                               ShardedAnnIndex)

    root = Path(args.path)
    system = _governance_system(args)
    try:
        ledger = ContributionLedger.open(root / "ledger")
        log = GovernanceLog.open(root / "governance")
        store = LinkageStore.open(root / "store")
        record = PromotionRecord.from_json(
            (root / "promotion.json").read_bytes()
        )
    except FileNotFoundError:
        print("attribution REFUSED: no promotion record — this deployment "
              "was never promoted")
        return 1
    except (LedgerError, GovernanceLogError, StoreError,
            PromotionError) as exc:
        print(f"attribution REFUSED: {type(exc).__name__}: {exc}")
        return 1
    gate = PromotionGate(
        system.training_enclave, log, ledger=ledger,
        checkpoints=CheckpointManager(root / "checkpoints",
                                      config_digest=system.config_digest),
        store=store,
    )
    index = ShardedAnnIndex(store, shard_threshold=1024, seed=args.seed)
    engine = ServingEngine(index.build(), EngineConfig(workers=2),
                           promotion=record,
                           promotion_verifier=gate.serving_verifier())
    try:
        engine.start()
    except PromotionError as exc:
        print(f"attribution REFUSED (serving gate): {exc}")
        return 1
    try:
        attributor = Attributor(engine, store, ledger, log, gate=gate,
                                promotion=record)
        flagged, fingerprint, label = _flagged_query(
            store, np.random.default_rng(args.seed + 1), args.record_index
        )
        print(f"flagged prediction near store record {flagged} "
              f"(label {label}):")
        report = attributor.attribute(fingerprint, label, k=args.k)
    except AttributionError as exc:
        print(f"attribution REFUSED: {exc}")
        return 1
    finally:
        engine.stop()
    _print_attribution(report)
    if args.output:
        Path(args.output).write_bytes(report.to_json())
        print(f"report written to {args.output}")
    return 0


def _cmd_ingest_status(args) -> int:
    from repro.errors import LedgerError
    from repro.ingest import ContributionLedger

    try:
        ledger = ContributionLedger.open(args.path)
    except LedgerError as exc:
        print(f"ledger INVALID: {exc}")
        return 1
    status = ledger.status()
    print(f"contribution ledger at {args.path}")
    print(f"  format                   v{status['format']}")
    print(f"  version                  {status['version']}")
    print(f"  committed segments       {status['committed_segments']}")
    print(f"  committed records        {status['committed_records']}")
    print(f"  quarantine segments      {status['quarantine_segments']}")
    print(f"  quarantine records       {status['quarantine_records']}")
    print(f"  contributors             {', '.join(status['contributors']) or '-'}")
    print(f"  manifest digest          {status['manifest_digest']}")
    for info in ledger.quarantined:
        print(f"  quarantine {info.name}: {info.records} records from "
              f"{info.contributor} ({info.reason})")
    print("segment digests: verified")
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "train": _cmd_train,
    "train-distributed": _cmd_train_distributed,
    "assess": _cmd_assess,
    "forensics": _cmd_forensics,
    "build-index": _cmd_build_index,
    "serve-queries": _cmd_serve_queries,
    "serve-cluster": _cmd_serve_cluster,
    "ingest": _cmd_ingest,
    "ingest-status": _cmd_ingest_status,
    "checkpoints": _cmd_checkpoints,
    "metrics": _cmd_metrics,
    "govern": _cmd_govern,
    "promote": _cmd_promote,
    "attribute": _cmd_attribute,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
